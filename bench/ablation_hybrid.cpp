// Ablation for §4.3 "Hybrid Algorithms": on an oversubscribed-TOR cluster,
// compare (a) the flat binomial pipeline with topology-blind random
// placement — the datacenter reality the paper describes — against (b) the
// flat pipeline with rack-aligned ranks, and (c) the two-level hybrid.
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"
#include "util/random.hpp"

using namespace rdmc;
using namespace rdmc::bench;

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  const std::uint64_t bytes = quick ? (16ull << 20) : (64ull << 20);
  header("Ablation — hybrid two-level pipeline on an oversubscribed TOR",
         "§4.3 Hybrid Algorithms (the experiment Apt's scheduler made "
         "impractical for the authors)",
         "random placement hammers the TOR; rack-aligned flat helps; the "
         "topology-aware hybrid crosses the TOR once per block per rack "
         "and wins, at the price of leader double-duty");

  util::TextTable table({"nodes", "racks", "flat random (ms)",
                         "flat aligned (ms)", "hybrid (ms)",
                         "hybrid vs random"});
  for (std::size_t n : {32, 64}) {
    const std::size_t per_rack = 16;
    auto profile = sim::apt_profile(n);
    profile.preemption.probability = 0.0;

    harness::MulticastConfig flat_random;
    flat_random.profile = profile;
    flat_random.group_size = n;
    flat_random.message_bytes = bytes;
    flat_random.ideal_software = true;
    std::vector<NodeId> shuffled(n);
    for (std::size_t i = 0; i < n; ++i)
      shuffled[i] = static_cast<NodeId>(i);
    util::Rng rng(4242);
    for (std::size_t i = n - 1; i > 0; --i)
      std::swap(shuffled[i], shuffled[rng.uniform(0, i)]);
    flat_random.members = shuffled;

    harness::MulticastConfig flat_aligned = flat_random;
    flat_aligned.members.reset();

    harness::MulticastConfig hybrid = flat_aligned;
    std::vector<std::uint32_t> racks(n);
    for (std::size_t i = 0; i < n; ++i)
      racks[i] = static_cast<std::uint32_t>(i / per_rack);
    hybrid.hybrid_racks = racks;

    const double tr = harness::run_multicast(flat_random).total_seconds;
    const double ta = harness::run_multicast(flat_aligned).total_seconds;
    const double th = harness::run_multicast(hybrid).total_seconds;
    table.add_row({util::TextTable::integer(n),
                   util::TextTable::integer(n / per_rack),
                   util::TextTable::num(tr * 1e3, 2),
                   util::TextTable::num(ta * 1e3, 2),
                   util::TextTable::num(th * 1e3, 2),
                   util::TextTable::num(tr / th, 2)});
  }
  table.print();
  return 0;
}
