// Ablation for §4.6 "Small messages": Derecho's one-sided-write
// round-robin bounded-buffer protocol vs RDMC's binomial pipeline, across
// message sizes and group sizes. The paper: "the optimized small message
// protocol gains as much as a 5x speedup compared to RDMC provided that
// the group is small enough (up to about 16 members) and the messages are
// small enough (no more than 10KB). For larger groups or larger messages
// ... the binomial pipeline dominates."
#include "bench_util.hpp"
#include "core/small_group.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

/// Messages/sec for a burst of `count` messages through the small-message
/// protocol on the simulated Fractus fabric.
double smc_rate(std::size_t n, std::size_t bytes, std::size_t count) {
  auto profile = sim::fractus_profile(std::max<std::size_t>(n, 16));
  harness::SimCluster cluster(profile);
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);

  SmallGroupOptions options;
  options.slot_size = std::max<std::size_t>(bytes, 1);
  options.ring_depth = 32;
  options.signal_period = 4;  // batch completion signals, like real senders
  std::vector<std::size_t> delivered(n, 0);
  for (NodeId m : members) {
    cluster.node(m).create_small_group(
        1, members, options,
        [&delivered, m](const std::byte*, std::size_t) { ++delivered[m]; });
  }
  std::vector<std::byte> payload(bytes, std::byte{1});

  // Closed loop: enqueue as backpressure admits, all in virtual time.
  std::size_t sent = 0;
  std::function<void()> pump = [&] {
    while (sent < count &&
           cluster.node(0).send_small(1, payload.data(), payload.size()))
      ++sent;
    if (sent < count)
      cluster.sim().after(2e-6, pump);  // retry after the ring drains a bit
  };
  const double start = cluster.sim().now();
  pump();
  cluster.sim().run();
  const double elapsed = cluster.sim().now() - start;
  for (std::size_t m = 1; m < n; ++m) {
    if (delivered[m] != count) return 0.0;  // incomplete: report failure
  }
  return static_cast<double>(count) / elapsed;
}

/// Messages/sec through RDMC's binomial pipeline for the same burst.
double rdmc_rate(std::size_t n, std::size_t bytes, std::size_t count) {
  harness::MulticastConfig cfg;
  cfg.profile = sim::fractus_profile(std::max<std::size_t>(n, 16));
  cfg.group_size = n;
  cfg.message_bytes = bytes;
  cfg.block_size = std::max<std::size_t>(bytes, 4096);
  cfg.messages = count;
  auto r = harness::run_multicast(cfg);
  return static_cast<double>(count) / r.total_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  header("Ablation — small-message protocol vs RDMC (§4.6)",
         "§4.6 \"Small messages\" (Derecho's SMC comparison)",
         "one-sided ring writes win by up to ~5x for <=16 members and "
         "<=10 KB; RDMC's pipeline takes over for larger messages and "
         "groups");

  const std::size_t count = quick ? 100 : 400;
  for (std::size_t bytes : {256ul, 10ul * 1024, 100ul * 1024,
                            1024ul * 1024}) {
    util::TextTable table({"group size", "smc msg/s", "rdmc msg/s",
                           "smc/rdmc"});
    for (std::size_t n : {2, 4, 8, 16, 24, 32}) {
      const double smc = smc_rate(n, bytes, count);
      const double rdmc_v = rdmc_rate(n, bytes, count);
      table.add_row(
          {util::TextTable::integer(n),
           util::TextTable::integer(static_cast<std::uint64_t>(smc)),
           util::TextTable::integer(static_cast<std::uint64_t>(rdmc_v)),
           util::TextTable::num(smc / rdmc_v, 2)});
    }
    std::printf("\n%s messages:\n", util::format_bytes(bytes).c_str());
    table.print();
  }
  return 0;
}
