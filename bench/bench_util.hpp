// Shared helpers for the benchmark binaries.
//
// Every bench regenerates one table or figure from the paper's evaluation
// (§5) on the simulated substrate and prints the same rows/series the paper
// reports. Pass --quick to shrink message sizes/iterations (CI smoke mode).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/parallel.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"

namespace rdmc::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  return false;
}

/// `--jobs N` (or `--jobs=N`): worker threads for sweeps that support the
/// parallel executor. Absent -> 1 (serial, the bit-identical reference);
/// 0 -> one per hardware thread. Results are independent of N by
/// construction (see harness/parallel.hpp).
inline std::size_t jobs_arg(int argc, char** argv) {
  long long n = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      n = std::atoll(argv[i + 1]);
    else if (std::strncmp(argv[i], "--jobs=", 7) == 0)
      n = std::atoll(argv[i] + 7);
  }
  if (n < 0) n = 1;
  return n == 0 ? harness::default_jobs() : static_cast<std::size_t>(n);
}

/// `--fill-jobs N` (or `--fill-jobs=N`): worker threads for
/// component-parallel max-min fills *inside* one simulation
/// (FlowNetwork::set_fill_jobs), as opposed to --jobs which parallelises
/// across independent sweep points. Absent -> 1 (serial); 0 -> one per
/// hardware thread. Byte-identical results for any N.
inline std::size_t fill_jobs_arg(int argc, char** argv) {
  long long n = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fill-jobs") == 0 && i + 1 < argc)
      n = std::atoll(argv[i + 1]);
    else if (std::strncmp(argv[i], "--fill-jobs=", 12) == 0)
      n = std::atoll(argv[i] + 12);
  }
  if (n < 0) n = 1;
  return n == 0 ? harness::default_jobs() : static_cast<std::size_t>(n);
}

/// `--trace out.json` (or `--trace=out.json`): where to write the unified
/// trace, nullptr when the flag is absent.
inline const char* trace_path(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      return argv[i + 1];
    if (std::strncmp(argv[i], "--trace=", 8) == 0) return argv[i] + 8;
  }
  return nullptr;
}

/// Enable the trace recorder when --trace was passed; returns the output
/// path (nullptr = tracing stays off). Pair with write_trace(path).
inline const char* maybe_enable_trace(int argc, char** argv) {
  const char* path = trace_path(argc, argv);
  if (path != nullptr) obs::TraceRecorder::instance().enable();
  return path;
}

/// Dump the recorder to `path` as Chrome trace_event JSON (open in
/// ui.perfetto.dev). No-op when path is null.
inline void write_trace(const char* path) {
  if (path == nullptr) return;
  auto& rec = obs::TraceRecorder::instance();
  const auto events = rec.snapshot();
  if (!obs::write_chrome_json(path, events)) {
    std::fprintf(stderr, "trace: failed to write %s\n", path);
    return;
  }
  std::printf("trace: %zu events -> %s", events.size(), path);
  if (rec.dropped() > 0)
    std::printf(" (%llu oldest events dropped by ring wrap)",
                static_cast<unsigned long long>(rec.dropped()));
  std::printf("\n");
}

inline void header(const char* title, const char* paper_ref,
                   const char* expectation) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Expected shape: %s\n", expectation);
  std::printf("==============================================================================\n");
}

}  // namespace rdmc::bench
