// Shared helpers for the benchmark binaries.
//
// Every bench regenerates one table or figure from the paper's evaluation
// (§5) on the simulated substrate and prints the same rows/series the paper
// reports. Pass --quick to shrink message sizes/iterations (CI smoke mode).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/parallel.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/bytes.hpp"
#include "util/table.hpp"

namespace rdmc::bench {

namespace detail {

/// Last `--name VALUE` or `--name=VALUE` occurrence, null when absent.
inline const char* flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  const char* found = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc)
      found = argv[i + 1];
    else if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=')
      found = argv[i] + len + 1;
  }
  return found;
}

/// Thread-count convention shared by --jobs/--fill-jobs: absent -> 1
/// (serial, the bit-identical reference); 0 -> one per hardware thread.
inline std::size_t thread_count(const char* value) {
  if (value == nullptr) return 1;
  const long long n = std::atoll(value);
  if (n <= 0) return n == 0 ? harness::default_jobs() : 1;
  return static_cast<std::size_t>(n);
}

}  // namespace detail

/// The flags every bench shares, parsed once at the top of main():
///
///   --quick           shrink sizes/iterations (CI smoke mode)
///   --jobs N          worker threads across independent sweep points
///                     (results independent of N, see harness/parallel.hpp)
///   --fill-jobs N     worker threads *inside* one simulation's max-min
///                     fill (FlowNetwork::set_fill_jobs); byte-identical
///                     for any N
///   --trace out.json  record the unified trace and dump it for Perfetto
///   --telemetry out.jsonl  write the windowed telemetry time-series
///                     (benches that support it pair with write_text)
///
/// parse() ignores flags it does not know, so benches layer their own on
/// top (chaos_campaign --seeds, wan_sweep --loss). When --trace was passed
/// the recorder is enabled as a side effect; pair with write_trace(trace)
/// at exit.
struct BenchOptions {
  bool quick = false;
  std::size_t jobs = 1;
  std::size_t fill_jobs = 1;
  const char* trace = nullptr;  // --trace output path, null = tracing off
  const char* telemetry = nullptr;  // --telemetry output path, null = off

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i)
      if (std::strcmp(argv[i], "--quick") == 0) o.quick = true;
    o.jobs = detail::thread_count(detail::flag_value(argc, argv, "--jobs"));
    o.fill_jobs =
        detail::thread_count(detail::flag_value(argc, argv, "--fill-jobs"));
    o.trace = detail::flag_value(argc, argv, "--trace");
    o.telemetry = detail::flag_value(argc, argv, "--telemetry");
    if (o.trace != nullptr) obs::TraceRecorder::instance().enable();
    return o;
  }
};

/// Write `text` (telemetry JSONL, incident JSON, ...) to `path` verbatim.
/// No-op when path is null. Prints a one-line confirmation.
inline void write_text(const char* path, const std::string& text,
                       const char* what) {
  if (path == nullptr) return;
  std::FILE* f = std::fopen(path, "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: failed to open %s\n", what, path);
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::printf("%s: %zu bytes -> %s\n", what, text.size(), path);
}

/// Dump the recorder to `path` as Chrome trace_event JSON (open in
/// ui.perfetto.dev). No-op when path is null.
inline void write_trace(const char* path) {
  if (path == nullptr) return;
  auto& rec = obs::TraceRecorder::instance();
  const auto events = rec.snapshot();
  if (!obs::write_chrome_json(path, events)) {
    std::fprintf(stderr, "trace: failed to write %s\n", path);
    return;
  }
  std::printf("trace: %zu events -> %s", events.size(), path);
  if (rec.dropped() > 0)
    std::printf(" (%llu oldest events dropped by ring wrap)",
                static_cast<unsigned long long>(rec.dropped()));
  std::printf("\n");
}

inline void header(const char* title, const char* paper_ref,
                   const char* expectation) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Expected shape: %s\n", expectation);
  std::printf("==============================================================================\n");
}

}  // namespace rdmc::bench
