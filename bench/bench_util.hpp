// Shared helpers for the benchmark binaries.
//
// Every bench regenerates one table or figure from the paper's evaluation
// (§5) on the simulated substrate and prints the same rows/series the paper
// reports. Pass --quick to shrink message sizes/iterations (CI smoke mode).
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "util/bytes.hpp"
#include "util/table.hpp"

namespace rdmc::bench {

inline bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  return false;
}

inline void header(const char* title, const char* paper_ref,
                   const char* expectation) {
  std::printf("==============================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Expected shape: %s\n", expectation);
  std::printf("==============================================================================\n");
}

}  // namespace rdmc::bench
