// Chaos campaign: seeded fault plans vs the §4.6 recovery loop.
//
// Each seed derives a deterministic FaultPlan (crashes, link breaks,
// transient degradations, slow receivers) scheduled mid-transfer against a
// multicast workload; the recovery driver re-forms the group on survivors
// and resumes until every survivor holds the full message sequence. The
// reliability contract (§3) is checked on every delivery: sender order, no
// duplication, no corruption, failures reported to every survivor.
//
//   chaos_campaign [--seeds N] [--quick] [--replay SEED] [--first-seed S]
//                  [--trace out.json] [--jobs N]
//
// --jobs fans the seeds of each campaign over a thread pool; verdicts,
// failure reports and the exported trace are identical for any job count
// (seeds are independent simulations, merged back in seed order).
//
// --replay re-runs a single seed with full plan + violation output; a seed
// that failed in a campaign fails identically under --replay.
// --trace records the unified trace (the ring keeps the most recent
// window across seeds) and writes a Perfetto-loadable timeline — combine
// with --replay SEED to get the full fault/recovery picture of one seed.
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "harness/chaos.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

struct Campaign {
  const char* name;
  sched::Algorithm algorithm;
  bool hybrid = false;
};

harness::ChaosSpec spec_for(const Campaign& campaign, bool quick) {
  harness::ChaosSpec spec;
  spec.profile = sim::fractus_profile(16);
  spec.group_size = 16;
  spec.messages = quick ? 2 : 3;
  spec.message_bytes = quick ? (256u << 10) : (1u << 20);
  spec.group_options.block_size = 64 << 10;
  spec.group_options.algorithm = campaign.algorithm;
  if (campaign.hybrid) {
    // Two racks of 8 (ranks -> rack ids), the §4.3 two-level overlay.
    std::vector<std::uint32_t> racks(16);
    for (std::size_t i = 0; i < racks.size(); ++i) racks[i] = i / 8;
    spec.group_options.hybrid_racks = racks;
  }
  spec.faults.min_events = 1;
  spec.faults.max_events = 3;
  return spec;
}

int replay(std::uint64_t seed, bool quick) {
  int rc = 0;
  for (const Campaign& campaign :
       {Campaign{"binomial-pipeline", sched::Algorithm::kBinomialPipeline},
        Campaign{"chain", sched::Algorithm::kChain},
        Campaign{"sequential", sched::Algorithm::kSequential},
        Campaign{"hybrid", sched::Algorithm::kBinomialPipeline, true}}) {
    const harness::ChaosSpec spec = spec_for(campaign, quick);
    const double window = 1.5 * harness::calibrate(spec);
    const harness::ChaosSeedResult r =
        harness::run_chaos_seed(seed, spec, window);
    std::printf("\n[%s] seed %llu: %s\n", campaign.name,
                static_cast<unsigned long long>(seed),
                r.ok ? "OK" : "FAILED");
    std::printf("plan (window %.3f ms):\n%s", window * 1e3,
                r.plan.empty() ? "  (no events)\n" : r.plan.c_str());
    std::printf(
        "reforms=%zu failures_observed=%zu deliveries=%zu "
        "redeliveries=%zu root_lost=%d exhausted=%d virtual=%.3f ms\n",
        r.reforms, r.failures_observed, r.deliveries, r.redeliveries,
        r.root_lost ? 1 : 0, r.exhausted ? 1 : 0, r.virtual_seconds * 1e3);
    for (const auto& v : r.violations)
      std::printf("  violation: %s\n", v.c_str());
    if (!r.ok) rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  const char* trace_out = opts.trace;
  const std::size_t jobs = opts.jobs;
  std::size_t seeds = quick ? 60 : 500;
  std::uint64_t first_seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc)
      seeds = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--first-seed") == 0 && i + 1 < argc)
      first_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      const int rc = replay(
          static_cast<std::uint64_t>(std::atoll(argv[++i])), quick);
      write_trace(trace_out);
      return rc;
    }
  }

  header("Chaos campaign — seeded faults vs §4.6 recovery",
         "§3 reliability contract + §4.6 Recovery From Failure",
         "every seed passes: prefix delivery, no dup/corruption, all "
         "survivors notified, recovery completes");

  const std::size_t per_campaign = seeds / 4;
  int rc = 0;
  util::TextTable table({"schedule", "seeds", "pass", "fault hit",
                         "reforms", "root lost", "window (ms)"});
  for (const Campaign& campaign :
       {Campaign{"binomial-pipeline", sched::Algorithm::kBinomialPipeline},
        Campaign{"chain", sched::Algorithm::kChain},
        Campaign{"sequential", sched::Algorithm::kSequential},
        Campaign{"hybrid", sched::Algorithm::kBinomialPipeline, true}}) {
    const harness::ChaosSpec spec = spec_for(campaign, quick);
    const harness::ChaosCampaignResult result =
        harness::run_chaos_campaign(first_seed, per_campaign, spec, jobs);
    table.add_row({campaign.name, std::to_string(result.seeds_run),
                   std::to_string(result.passed),
                   std::to_string(result.fault_hit),
                   std::to_string(result.total_reforms),
                   std::to_string(result.root_lost),
                   util::TextTable::num(result.window_s * 1e3, 3)});
    for (const auto& f : result.failures) {
      rc = 1;
      std::printf("\nFAILING SEED %llu (%s) — replay with: "
                  "chaos_campaign %s--replay %llu\n",
                  static_cast<unsigned long long>(f.seed), campaign.name,
                  quick ? "--quick " : "",
                  static_cast<unsigned long long>(f.seed));
      std::printf("plan:\n%s", f.plan.c_str());
      for (const auto& v : f.violations)
        std::printf("  violation: %s\n", v.c_str());
    }
  }
  table.print();
  std::printf("\n%s\n", rc == 0 ? "ALL SEEDS PASSED" : "CAMPAIGN FAILED");
  write_trace(trace_out);
  return rc;
}
