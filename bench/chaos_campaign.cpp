// Chaos campaign: seeded fault plans vs the §4.6 recovery loop.
//
// Each seed derives a deterministic FaultPlan (crashes, link breaks,
// transient degradations, slow receivers) scheduled mid-transfer against a
// multicast workload; the recovery driver re-forms the group on survivors
// and resumes until every survivor holds the full message sequence. The
// reliability contract (§3) is checked on every delivery: sender order, no
// duplication, no corruption, failures reported to every survivor.
//
//   chaos_campaign [--seeds N] [--quick] [--replay SEED] [--first-seed S]
//                  [--trace out.json] [--jobs N]
//
// --jobs fans the seeds of each campaign over a thread pool; verdicts,
// failure reports and the exported trace are identical for any job count
// (seeds are independent simulations, merged back in seed order).
//
// --replay re-runs a single seed with full plan + violation output; a seed
// that failed in a campaign fails identically under --replay.
// --trace records the unified trace (the ring keeps the most recent
// window across seeds) and writes a Perfetto-loadable timeline — combine
// with --replay SEED to get the full fault/recovery picture of one seed.
// Before the campaigns, an **incident drill** exercises the live-telemetry
// path end to end: a chain multicast under a mid-run link degrade, watched
// by an SLO burn-rate tracker whose alert triggers the flight recorder.
// The drill fails the bench unless at least one incident is captured and
// the incident's stall tiling sums exactly to the violating transfer's
// latency. --incidents out.json writes the captured incidents.
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "bench_util.hpp"
#include "harness/chaos.hpp"
#include "harness/sim_harness.hpp"
#include "obs/flight.hpp"
#include "obs/slo.hpp"
#include "obs/stall.hpp"
#include "obs/telemetry.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

struct Campaign {
  const char* name;
  sched::Algorithm algorithm;
  bool hybrid = false;
};

harness::ChaosSpec spec_for(const Campaign& campaign, bool quick) {
  harness::ChaosSpec spec;
  spec.profile = sim::fractus_profile(16);
  spec.group_size = 16;
  spec.messages = quick ? 2 : 3;
  spec.message_bytes = quick ? (256u << 10) : (1u << 20);
  spec.group_options.block_size = 64 << 10;
  spec.group_options.algorithm = campaign.algorithm;
  if (campaign.hybrid) {
    // Two racks of 8 (ranks -> rack ids), the §4.3 two-level overlay.
    std::vector<std::uint32_t> racks(16);
    for (std::size_t i = 0; i < racks.size(); ++i) racks[i] = i / 8;
    spec.group_options.hybrid_racks = racks;
  }
  spec.faults.min_events = 1;
  spec.faults.max_events = 3;
  return spec;
}

int replay(std::uint64_t seed, bool quick) {
  int rc = 0;
  for (const Campaign& campaign :
       {Campaign{"binomial-pipeline", sched::Algorithm::kBinomialPipeline},
        Campaign{"chain", sched::Algorithm::kChain},
        Campaign{"sequential", sched::Algorithm::kSequential},
        Campaign{"hybrid", sched::Algorithm::kBinomialPipeline, true}}) {
    const harness::ChaosSpec spec = spec_for(campaign, quick);
    const double window = 1.5 * harness::calibrate(spec);
    const harness::ChaosSeedResult r =
        harness::run_chaos_seed(seed, spec, window);
    std::printf("\n[%s] seed %llu: %s\n", campaign.name,
                static_cast<unsigned long long>(seed),
                r.ok ? "OK" : "FAILED");
    std::printf("plan (window %.3f ms):\n%s", window * 1e3,
                r.plan.empty() ? "  (no events)\n" : r.plan.c_str());
    std::printf(
        "reforms=%zu failures_observed=%zu deliveries=%zu "
        "redeliveries=%zu root_lost=%d exhausted=%d virtual=%.3f ms\n",
        r.reforms, r.failures_observed, r.deliveries, r.redeliveries,
        r.root_lost ? 1 : 0, r.exhausted ? 1 : 0, r.virtual_seconds * 1e3);
    for (const auto& v : r.violations)
      std::printf("  violation: %s\n", v.c_str());
    if (!r.ok) rc = 1;
  }
  return rc;
}

/// Incident drill: inject a link degrade mid-run and require the
/// SLO -> flight-recorder path to capture it with an exact stall tiling.
int incident_drill(const char* incidents_out) {
  std::printf("\n-- incident drill: SLO burn-rate alert -> flight recorder "
              "--------------------\n");
  // Tracing must be live for the recorder's retroactive freeze-copy.
  obs::TraceRecorder::instance().enable();

  auto profile = sim::fractus_profile(4);
  harness::SimCluster cluster(profile);
  const std::vector<NodeId> members{0, 1, 2, 3};
  GroupOptions gopts;
  gopts.block_size = 64 << 10;
  gopts.algorithm = sched::Algorithm::kChain;
  auto& rec = cluster.create_group(1, members, gopts);

  // Live per-delivery feed into a labeled histogram, plus enough
  // bookkeeping to know the worst fully-delivered message at alert time.
  auto& scope = cluster.metrics().scope("bench=chaos_drill,group=1");
  auto& hist = scope.histogram("multicast.delivery_latency_s");
  constexpr std::size_t kMessages = 10;
  std::vector<std::size_t> delivered(kMessages, 0);
  std::vector<double> seq_latency(kMessages, 0.0);
  std::size_t worst_seq = kMessages;  // sentinel: none completed yet
  rec.on_latency = [&](std::size_t seq, std::size_t, double latency) {
    hist.add(latency);
    seq_latency[seq] = std::max(seq_latency[seq], latency);
    if (++delivered[seq] == members.size() - 1 &&
        (worst_seq == kMessages || seq_latency[seq] > seq_latency[worst_seq]))
      worst_seq = seq;
  };

  // Calibrate the clean chain latency with the first message.
  const std::uint64_t bytes = 512u << 10;
  cluster.send(1, bytes);
  cluster.run_to_quiescence();
  const double clean = seq_latency[0];

  // Objective: p99 of the labeled delivery series below 2x the clean
  // latency; the degraded messages run ~4x slow, so they breach it.
  obs::TelemetryOptions topt;
  topt.labels = "bench=chaos_drill";
  obs::TelemetryHub hub(cluster.metrics(), topt);
  const double gap = 2.0 * clean;
  cluster.attach_telemetry(hub, gap / 2.0);

  obs::SloObjective objective;
  objective.name = "drill-p99";
  objective.histogram = scope.decorate("multicast.delivery_latency_s");
  objective.threshold = 2.0 * clean;
  objective.budget = 0.1;
  obs::SloTracker slo({objective});
  obs::FlightRecorder flight;
  double worst_closure = -1.0;
  double incident_latency = 0.0;
  slo.add_alert_listener([&](const obs::SloState& st,
                             const obs::TelemetryWindow& w) {
    const std::string key = "slo:" + st.objective.name;
    if (worst_seq == kMessages || !flight.armed(key, w.seq)) return;
    const std::vector<std::uint32_t> m32(members.begin(), members.end());
    const auto analysis = obs::analyze_multicast(
        obs::TraceRecorder::instance().snapshot(), 1, m32, worst_seq);
    for (const auto& r : analysis.receivers)
      worst_closure = std::max(worst_closure,
                               std::abs(r.sum() - r.latency_s));
    incident_latency = seq_latency[worst_seq];
    char reason[160];
    std::snprintf(reason, sizeof reason,
                  "p99 %.6f s over threshold %.6f s (burn fast %.1f / "
                  "slow %.1f); worst transfer seq %zu",
                  st.fast_value, st.objective.threshold, st.fast_burn,
                  st.slow_burn, worst_seq);
    flight.record(key, w.seq, w.t_end, reason,
                  obs::stall_tiling_json(analysis),
                  obs::window_json(w, "bench=chaos_drill"));
  });
  slo.attach(hub);

  // Messages 1..9 paced one per 2x clean latency; the degrade lands as
  // message 5 starts and holds the link at 4x slow for the rest.
  const double t0 = cluster.sim().now();
  for (std::size_t i = 1; i < kMessages; ++i) {
    const double at = t0 + static_cast<double>(i) * gap;
    cluster.sim().at(at, [&cluster, bytes] { cluster.send(1, bytes); });
  }
  cluster.sim().at(t0 + 5.0 * gap, [&cluster, clean] {
    cluster.fabric().degrade_link(1, 2, 0.25, clean * 100.0);
  });
  cluster.run_to_quiescence();

  const auto& states = slo.states();
  std::printf("clean latency %.3f ms, threshold %.3f ms; "
              "alerts=%llu budget_consumed=%.2f\n",
              clean * 1e3, objective.threshold * 1e3,
              static_cast<unsigned long long>(states[0].alerts),
              states[0].budget_consumed());
  std::printf("incidents captured: %zu (suppressed %llu)\n",
              flight.incidents().size(),
              static_cast<unsigned long long>(flight.suppressed()));
  for (const auto& inc : flight.incidents())
    std::printf("  [%s] tick %llu t=%.4f: %s\n", inc.key.c_str(),
                static_cast<unsigned long long>(inc.tick), inc.t,
                inc.reason.c_str());
  if (incidents_out != nullptr)
    write_text(incidents_out, flight.to_json(), "incidents");

  const bool ok = !flight.incidents().empty() && worst_closure >= 0.0 &&
                  worst_closure < 1e-9;
  std::printf("drill: %s (violating transfer %.3f ms, tiling gap %.2e s)\n",
              ok ? "PASS — incident captured, stall tiling exact"
                 : "FAIL — no incident or tiling gap",
              incident_latency * 1e3, std::max(worst_closure, 0.0));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  const char* trace_out = opts.trace;
  const std::size_t jobs = opts.jobs;
  std::size_t seeds = quick ? 60 : 500;
  std::uint64_t first_seed = 1;
  const char* incidents_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc)
      seeds = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--first-seed") == 0 && i + 1 < argc)
      first_seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--incidents") == 0 && i + 1 < argc)
      incidents_out = argv[++i];
    else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      const int rc = replay(
          static_cast<std::uint64_t>(std::atoll(argv[++i])), quick);
      write_trace(trace_out);
      return rc;
    }
  }

  // The drill runs first (it enables and consumes the trace recorder);
  // afterwards the recorder is re-armed for the campaigns if --trace was
  // requested, so the exported campaign trace stays drill-free.
  int rc = incident_drill(incidents_out);
  if (trace_out != nullptr) {
    obs::TraceRecorder::instance().enable();
  } else {
    obs::TraceRecorder::instance().disable();
    obs::TraceRecorder::instance().clear();
  }

  header("Chaos campaign — seeded faults vs §4.6 recovery",
         "§3 reliability contract + §4.6 Recovery From Failure",
         "every seed passes: prefix delivery, no dup/corruption, all "
         "survivors notified, recovery completes");

  const std::size_t per_campaign = seeds / 4;
  util::TextTable table({"schedule", "seeds", "pass", "fault hit",
                         "reforms", "root lost", "window (ms)"});
  for (const Campaign& campaign :
       {Campaign{"binomial-pipeline", sched::Algorithm::kBinomialPipeline},
        Campaign{"chain", sched::Algorithm::kChain},
        Campaign{"sequential", sched::Algorithm::kSequential},
        Campaign{"hybrid", sched::Algorithm::kBinomialPipeline, true}}) {
    const harness::ChaosSpec spec = spec_for(campaign, quick);
    const harness::ChaosCampaignResult result =
        harness::run_chaos_campaign(first_seed, per_campaign, spec, jobs);
    table.add_row({campaign.name, std::to_string(result.seeds_run),
                   std::to_string(result.passed),
                   std::to_string(result.fault_hit),
                   std::to_string(result.total_reforms),
                   std::to_string(result.root_lost),
                   util::TextTable::num(result.window_s * 1e3, 3)});
    for (const auto& f : result.failures) {
      rc = 1;
      std::printf("\nFAILING SEED %llu (%s) — replay with: "
                  "chaos_campaign %s--replay %llu\n",
                  static_cast<unsigned long long>(f.seed), campaign.name,
                  quick ? "--quick " : "",
                  static_cast<unsigned long long>(f.seed));
      std::printf("plan:\n%s", f.plan.c_str());
      for (const auto& v : f.violations)
        std::printf("  violation: %s\n", v.c_str());
    }
  }
  table.print();
  std::printf("\n%s\n", rc == 0 ? "ALL SEEDS PASSED" : "CAMPAIGN FAILED");
  write_trace(trace_out);
  return rc;
}
