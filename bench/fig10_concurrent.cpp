// Figure 10: aggregate bandwidth of concurrent multicasts to overlapping
// groups (identical membership, rotated roots) on Fractus (full bisection)
// and Apt (oversubscribed TOR), varying the fraction of active senders.
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

void run_cluster(const char* name, const sim::ClusterProfile& base,
                 const std::vector<std::size_t>& group_sizes,
                 const std::vector<std::uint64_t>& sizes, bool quick,
                 std::size_t jobs) {
  std::printf("\n--- Figure 10 (%s) ---\n", name);
  // Flatten every (message, group size, sender count) cell into one work
  // list for the sweep executor; each cell is an independent simulation and
  // the tables are assembled in input order afterwards.
  struct Cell {
    std::uint64_t message;
    std::size_t group_size;
    std::size_t senders;
  };
  std::vector<Cell> cells;
  for (std::uint64_t message : sizes)
    for (std::size_t n : group_sizes)
      for (std::size_t senders :
           {n, std::max<std::size_t>(1, n / 2), std::size_t{1}})
        cells.push_back({message, n, senders});

  std::vector<double> gbps(cells.size());
  harness::parallel_for(cells.size(), jobs, [&](std::size_t i) {
    const Cell& cell = cells[i];
    harness::ConcurrentConfig cfg;
    cfg.profile = base;
    cfg.group_size = cell.group_size;
    cfg.senders = cell.senders;
    cfg.message_bytes = cell.message;
    cfg.block_size = std::min<std::size_t>(1 << 20, cell.message);
    cfg.messages = quick ? 2 : (cell.message >= (16ull << 20) ? 2 : 6);
    gbps[i] = harness::run_concurrent(cfg).aggregate_gbps;
  });

  std::size_t i = 0;
  for (std::uint64_t message : sizes) {
    util::TextTable table({"group size", "all send (Gb/s)",
                           "half send (Gb/s)", "one send (Gb/s)"});
    for (std::size_t n : group_sizes) {
      std::vector<std::string> row{util::TextTable::integer(n)};
      for (std::size_t s = 0; s < 3; ++s)
        row.push_back(util::TextTable::num(gbps[i++], 2));
      table.add_row(std::move(row));
    }
    std::printf("\nmessage size %s per sender:\n",
                util::format_bytes(message).c_str());
    table.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  const std::size_t jobs = opts.jobs;
  header("Figure 10 — aggregate bandwidth of concurrent overlapping groups",
         "Fig 10a (Fractus) and Fig 10b (Apt), §5.2.2",
         "Fractus approaches its ~100 Gb/s bisection for large messages; "
         "Apt's oversubscribed TOR caps aggregate inter-rack goodput near "
         "16 Gb/s per link under load; no interference collapse from "
         "overlap");

  // The "100 MB" series is simulated at 16 MB: both run at steady-state
  // bandwidth (k >> log n), so the aggregate-Gb/s values are equivalent.
  std::vector<std::uint64_t> sizes{16ull << 20, 1ull << 20, 64ull << 10};
  if (quick) sizes = {4ull << 20, 1ull << 20};

  run_cluster("Fractus, full bisection", sim::fractus_profile(16),
              {4, 8, 12, 16}, sizes, quick, jobs);

  // Apt groups span racks (16 nodes/rack), like the paper's batch-placed
  // allocations.
  run_cluster("Apt, oversubscribed TOR", sim::apt_profile(32),
              {8, 16, 24, 32}, sizes, quick, jobs);
  return 0;
}
