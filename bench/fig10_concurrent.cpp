// Figure 10: aggregate bandwidth of concurrent multicasts to overlapping
// groups (identical membership, rotated roots) on Fractus (full bisection)
// and Apt (oversubscribed TOR), varying the fraction of active senders.
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

void run_cluster(const char* name, const sim::ClusterProfile& base,
                 const std::vector<std::size_t>& group_sizes,
                 const std::vector<std::uint64_t>& sizes, bool quick) {
  std::printf("\n--- Figure 10 (%s) ---\n", name);
  for (std::uint64_t message : sizes) {
    util::TextTable table({"group size", "all send (Gb/s)",
                           "half send (Gb/s)", "one send (Gb/s)"});
    for (std::size_t n : group_sizes) {
      std::vector<std::string> row{util::TextTable::integer(n)};
      for (std::size_t senders :
           {n, std::max<std::size_t>(1, n / 2), std::size_t{1}}) {
        harness::ConcurrentConfig cfg;
        cfg.profile = base;
        cfg.group_size = n;
        cfg.senders = senders;
        cfg.message_bytes = message;
        cfg.block_size = std::min<std::size_t>(1 << 20, message);
        cfg.messages = quick ? 2 : (message >= (16ull << 20) ? 2 : 6);
        auto r = harness::run_concurrent(cfg);
        row.push_back(util::TextTable::num(r.aggregate_gbps, 2));
      }
      table.add_row(std::move(row));
    }
    std::printf("\nmessage size %s per sender:\n",
                util::format_bytes(message).c_str());
    table.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  header("Figure 10 — aggregate bandwidth of concurrent overlapping groups",
         "Fig 10a (Fractus) and Fig 10b (Apt), §5.2.2",
         "Fractus approaches its ~100 Gb/s bisection for large messages; "
         "Apt's oversubscribed TOR caps aggregate inter-rack goodput near "
         "16 Gb/s per link under load; no interference collapse from "
         "overlap");

  // The "100 MB" series is simulated at 16 MB: both run at steady-state
  // bandwidth (k >> log n), so the aggregate-Gb/s values are equivalent.
  std::vector<std::uint64_t> sizes{16ull << 20, 1ull << 20, 64ull << 10};
  if (quick) sizes = {4ull << 20, 1ull << 20};

  run_cluster("Fractus, full bisection", sim::fractus_profile(16),
              {4, 8, 12, 16}, sizes, quick);

  // Apt groups span racks (16 nodes/rack), like the paper's batch-placed
  // allocations.
  run_cluster("Apt, oversubscribed TOR", sim::apt_profile(32),
              {8, 16, 24, 32}, sizes, quick);
  return 0;
}
