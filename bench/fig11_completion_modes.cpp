// Figure 11: RDMC's hybrid polling/interrupt completion handling vs pure
// interrupts, across transfer sizes and sender fractions, with CPU load.
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  header("Figure 11 — hybrid vs pure-interrupt completions (Fractus)",
         "Fig 11, §5.2.3",
         "interrupts cost almost no bandwidth at 100 MB, a little at 1 MB, "
         "more at 10 KB — while CPU load drops from ~100% (polling) to a "
         "small fraction");

  struct SizeCase {
    std::uint64_t bytes;
    std::size_t block;
    std::size_t messages;
  };
  std::vector<SizeCase> sizes{{100ull << 20, 1 << 20, 2},
                              {1ull << 20, 256 << 10, 12},
                              {10ull << 10, 10 << 10, 40}};
  if (quick) sizes.erase(sizes.begin());

  for (const auto& sc : sizes) {
    std::printf("\n%s transfers:\n", util::format_bytes(sc.bytes).c_str());
    util::TextTable table({"senders", "hybrid (Gb/s)", "interrupts (Gb/s)",
                           "slowdown", "cpu hybrid", "cpu interrupts"});
    for (std::size_t senders : {std::size_t{1}, std::size_t{4},
                                std::size_t{8}}) {
      harness::ConcurrentConfig cfg;
      cfg.profile = sim::fractus_profile(16);
      cfg.group_size = 8;
      cfg.senders = senders;
      cfg.message_bytes = sc.bytes;
      cfg.block_size = sc.block;
      cfg.messages = quick ? sc.messages / 2 + 1 : sc.messages;

      cfg.completion_mode = fabric::CompletionMode::kHybrid;
      auto hybrid = harness::run_concurrent(cfg);
      cfg.completion_mode = fabric::CompletionMode::kInterrupt;
      auto intr = harness::run_concurrent(cfg);

      // CPU: the hybrid scheme polls whenever active (paper: "almost
      // exactly 100%"); interrupts charge only the handling time, which
      // the model exposes as busy/elapsed.
      table.add_row(
          {util::TextTable::integer(senders),
           util::TextTable::num(hybrid.aggregate_gbps, 2),
           util::TextTable::num(intr.aggregate_gbps, 2),
           util::TextTable::num(
               hybrid.aggregate_gbps / intr.aggregate_gbps, 3),
           "~100% (polls)",
           sc.bytes >= (100ull << 20) ? "~10%"
                                      : (sc.bytes >= (1ull << 20)
                                             ? "~50%"
                                             : "~90%")});
    }
    table.print();
  }
  std::printf("\n(CPU columns follow the paper's reported loads; the "
              "bandwidth columns are measured)\n");
  return 0;
}
