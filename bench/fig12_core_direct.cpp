// Figure 12: CORE-Direct (cross-channel) offload of the chain-send request
// pattern vs the traditional software-relayed path, 100 MB messages,
// groups of 3-8, in polling and interrupt completion modes.
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

double run_case(std::size_t n, bool cross_channel,
                fabric::CompletionMode mode, std::uint64_t bytes) {
  harness::MulticastConfig cfg;
  cfg.profile = sim::fractus_profile(8);
  cfg.group_size = n;
  cfg.message_bytes = bytes;
  // 256 KB blocks: the per-block software relay cost is a visible
  // fraction of the 20 us block time, as on the paper's testbed.
  cfg.block_size = 256 << 10;
  cfg.algorithm = sched::Algorithm::kChain;
  cfg.cross_channel = cross_channel;
  cfg.completion_mode = mode;
  auto r = harness::run_multicast(cfg);
  return r.bandwidth_gbps;
}

void table_for(fabric::CompletionMode mode, const char* label,
               std::uint64_t bytes) {
  std::printf("\n--- %s ---\n", label);
  util::TextTable table({"group size", "traditional (Gb/s)",
                         "cross-channel (Gb/s)", "speedup"});
  for (std::size_t n : {3, 4, 5, 6, 7, 8}) {
    const double trad = run_case(n, false, mode, bytes);
    const double cc = run_case(n, true, mode, bytes);
    table.add_row({util::TextTable::integer(n),
                   util::TextTable::num(trad, 2),
                   util::TextTable::num(cc, 2),
                   util::TextTable::num(cc / trad, 3)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  const std::uint64_t bytes = quick ? (25ull << 20) : (100ull << 20);
  header("Figure 12 — CORE-Direct chain send vs traditional (100 MB)",
         "Fig 12, §5.2.3",
         "cross-channel removes the software relay delay: ~5% faster "
         "chain sends, with zero CPU involvement");
  table_for(fabric::CompletionMode::kHybrid,
            "hybrid polling/interrupts (Fig 12 left)", bytes);
  table_for(fabric::CompletionMode::kInterrupt,
            "pure interrupts (Fig 12 right)", bytes);
  return 0;
}
