// Figure 4: latency of MPI (MVAPICH-style) and the RDMC algorithms on
// Fractus, for 256 MB (4a) and 8 MB (4b) multicasts across group sizes.
#include "baselines/mpi_bcast.hpp"
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;
using harness::MulticastConfig;
using harness::run_multicast;
using sched::Algorithm;

namespace {

double run_algorithm(std::size_t n, std::uint64_t bytes,
                     const char* name) {
  MulticastConfig cfg;
  cfg.profile = sim::fractus_profile(16);
  cfg.group_size = n;
  cfg.message_bytes = bytes;
  cfg.block_size = 1 << 20;
  if (std::string(name) == "mpi_bcast") {
    cfg.make_schedule = [](std::size_t nn, std::size_t rank) {
      return std::make_unique<baseline::MpiBcastSchedule>(nn, rank);
    };
  } else if (std::string(name) == "sequential") {
    cfg.algorithm = Algorithm::kSequential;
  } else if (std::string(name) == "chain") {
    cfg.algorithm = Algorithm::kChain;
  } else if (std::string(name) == "binomial_tree") {
    cfg.algorithm = Algorithm::kBinomialTree;
  } else {
    cfg.algorithm = Algorithm::kBinomialPipeline;
  }
  return run_multicast(cfg).latency_seconds;
}

void figure(const char* title, std::uint64_t bytes) {
  std::printf("\n--- %s (message %s, 1 MB blocks, Fractus 100 Gb/s) ---\n",
              title, util::format_bytes(bytes).c_str());
  util::TextTable table({"group size", "sequential (ms)", "chain (ms)",
                         "binomial tree (ms)", "binomial pipeline (ms)",
                         "mpi bcast (ms)", "mpi/pipeline"});
  for (std::size_t n : {2, 3, 4, 6, 8, 12, 16}) {
    const double seq = run_algorithm(n, bytes, "sequential");
    const double chain = run_algorithm(n, bytes, "chain");
    const double tree = run_algorithm(n, bytes, "binomial_tree");
    const double pipe = run_algorithm(n, bytes, "binomial_pipeline");
    const double mpi = run_algorithm(n, bytes, "mpi_bcast");
    table.add_row({util::TextTable::integer(n),
                   util::TextTable::num(seq * 1e3),
                   util::TextTable::num(chain * 1e3),
                   util::TextTable::num(tree * 1e3),
                   util::TextTable::num(pipe * 1e3),
                   util::TextTable::num(mpi * 1e3),
                   util::TextTable::num(mpi / pipe)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  header("Figure 4 — multicast latency by algorithm and group size",
         "Fig 4a (256 MB) and Fig 4b (8 MB), §5.2",
         "sequential and tree degrade with group size; chain ~ pipeline for "
         "large transfers; pipeline pulls ahead for small transfers at "
         "larger groups; MVAPICH falls between (1.03x-3x pipeline)");
  figure("Figure 4a", quick ? (64ull << 20) : (256ull << 20));
  figure("Figure 4b", 8ull << 20);
  return 0;
}
