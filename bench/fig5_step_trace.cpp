// Figure 5: per-step transfer vs wait time at the root sender and the
// first relayer during a 256 MB transfer (group of 4, Stampede), including
// the ~100 us OS-preemption anomaly the paper highlights.
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "core/group.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

struct StepRow {
  double transfer_us;
  double wait_us;
};

/// Reconstruct per-step busy/wait from a node's completion timeline: the
/// sender's cadence is its send completions, a relayer's its receive
/// completions. Consecutive gaps are smoothed over a window of l steps
/// (the engine legitimately bunches posts within a hypercube round-trip);
/// the node's steady per-step period is the windowed median, and time
/// beyond it is waiting (peer not ready / OS preemption).
std::vector<StepRow> step_profile(const Group* g, bool sender,
                                  std::size_t smooth) {
  std::vector<double> events;
  const auto kind = sender ? Group::TraceEvent::Kind::kSendCompleted
                           : Group::TraceEvent::Kind::kRecvCompleted;
  for (const auto& e : g->trace())
    if (e.kind == kind) events.push_back(e.when);
  std::sort(events.begin(), events.end());
  std::vector<double> gaps;
  for (std::size_t i = smooth; i < events.size(); i += smooth)
    gaps.push_back((events[i] - events[i - smooth]) /
                   static_cast<double>(smooth));
  std::vector<double> sorted = gaps;
  std::sort(sorted.begin(), sorted.end());
  const double period = sorted.empty() ? 0.0 : sorted[sorted.size() / 2];
  std::vector<StepRow> rows;
  for (double gap : gaps) {
    const double transfer = std::min(gap, period);
    rows.push_back({transfer * 1e6, (gap - transfer) * 1e6});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  header("Figure 5 — per-step transfer and wait time (sender vs relayer)",
         "Fig 5, §5.2.1",
         "most steps are pure transfer; occasional long waits appear when "
         "the OS preempts a relayer (the paper's ~100 us anomaly), and the "
         "sender then stalls on the next not-ready target");

  auto profile = sim::stampede_profile(4);
  // Make preemptions rare but present, as on the real batch system. Note
  // the pipeline's slack (~2 steps = ~420 us here, §4.5) absorbs hiccups
  // below it without moving any completion — so only preemptions beyond
  // the slack shows up as waits, exactly the paper's robustness claim.
  profile.preemption.probability = 2e-3;
  profile.preemption.mean_duration_s = 400e-6;
  harness::SimCluster cluster(profile);
  GroupOptions options;
  options.block_size = 1 << 20;
  options.enable_trace = true;
  cluster.create_group(1, {0, 1, 2, 3}, options);
  const std::uint64_t bytes = quick ? (32ull << 20) : (256ull << 20);
  cluster.node(0).send(1, nullptr, bytes);
  cluster.sim().run();

  // l = 2 for a 4-node hypercube: smooth over one full direction cycle.
  const auto sender = step_profile(cluster.node(0).group(1), true, 2);
  const auto relayer = step_profile(cluster.node(1).group(1), false, 2);

  util::TextTable table({"step", "sender transfer (us)", "sender wait (us)",
                         "relayer transfer (us)", "relayer wait (us)"});
  const std::size_t steps = std::min(sender.size(), relayer.size());
  double sender_wait = 0, relayer_wait = 0, anomalies = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    sender_wait += sender[i].wait_us;
    relayer_wait += relayer[i].wait_us;
    if (sender[i].wait_us > 50 || relayer[i].wait_us > 50) ++anomalies;
    if (i < 12 || sender[i].wait_us > 50 || relayer[i].wait_us > 50) {
      table.add_row({util::TextTable::integer(i),
                     util::TextTable::num(sender[i].transfer_us, 1),
                     util::TextTable::num(sender[i].wait_us, 1),
                     util::TextTable::num(relayer[i].transfer_us, 1),
                     util::TextTable::num(relayer[i].wait_us, 1)});
    }
  }
  table.print();
  std::printf("\n(first 12 steps plus every anomalous step shown; "
              "%zu steps total)\n", steps);
  std::printf("cumulative wait: sender %.0f us, relayer %.0f us; "
              "steps with >50 us wait: %.0f\n",
              sender_wait, relayer_wait, anomalies);
  std::printf("paper: majority of time in hardware transfer; sender bears "
              "a higher CPU burden than the receiver\n");
  return 0;
}
