// Figure 5: per-step transfer vs wait time at the root sender and the
// first relayer during a 256 MB transfer (group of 4, Stampede), including
// the ~100 us OS-preemption anomaly the paper highlights.
//
// The per-step split comes from obs::step_profile over the unified trace:
// each step's transfer time is the *exact* wire time of that completion's
// fabric xfer span, and the remainder of the inter-completion gap is wait.
// (Earlier versions reconstructed the split with a windowed-median
// heuristic over completion gaps; the trace makes that unnecessary.)
#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "harness/sim_harness.hpp"
#include "obs/stall.hpp"

using namespace rdmc;
using namespace rdmc::bench;

int main(int argc, char** argv) {
  const auto opts = BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  header("Figure 5 — per-step transfer and wait time (sender vs relayer)",
         "Fig 5, §5.2.1",
         "most steps are pure transfer; occasional long waits appear when "
         "the OS preempts a relayer (the paper's ~100 us anomaly), and the "
         "sender then stalls on the next not-ready target");

  // The step profile is trace-driven, so the recorder is always on here;
  // --trace additionally dumps the timeline for Perfetto.
  const char* trace_out = opts.trace;
  obs::TraceRecorder::instance().enable();

  auto profile = sim::stampede_profile(4);
  // Make preemptions rare but present, as on the real batch system. Note
  // the pipeline's slack (~2 steps = ~420 us here, §4.5) absorbs hiccups
  // below it without moving any completion — so only preemptions beyond
  // the slack shows up as waits, exactly the paper's robustness claim.
  profile.preemption.probability = 2e-3;
  profile.preemption.mean_duration_s = 400e-6;
  harness::SimCluster cluster(profile);
  GroupOptions options;
  options.block_size = 1 << 20;
  cluster.create_group(1, {0, 1, 2, 3}, options);
  const std::uint64_t bytes = quick ? (32ull << 20) : (256ull << 20);
  cluster.node(0).send(1, nullptr, bytes);
  cluster.sim().run();

  const auto events = obs::TraceRecorder::instance().snapshot();
  write_trace(trace_out);
  const auto sender = obs::step_profile(events, 1, 0, /*sender_side=*/true);
  const auto relayer = obs::step_profile(events, 1, 1, /*sender_side=*/false);

  util::TextTable table({"step", "sender transfer (us)", "sender wait (us)",
                         "relayer transfer (us)", "relayer wait (us)"});
  const std::size_t steps = std::min(sender.size(), relayer.size());
  double sender_wait = 0, relayer_wait = 0, anomalies = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    sender_wait += sender[i].wait_us;
    relayer_wait += relayer[i].wait_us;
    if (sender[i].wait_us > 50 || relayer[i].wait_us > 50) ++anomalies;
    if (i < 12 || sender[i].wait_us > 50 || relayer[i].wait_us > 50) {
      table.add_row({util::TextTable::integer(i),
                     util::TextTable::num(sender[i].transfer_us, 1),
                     util::TextTable::num(sender[i].wait_us, 1),
                     util::TextTable::num(relayer[i].transfer_us, 1),
                     util::TextTable::num(relayer[i].wait_us, 1)});
    }
  }
  table.print();
  std::printf("\n(first 12 steps plus every anomalous step shown; "
              "%zu steps total)\n", steps);
  std::printf("cumulative wait: sender %.0f us, relayer %.0f us; "
              "steps with >50 us wait: %.0f\n",
              sender_wait, relayer_wait, anomalies);
  std::printf("paper: majority of time in hardware transfer; sender bears "
              "a higher CPU burden than the receiver\n");
  return 0;
}
