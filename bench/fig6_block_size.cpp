// Figure 6: multicast bandwidth vs block size for message sizes from
// 16 KB to 128 MB, groups of 4 on Fractus.
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  header("Figure 6 — bandwidth vs block size (group of 4, Fractus)",
         "Fig 6, §5.2.1",
         "bandwidth rises with block size (per-block overhead amortised), "
         "peaks, then falls once the message has too few blocks for "
         "pipelining; larger messages peak higher and later");

  std::vector<std::uint64_t> messages = {16ull << 10, 1ull << 20,
                                         8ull << 20, 128ull << 20};
  if (quick) messages.pop_back();
  const std::size_t block_sizes[] = {16ull << 10, 64ull << 10, 256ull << 10,
                                     1ull << 20,  4ull << 20,  16ull << 20};

  std::vector<std::string> headers{"block size"};
  for (auto m : messages) headers.push_back(util::format_bytes(m));
  util::TextTable table(headers);

  for (std::size_t block : block_sizes) {
    std::vector<std::string> row{util::format_bytes(block)};
    for (std::uint64_t message : messages) {
      if (block > message * 4) {
        row.push_back("-");
        continue;
      }
      harness::MulticastConfig cfg;
      cfg.profile = sim::fractus_profile(4);
      cfg.group_size = 4;
      cfg.message_bytes = message;
      cfg.block_size = block;
      auto r = harness::run_multicast(cfg);
      row.push_back(util::TextTable::num(r.bandwidth_gbps, 2));
    }
    table.add_row(std::move(row));
  }
  std::printf("\nmulticast bandwidth in Gb/s (message size columns)\n");
  table.print();
  return 0;
}
