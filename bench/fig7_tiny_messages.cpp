// Figure 7: 1-byte messages per second vs group size on Fractus, using the
// binomial pipeline. The paper stresses this is an overhead probe, not an
// event-notification benchmark.
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  header("Figure 7 — 1-byte messages per second (Fractus)",
         "Fig 7, §5.2.1",
         "throughput falls with group size (each message costs a full "
         "log-depth relay round plus per-message setup)");

  const std::size_t count = quick ? 200 : 1000;
  util::TextTable table({"group size", "messages/sec", "per-message (us)"});
  for (std::size_t n : {2, 3, 4, 6, 8, 12, 16}) {
    harness::MulticastConfig cfg;
    cfg.profile = sim::fractus_profile(16);
    cfg.group_size = n;
    cfg.message_bytes = 1;
    cfg.block_size = 4096;
    cfg.messages = count;
    auto r = harness::run_multicast(cfg);
    const double per_sec =
        static_cast<double>(count) / r.total_seconds;
    table.add_row({util::TextTable::integer(n),
                   util::TextTable::integer(
                       static_cast<std::uint64_t>(per_sec)),
                   util::TextTable::num(r.total_seconds / count * 1e6, 1)});
  }
  table.print();
  return 0;
}
