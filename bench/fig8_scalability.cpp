// Figure 8: total time to replicate a 256 MB object to up to 512 nodes on
// Sierra (40 Gb/s QDR), binomial pipeline vs sequential send. Like the
// paper, the largest sequential points are extrapolated (they scale
// linearly and the full runs add nothing).
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench_util.hpp"
#include "harness/sim_harness.hpp"
#include "obs/stall.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

/// --trace extra: re-run the 16-node pipeline point with the unified trace
/// recorder on, dump the Perfetto timeline, and print the critical-path
/// stall decomposition for every receiver. The per-class segments tile
/// [root msg start, delivery] exactly, so sum == latency is asserted here
/// (within 1% is the acceptance bar; the analyzer delivers equality).
void traced_run(const char* trace_out, std::uint64_t bytes) {
  obs::TraceRecorder::instance().enable();
  harness::MulticastConfig cfg;
  cfg.profile = sim::sierra_profile(16);
  cfg.group_size = 16;
  cfg.message_bytes = bytes;
  cfg.block_size = 1 << 20;
  harness::run_multicast(cfg);
  const auto events = obs::TraceRecorder::instance().snapshot();
  write_trace(trace_out);
  obs::TraceRecorder::instance().disable();

  std::vector<std::uint32_t> members(16);
  for (std::uint32_t i = 0; i < 16; ++i) members[i] = i;
  const auto analysis = obs::analyze_multicast(events, 1, members);
  for (const auto& w : analysis.warnings)
    std::printf("trace: warning: %s\n", w.c_str());

  std::printf("\nCritical-path stall decomposition, 16-node traced run "
              "(ms, per receiver):\n");
  util::TextTable table({"node", "latency", "transfer", "wait", "software",
                         "injected", "recovery", "hops", "sum/latency"});
  double worst_rel = 0.0;
  for (const auto& r : analysis.receivers) {
    const double rel = r.latency_s > 0 ? r.sum() / r.latency_s : 1.0;
    worst_rel = std::max(worst_rel, std::abs(rel - 1.0));
    table.add_row({util::TextTable::integer(r.node),
                   util::TextTable::num(r.latency_s * 1e3, 3),
                   util::TextTable::num(r.transfer_s * 1e3, 3),
                   util::TextTable::num(r.wait_s * 1e3, 3),
                   util::TextTable::num(r.software_s * 1e3, 3),
                   util::TextTable::num(r.injected_s * 1e3, 3),
                   util::TextTable::num(r.recovery_s * 1e3, 3),
                   util::TextTable::integer(r.hops),
                   util::TextTable::num(rel, 6)});
  }
  table.print();
  std::printf("decomposition closure: worst |sum/latency - 1| = %.2e %s\n",
              worst_rel, worst_rel <= 0.01 ? "(within 1%)" : "(EXCEEDS 1%)");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  header("Figure 8 — 256 MB replication time vs number of nodes (Sierra)",
         "Fig 8, §5.2.2",
         "sequential grows linearly with receivers; the binomial pipeline "
         "grows ~logarithmically — 'replication is almost free': 128 vs 512 "
         "copies cost nearly the same");

  // Simulated with a 32 MB message: with k >> log n the pipeline runs at
  // its steady-state bandwidth, so the 256 MB times the paper plots are an
  // 8x linear scaling (printed alongside).
  const std::uint64_t bytes = quick ? (16ull << 20) : (32ull << 20);
  const double scale = 256.0 * (1ull << 20) / static_cast<double>(bytes);
  util::TextTable table({"nodes", "pipeline (s)", "pipeline 256MB-equiv (s)",
                         "sequential 256MB-equiv (s)", "speedup"});
  // Every point is an independent simulation; run them on the sweep
  // executor and assemble the table (including the sequential
  // extrapolation off the 128-node point) in input order afterwards.
  // Full mode extends past the paper's 512-node axis to 16K nodes — the
  // flat curve continuing is the "replication is almost free" claim at
  // datacenter scale (and the stress test for the incremental max-min
  // solver; see DESIGN.md "Hierarchical water-fill").
  std::vector<std::size_t> node_counts{2, 4, 8, 16, 32, 64, 128, 256, 512};
  if (!quick)
    for (const std::size_t n : {1024, 4096, 16384}) node_counts.push_back(n);
  const std::size_t fill_jobs = opts.fill_jobs;
  struct Point {
    double pipe = 0.0;
    double seq = 0.0;  // 0: extrapolated below
  };
  std::vector<Point> points(node_counts.size());
  harness::parallel_for(
      node_counts.size(), opts.jobs, [&](std::size_t i) {
        const std::size_t n = node_counts[i];
        harness::MulticastConfig cfg;
        cfg.profile = sim::sierra_profile(n);
        cfg.group_size = n;
        cfg.message_bytes = bytes;
        cfg.block_size = 1 << 20;
        cfg.fill_jobs = fill_jobs;
        points[i].pipe = harness::run_multicast(cfg).total_seconds;
        if (n <= 128) {
          auto scfg = cfg;
          scfg.algorithm = sched::Algorithm::kSequential;
          points[i].seq = harness::run_multicast(scfg).total_seconds;
        }
      });
  double seq128 = 0.0;
  for (std::size_t i = 0; i < node_counts.size(); ++i)
    if (node_counts[i] == 128) seq128 = points[i].seq;
  for (std::size_t i = 0; i < node_counts.size(); ++i) {
    const std::size_t n = node_counts[i];
    const double pipe = points[i].pipe;
    double seq;
    std::string seq_note;
    if (n <= 128) {
      seq = points[i].seq;
      seq_note = util::TextTable::num(seq * scale, 3);
    } else {
      // Extrapolated (the paper does the same for its 512-node point).
      seq = seq128 * static_cast<double>(n - 1) / 127.0;
      seq_note = util::TextTable::num(seq * scale, 3) + "*";
    }
    table.add_row({util::TextTable::integer(n),
                   util::TextTable::num(pipe, 3),
                   util::TextTable::num(pipe * scale, 3),
                   seq_note,
                   util::TextTable::num(seq / pipe, 1)});
  }
  table.print();
  std::printf("\n(*) extrapolated linearly, as in the paper\n");
  if (opts.trace != nullptr) traced_run(opts.trace, bytes);
  return 0;
}
