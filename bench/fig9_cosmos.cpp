// Figure 9: latency distribution when replaying the (synthetic) Cosmos
// replication-layer workload — one traffic generator pushing 3-replica
// writes to 15 host nodes through 455 pre-created overlapping RDMC groups,
// compared across sequential send, binomial tree and binomial pipeline.
#include <algorithm>

#include "bench_util.hpp"
#include "harness/sim_harness.hpp"
#include "util/stats.hpp"
#include "workload/cosmos.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

struct Replay {
  util::Sample latencies;  // seconds per write (to the last replica)
  double makespan = 0.0;
  double goodput_gbps = 0.0;
};

Replay replay(const std::vector<workload::CosmosWrite>& trace,
              sched::Algorithm algorithm, double arrival_rate_per_s) {
  // Node 15 generates traffic; nodes 0..14 host replicas (paper setup).
  auto profile = sim::fractus_profile(16);
  harness::SimCluster cluster(profile);
  workload::CosmosTraceGenerator generator;  // for group membership only

  GroupOptions options;
  options.algorithm = algorithm;
  options.block_size = 1 << 20;
  // Pre-create all 455 groups "so that this would be off the critical
  // path" (§5.2.2).
  std::vector<harness::SimCluster::GroupRecord*> groups(
      generator.num_groups());
  for (std::uint32_t g = 0; g < generator.num_groups(); ++g) {
    const auto combo = generator.group_members(g);
    std::vector<NodeId> members{15, combo[0], combo[1], combo[2]};
    groups[g] = &cluster.create_group(static_cast<GroupId>(g), members,
                                      options);
  }

  // Poisson arrivals at the requested offered load.
  util::Rng arrivals(7777);
  double t = 0.0;
  std::vector<double> submit_times(trace.size());
  double total_bytes = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    t += arrivals.exponential(1.0 / arrival_rate_per_s);
    submit_times[i] = t;
    total_bytes += static_cast<double>(trace[i].bytes);
    const auto& w = trace[i];
    cluster.sim().at(t, [&cluster, &w] {
      cluster.node(15).send(static_cast<GroupId>(w.group_index), nullptr,
                            w.bytes);
    });
  }
  cluster.sim().run();

  // Per-write latency: writes to one group are FIFO, so the g-th group's
  // j-th delivery corresponds to its j-th submitted write.
  std::vector<std::size_t> seen(generator.num_groups(), 0);
  Replay result;
  double last = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& w = trace[i];
    const auto* rec = groups[w.group_index];
    const std::size_t j = seen[w.group_index]++;
    double done = 0.0;
    for (std::size_t m = 1; m < rec->members.size(); ++m) {
      if (j < rec->delivery_times[m].size())
        done = std::max(done, rec->delivery_times[m][j]);
    }
    if (done > 0.0) {
      result.latencies.add(done - submit_times[i]);
      last = std::max(last, done);
    }
  }
  result.makespan = last;
  result.goodput_gbps = total_bytes * 3.0 * 8.0 / last / 1e9;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  header("Figure 9 — Cosmos replication-layer latency distribution",
         "Fig 9, §5.2.2 (synthetic trace: median 12 MB, mean 29 MB, "
         "3-replica writes over 15 hosts, 455 groups)",
         "binomial pipeline ~2x faster than binomial tree and ~3x faster "
         "than sequential send; aggregate goodput near the fabric's "
         "bisection capacity (paper: ~93 Gb/s replicated)");

  workload::CosmosTraceGenerator generator;
  const auto trace = generator.generate(quick ? 300 : 1500);
  // Writes/sec: ~83 Gb/s of replicated load — heavy, but sustainable by
  // every algorithm (sequential's replication capacity is ~100 Gb/s), so
  // the distributions reflect service times and transient queueing rather
  // than an unstable queue.
  const double rate = quick ? 60.0 : 120.0;

  util::TextTable table({"algorithm", "median (ms)", "p90 (ms)", "p99 (ms)",
                         "mean (ms)", "replicated goodput (Gb/s)"});
  struct Algo {
    const char* name;
    sched::Algorithm algorithm;
  };
  util::Sample cdf_pipeline, cdf_tree, cdf_seq;
  for (const Algo& algo :
       {Algo{"sequential", sched::Algorithm::kSequential},
        Algo{"binomial tree", sched::Algorithm::kBinomialTree},
        Algo{"binomial pipeline", sched::Algorithm::kBinomialPipeline}}) {
    Replay r = replay(trace, algo.algorithm, rate);
    table.add_row({algo.name,
                   util::TextTable::num(r.latencies.median() * 1e3, 1),
                   util::TextTable::num(r.latencies.percentile(90) * 1e3, 1),
                   util::TextTable::num(r.latencies.percentile(99) * 1e3, 1),
                   util::TextTable::num(r.latencies.mean() * 1e3, 1),
                   util::TextTable::num(r.goodput_gbps, 1)});
    if (algo.algorithm == sched::Algorithm::kBinomialPipeline)
      cdf_pipeline = r.latencies;
    else if (algo.algorithm == sched::Algorithm::kBinomialTree)
      cdf_tree = r.latencies;
    else
      cdf_seq = r.latencies;
  }
  table.print();

  std::printf("\nlatency CDF (fraction of transfers vs latency, ms):\n");
  util::TextTable cdf({"fraction", "sequential", "binomial tree",
                       "binomial pipeline"});
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    cdf.add_row({util::TextTable::num(f, 2),
                 util::TextTable::num(cdf_seq.percentile(f * 100) * 1e3, 1),
                 util::TextTable::num(cdf_tree.percentile(f * 100) * 1e3, 1),
                 util::TextTable::num(
                     cdf_pipeline.percentile(f * 100) * 1e3, 1)});
  }
  cdf.print();
  return 0;
}
