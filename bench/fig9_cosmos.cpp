// Figure 9: latency distribution when replaying the (synthetic) Cosmos
// replication-layer workload — one traffic generator pushing 3-replica
// writes to 15 host nodes through 455 pre-created overlapping RDMC groups,
// compared across sequential send, binomial tree and binomial pipeline.
//
// Beyond the paper's aggregate CDF, the replay records per-size-class
// delivery series through labeled metric scopes ("algo=...,size=2^k"),
// exports the windowed telemetry time-series (--telemetry out.jsonl), and
// re-runs the worst write under tracing to print its exact stall tiling
// (which receiver's p-worst latency went where).
#include <algorithm>
#include <cmath>
#include <map>

#include "bench_util.hpp"
#include "harness/sim_harness.hpp"
#include "obs/stall.hpp"
#include "obs/telemetry.hpp"
#include "util/stats.hpp"
#include "workload/cosmos.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

/// Telemetry window period, virtual seconds. The replay spans ~10-25 s of
/// virtual time, so this yields a few hundred deterministic windows.
constexpr double kTickPeriod = 0.05;

int size_class(std::uint64_t bytes) {
  int k = 0;
  while ((1ull << (k + 1)) <= bytes) ++k;
  return k;
}

struct Replay {
  util::Sample latencies;  // seconds per write (to the last replica)
  double makespan = 0.0;
  double goodput_gbps = 0.0;
  /// Per-delivery latency by write size class (log2 of bytes).
  std::map<int, obs::HistogramSnapshot> size_classes;
  /// Worst (submit -> last replica) write of the replay.
  std::uint32_t worst_group = 0;
  std::size_t worst_seq = 0;
  double worst_latency = 0.0;
};

Replay replay(const std::vector<workload::CosmosWrite>& trace,
              sched::Algorithm algorithm, double arrival_rate_per_s,
              const char* algo_label, std::string* telemetry_out) {
  // Node 15 generates traffic; nodes 0..14 host replicas (paper setup).
  auto profile = sim::fractus_profile(16);
  harness::SimCluster cluster(profile);
  workload::CosmosTraceGenerator generator;  // for group membership only

  obs::TelemetryOptions topt;
  topt.labels = std::string("bench=fig9,algo=") + algo_label;
  topt.collect_jsonl = telemetry_out != nullptr;
  obs::TelemetryHub hub(cluster.metrics(), topt);
  cluster.attach_telemetry(hub, kTickPeriod);

  GroupOptions options;
  options.algorithm = algorithm;
  options.block_size = 1 << 20;
  // Pre-create all 455 groups "so that this would be off the critical
  // path" (§5.2.2).
  std::vector<harness::SimCluster::GroupRecord*> groups(
      generator.num_groups());
  // Size-class labeled series: deliveries land live in
  // "cosmos.delivery_latency_s{algo=...,size=2^k}" (scope interned per
  // class; the per-delivery path reuses the cached histogram reference).
  std::map<int, obs::Log2Histogram*> class_hist;
  auto class_for = [&](std::uint64_t bytes) -> obs::Log2Histogram& {
    const int k = size_class(bytes);
    auto it = class_hist.find(k);
    if (it == class_hist.end()) {
      auto& scope = cluster.metrics().scope(std::string("algo=") +
                                            algo_label + ",size=2^" +
                                            std::to_string(k));
      it = class_hist
               .emplace(k, &scope.histogram("cosmos.delivery_latency_s"))
               .first;
    }
    return *it->second;
  };
  // Bytes of each write submitted to a group, in FIFO order (maps the
  // on_latency sequence number back to the write).
  std::vector<std::vector<std::uint64_t>> group_bytes(generator.num_groups());
  for (std::uint32_t g = 0; g < generator.num_groups(); ++g) {
    const auto combo = generator.group_members(g);
    std::vector<NodeId> members{15, combo[0], combo[1], combo[2]};
    groups[g] = &cluster.create_group(static_cast<GroupId>(g), members,
                                      options);
    groups[g]->on_latency = [&, g](std::size_t seq, std::size_t,
                                   double latency) {
      class_for(group_bytes[g][seq]).add(latency);
    };
  }

  // Poisson arrivals at the requested offered load.
  util::Rng arrivals(7777);
  double t = 0.0;
  std::vector<double> submit_times(trace.size());
  double total_bytes = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    t += arrivals.exponential(1.0 / arrival_rate_per_s);
    submit_times[i] = t;
    total_bytes += static_cast<double>(trace[i].bytes);
    const auto& w = trace[i];
    group_bytes[w.group_index].push_back(w.bytes);
    cluster.sim().at(t, [&cluster, &w] {
      cluster.send(static_cast<GroupId>(w.group_index), w.bytes);
    });
  }
  cluster.run_to_quiescence();

  // Per-write latency: writes to one group are FIFO, so the g-th group's
  // j-th delivery corresponds to its j-th submitted write.
  std::vector<std::size_t> seen(generator.num_groups(), 0);
  Replay result;
  double last = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& w = trace[i];
    const auto* rec = groups[w.group_index];
    const std::size_t j = seen[w.group_index]++;
    double done = 0.0;
    for (std::size_t m = 1; m < rec->members.size(); ++m) {
      if (j < rec->delivery_times[m].size())
        done = std::max(done, rec->delivery_times[m][j]);
    }
    if (done > 0.0) {
      const double latency = done - submit_times[i];
      result.latencies.add(latency);
      last = std::max(last, done);
      if (latency > result.worst_latency) {
        result.worst_latency = latency;
        result.worst_group = w.group_index;
        result.worst_seq = j;
      }
    }
  }
  result.makespan = last;
  result.goodput_gbps = total_bytes * 3.0 * 8.0 / last / 1e9;
  for (const auto& [k, hist] : class_hist)
    result.size_classes.emplace(k, hist->snapshot());
  if (telemetry_out != nullptr) *telemetry_out += hub.jsonl();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opts = BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  header("Figure 9 — Cosmos replication-layer latency distribution",
         "Fig 9, §5.2.2 (synthetic trace: median 12 MB, mean 29 MB, "
         "3-replica writes over 15 hosts, 455 groups)",
         "binomial pipeline ~2x faster than binomial tree and ~3x faster "
         "than sequential send; aggregate goodput near the fabric's "
         "bisection capacity (paper: ~93 Gb/s replicated)");

  workload::CosmosTraceGenerator generator;
  const auto trace = generator.generate(quick ? 300 : 1500);
  // Writes/sec: ~83 Gb/s of replicated load — heavy, but sustainable by
  // every algorithm (sequential's replication capacity is ~100 Gb/s), so
  // the distributions reflect service times and transient queueing rather
  // than an unstable queue.
  const double rate = quick ? 60.0 : 120.0;

  util::TextTable table({"algorithm", "median (ms)", "p90 (ms)", "p99 (ms)",
                         "mean (ms)", "replicated goodput (Gb/s)"});
  struct Algo {
    const char* name;
    const char* label;
    sched::Algorithm algorithm;
  };
  std::string telemetry;
  util::Sample cdf_pipeline, cdf_tree, cdf_seq;
  Replay pipeline_replay;
  for (const Algo& algo :
       {Algo{"sequential", "sequential", sched::Algorithm::kSequential},
        Algo{"binomial tree", "binomial_tree",
             sched::Algorithm::kBinomialTree},
        Algo{"binomial pipeline", "binomial_pipeline",
             sched::Algorithm::kBinomialPipeline}}) {
    Replay r = replay(trace, algo.algorithm, rate, algo.label,
                      opts.telemetry != nullptr ? &telemetry : nullptr);
    table.add_row({algo.name,
                   util::TextTable::num(r.latencies.median() * 1e3, 1),
                   util::TextTable::num(r.latencies.percentile(90) * 1e3, 1),
                   util::TextTable::num(r.latencies.percentile(99) * 1e3, 1),
                   util::TextTable::num(r.latencies.mean() * 1e3, 1),
                   util::TextTable::num(r.goodput_gbps, 1)});
    if (algo.algorithm == sched::Algorithm::kBinomialPipeline) {
      cdf_pipeline = r.latencies;
      pipeline_replay = r;
    } else if (algo.algorithm == sched::Algorithm::kBinomialTree) {
      cdf_tree = r.latencies;
    } else {
      cdf_seq = r.latencies;
    }
  }
  table.print();

  std::printf("\nlatency CDF (fraction of transfers vs latency, ms):\n");
  util::TextTable cdf({"fraction", "sequential", "binomial tree",
                       "binomial pipeline"});
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    cdf.add_row({util::TextTable::num(f, 2),
                 util::TextTable::num(cdf_seq.percentile(f * 100) * 1e3, 1),
                 util::TextTable::num(cdf_tree.percentile(f * 100) * 1e3, 1),
                 util::TextTable::num(
                     cdf_pipeline.percentile(f * 100) * 1e3, 1)});
  }
  cdf.print();

  // Per-size-class delivery latency (binomial pipeline), from the labeled
  // scopes: which write sizes carry the tail.
  std::printf("\nper-size-class delivery latency (binomial pipeline):\n");
  util::TextTable classes({"write size", "deliveries", "p50 (ms)",
                           "p99 (ms)", "max (ms)"});
  for (const auto& [k, h] : pipeline_replay.size_classes) {
    classes.add_row(
        {"2^" + std::to_string(k) + " B",
         std::to_string(h.total),
         util::TextTable::num(h.quantile(0.5) * 1e3, 1),
         util::TextTable::num(h.quantile(0.99) * 1e3, 1),
         util::TextTable::num(h.max * 1e3, 1)});
  }
  classes.print();

  // Worst-write stall attribution: re-run the pipeline replay traced (the
  // sim is deterministic, so the same write is worst), then tile its
  // latency exactly with the stall analyzer.
  obs::TraceRecorder::instance().enable();
  Replay traced = replay(trace, sched::Algorithm::kBinomialPipeline, rate,
                         "binomial_pipeline", nullptr);
  const auto events = obs::TraceRecorder::instance().snapshot();
  const auto combo = generator.group_members(traced.worst_group);
  const std::vector<std::uint32_t> members{15, combo[0], combo[1], combo[2]};
  const auto analysis = obs::analyze_multicast(
      events, static_cast<std::int32_t>(traced.worst_group), members,
      traced.worst_seq);
  std::printf("\nworst write: group %u seq %zu, %.1f ms submit-to-replicated"
              " (%.1f ms of root-side queueing before message start)\n",
              traced.worst_group, traced.worst_seq,
              traced.worst_latency * 1e3,
              traced.worst_latency * 1e3 -
                  (analysis.receivers.empty()
                       ? 0.0
                       : analysis.receivers.front().latency_s * 1e3));
  util::TextTable stall({"receiver", "latency (ms)", "transfer (ms)",
                         "wait (ms)", "software (ms)", "tiling"});
  for (const auto& r : analysis.receivers) {
    const bool tiles = std::abs(r.sum() - r.latency_s) < 1e-9;
    stall.add_row({std::to_string(r.node),
                   util::TextTable::num(r.latency_s * 1e3, 3),
                   util::TextTable::num(r.transfer_s * 1e3, 3),
                   util::TextTable::num(r.wait_s * 1e3, 3),
                   util::TextTable::num(r.software_s * 1e3, 3),
                   tiles ? "exact" : "GAP"});
  }
  stall.print();
  for (const auto& w : analysis.warnings)
    std::printf("warning: %s\n", w.c_str());

  write_text(opts.telemetry, telemetry, "telemetry");
  write_trace(opts.trace);
  return 0;
}
