// Microbenchmarks (google-benchmark) for the hot control-plane paths: the
// closed-form schedule queries RDMC performs on every transfer setup, and
// the per-message list building the engine does (§4.2 "RDMC computes
// sequences of sends and receives at the outset").
#include <benchmark/benchmark.h>

#include "baselines/mpi_bcast.hpp"
#include "sched/binomial_pipeline.hpp"
#include "sched/schedule_audit.hpp"

namespace {

using namespace rdmc;

void BM_PipelineSendsAt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 256;
  sched::BinomialPipelineSchedule schedule(n, n / 2 + 1);
  std::size_t step = 0;
  const std::size_t steps = schedule.num_steps(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.sends_at(k, step));
    if (++step == steps) step = 0;
  }
}
BENCHMARK(BM_PipelineSendsAt)->Arg(16)->Arg(512);

void BM_BuildTransferLists(benchmark::State& state) {
  // The full per-message flattening a node performs at transfer start.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 256;
  sched::BinomialPipelineSchedule schedule(n, 1);
  for (auto _ : state) {
    std::size_t total = 0;
    const std::size_t steps = schedule.num_steps(k);
    for (std::size_t j = 0; j < steps; ++j) {
      total += schedule.sends_at(k, j).size();
      total += schedule.recvs_at(k, j).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_BuildTransferLists)->Arg(16)->Arg(512);

void BM_MpiScheduleStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 256;
  baseline::MpiBcastSchedule schedule(n, n / 2);
  std::size_t step = 0;
  const std::size_t steps = schedule.num_steps(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.sends_at(k, step));
    if (++step == steps) step = 0;
  }
}
BENCHMARK(BM_MpiScheduleStep)->Arg(16);

void BM_AuditPipeline(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sched::audit_algorithm(sched::Algorithm::kBinomialPipeline, n, 32));
  }
}
BENCHMARK(BM_AuditPipeline)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
