// Microbenchmarks (google-benchmark) for the discrete-event simulator core:
// EventQueue schedule/pop/cancel and FlowNetwork start/finish churn. These
// are the per-event costs every cluster-scale figure run multiplies by
// hundreds of thousands.
#include <benchmark/benchmark.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace {

using namespace rdmc::sim;

// Steady-state schedule/pop mix: a window of pending events is kept full,
// the queue never drains. Exercises the slab free-list reuse path.
void BM_EventQueueScheduleDrain(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  EventQueue queue;
  double t = 0.0;
  for (std::size_t i = 0; i < window; ++i)
    queue.schedule(t + static_cast<double>(i), [] {});
  for (auto _ : state) {
    auto [when, fn] = queue.pop();
    benchmark::DoNotOptimize(when);
    t = when;
    queue.schedule(t + static_cast<double>(window), [] {});
  }
}
BENCHMARK(BM_EventQueueScheduleDrain)->Arg(16)->Arg(4096);

// Schedule + immediately cancel against a full window: the generation
// check must reject stale heap entries without touching the slab.
void BM_EventQueueCancelChurn(benchmark::State& state) {
  const auto window = static_cast<std::size_t>(state.range(0));
  EventQueue queue;
  double t = 0.0;
  std::vector<EventId> pending;
  for (std::size_t i = 0; i < window; ++i)
    pending.push_back(queue.schedule(static_cast<double>(i + 1), [] {}));
  std::size_t next = 0;
  for (auto _ : state) {
    t += 1.0;
    queue.cancel(pending[next]);
    pending[next] = queue.schedule(t + static_cast<double>(window), [] {});
    next = (next + 1) % window;
  }
}
BENCHMARK(BM_EventQueueCancelChurn)->Arg(16)->Arg(4096);

// Disjoint pairs: every flow-set change touches a two-resource component,
// the best case for incremental reallocation.
void BM_FlowNetworkDisjointChurn(benchmark::State& state) {
  const auto pairs = static_cast<std::size_t>(state.range(0));
  TopologyConfig config;
  config.num_nodes = 2 * pairs;
  Topology topology(config);
  Simulator sim;
  FlowNetwork net(sim, topology);
  net.set_cross_check(false);
  for (std::size_t p = 0; p < pairs; ++p) {
    net.start_flow(static_cast<NodeId>(2 * p),
                   static_cast<NodeId>(2 * p + 1), 1e12, nullptr);
  }
  std::size_t p = 0;
  std::uint64_t salt = 0;
  for (auto _ : state) {
    const FlowId id =
        net.start_flow(static_cast<NodeId>(2 * p),
                       static_cast<NodeId>(2 * p + 1), 1e12, nullptr);
    benchmark::DoNotOptimize(net.flow_rate(id));  // forces the reallocation
    net.abort_flow(id);
    p = (p + ++salt) % pairs;
  }
}
BENCHMARK(BM_FlowNetworkDisjointChurn)->Arg(8)->Arg(512);

// Shared fan-in: every sender targets one receiver, so all flows share the
// rx port and a start/abort must touch every one of them — the worst case
// the boundary-expansion pass has to handle.
void BM_FlowNetworkSharedFanIn(benchmark::State& state) {
  const auto senders = static_cast<std::size_t>(state.range(0));
  TopologyConfig config;
  config.num_nodes = senders + 1;
  Topology topology(config);
  Simulator sim;
  FlowNetwork net(sim, topology);
  net.set_cross_check(false);
  const NodeId sink = static_cast<NodeId>(senders);
  for (std::size_t s = 0; s < senders; ++s)
    net.start_flow(static_cast<NodeId>(s), sink, 1e12, nullptr);
  std::size_t s = 0;
  for (auto _ : state) {
    const FlowId id = net.start_flow(static_cast<NodeId>(s), sink, 1e12,
                                     nullptr);
    benchmark::DoNotOptimize(net.flow_rate(id));
    net.abort_flow(id);
    s = (s + 1) % senders;
  }
}
BENCHMARK(BM_FlowNetworkSharedFanIn)->Arg(8)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
