// Simulator-core performance benchmark.
//
// The simulator is this project's hardware: every figure regeneration is
// bounded by how fast the discrete-event core (EventQueue + FlowNetwork)
// chews through flow-set changes. This bench runs representative Fig 8 and
// Fig 10 configurations, reports wall time plus the FlowNetwork counters,
// and writes everything to BENCH_core.json for regression tracking.
//
// The seed_wall_seconds references are the times the pre-optimization tree
// (commit "growth seed") needed for the same configurations on the same
// class of machine; speedup_vs_seed is wall-time improvement against that.
// The incremental-reallocation work targets >= 3x on the 512-node Fig 8
// pipeline point.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "harness/sim_harness.hpp"
#include "sim/cluster_profiles.hpp"

using namespace rdmc;

namespace {

struct Point {
  std::string name;
  double virtual_seconds = 0.0;
  double seed_wall_seconds = 0.0;  // 0: no recorded seed reference
  harness::PerfStats perf;
};

/// "hierarchical" when any fill in the run went through the rack-island
/// solver; "flat" otherwise (rackless topologies, or components below the
/// engagement threshold). Per-point, so a sweep shows which sizes the
/// decomposition actually kicks in for.
const char* solver_mode(const harness::PerfStats& perf) {
  return perf.hier_fills > 0 ? "hierarchical" : "flat";
}

double memo_hit_rate(const harness::PerfStats& perf) {
  const double total =
      static_cast<double>(perf.memo_hits + perf.memo_misses);
  return total > 0 ? static_cast<double>(perf.memo_hits) / total : 0.0;
}

void append_json(std::string& out, const Point& p) {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "    {\n"
      "      \"name\": \"%s\",\n"
      "      \"wall_seconds\": %.6f,\n"
      "      \"virtual_seconds\": %.9f,\n"
      "      \"events_processed\": %llu,\n"
      "      \"reallocations\": %llu,\n"
      "      \"filling_rounds\": %llu,\n"
      "      \"flows_touched\": %llu,\n"
      "      \"max_component\": %llu,\n"
      "      \"expand_rounds\": %llu,\n"
      "      \"full_recomputes\": %llu,\n"
      "      \"flow_starts\": %llu,\n"
      "      \"memo_hits\": %llu,\n"
      "      \"memo_misses\": %llu,\n"
      "      \"memo_hit_rate\": %.6f,\n"
      "      \"component_fills\": %llu,\n"
      "      \"hier_fills\": %llu,\n"
      "      \"hier_rounds\": %llu,\n"
      "      \"hier_fallbacks\": %llu,\n"
      "      \"split_cuts\": %llu,\n"
      "      \"split_pieces\": %llu,\n"
      "      \"island_par_rounds\": %llu,\n"
      "      \"solver_mode\": \"%s\",\n",
      p.name.c_str(), p.perf.wall_seconds, p.virtual_seconds,
      (unsigned long long)p.perf.events_processed,
      (unsigned long long)p.perf.reallocations,
      (unsigned long long)p.perf.filling_rounds,
      (unsigned long long)p.perf.flows_touched,
      (unsigned long long)p.perf.max_component,
      (unsigned long long)p.perf.expand_rounds,
      (unsigned long long)p.perf.full_recomputes,
      (unsigned long long)p.perf.flow_starts,
      (unsigned long long)p.perf.memo_hits,
      (unsigned long long)p.perf.memo_misses, memo_hit_rate(p.perf),
      (unsigned long long)p.perf.component_fills,
      (unsigned long long)p.perf.hier_fills,
      (unsigned long long)p.perf.hier_rounds,
      (unsigned long long)p.perf.hier_fallbacks,
      (unsigned long long)p.perf.split_cuts,
      (unsigned long long)p.perf.split_pieces,
      (unsigned long long)p.perf.island_par_rounds, solver_mode(p.perf));
  out += buf;
  // No recorded seed reference: emit null, not a misleading 0.000.
  if (p.seed_wall_seconds > 0.0 && p.perf.wall_seconds > 0.0) {
    std::snprintf(buf, sizeof(buf),
                  "      \"seed_wall_seconds\": %.3f,\n"
                  "      \"speedup_vs_seed\": %.3f\n"
                  "    }",
                  p.seed_wall_seconds,
                  p.seed_wall_seconds / p.perf.wall_seconds);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "      \"seed_wall_seconds\": null,\n"
                  "      \"speedup_vs_seed\": null\n"
                  "    }");
  }
  out += buf;
}

std::size_t g_fill_jobs = 1;  // --fill-jobs; results byte-identical for any N

Point run_fig8(std::size_t nodes, std::uint64_t bytes, double seed_wall) {
  harness::MulticastConfig cfg;
  cfg.profile = sim::sierra_profile(nodes);
  cfg.group_size = nodes;
  cfg.message_bytes = bytes;
  cfg.block_size = 1 << 20;
  cfg.fill_jobs = g_fill_jobs;
  const auto result = harness::run_multicast(cfg);
  Point p;
  p.name = "fig8_" + std::to_string(nodes) + "_pipeline";
  p.virtual_seconds = result.total_seconds;
  p.seed_wall_seconds = seed_wall;
  p.perf = result.perf;
  return p;
}

Point run_fig10(std::size_t groups, std::size_t size, std::uint64_t bytes,
                std::size_t messages, double seed_wall) {
  harness::ConcurrentConfig cfg;
  cfg.profile = sim::fractus_profile(size);
  cfg.group_size = size;
  cfg.senders = groups;
  cfg.message_bytes = bytes;
  cfg.messages = messages;
  cfg.fill_jobs = g_fill_jobs;
  const auto result = harness::run_concurrent(cfg);
  Point p;
  p.name = "fig10_" + std::to_string(groups) + "x" + std::to_string(size) +
           "_concurrent";
  p.virtual_seconds = result.makespan_seconds;
  p.seed_wall_seconds = seed_wall;
  p.perf = result.perf;
  return p;
}

/// Fig 10b-shaped oversubscribed-rack point: concurrent rotated-root
/// groups on the parameterized racked profile. This is the configuration
/// the hierarchical island solver exists for — components span racks and
/// couple only through the shared uplinks.
Point run_racked(std::size_t groups, std::size_t size, std::uint64_t bytes,
                 std::size_t messages, double seed_wall) {
  harness::ConcurrentConfig cfg;
  cfg.profile = sim::racked_profile(size, 16, 3.5);
  cfg.group_size = size;
  cfg.senders = groups;
  cfg.message_bytes = bytes;
  cfg.messages = messages;
  cfg.fill_jobs = g_fill_jobs;
  const auto result = harness::run_concurrent(cfg);
  Point p;
  p.name = "fig10b_" + std::to_string(groups) + "x" + std::to_string(size) +
           "_racked";
  p.virtual_seconds = result.makespan_seconds;
  p.seed_wall_seconds = seed_wall;
  p.perf = result.perf;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchOptions opts = bench::BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  g_fill_jobs = opts.fill_jobs;
  bench::header("Simulator-core performance (wall time + counters)",
                "infrastructure for Figs 8 and 10 (not a paper figure)",
                "incremental reallocation keeps wall time flat as the "
                "active flow count grows");

  // Seed references: wall times of the previous tree for the identical
  // configurations (measured where this bench was developed; 0 means no
  // reference recorded for that point). The 512-node and fig10 seeds are
  // the original growth-seed tree (the growth-seed solver is quadratic in
  // active flows; larger points would not finish in useful time). The
  // 1024/4096/16384 seeds are the pre-splitting tree — hierarchical
  // solver and memo in place, but with the short expansion cap and no
  // saturation-cut splitter — so speedup_vs_seed on those rows tracks
  // exactly what this optimization bought.
  std::vector<Point> points;
  if (quick) {
    points.push_back(run_fig8(128, 8ull << 20, 0.0));
    points.push_back(run_fig10(8, 8, 16ull << 20, 1, 0.0));
    // Racked point small enough for smoke runs but big enough that the
    // island solver and (with --fill-jobs > 1) the parallel island
    // dispatch engage (island_par_rounds > 0 needs components of >= 512
    // island members) — this is the row the TSan CI step watches.
    points.push_back(run_racked(16, 256, 2ull << 20, 1, 0.0));
  } else {
    points.push_back(run_fig8(128, 32ull << 20, 0.0));
    points.push_back(run_fig8(512, 32ull << 20, 14.57));
    points.push_back(run_fig8(1024, 32ull << 20, 1.63));
    points.push_back(run_fig8(4096, 32ull << 20, 12.06));
    points.push_back(run_fig10(16, 16, 100ull << 20, 2, 16.7));
    points.push_back(run_racked(8, 128, 8ull << 20, 1, 0.0));
    // 2 MB, not 8: the point exists to track the island-parallel path
    // (island_par_rounds > 0), which engages identically at 2 MB, and the
    // concurrent-flow blow-up at 8 MB costs ~50 s of bench wall for no
    // extra coverage.
    points.push_back(run_racked(16, 256, 2ull << 20, 1, 0.0));
    // Mega-scale point: ~27 s here vs ~2.5 min on the pre-splitting
    // tree (seed extrapolated from its measured n^1.8 wall scaling at
    // 1024/4096/8192). Too heavy for every CI run — opt in with
    // RDMC_BIG_BENCH=1; the CI fill-jobs determinism cmp step sets it.
    if (std::getenv("RDMC_BIG_BENCH") != nullptr)
      points.push_back(run_fig8(16384, 32ull << 20, 150.0));
  }

  std::printf("%-24s %10s %12s %12s %12s %10s %9s %13s\n", "point", "wall_s",
              "events", "reallocs", "fill_rounds", "avg_touch", "speedup",
              "solver");
  for (const auto& p : points) {
    const double avg_touch =
        p.perf.reallocations
            ? (double)p.perf.flows_touched / (double)p.perf.reallocations
            : 0.0;
    const double speedup = p.seed_wall_seconds > 0.0 && p.perf.wall_seconds > 0
                               ? p.seed_wall_seconds / p.perf.wall_seconds
                               : 0.0;
    std::printf("%-24s %10.3f %12llu %12llu %12llu %10.1f %8.2fx %13s\n",
                p.name.c_str(), p.perf.wall_seconds,
                (unsigned long long)p.perf.events_processed,
                (unsigned long long)p.perf.reallocations,
                (unsigned long long)p.perf.filling_rounds, avg_touch, speedup,
                solver_mode(p.perf));
  }

  std::string json = "{\n  \"bench\": \"perf_core\",\n";
  json += quick ? "  \"quick\": true,\n" : "  \"quick\": false,\n";
  json += "  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    append_json(json, points[i]);
    json += i + 1 < points.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  const char* path = "BENCH_core.json";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
  } else {
    std::fprintf(stderr, "failed to open %s for writing\n", path);
    return 1;
  }
  return 0;
}
