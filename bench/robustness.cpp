// §4.5 robustness properties, measured:
//   (1) a scheduling delay of epsilon adds O(epsilon) to the total;
//   (2) one slow link costs the pipeline at most ~1/l of its bandwidth
//       (closed form l*T'/(T+(l-1)*T')) while it gates chain send fully;
//   (3) the average steady-step slack matches 2(1-(l-1)/(n-2)) ~ 2.
#include "analysis/model.hpp"
#include "bench_util.hpp"
#include "harness/sim_harness.hpp"
#include "sched/schedule_audit.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

double run_with(std::size_t n, sched::Algorithm algorithm,
                double slow_link_gbps, double preempt_prob,
                std::uint64_t bytes) {
  auto profile = sim::fractus_profile(n);
  profile.preemption.probability = preempt_prob;
  profile.preemption.mean_duration_s = 100e-6;
  fabric::SimFabric::Options options;
  options.costs = profile.costs;
  options.preemption = profile.preemption;
  harness::SimCluster cluster(profile, options, false);
  if (slow_link_gbps > 0) {
    // Degrade one in-overlay link (both directions).
    cluster.topology().set_pair_cap(2, 3, slow_link_gbps);
    cluster.topology().set_pair_cap(3, 2, slow_link_gbps);
  }
  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  GroupOptions go;
  go.algorithm = algorithm;
  cluster.create_group(1, members, go);
  return cluster.run_one(1, bytes);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  const std::uint64_t bytes = quick ? (16ull << 20) : (64ull << 20);

  header("Robustness — delay tolerance, slow links, slack (§4.5)",
         "analysis §4.5 items 1-3 (the properties behind Figs 4-10)",
         "delays add O(eps); a slow link barely hurts the pipeline but "
         "gates the chain; measured slack ~ 2(1-(l-1)/(n-2))");

  // (1) Delay injection.
  std::printf("\n(1) scheduling-delay injection (n=16, %s):\n",
              util::format_bytes(bytes).c_str());
  util::TextTable delays({"preemption prob/op", "total (ms)",
                          "slowdown vs quiet"});
  const double quiet =
      run_with(16, sched::Algorithm::kBinomialPipeline, 0, 0.0, bytes);
  for (double p : {0.0, 0.005, 0.02, 0.05}) {
    const double t =
        run_with(16, sched::Algorithm::kBinomialPipeline, 0, p, bytes);
    delays.add_row({util::TextTable::num(p, 3),
                    util::TextTable::num(t * 1e3, 2),
                    util::TextTable::num(t / quiet, 3)});
  }
  delays.print();

  // (2) Slow link.
  std::printf("\n(2) one slow link (n=16, fast links 100 Gb/s):\n");
  util::TextTable slow({"slow link (Gb/s)", "pipeline slowdown",
                        "paper bound 1/fraction", "chain slowdown"});
  const double pipe_fast =
      run_with(16, sched::Algorithm::kBinomialPipeline, 0, 0, bytes);
  const double chain_fast =
      run_with(16, sched::Algorithm::kChain, 0, 0, bytes);
  // The closed form is an explicit *lower bound* on bandwidth: because a
  // given link is used on only 1/l of the steps, the pipeline fully hides
  // links as slow as T/l; real degradation appears below that.
  for (double gbps : {75.0, 50.0, 25.0, 10.0, 5.0}) {
    const double pipe =
        run_with(16, sched::Algorithm::kBinomialPipeline, gbps, 0, bytes);
    const double chain =
        run_with(16, sched::Algorithm::kChain, gbps, 0, bytes);
    const double bound =
        1.0 / analysis::slow_link_fraction(16, 100.0, gbps);
    slow.add_row({util::TextTable::num(gbps, 0),
                  util::TextTable::num(pipe / pipe_fast, 3),
                  util::TextTable::num(bound, 3),
                  util::TextTable::num(chain / chain_fast, 3)});
  }
  slow.print();

  // (3) Slack.
  std::printf("\n(3) average steady-step slack (k=64 blocks):\n");
  util::TextTable slack({"n", "measured slack", "closed form"});
  for (std::size_t n : {8, 16, 32, 64}) {
    const auto audit = sched::audit_algorithm(
        sched::Algorithm::kBinomialPipeline, n, 64);
    slack.add_row({util::TextTable::integer(n),
                   util::TextTable::num(audit.avg_steady_slack, 3),
                   util::TextTable::num(analysis::average_slack(n), 3)});
  }
  slack.print();
  return 0;
}
