// Table 1: microsecond breakdown of one 256 MB transfer with 1 MB blocks
// in a group of 4 on Stampede (40 Gb/s effective), measured at the node
// farthest from the root.
//
// Row mapping onto the unified trace (obs::TraceRecorder; block arrivals
// are the kCore "block" span ends at the measured node):
//   Remote Setup           time from send-submit until the root's first
//                          block is on the wire (setup at the root and the
//                          relayer, before our node can see data);
//   Remote Block Transfers time the root/relayer spend producing our first
//                          block (first-block arrival minus remote setup);
//   Local Setup            list building + allocation at the measured node;
//   Block Transfers        time data was actively arriving at the node;
//   Waiting                idle gaps while the node waited on predecessors;
//   Copy Time              first-block scratch copy (§4.2).
#include <algorithm>
#include <cstring>

#include "bench_util.hpp"
#include "core/group.hpp"
#include "harness/sim_harness.hpp"

using namespace rdmc;
using namespace rdmc::bench;

int main(int argc, char** argv) {
  const bool quick = BenchOptions::parse(argc, argv).quick;
  header("Table 1 — time breakdown of a 256 MB transfer (group of 4)",
         "Table 1, §5.2.1 (Stampede, 1 MB blocks)",
         "~99% of total in (remote) block transfers; software overheads "
         "around 1%");

  auto profile = sim::stampede_profile(4);
  harness::SimCluster cluster(profile);
  obs::TraceRecorder::instance().enable();
  GroupOptions options;
  options.block_size = 1 << 20;
  std::vector<NodeId> members{0, 1, 2, 3};
  auto& rec = cluster.create_group(1, members, options);

  const std::uint64_t bytes = quick ? (64ull << 20) : (256ull << 20);
  const double start = cluster.sim().now();
  cluster.node(0).send(1, nullptr, bytes);
  cluster.sim().run();

  // Node 3 is farthest from the root in the 4-node hypercube.
  const Group* g = cluster.node(3).group(1);
  const auto events = obs::TraceRecorder::instance().snapshot();
  obs::TraceRecorder::instance().disable();
  const double done = rec.delivery_times[3].back();

  // Block transfers: the time the network spent actively delivering this
  // node's k blocks at line rate; everything else in the receive phase is
  // waiting (pipeline bubbles / peer stalls).
  const double block_time =
      static_cast<double>(1 << 20) /
      (profile.topology.nic_gbps * 1e9 / 8.0);
  double first_block = done;
  std::size_t blocks = 0;
  for (const auto& e : events) {
    if (e.cat != obs::Cat::kCore || e.phase != obs::Phase::kEnd ||
        e.node != 3 || std::strcmp(e.name, "block") != 0)
      continue;
    first_block = std::min(first_block, e.ts);
    ++blocks;
  }
  const double transfer_time = static_cast<double>(blocks) * block_time;

  const double total = done - start;
  const double local_setup = g->stats().setup_seconds;
  // Copy = allocation on the critical path (§4.6) + the first-block
  // scratch memcpy at the modelled copy rate (buffers are phantom here).
  const double copy =
      cluster.fabric().options().costs.alloc_message_s +
      static_cast<double>(1 << 20) /
          cluster.fabric().options().costs.copy_rate_Bps;
  const double remote = first_block - start;
  // Attribute the remote time: setup is the pre-wire software latency at
  // the root + relayer; the rest is their block transfers.
  const double remote_setup = std::min(
      remote, 4 * cluster.fabric().options().costs.post_send_s +
                  2 * cluster.fabric().options().costs.handle_completion_s +
                  10e-6);
  const double remote_transfers = remote - remote_setup;
  const double block_transfers = transfer_time;
  const double waiting =
      std::max(0.0, total - remote - block_transfers - local_setup - copy);

  util::TextTable table({"step", "measured (us)", "paper (us)"});
  auto row = [&](const char* name, double seconds, const char* paper) {
    table.add_row({name, util::TextTable::num(seconds * 1e6, 0), paper});
  };
  row("Remote Setup", remote_setup, "11");
  row("Remote Block Transfers", remote_transfers, "461");
  row("Local Setup", local_setup, "4");
  row("Block Transfers", block_transfers, "60944");
  row("Waiting", waiting, "449");
  row("Copy Time", copy, "215");
  row("Total", total, "62084");
  table.print();

  std::printf("\nfraction of total spent moving blocks: %.1f%% "
              "(paper: ~99%%)\n",
              100.0 * (block_transfers + remote_transfers) / total);
  return 0;
}
