// WAN crossover sweep: loss x RTT x size x reliability policy over the
// unreliable-datagram multicast session (fig4-style report for the lossy
// regime RDMC's RC transport cannot enter).
//
// Each cell is one independent simulation: a wan_profile cluster (regions
// as racks, thin high-RTT inter-region links), a seeded DatagramFaultProfile
// on the fabric, and a UdMulticastSession running the chosen schedule under
// the chosen reliability policy. The OOB control mesh rides the same WAN,
// so NACK probe rounds are paced by the real RTT (options.oob_latency_s).
//
// The report the sweep exists for: with no reliability policy ("none",
// break-on-loss semantics minus the break), any nonzero loss leaves
// receivers permanently short of blocks and the transfer fails outright —
// while selective-repeat and erasure coding sustain a large fraction of the
// lossless goodput at the same loss rate. Erasure's parity overhead costs
// it at zero loss; NACK round-trips cost selective-repeat as loss x RTT
// grows — that is the crossover.
//
// A final traced cell feeds obs::analyze_ud_multicast and asserts that the
// transfer/wait/retransmit/repair tiling sums exactly to each receiver's
// measured delivery latency.
//
// Deterministic for any --jobs N: cells share nothing, workers record
// through TraceRecorder::ThreadShard, and rows assemble in input order.
// Telemetry follows the same scheme — each cell runs its own registry and
// TelemetryHub on virtual-time ticks, and --telemetry concatenates the
// per-cell JSONL in input order, so the file is byte-identical for any
// --jobs N. Cell latency histograms are merged (not dropped) across the
// sweep for an aggregate selective-repeat quantile table.
#include <cmath>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "fabric/sim_fabric.hpp"
#include "harness/telemetry_ticker.hpp"
#include "obs/telemetry.hpp"
#include "obs/ud_stall.hpp"
#include "reliability/session.hpp"
#include "sim/cluster_profiles.hpp"

using namespace rdmc;
using namespace rdmc::bench;

namespace {

constexpr std::size_t kRegions = 4;
constexpr std::size_t kNodesPerRegion = 2;
constexpr std::size_t kBlockSize = 256 * 1024;

struct Cell {
  double loss = 0.0;
  double rtt_ms = 30.0;
  std::uint64_t bytes = 16ull << 20;
  reliability::Policy policy = reliability::Policy::kSelectiveRepeat;
  sched::Algorithm algorithm = sched::Algorithm::kBinomialPipeline;
};

struct CellResult {
  bool complete = false;
  double seconds = 0.0;      // pump start -> slowest delivery
  double goodput_gbps = 0.0;  // decimal Gb/s of message bytes
  std::uint64_t drops = 0;
  std::uint64_t retx = 0;
  std::uint64_t probe_rounds = 0;
  std::uint64_t parity_blocks = 0;
  std::string telemetry;              // this cell's JSONL (may be empty)
  obs::HistogramSnapshot latency;     // per-receiver delivery latency
};

std::string cell_labels(const Cell& cell, std::size_t index) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "cell=%zu,loss=%g,rtt_ms=%g,mib=%llu,policy=%s,algo=%s",
                index, cell.loss, cell.rtt_ms,
                static_cast<unsigned long long>(cell.bytes >> 20),
                std::string(reliability::policy_name(cell.policy)).c_str(),
                std::string(sched::algorithm_name(cell.algorithm)).c_str());
  return buf;
}

CellResult run_cell(const Cell& cell, std::size_t index,
                    bool collect_telemetry) {
  auto profile = sim::wan_profile(kRegions, kNodesPerRegion, cell.rtt_ms);
  sim::Simulator simulator;
  sim::Topology topology(profile.topology);
  auto fopts = fabric::SimFabric::options_from(profile);
  fopts.oob_latency_s = cell.rtt_ms * 1e-3 / 2.0;  // control rides the WAN
  fabric::SimFabric fab(simulator, topology, fopts);

  fabric::DatagramFaultProfile faults;
  faults.loss = cell.loss;
  faults.duplicate = cell.loss / 10.0;
  faults.reorder = cell.loss;
  fab.set_datagram_faults(faults);

  std::vector<fabric::NodeId> members(fab.num_nodes());
  for (std::size_t n = 0; n < members.size(); ++n)
    members[n] = static_cast<fabric::NodeId>(n);

  // Per-cell metrics + telemetry: the registry is local so cells stay
  // independent; the UD session records into a labeled scope and the hub
  // ticks on virtual time (one window per RTT), which keeps the JSONL
  // byte-identical for any --jobs N.
  const std::string labels = cell_labels(cell, index);
  obs::MetricsRegistry registry;
  obs::TelemetryOptions topt;
  topt.labels = labels;
  topt.collect_jsonl = collect_telemetry;
  obs::TelemetryHub hub(registry, topt);
  harness::TelemetryTicker ticker(simulator, hub, cell.rtt_ms * 1e-3);

  reliability::SessionOptions sopts;
  sopts.algorithm = cell.algorithm;
  sopts.policy = cell.policy;
  sopts.block_size = kBlockSize;
  sopts.clock = [&simulator] { return simulator.now(); };
  sopts.charge_cpu = [&fab](fabric::NodeId node, double seconds) {
    return fab.charge_app_seconds(node, seconds);
  };
  sopts.metrics = &registry.scope(labels);
  reliability::UdMulticastSession session(fab, members, sopts);
  if (!session.send(nullptr, cell.bytes)) return {};
  ticker.ensure_scheduled();
  simulator.run();

  CellResult r;
  r.complete = session.all_complete();
  const auto& stats = session.stats();
  r.seconds = stats.last_deliver_ts - stats.msg_start_ts;
  if (r.complete && r.seconds > 0)
    r.goodput_gbps = static_cast<double>(cell.bytes) * 8.0 / r.seconds / 1e9;
  r.drops = fab.datagram_counters().dropped;
  r.retx = stats.retx_datagrams;
  r.probe_rounds = stats.probe_rounds;
  r.parity_blocks = stats.parity_blocks;
  r.telemetry = hub.jsonl();
  if (const auto* h = registry.find_histogram(
          sopts.metrics->decorate("ud.delivery_latency_s")))
    r.latency = h->snapshot();
  return r;
}

std::string goodput_cell(const CellResult& r, double lossless_gbps) {
  if (!r.complete) return "FAIL";
  std::string s = util::TextTable::num(r.goodput_gbps, 3);
  if (lossless_gbps > 0) {
    s += " (" +
         util::TextTable::num(100.0 * r.goodput_gbps / lossless_gbps, 0) +
         "%)";
  }
  return s;
}

/// Traced cell: run one lossy selective-repeat transfer with the recorder
/// on and check the UD stall tiling closes against measured latency.
int traced_cell(std::uint64_t bytes) {
  obs::TraceRecorder::instance().enable();
  const Cell cell{0.01, 30.0, bytes, reliability::Policy::kSelectiveRepeat,
                  sched::Algorithm::kBinomialPipeline};
  run_cell(cell, 0, /*collect_telemetry=*/false);
  const auto events = obs::TraceRecorder::instance().snapshot();
  obs::TraceRecorder::instance().disable();

  std::vector<std::uint32_t> members(kRegions * kNodesPerRegion);
  for (std::uint32_t i = 0; i < members.size(); ++i) members[i] = i;
  const auto analysis = obs::analyze_ud_multicast(events, members);
  for (const auto& w : analysis.warnings)
    std::printf("trace: warning: %s\n", w.c_str());

  std::printf("\nUD stall decomposition, traced cell (1%% loss, 30 ms RTT, "
              "selective-repeat; ms per receiver):\n");
  util::TextTable table({"node", "latency", "transfer", "wait", "retransmit",
                         "repair", "datagrams", "retx", "sum/latency"});
  double worst_rel = 0.0;
  for (const auto& r : analysis.receivers) {
    const double rel = r.latency_s > 0 ? r.sum() / r.latency_s : 1.0;
    worst_rel = std::max(worst_rel, std::abs(rel - 1.0));
    table.add_row({util::TextTable::integer(r.node),
                   util::TextTable::num(r.latency_s * 1e3, 3),
                   util::TextTable::num(r.transfer_s * 1e3, 3),
                   util::TextTable::num(r.wait_s * 1e3, 3),
                   util::TextTable::num(r.retransmit_s * 1e3, 3),
                   util::TextTable::num(r.repair_s * 1e3, 3),
                   util::TextTable::integer(r.datagrams),
                   util::TextTable::integer(r.retx_datagrams),
                   util::TextTable::num(rel, 6)});
  }
  table.print();
  const bool closed = analysis.ok() && worst_rel <= 1e-9;
  std::printf("stall tiling closure: worst |sum/latency - 1| = %.2e %s\n",
              worst_rel, closed ? "(exact)" : "(NOT EXACT)");
  return closed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = BenchOptions::parse(argc, argv);
  const bool quick = opts.quick;
  header("WAN sweep — loss x RTT x size x reliability policy (UD multicast)",
         "beyond the paper: the lossy/WAN regime its RC transport excludes "
         "(SDR-RDMA's motivating deployment)",
         "at any nonzero loss the policy-free transfer fails outright; "
         "selective-repeat holds most of the lossless goodput, erasure "
         "trades parity overhead at zero loss for immunity to NACK "
         "round-trips as loss x RTT grows");

  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.01}
            : std::vector<double>{0.0, 0.001, 0.01, 0.05};
  const std::vector<double> rtts =
      quick ? std::vector<double>{30.0} : std::vector<double>{10.0, 30.0, 100.0};
  const std::vector<std::uint64_t> sizes =
      quick ? std::vector<std::uint64_t>{4ull << 20}
            : std::vector<std::uint64_t>{4ull << 20, 16ull << 20};
  const reliability::Policy policies[] = {reliability::Policy::kNone,
                                          reliability::Policy::kSelectiveRepeat,
                                          reliability::Policy::kErasure};

  // -- Main crossover table (binomial pipeline) ----------------------------
  std::vector<Cell> cells;
  for (const double rtt : rtts)
    for (const std::uint64_t bytes : sizes)
      for (const double loss : losses)
        for (const reliability::Policy policy : policies)
          cells.push_back(Cell{loss, rtt, bytes, policy,
                               sched::Algorithm::kBinomialPipeline});

  const bool collect_telemetry = opts.telemetry != nullptr;
  std::vector<CellResult> results(cells.size());
  harness::parallel_for(cells.size(), opts.jobs, [&](std::size_t i) {
    obs::TraceRecorder::ThreadShard shard;
    results[i] = run_cell(cells[i], i, collect_telemetry);
  });

  util::TextTable table({"rtt (ms)", "size", "loss", "none (Gb/s)",
                         "selective-repeat (Gb/s)", "erasure (Gb/s)",
                         "retx", "probes"});
  bool crossover_seen = false;
  for (std::size_t i = 0; i < cells.size(); i += 3) {
    const Cell& c = cells[i];
    // Lossless reference for this (rtt, size): the policy-free cell of the
    // loss = 0 row (cells are laid out loss-major within each pair).
    const std::size_t base = (i / (losses.size() * 3)) * (losses.size() * 3);
    const double lossless = results[base].goodput_gbps;
    const CellResult& none = results[i];
    const CellResult& sr = results[i + 1];
    const CellResult& rs = results[i + 2];
    table.add_row({util::TextTable::num(c.rtt_ms, 0),
                   util::format_bytes(c.bytes),
                   util::TextTable::num(c.loss * 100, 1) + "%",
                   goodput_cell(none, c.loss == 0 ? 0 : lossless),
                   goodput_cell(sr, lossless),
                   goodput_cell(rs, lossless),
                   util::TextTable::integer(sr.retx),
                   util::TextTable::integer(sr.probe_rounds)});
    if (c.loss > 0 && !none.complete && lossless > 0 &&
        sr.goodput_gbps >= 0.5 * lossless) {
      crossover_seen = true;
    }
  }
  table.print();
  std::printf("\ncrossover: %s\n",
              crossover_seen
                  ? "confirmed — policy-free transfer fails under loss while "
                    "selective-repeat holds >= 50% of lossless goodput"
                  : "NOT OBSERVED (expected a lossy row with none=FAIL and "
                    "selective-repeat >= 50% of lossless)");

  // -- Schedule comparison at the canonical lossy point --------------------
  const double sched_loss = 0.01, sched_rtt = 30.0;
  const std::uint64_t sched_bytes = sizes.back();
  const sched::Algorithm algs[] = {sched::Algorithm::kBinomialPipeline,
                                   sched::Algorithm::kChain,
                                   sched::Algorithm::kBinomialTree};
  std::vector<Cell> sched_cells;
  for (const sched::Algorithm alg : algs)
    for (const reliability::Policy policy :
         {reliability::Policy::kSelectiveRepeat, reliability::Policy::kErasure})
      sched_cells.push_back(Cell{sched_loss, sched_rtt, sched_bytes, policy, alg});
  std::vector<CellResult> sched_results(sched_cells.size());
  harness::parallel_for(sched_cells.size(), opts.jobs, [&](std::size_t i) {
    obs::TraceRecorder::ThreadShard shard;
    sched_results[i] = run_cell(sched_cells[i], cells.size() + i,
                                collect_telemetry);
  });
  std::printf("\nSchedules at 1%% loss, 30 ms RTT, %s:\n",
              util::format_bytes(sched_bytes).c_str());
  util::TextTable stable({"schedule", "selective-repeat (Gb/s)",
                          "erasure (Gb/s)"});
  for (std::size_t i = 0; i < sched_cells.size(); i += 2) {
    stable.add_row({std::string(sched::algorithm_name(sched_cells[i].algorithm)),
                    goodput_cell(sched_results[i], 0),
                    goodput_cell(sched_results[i + 1], 0)});
  }
  stable.print();

  // -- Aggregate latency across cells (shard merge, not drop) --------------
  // Every selective-repeat cell's per-receiver delivery-latency snapshot
  // merges into one sweep-wide distribution.
  obs::HistogramSnapshot sr_latency;
  for (std::size_t i = 0; i < cells.size(); ++i)
    if (cells[i].policy == reliability::Policy::kSelectiveRepeat)
      sr_latency.merge(results[i].latency);
  if (!sr_latency.empty()) {
    std::printf("\nselective-repeat delivery latency across all cells "
                "(%llu deliveries): p50 %.1f ms, p90 %.1f ms, p99 %.1f ms, "
                "max %.1f ms\n",
                static_cast<unsigned long long>(sr_latency.total),
                sr_latency.quantile(0.5) * 1e3,
                sr_latency.quantile(0.9) * 1e3,
                sr_latency.quantile(0.99) * 1e3, sr_latency.max * 1e3);
  }

  if (collect_telemetry) {
    std::string telemetry;
    for (const CellResult& r : results) telemetry += r.telemetry;
    for (const CellResult& r : sched_results) telemetry += r.telemetry;
    write_text(opts.telemetry, telemetry, "telemetry");
  }

  const int rc = traced_cell(sizes.front());
  write_trace(opts.trace);
  return rc;
}
