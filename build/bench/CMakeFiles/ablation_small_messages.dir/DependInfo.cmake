
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_small_messages.cpp" "bench/CMakeFiles/ablation_small_messages.dir/ablation_small_messages.cpp.o" "gcc" "bench/CMakeFiles/ablation_small_messages.dir/ablation_small_messages.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/rdmc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rdmc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/rdmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/rdmc_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/rdmc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/rdmc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/rdmc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
