file(REMOVE_RECURSE
  "CMakeFiles/ablation_small_messages.dir/ablation_small_messages.cpp.o"
  "CMakeFiles/ablation_small_messages.dir/ablation_small_messages.cpp.o.d"
  "ablation_small_messages"
  "ablation_small_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_small_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
