# Empty dependencies file for ablation_small_messages.
# This may be replaced when dependencies are built.
