file(REMOVE_RECURSE
  "CMakeFiles/fig11_completion_modes.dir/fig11_completion_modes.cpp.o"
  "CMakeFiles/fig11_completion_modes.dir/fig11_completion_modes.cpp.o.d"
  "fig11_completion_modes"
  "fig11_completion_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_completion_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
