# Empty compiler generated dependencies file for fig11_completion_modes.
# This may be replaced when dependencies are built.
