file(REMOVE_RECURSE
  "CMakeFiles/fig12_core_direct.dir/fig12_core_direct.cpp.o"
  "CMakeFiles/fig12_core_direct.dir/fig12_core_direct.cpp.o.d"
  "fig12_core_direct"
  "fig12_core_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_core_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
