# Empty compiler generated dependencies file for fig12_core_direct.
# This may be replaced when dependencies are built.
