file(REMOVE_RECURSE
  "CMakeFiles/fig4_algorithms.dir/fig4_algorithms.cpp.o"
  "CMakeFiles/fig4_algorithms.dir/fig4_algorithms.cpp.o.d"
  "fig4_algorithms"
  "fig4_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
