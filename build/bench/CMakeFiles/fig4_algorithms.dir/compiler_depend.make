# Empty compiler generated dependencies file for fig4_algorithms.
# This may be replaced when dependencies are built.
