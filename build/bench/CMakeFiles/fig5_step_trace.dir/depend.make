# Empty dependencies file for fig5_step_trace.
# This may be replaced when dependencies are built.
