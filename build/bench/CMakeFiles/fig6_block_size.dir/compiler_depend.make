# Empty compiler generated dependencies file for fig6_block_size.
# This may be replaced when dependencies are built.
