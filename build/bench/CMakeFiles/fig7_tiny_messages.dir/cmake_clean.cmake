file(REMOVE_RECURSE
  "CMakeFiles/fig7_tiny_messages.dir/fig7_tiny_messages.cpp.o"
  "CMakeFiles/fig7_tiny_messages.dir/fig7_tiny_messages.cpp.o.d"
  "fig7_tiny_messages"
  "fig7_tiny_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tiny_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
