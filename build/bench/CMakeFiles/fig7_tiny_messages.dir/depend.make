# Empty dependencies file for fig7_tiny_messages.
# This may be replaced when dependencies are built.
