file(REMOVE_RECURSE
  "CMakeFiles/fig9_cosmos.dir/fig9_cosmos.cpp.o"
  "CMakeFiles/fig9_cosmos.dir/fig9_cosmos.cpp.o.d"
  "fig9_cosmos"
  "fig9_cosmos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cosmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
