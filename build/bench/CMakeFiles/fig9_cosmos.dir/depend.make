# Empty dependencies file for fig9_cosmos.
# This may be replaced when dependencies are built.
