file(REMOVE_RECURSE
  "CMakeFiles/atomic_multicast.dir/atomic_multicast.cpp.o"
  "CMakeFiles/atomic_multicast.dir/atomic_multicast.cpp.o.d"
  "atomic_multicast"
  "atomic_multicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
