# Empty compiler generated dependencies file for atomic_multicast.
# This may be replaced when dependencies are built.
