file(REMOVE_RECURSE
  "CMakeFiles/file_replicator.dir/file_replicator.cpp.o"
  "CMakeFiles/file_replicator.dir/file_replicator.cpp.o.d"
  "file_replicator"
  "file_replicator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_replicator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
