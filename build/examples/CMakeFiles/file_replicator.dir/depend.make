# Empty dependencies file for file_replicator.
# This may be replaced when dependencies are built.
