file(REMOVE_RECURSE
  "CMakeFiles/package_deployer.dir/package_deployer.cpp.o"
  "CMakeFiles/package_deployer.dir/package_deployer.cpp.o.d"
  "package_deployer"
  "package_deployer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/package_deployer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
