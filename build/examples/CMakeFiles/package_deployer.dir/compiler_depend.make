# Empty compiler generated dependencies file for package_deployer.
# This may be replaced when dependencies are built.
