file(REMOVE_RECURSE
  "CMakeFiles/tcp_node.dir/tcp_node.cpp.o"
  "CMakeFiles/tcp_node.dir/tcp_node.cpp.o.d"
  "tcp_node"
  "tcp_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
