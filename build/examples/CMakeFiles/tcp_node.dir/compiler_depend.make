# Empty compiler generated dependencies file for tcp_node.
# This may be replaced when dependencies are built.
