# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "1m")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_file_replicator "/root/repo/build/examples/file_replicator" "--size" "4m" "--replicas" "3")
set_tests_properties(example_file_replicator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_package_deployer "/root/repo/build/examples/package_deployer" "--nodes" "64" "--package" "8m")
set_tests_properties(example_package_deployer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replicated_store "/root/repo/build/examples/replicated_store" "--writes" "10" "--hosts" "6")
set_tests_properties(example_replicated_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_recovery "/root/repo/build/examples/failure_recovery")
set_tests_properties(example_failure_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;36;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_atomic_multicast "/root/repo/build/examples/atomic_multicast")
set_tests_properties(example_atomic_multicast PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;37;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_tcp_node "/root/repo/build/examples/tcp_node" "--size" "2m")
set_tests_properties(example_tcp_node PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;38;add_test;/root/repo/examples/CMakeLists.txt;0;")
