file(REMOVE_RECURSE
  "CMakeFiles/rdmc_analysis.dir/model.cpp.o"
  "CMakeFiles/rdmc_analysis.dir/model.cpp.o.d"
  "librdmc_analysis.a"
  "librdmc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
