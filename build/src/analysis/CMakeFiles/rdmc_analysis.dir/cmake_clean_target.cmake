file(REMOVE_RECURSE
  "librdmc_analysis.a"
)
