# Empty dependencies file for rdmc_analysis.
# This may be replaced when dependencies are built.
