
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/mpi_bcast.cpp" "src/baselines/CMakeFiles/rdmc_baselines.dir/mpi_bcast.cpp.o" "gcc" "src/baselines/CMakeFiles/rdmc_baselines.dir/mpi_bcast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/rdmc_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rdmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
