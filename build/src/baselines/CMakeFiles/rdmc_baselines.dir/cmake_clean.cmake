file(REMOVE_RECURSE
  "CMakeFiles/rdmc_baselines.dir/mpi_bcast.cpp.o"
  "CMakeFiles/rdmc_baselines.dir/mpi_bcast.cpp.o.d"
  "librdmc_baselines.a"
  "librdmc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
