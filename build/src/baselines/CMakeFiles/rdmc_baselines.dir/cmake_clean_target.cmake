file(REMOVE_RECURSE
  "librdmc_baselines.a"
)
