# Empty compiler generated dependencies file for rdmc_baselines.
# This may be replaced when dependencies are built.
