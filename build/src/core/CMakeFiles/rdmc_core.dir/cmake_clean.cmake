file(REMOVE_RECURSE
  "CMakeFiles/rdmc_core.dir/group.cpp.o"
  "CMakeFiles/rdmc_core.dir/group.cpp.o.d"
  "CMakeFiles/rdmc_core.dir/rdmc.cpp.o"
  "CMakeFiles/rdmc_core.dir/rdmc.cpp.o.d"
  "CMakeFiles/rdmc_core.dir/small_group.cpp.o"
  "CMakeFiles/rdmc_core.dir/small_group.cpp.o.d"
  "librdmc_core.a"
  "librdmc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
