file(REMOVE_RECURSE
  "librdmc_core.a"
)
