# Empty dependencies file for rdmc_core.
# This may be replaced when dependencies are built.
