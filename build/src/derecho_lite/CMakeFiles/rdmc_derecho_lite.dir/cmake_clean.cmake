file(REMOVE_RECURSE
  "CMakeFiles/rdmc_derecho_lite.dir/atomic_group.cpp.o"
  "CMakeFiles/rdmc_derecho_lite.dir/atomic_group.cpp.o.d"
  "librdmc_derecho_lite.a"
  "librdmc_derecho_lite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_derecho_lite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
