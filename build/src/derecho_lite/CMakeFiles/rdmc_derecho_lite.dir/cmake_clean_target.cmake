file(REMOVE_RECURSE
  "librdmc_derecho_lite.a"
)
