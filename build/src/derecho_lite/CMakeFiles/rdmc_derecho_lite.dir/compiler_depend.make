# Empty compiler generated dependencies file for rdmc_derecho_lite.
# This may be replaced when dependencies are built.
