# CMake generated Testfile for 
# Source directory: /root/repo/src/derecho_lite
# Build directory: /root/repo/build/src/derecho_lite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
