
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/mem_fabric.cpp" "src/fabric/CMakeFiles/rdmc_fabric.dir/mem_fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/rdmc_fabric.dir/mem_fabric.cpp.o.d"
  "/root/repo/src/fabric/sim_fabric.cpp" "src/fabric/CMakeFiles/rdmc_fabric.dir/sim_fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/rdmc_fabric.dir/sim_fabric.cpp.o.d"
  "/root/repo/src/fabric/tcp_fabric.cpp" "src/fabric/CMakeFiles/rdmc_fabric.dir/tcp_fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/rdmc_fabric.dir/tcp_fabric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdmc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/rdmc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
