file(REMOVE_RECURSE
  "CMakeFiles/rdmc_fabric.dir/mem_fabric.cpp.o"
  "CMakeFiles/rdmc_fabric.dir/mem_fabric.cpp.o.d"
  "CMakeFiles/rdmc_fabric.dir/sim_fabric.cpp.o"
  "CMakeFiles/rdmc_fabric.dir/sim_fabric.cpp.o.d"
  "CMakeFiles/rdmc_fabric.dir/tcp_fabric.cpp.o"
  "CMakeFiles/rdmc_fabric.dir/tcp_fabric.cpp.o.d"
  "librdmc_fabric.a"
  "librdmc_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
