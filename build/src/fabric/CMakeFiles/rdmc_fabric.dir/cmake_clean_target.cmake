file(REMOVE_RECURSE
  "librdmc_fabric.a"
)
