# Empty dependencies file for rdmc_fabric.
# This may be replaced when dependencies are built.
