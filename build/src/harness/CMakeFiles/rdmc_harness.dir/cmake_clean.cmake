file(REMOVE_RECURSE
  "CMakeFiles/rdmc_harness.dir/sim_harness.cpp.o"
  "CMakeFiles/rdmc_harness.dir/sim_harness.cpp.o.d"
  "librdmc_harness.a"
  "librdmc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
