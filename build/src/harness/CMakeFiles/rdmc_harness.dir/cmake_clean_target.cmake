file(REMOVE_RECURSE
  "librdmc_harness.a"
)
