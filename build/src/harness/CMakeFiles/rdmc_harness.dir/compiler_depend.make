# Empty compiler generated dependencies file for rdmc_harness.
# This may be replaced when dependencies are built.
