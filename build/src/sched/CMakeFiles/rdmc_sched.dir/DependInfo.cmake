
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/binomial_pipeline.cpp" "src/sched/CMakeFiles/rdmc_sched.dir/binomial_pipeline.cpp.o" "gcc" "src/sched/CMakeFiles/rdmc_sched.dir/binomial_pipeline.cpp.o.d"
  "/root/repo/src/sched/binomial_tree.cpp" "src/sched/CMakeFiles/rdmc_sched.dir/binomial_tree.cpp.o" "gcc" "src/sched/CMakeFiles/rdmc_sched.dir/binomial_tree.cpp.o.d"
  "/root/repo/src/sched/chain.cpp" "src/sched/CMakeFiles/rdmc_sched.dir/chain.cpp.o" "gcc" "src/sched/CMakeFiles/rdmc_sched.dir/chain.cpp.o.d"
  "/root/repo/src/sched/hybrid.cpp" "src/sched/CMakeFiles/rdmc_sched.dir/hybrid.cpp.o" "gcc" "src/sched/CMakeFiles/rdmc_sched.dir/hybrid.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/rdmc_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/rdmc_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/schedule_audit.cpp" "src/sched/CMakeFiles/rdmc_sched.dir/schedule_audit.cpp.o" "gcc" "src/sched/CMakeFiles/rdmc_sched.dir/schedule_audit.cpp.o.d"
  "/root/repo/src/sched/sequential.cpp" "src/sched/CMakeFiles/rdmc_sched.dir/sequential.cpp.o" "gcc" "src/sched/CMakeFiles/rdmc_sched.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rdmc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
