file(REMOVE_RECURSE
  "CMakeFiles/rdmc_sched.dir/binomial_pipeline.cpp.o"
  "CMakeFiles/rdmc_sched.dir/binomial_pipeline.cpp.o.d"
  "CMakeFiles/rdmc_sched.dir/binomial_tree.cpp.o"
  "CMakeFiles/rdmc_sched.dir/binomial_tree.cpp.o.d"
  "CMakeFiles/rdmc_sched.dir/chain.cpp.o"
  "CMakeFiles/rdmc_sched.dir/chain.cpp.o.d"
  "CMakeFiles/rdmc_sched.dir/hybrid.cpp.o"
  "CMakeFiles/rdmc_sched.dir/hybrid.cpp.o.d"
  "CMakeFiles/rdmc_sched.dir/schedule.cpp.o"
  "CMakeFiles/rdmc_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/rdmc_sched.dir/schedule_audit.cpp.o"
  "CMakeFiles/rdmc_sched.dir/schedule_audit.cpp.o.d"
  "CMakeFiles/rdmc_sched.dir/sequential.cpp.o"
  "CMakeFiles/rdmc_sched.dir/sequential.cpp.o.d"
  "librdmc_sched.a"
  "librdmc_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
