file(REMOVE_RECURSE
  "librdmc_sched.a"
)
