# Empty dependencies file for rdmc_sched.
# This may be replaced when dependencies are built.
