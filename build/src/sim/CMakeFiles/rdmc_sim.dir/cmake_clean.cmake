file(REMOVE_RECURSE
  "CMakeFiles/rdmc_sim.dir/cluster_profiles.cpp.o"
  "CMakeFiles/rdmc_sim.dir/cluster_profiles.cpp.o.d"
  "CMakeFiles/rdmc_sim.dir/event_queue.cpp.o"
  "CMakeFiles/rdmc_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/rdmc_sim.dir/flow_network.cpp.o"
  "CMakeFiles/rdmc_sim.dir/flow_network.cpp.o.d"
  "CMakeFiles/rdmc_sim.dir/simulator.cpp.o"
  "CMakeFiles/rdmc_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/rdmc_sim.dir/topology.cpp.o"
  "CMakeFiles/rdmc_sim.dir/topology.cpp.o.d"
  "librdmc_sim.a"
  "librdmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
