file(REMOVE_RECURSE
  "librdmc_sim.a"
)
