# Empty dependencies file for rdmc_sim.
# This may be replaced when dependencies are built.
