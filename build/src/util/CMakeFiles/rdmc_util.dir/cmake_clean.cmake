file(REMOVE_RECURSE
  "CMakeFiles/rdmc_util.dir/bytes.cpp.o"
  "CMakeFiles/rdmc_util.dir/bytes.cpp.o.d"
  "CMakeFiles/rdmc_util.dir/logging.cpp.o"
  "CMakeFiles/rdmc_util.dir/logging.cpp.o.d"
  "CMakeFiles/rdmc_util.dir/random.cpp.o"
  "CMakeFiles/rdmc_util.dir/random.cpp.o.d"
  "CMakeFiles/rdmc_util.dir/stats.cpp.o"
  "CMakeFiles/rdmc_util.dir/stats.cpp.o.d"
  "CMakeFiles/rdmc_util.dir/table.cpp.o"
  "CMakeFiles/rdmc_util.dir/table.cpp.o.d"
  "librdmc_util.a"
  "librdmc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
