file(REMOVE_RECURSE
  "librdmc_util.a"
)
