# Empty dependencies file for rdmc_util.
# This may be replaced when dependencies are built.
