file(REMOVE_RECURSE
  "CMakeFiles/rdmc_workload.dir/cosmos.cpp.o"
  "CMakeFiles/rdmc_workload.dir/cosmos.cpp.o.d"
  "librdmc_workload.a"
  "librdmc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdmc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
