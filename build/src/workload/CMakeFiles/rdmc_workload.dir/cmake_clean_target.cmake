file(REMOVE_RECURSE
  "librdmc_workload.a"
)
