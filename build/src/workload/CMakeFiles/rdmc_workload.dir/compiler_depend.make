# Empty compiler generated dependencies file for rdmc_workload.
# This may be replaced when dependencies are built.
