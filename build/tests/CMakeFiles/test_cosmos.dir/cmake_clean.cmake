file(REMOVE_RECURSE
  "CMakeFiles/test_cosmos.dir/test_cosmos.cpp.o"
  "CMakeFiles/test_cosmos.dir/test_cosmos.cpp.o.d"
  "test_cosmos"
  "test_cosmos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
