# Empty dependencies file for test_cosmos.
# This may be replaced when dependencies are built.
