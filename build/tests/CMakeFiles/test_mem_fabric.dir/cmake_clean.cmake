file(REMOVE_RECURSE
  "CMakeFiles/test_mem_fabric.dir/test_mem_fabric.cpp.o"
  "CMakeFiles/test_mem_fabric.dir/test_mem_fabric.cpp.o.d"
  "test_mem_fabric"
  "test_mem_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
