# Empty dependencies file for test_mem_fabric.
# This may be replaced when dependencies are built.
