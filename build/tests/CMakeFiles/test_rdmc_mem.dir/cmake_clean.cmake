file(REMOVE_RECURSE
  "CMakeFiles/test_rdmc_mem.dir/test_rdmc_mem.cpp.o"
  "CMakeFiles/test_rdmc_mem.dir/test_rdmc_mem.cpp.o.d"
  "test_rdmc_mem"
  "test_rdmc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdmc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
