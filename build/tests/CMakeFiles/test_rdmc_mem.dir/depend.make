# Empty dependencies file for test_rdmc_mem.
# This may be replaced when dependencies are built.
