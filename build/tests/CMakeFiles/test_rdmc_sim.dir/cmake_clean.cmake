file(REMOVE_RECURSE
  "CMakeFiles/test_rdmc_sim.dir/test_rdmc_sim.cpp.o"
  "CMakeFiles/test_rdmc_sim.dir/test_rdmc_sim.cpp.o.d"
  "test_rdmc_sim"
  "test_rdmc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdmc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
