# Empty dependencies file for test_rdmc_sim.
# This may be replaced when dependencies are built.
