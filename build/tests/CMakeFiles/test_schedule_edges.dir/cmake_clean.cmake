file(REMOVE_RECURSE
  "CMakeFiles/test_schedule_edges.dir/test_schedule_edges.cpp.o"
  "CMakeFiles/test_schedule_edges.dir/test_schedule_edges.cpp.o.d"
  "test_schedule_edges"
  "test_schedule_edges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schedule_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
