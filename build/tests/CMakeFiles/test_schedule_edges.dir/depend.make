# Empty dependencies file for test_schedule_edges.
# This may be replaced when dependencies are built.
