file(REMOVE_RECURSE
  "CMakeFiles/test_sim_fabric.dir/test_sim_fabric.cpp.o"
  "CMakeFiles/test_sim_fabric.dir/test_sim_fabric.cpp.o.d"
  "test_sim_fabric"
  "test_sim_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
