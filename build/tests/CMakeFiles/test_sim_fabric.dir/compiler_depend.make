# Empty compiler generated dependencies file for test_sim_fabric.
# This may be replaced when dependencies are built.
