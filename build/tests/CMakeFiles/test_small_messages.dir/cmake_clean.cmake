file(REMOVE_RECURSE
  "CMakeFiles/test_small_messages.dir/test_small_messages.cpp.o"
  "CMakeFiles/test_small_messages.dir/test_small_messages.cpp.o.d"
  "test_small_messages"
  "test_small_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_small_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
