# Empty dependencies file for test_small_messages.
# This may be replaced when dependencies are built.
