file(REMOVE_RECURSE
  "CMakeFiles/test_tcp_fabric.dir/test_tcp_fabric.cpp.o"
  "CMakeFiles/test_tcp_fabric.dir/test_tcp_fabric.cpp.o.d"
  "test_tcp_fabric"
  "test_tcp_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
