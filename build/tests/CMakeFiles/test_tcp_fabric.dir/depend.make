# Empty dependencies file for test_tcp_fabric.
# This may be replaced when dependencies are built.
