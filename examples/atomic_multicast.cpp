// Atomic multicast (the §4.6 Derecho layering): messages are delivered at
// every member in the same order, and never anywhere before they are
// everywhere — then a member crashes mid-stream and the survivors agree on
// the exact safe prefix via the leader-based cleanup.
//
//   ./atomic_multicast
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <vector>

#include "derecho_lite/atomic_group.hpp"
#include "fabric/mem_fabric.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

using namespace rdmc;

int main() {
  constexpr std::size_t kNodes = 4;
  fabric::MemFabric fabric(kNodes);
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  std::mutex m;
  std::condition_variable cv;
  std::vector<std::size_t> delivered(kNodes, 0);
  std::vector<std::size_t> wedged_prefix(kNodes, SIZE_MAX);

  std::vector<std::unique_ptr<derecho_lite::AtomicGroup>> groups;
  std::vector<NodeId> members{0, 1, 2, 3};
  derecho_lite::AtomicGroupOptions options;
  options.rdmc.block_size = 64 * 1024;
  for (NodeId node = 0; node < kNodes; ++node) {
    groups.push_back(std::make_unique<derecho_lite::AtomicGroup>(
        *nodes[node], 1, members, options,
        [&, node](std::size_t seq, const std::byte*, std::size_t size) {
          std::lock_guard lock(m);
          delivered[node] = seq + 1;
          if (node == 1) {
            std::printf("  node 1 atomically delivered message %zu (%s)\n",
                        seq, util::format_bytes(size).c_str());
          }
          cv.notify_all();
        },
        [&, node](std::size_t safe, NodeId suspect) {
          std::lock_guard lock(m);
          wedged_prefix[node] = safe;
          std::printf("  node %u wedged: safe prefix %zu (suspect %u)\n",
                      node, safe, suspect);
          cv.notify_all();
        }));
  }

  // Stream messages; crash node 3 mid-stream.
  std::printf("streaming 20 x 1 MB messages; node 3 crashes after #8...\n");
  util::Rng rng(1);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 20; ++i) {
    payloads.emplace_back(1 << 20);
    for (auto& b : payloads.back()) b = static_cast<std::byte>(rng());
  }
  for (int i = 0; i < 20; ++i) {
    groups[0]->send(payloads[i].data(), payloads[i].size());
    if (i == 8) fabric.crash_node(3);
  }

  {
    std::unique_lock lock(m);
    cv.wait(lock, [&] {
      return wedged_prefix[0] != SIZE_MAX && wedged_prefix[1] != SIZE_MAX &&
             wedged_prefix[2] != SIZE_MAX;
    });
  }
  std::printf("\nsurvivor state:\n");
  bool agree = true;
  for (NodeId node : {0u, 1u, 2u}) {
    std::printf("  node %u: delivered %zu messages, safe prefix %zu\n",
                node, delivered[node], wedged_prefix[node]);
    agree &= wedged_prefix[node] == wedged_prefix[0];
    agree &= delivered[node] == wedged_prefix[node];
  }
  std::printf(agree ? "survivors agree on the delivered sequence. done.\n"
                    : "DISAGREEMENT — bug!\n");
  groups.clear();
  return agree ? 0 : 1;
}
