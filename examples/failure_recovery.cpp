// Failure recovery: the §4.6 pattern, twice.
//
// Act 1 (threaded MemFabric, by hand): a group member crashes
// mid-transfer, every survivor learns of the failure through RDMC's
// relaying, the application closes the broken group (close reports the
// failure) and re-forms it among the survivors, then retries the transfer.
//
// Act 2 (virtual-time SimFabric, automated): a seeded FaultPlan schedules
// faults at exact virtual instants and the harness RecoveryDriver runs the
// full tear-down / drop-suspect / re-form / resend loop, verifying the §3
// reliability contract on every delivery.
//
//   ./failure_recovery
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/group.hpp"
#include "core/rdmc.hpp"
#include "fabric/fault_plan.hpp"
#include "fabric/mem_fabric.hpp"
#include "harness/recovery.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

using namespace rdmc;

namespace {

int manual_recovery_over_mem_fabric() {
  constexpr std::size_t kNodes = 5;
  fabric::MemFabric fabric(kNodes);
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t failures_seen = 0, delivered_retry = 0;
  std::vector<std::vector<std::byte>> inboxes(kNodes);

  // Group 1: all five nodes, rooted at 0.
  std::vector<NodeId> members{0, 1, 2, 3, 4};
  for (NodeId m : members) {
    nodes[m]->create_group(
        1, members, GroupOptions{.block_size = 64 * 1024},
        [&, m](std::size_t size) {
          inboxes[m].resize(size);
          return fabric::MemoryView{inboxes[m].data(), size};
        },
        [&](std::byte*, std::size_t) {},
        [&, m](GroupId g, NodeId suspect) {
          std::lock_guard lock(mutex);
          ++failures_seen;
          std::printf("node %u: group %d failed (suspect node %u)\n", m, g,
                      suspect);
          cv.notify_all();
        });
  }

  // Start a large transfer, then crash node 3 mid-flight.
  std::vector<std::byte> payload(16 << 20);
  util::Rng rng(9);
  for (auto& b : payload) b = static_cast<std::byte>(rng());
  std::printf("multicasting %s; node 3 will crash mid-transfer...\n",
              util::format_bytes(payload.size()).c_str());
  nodes[0]->send(1, payload.data(), payload.size());
  fabric.crash_node(3);

  // §3 item 6: "RDMC relays these notifications, so that all survivors
  // eventually learn of the event."
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return failures_seen >= kNodes; });
  }
  std::printf("all members observed the failure.\n");

  // §4.6: closing the group reports whether every transfer completed; an
  // unclean close tells the application to retry among the survivors.
  const bool clean = nodes[0]->destroy_group(1);
  std::printf("group close was %s\n",
              clean ? "clean (all messages delivered)"
                    : "UNCLEAN (transfer may be incomplete)");
  for (NodeId m : {1u, 2u, 4u}) nodes[m]->destroy_group(1);

  // Self-repair: re-form among survivors and retry the transfer.
  std::printf("re-forming the group among survivors {0, 1, 2, 4}...\n");
  std::vector<NodeId> survivors{0, 1, 2, 4};
  for (NodeId m : survivors) {
    nodes[m]->create_group(
        2, survivors, GroupOptions{.block_size = 64 * 1024},
        [&, m](std::size_t size) {
          inboxes[m].resize(size);
          return fabric::MemoryView{inboxes[m].data(), size};
        },
        [&, m](std::byte*, std::size_t) {
          std::lock_guard lock(mutex);
          if (m != 0) ++delivered_retry;
          cv.notify_all();
        });
  }
  nodes[0]->send(2, payload.data(), payload.size());
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return delivered_retry >= survivors.size() - 1; });
  }
  for (NodeId m : {1u, 2u, 4u}) {
    if (std::memcmp(inboxes[m].data(), payload.data(), payload.size()) !=
        0) {
      std::fprintf(stderr, "survivor %u has corrupt data\n", m);
      return 1;
    }
  }
  std::printf("retry succeeded: all survivors hold the object.\n");
  return 0;
}

int automated_recovery_over_sim_fabric() {
  std::printf("\n--- act 2: automated recovery under a fault plan ---\n");
  harness::SimCluster cluster(sim::fractus_profile(8));

  harness::RecoveryConfig config;
  config.members = {0, 1, 2, 3, 4, 5, 6, 7};
  config.group_options.block_size = 64 << 10;
  config.messages = 3;
  config.message_bytes = 1 << 20;

  // A deterministic plan: crash one interior relay mid-transfer, then
  // break the root's link to its first relay during the re-formed group's
  // resend (a false positive — node 1 is healthy but gets dropped, §4.6).
  fabric::FaultPlan plan({
      {fabric::FaultEvent::Kind::kCrashNode, 150e-6, 3},
      {fabric::FaultEvent::Kind::kBreakLink, 400e-6, 0, 1},
  });
  std::printf("fault plan:\n%s", plan.describe().c_str());
  plan.schedule_on(cluster.fabric());

  harness::RecoveryDriver driver(cluster, config);
  const harness::RecoveryResult result = driver.run();

  std::printf("recovery %s: %zu re-formations, %zu failure notices, "
              "%zu deliveries (%zu resends of held messages)\n",
              result.ok ? "succeeded" : "FAILED", result.reforms,
              result.failures_observed, result.deliveries,
              result.redeliveries);
  std::printf("final membership:");
  for (NodeId n : result.final_members) std::printf(" %u", n);
  std::printf("\n");
  for (const auto& v : result.violations)
    std::fprintf(stderr, "violation: %s\n", v.c_str());
  return result.ok && result.reforms >= 1 ? 0 : 1;
}

}  // namespace

int main() {
  std::printf("--- act 1: manual recovery on the threaded fabric ---\n");
  if (int rc = manual_recovery_over_mem_fabric(); rc != 0) return rc;
  return automated_recovery_over_sim_fabric();
}
