// Failure recovery: the §4.6 pattern — a group member crashes mid-transfer,
// every survivor learns of the failure through RDMC's relaying, the
// application closes the broken group (close reports the failure) and
// re-forms it among the survivors, then retries the transfer.
//
//   ./failure_recovery
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/group.hpp"
#include "core/rdmc.hpp"
#include "fabric/mem_fabric.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

using namespace rdmc;

int main() {
  constexpr std::size_t kNodes = 5;
  fabric::MemFabric fabric(kNodes);
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t failures_seen = 0, delivered_retry = 0;
  std::vector<std::vector<std::byte>> inboxes(kNodes);

  // Group 1: all five nodes, rooted at 0.
  std::vector<NodeId> members{0, 1, 2, 3, 4};
  for (NodeId m : members) {
    nodes[m]->create_group(
        1, members, GroupOptions{.block_size = 64 * 1024},
        [&, m](std::size_t size) {
          inboxes[m].resize(size);
          return fabric::MemoryView{inboxes[m].data(), size};
        },
        [&](std::byte*, std::size_t) {},
        [&, m](GroupId g, NodeId suspect) {
          std::lock_guard lock(mutex);
          ++failures_seen;
          std::printf("node %u: group %d failed (suspect node %u)\n", m, g,
                      suspect);
          cv.notify_all();
        });
  }

  // Start a large transfer, then crash node 3 mid-flight.
  std::vector<std::byte> payload(16 << 20);
  util::Rng rng(9);
  for (auto& b : payload) b = static_cast<std::byte>(rng());
  std::printf("multicasting %s; node 3 will crash mid-transfer...\n",
              util::format_bytes(payload.size()).c_str());
  nodes[0]->send(1, payload.data(), payload.size());
  fabric.crash_node(3);

  // §3 item 6: "RDMC relays these notifications, so that all survivors
  // eventually learn of the event."
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return failures_seen >= kNodes; });
  }
  std::printf("all members observed the failure.\n");

  // §4.6: closing the group reports whether every transfer completed; an
  // unclean close tells the application to retry among the survivors.
  const bool clean = nodes[0]->destroy_group(1);
  std::printf("group close was %s\n",
              clean ? "clean (all messages delivered)"
                    : "UNCLEAN (transfer may be incomplete)");
  for (NodeId m : {1u, 2u, 4u}) nodes[m]->destroy_group(1);

  // Self-repair: re-form among survivors and retry the transfer.
  std::printf("re-forming the group among survivors {0, 1, 2, 4}...\n");
  std::vector<NodeId> survivors{0, 1, 2, 4};
  for (NodeId m : survivors) {
    nodes[m]->create_group(
        2, survivors, GroupOptions{.block_size = 64 * 1024},
        [&, m](std::size_t size) {
          inboxes[m].resize(size);
          return fabric::MemoryView{inboxes[m].data(), size};
        },
        [&, m](std::byte*, std::size_t) {
          std::lock_guard lock(mutex);
          if (m != 0) ++delivered_retry;
          cv.notify_all();
        });
  }
  nodes[0]->send(2, payload.data(), payload.size());
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return delivered_retry >= survivors.size() - 1; });
  }
  for (NodeId m : {1u, 2u, 4u}) {
    if (std::memcmp(inboxes[m].data(), payload.data(), payload.size()) !=
        0) {
      std::fprintf(stderr, "survivor %u has corrupt data\n", m);
      return 1;
    }
  }
  std::printf("retry succeeded: all survivors hold the object. done.\n");
  return 0;
}
