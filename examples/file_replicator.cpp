// File replicator: the paper's motivating use case (§1) — pushing one
// large object to many nodes at once instead of copy-by-copy.
//
// Reads a file (or generates synthetic data), replicates it to N in-process
// "storage servers" with a selectable algorithm, verifies the replicas
// byte-for-byte, and reports throughput and per-replica skew.
//
//   ./file_replicator [--algorithm seq|chain|tree|pipeline]
//                     [--replicas N] [--size BYTES | --file PATH]
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "core/rdmc.hpp"
#include "fabric/mem_fabric.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

using namespace rdmc;

namespace {

sched::Algorithm parse_algorithm(const std::string& name) {
  if (name == "seq") return sched::Algorithm::kSequential;
  if (name == "chain") return sched::Algorithm::kChain;
  if (name == "tree") return sched::Algorithm::kBinomialTree;
  return sched::Algorithm::kBinomialPipeline;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replicas = 7;
  std::size_t size = 64 << 20;
  std::string algorithm_name = "pipeline";
  std::string path;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--algorithm") algorithm_name = argv[i + 1];
    else if (flag == "--replicas") replicas = std::stoul(argv[i + 1]);
    else if (flag == "--size")
      size = util::parse_size(argv[i + 1]).value_or(size);
    else if (flag == "--file") path = argv[i + 1];
  }

  // Load or synthesise the object to replicate.
  std::vector<std::byte> object;
  if (!path.empty()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::vector<char> raw(std::istreambuf_iterator<char>(in), {});
    object.resize(((raw.size() + 4095) / 4096) * 4096);  // pad tail
    std::memcpy(object.data(), raw.data(), raw.size());
  } else {
    object.resize(size);
    util::Rng rng(1);
    for (auto& b : object) b = static_cast<std::byte>(rng());
  }
  std::printf("replicating %s to %zu replicas via %s send\n",
              util::format_bytes(object.size()).c_str(), replicas,
              algorithm_name.c_str());

  const std::size_t n = replicas + 1;
  fabric::MemFabric fabric(n);
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t done = 0;
  std::vector<std::vector<std::byte>> stores(n);
  std::vector<double> finish_seconds(n, 0.0);
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<NodeId> members(n);
  for (std::size_t i = 0; i < n; ++i) members[i] = static_cast<NodeId>(i);
  GroupOptions options;
  options.algorithm = parse_algorithm(algorithm_name);
  for (NodeId m : members) {
    nodes[m]->create_group(
        1, members, options,
        [&, m](std::size_t bytes) {
          stores[m].resize(bytes);
          return fabric::MemoryView{stores[m].data(), bytes};
        },
        [&, m](std::byte*, std::size_t) {
          std::lock_guard lock(mutex);
          finish_seconds[m] = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
          if (m != 0) ++done;
          cv.notify_all();
        });
  }

  nodes[0]->send(1, object.data(), object.size());
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return done == replicas; });
  }

  double first = 1e300, last = 0.0;
  for (std::size_t m = 1; m < n; ++m) {
    if (stores[m] != object) {
      std::fprintf(stderr, "replica %zu corrupt!\n", m);
      return 1;
    }
    first = std::min(first, finish_seconds[m]);
    last = std::max(last, finish_seconds[m]);
  }
  const double total_bytes =
      static_cast<double>(object.size()) * static_cast<double>(replicas);
  std::printf("all replicas verified.\n");
  std::printf("wall time: %s; replication goodput: %s; skew "
              "(first vs last replica): %s\n",
              util::format_duration(last).c_str(),
              util::format_gbps(total_bytes, last).c_str(),
              util::format_duration(last - first).c_str());
  std::printf("(in-process threads move the bytes here; on RDMA hardware "
              "the same schedule runs at NIC line rate)\n");
  return 0;
}
