// Package deployer: the Borg-style task-startup scenario from the paper's
// introduction — "median task startup latency of around 25 seconds (about
// 80% devoted to package installation)".
//
// Pushes a program image to hundreds of simulated compute nodes on the
// Sierra-like cluster and compares the binomial pipeline against today's
// copy-at-a-time distribution, reporting the startup-latency distribution
// each induces.
//
//   ./package_deployer [--nodes N] [--package BYTES]
#include <cstdio>
#include <string>

#include "harness/sim_harness.hpp"
#include "util/bytes.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace rdmc;

int main(int argc, char** argv) {
  std::size_t node_count = 256;
  std::uint64_t package = 64ull << 20;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--nodes") node_count = std::stoul(argv[i + 1]);
    else if (flag == "--package")
      package = util::parse_size(argv[i + 1]).value_or(package);
  }

  std::printf("deploying a %s package to %zu compute nodes "
              "(simulated 40 Gb/s cluster)\n\n",
              util::format_bytes(package).c_str(), node_count);

  util::TextTable table({"distribution", "all nodes ready", "median node",
                         "p99 node", "aggregate goodput"});
  for (auto algorithm : {sched::Algorithm::kSequential,
                         sched::Algorithm::kBinomialPipeline}) {
    auto profile = sim::sierra_profile(node_count);
    harness::SimCluster cluster(profile);
    std::vector<NodeId> members(node_count);
    for (std::size_t i = 0; i < node_count; ++i)
      members[i] = static_cast<NodeId>(i);
    GroupOptions options;
    options.algorithm = algorithm;
    auto& rec = cluster.create_group(1, members, options);

    cluster.node(0).send(1, nullptr, package);
    cluster.sim().run();

    util::Sample ready;
    for (std::size_t m = 1; m < node_count; ++m)
      ready.add(rec.delivery_times[m].back());
    const double total =
        static_cast<double>(package) * static_cast<double>(node_count - 1);
    table.add_row(
        {algorithm == sched::Algorithm::kSequential ? "copy-at-a-time"
                                                    : "rdmc pipeline",
         util::format_duration(ready.max()),
         util::format_duration(ready.median()),
         util::format_duration(ready.percentile(99)),
         util::format_gbps(total, ready.max())});
  }
  table.print();
  std::printf("\nwith RDMC every node becomes ready nearly simultaneously "
              "— no stragglers waiting on their turn to download\n");
  return 0;
}
