// Quickstart: the RDMC API from Figure 1 of the paper, end to end.
//
// Creates an in-process 4-node cluster (threaded MemFabric), forms one
// RDMC group with node 0 as the root, multicasts a message with the
// binomial pipeline, and verifies every receiver got identical bytes.
//
//   ./quickstart [message_bytes]
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "core/rdmc.hpp"
#include "fabric/mem_fabric.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

using namespace rdmc;

int main(int argc, char** argv) {
  const std::size_t message_size =
      argc > 1 ? util::parse_size(argv[1]).value_or(8 << 20) : (8 << 20);
  constexpr std::size_t kNodes = 4;
  constexpr GroupId kGroup = 1;

  // A fabric is the transport substrate: one endpoint per member. On real
  // hardware this role is played by RDMA verbs; here it is the in-process
  // MemFabric, which moves real bytes between threads.
  fabric::MemFabric fabric(kNodes);

  // One rdmc::Node per member (normally one per process).
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  // Delivery bookkeeping for the demo.
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t delivered = 0;
  std::vector<std::vector<std::byte>> inboxes(kNodes);

  // create_group is collective: every member calls it with identical
  // arguments; the first member is the root (the only allowed sender).
  std::vector<NodeId> members{0, 1, 2, 3};
  GroupOptions options;  // binomial pipeline, 1 MB blocks by default
  for (NodeId m : members) {
    const bool ok = nodes[m]->create_group(
        kGroup, members, options,
        // Incoming-message callback: the application provides the memory
        // the message lands in (it learns the size from the first block).
        [&, m](std::size_t size) {
          inboxes[m].resize(size);
          return fabric::MemoryView{inboxes[m].data(), size};
        },
        // Completion callback: the message (or, at the root, the send) is
        // locally complete and the buffer is reusable.
        [&, m](std::byte*, std::size_t size) {
          std::lock_guard lock(mutex);
          if (m != 0) ++delivered;
          std::printf("node %u: message of %s complete\n", m,
                      util::format_bytes(size).c_str());
          cv.notify_all();
        });
    if (!ok) {
      std::fprintf(stderr, "create_group failed\n");
      return 1;
    }
  }

  // Only the root may send; the payload must stay valid until completion.
  std::vector<std::byte> payload(message_size);
  util::Rng rng(2024);
  for (auto& b : payload) b = static_cast<std::byte>(rng());
  std::printf("root multicasting %s to %zu receivers...\n",
              util::format_bytes(message_size).c_str(), kNodes - 1);
  if (!nodes[0]->send(kGroup, payload.data(), payload.size())) {
    std::fprintf(stderr, "send failed\n");
    return 1;
  }

  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return delivered == kNodes - 1; });
  }

  for (std::size_t m = 1; m < kNodes; ++m) {
    if (inboxes[m].size() != payload.size() ||
        std::memcmp(inboxes[m].data(), payload.data(), payload.size()) !=
            0) {
      std::fprintf(stderr, "node %zu: data mismatch!\n", m);
      return 1;
    }
  }
  std::printf("all %zu receivers verified identical bytes. done.\n",
              kNodes - 1);

  for (auto& node : nodes) node->destroy_group(kGroup);
  return 0;
}
