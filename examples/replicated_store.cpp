// Replicated object store: the Cosmos-style workload (§5.2.2) on the real
// threaded fabric — many overlapping 3-replica groups, writes of wildly
// varying size, full data verification.
//
//   ./replicated_store [--writes N] [--hosts H]
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/rdmc.hpp"
#include "fabric/mem_fabric.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "workload/cosmos.hpp"

using namespace rdmc;

int main(int argc, char** argv) {
  std::size_t writes = 40;
  std::uint32_t hosts = 8;  // C(8,3) = 56 groups; keep the demo snappy
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--writes") writes = std::stoul(argv[i + 1]);
    else if (flag == "--hosts")
      hosts = static_cast<std::uint32_t>(std::stoul(argv[i + 1]));
  }

  workload::CosmosConfig trace_config;
  trace_config.num_hosts = hosts;
  trace_config.median_bytes = 2'000'000;  // scaled down for an in-process demo
  trace_config.mean_bytes = 5'000'000;
  trace_config.max_bytes = 32'000'000;
  workload::CosmosTraceGenerator generator(trace_config);

  const std::size_t n = hosts + 1;  // + the write front-end (node `hosts`)
  const NodeId frontend = hosts;
  fabric::MemFabric fabric(n);
  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < n; ++i)
    nodes.push_back(std::make_unique<Node>(fabric, static_cast<NodeId>(i)));

  std::printf("replicated store: %u hosts, %u groups, front-end node %u\n",
              hosts, generator.num_groups(), frontend);

  // Pre-create every 3-replica group, rooted at the front-end.
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t deliveries = 0;
  // stored[host] = list of received objects, in arrival order.
  std::vector<std::vector<std::vector<std::byte>>> stored(n);
  for (std::uint32_t g = 0; g < generator.num_groups(); ++g) {
    const auto combo = generator.group_members(g);
    std::vector<NodeId> members{frontend, combo[0], combo[1], combo[2]};
    for (NodeId m : members) {
      nodes[m]->create_group(
          static_cast<GroupId>(g), members, GroupOptions{},
          [&, m](std::size_t size) {
            stored[m].emplace_back(size);
            return fabric::MemoryView{stored[m].back().data(), size};
          },
          [&, m](std::byte*, std::size_t) {
            if (m == frontend) return;
            std::lock_guard lock(mutex);
            ++deliveries;
            cv.notify_all();
          });
    }
  }

  // Issue the writes; keep payloads alive until all complete.
  const auto trace = generator.generate(writes);
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(writes);
  util::Rng rng(55);
  double total_bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& w : trace) {
    payloads.emplace_back(w.bytes);
    for (auto& b : payloads.back()) b = static_cast<std::byte>(rng());
    total_bytes += static_cast<double>(w.bytes) * 3;
    nodes[frontend]->send(static_cast<GroupId>(w.group_index),
                          payloads.back().data(), payloads.back().size());
  }
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return deliveries == writes * 3; });
  }
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

  // Verify: every replica of every write holds the exact bytes.
  std::map<std::uint32_t, std::size_t> group_progress;
  std::vector<std::size_t> host_cursor(n, 0);
  std::size_t verified = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& w = trace[i];
    for (auto host : w.replicas) {
      const auto& got = stored[host][host_cursor[host]++];
      if (got.size() != payloads[i].size() ||
          std::memcmp(got.data(), payloads[i].data(), got.size()) != 0) {
        // Writes to *different* groups can interleave per host; fall back
        // to content search for robustness of the demo check.
        bool found = false;
        for (const auto& candidate : stored[host])
          found |= candidate == payloads[i];
        if (!found) {
          std::fprintf(stderr, "host %u missing write %zu!\n", host, i);
          return 1;
        }
      }
      ++verified;
    }
  }
  std::printf("verified %zu replica copies of %zu writes (%s replicated)\n",
              verified, writes, util::format_bytes(
                                    static_cast<std::uint64_t>(total_bytes))
                                    .c_str());
  std::printf("wall time %s, replication goodput %s\n",
              util::format_duration(wall).c_str(),
              util::format_gbps(total_bytes, wall).c_str());
  return 0;
}
