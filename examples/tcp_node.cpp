// Multi-process RDMC over TCP (§5.3 "RDMC on TCP") — run one process per
// member, on one machine or several:
//
//   ./tcp_node --rank 0 --peers 127.0.0.1:9400,127.0.0.1:9401,127.0.0.1:9402 \
//       --size 64m
//   ./tcp_node --rank 1 --peers 127.0.0.1:9400,127.0.0.1:9401,127.0.0.1:9402
//   ./tcp_node --rank 2 --peers 127.0.0.1:9400,127.0.0.1:9401,127.0.0.1:9402
//
// Rank 0 multicasts a checksummed message with the binomial pipeline; every
// receiver verifies the checksum and reports its bandwidth. With no
// arguments, the demo forks 4 local processes and runs itself.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "core/rdmc.hpp"
#include "fabric/tcp_fabric.hpp"
#include "util/bytes.hpp"
#include "util/random.hpp"

using namespace rdmc;

namespace {

std::vector<fabric::TcpAddress> parse_peers(const std::string& text) {
  std::vector<fabric::TcpAddress> peers;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    const std::size_t colon = entry.rfind(':');
    peers.push_back({entry.substr(0, colon),
                     static_cast<std::uint16_t>(
                         std::stoul(entry.substr(colon + 1)))});
    start = comma + 1;
  }
  return peers;
}

std::uint64_t checksum(const std::byte* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

int run_node(NodeId rank, std::vector<fabric::TcpAddress> peers,
             std::size_t size) {
  const std::size_t n = peers.size();
  fabric::TcpFabric fabric(peers, {rank});
  Node node(fabric, rank);

  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  std::atomic<bool> finished{false};
  std::vector<std::byte> inbox;
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<NodeId> members;
  for (std::size_t i = 0; i < n; ++i) members.push_back(i);
  if (!node.create_group(
          1, members, GroupOptions{},
          [&](std::size_t bytes) {
            inbox.resize(bytes);
            return fabric::MemoryView{inbox.data(), bytes};
          },
          [&](std::byte*, std::size_t) {
            std::lock_guard lock(m);
            done = true;
            cv.notify_all();
          },
          [&](GroupId, NodeId suspect) {
            // Peers tearing down after a finished run look like failures;
            // only treat breaks before completion as fatal.
            if (finished.load()) return;
            std::fprintf(stderr, "rank %u: group failed (suspect %u)\n",
                         rank, suspect);
            std::exit(2);
          })) {
    std::fprintf(stderr, "rank %u: create_group failed\n", rank);
    return 1;
  }

  if (rank == 0) {
    // Give the other processes a moment to come up (a real deployment
    // would barrier over its bootstrap mesh; credits make this safe
    // regardless, it only avoids early-dial warnings).
    usleep(200 * 1000);
    std::vector<std::byte> payload(size);
    util::Rng rng(77);
    for (auto& b : payload) b = static_cast<std::byte>(rng());
    std::printf("rank 0: multicasting %s (fnv1a %016llx) to %zu peers\n",
                util::format_bytes(size).c_str(),
                static_cast<unsigned long long>(
                    checksum(payload.data(), payload.size())),
                n - 1);
    node.send(1, payload.data(), payload.size());
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return done; });
    std::printf("rank 0: send complete\n");
  } else {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return done; });
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    std::printf("rank %u: received %s (fnv1a %016llx) — %s\n", rank,
                util::format_bytes(inbox.size()).c_str(),
                static_cast<unsigned long long>(
                    checksum(inbox.data(), inbox.size())),
                util::format_gbps(static_cast<double>(inbox.size()), secs)
                    .c_str());
  }
  finished.store(true);
  // Let peers finish pulling from us before tearing sockets down.
  usleep(500 * 1000);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  NodeId rank = 0;
  std::string peers_text;
  std::size_t size = 16 << 20;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    if (flag == "--rank") rank = std::stoul(argv[i + 1]);
    else if (flag == "--peers") peers_text = argv[i + 1];
    else if (flag == "--size")
      size = util::parse_size(argv[i + 1]).value_or(size);
  }

  if (!peers_text.empty()) {
    return run_node(rank, parse_peers(peers_text), size);
  }

  // Self-demo: fork a 4-process cluster on loopback.
  constexpr std::size_t kNodes = 4;
  const std::uint16_t base = 9400 + static_cast<std::uint16_t>(
                                        ::getpid() % 400);
  std::string peers;
  for (std::size_t i = 0; i < kNodes; ++i) {
    peers += "127.0.0.1:" + std::to_string(base + i);
    if (i + 1 < kNodes) peers += ",";
  }
  std::printf("self-demo: forking %zu processes (%s)\n", kNodes,
              peers.c_str());
  std::fflush(stdout);  // avoid duplicated buffers across fork
  std::vector<pid_t> children;
  for (std::size_t r = 1; r < kNodes; ++r) {
    const pid_t pid = ::fork();
    if (pid == 0) {
      return run_node(static_cast<NodeId>(r), parse_peers(peers), size);
    }
    children.push_back(pid);
  }
  const int rc = run_node(0, parse_peers(peers), size);
  int status = 0;
  bool ok = rc == 0;
  for (pid_t pid : children) {
    ::waitpid(pid, &status, 0);
    ok &= WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  std::printf("self-demo: %s\n", ok ? "all processes verified" : "FAILED");
  return ok ? 0 : 1;
}
