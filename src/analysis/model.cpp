#include "analysis/model.hpp"

#include <cassert>
#include <cmath>

#include "util/bitops.hpp"

namespace rdmc::analysis {

std::size_t pipeline_steps(std::size_t num_nodes, std::size_t num_blocks) {
  assert(num_nodes >= 2 && num_blocks >= 1);
  return util::ceil_log2(num_nodes) + num_blocks - 1;
}

double sequential_time(std::size_t num_nodes, std::size_t num_blocks,
                       double block_time) {
  // The root pushes k blocks to each of n-1 receivers through one tx port.
  return static_cast<double>((num_nodes - 1) * num_blocks) * block_time;
}

double chain_time(std::size_t num_nodes, std::size_t num_blocks,
                  double block_time) {
  // Fill the pipe (n-1 hops) then stream the remaining k-1 blocks.
  return static_cast<double>(num_nodes + num_blocks - 2) * block_time;
}

double binomial_tree_time(std::size_t num_nodes, std::size_t num_blocks,
                          double block_time) {
  // ceil(log2 n) whole-message rounds, no pipelining across rounds.
  return static_cast<double>(util::ceil_log2(num_nodes) * num_blocks) *
         block_time;
}

double binomial_pipeline_time(std::size_t num_nodes, std::size_t num_blocks,
                              double block_time) {
  return static_cast<double>(pipeline_steps(num_nodes, num_blocks)) *
         block_time;
}

double delayed_pipeline_time(std::size_t num_nodes, std::size_t num_blocks,
                             double block_time, double epsilon) {
  return binomial_pipeline_time(num_nodes, num_blocks, block_time) + epsilon;
}

double slow_link_fraction(std::size_t num_nodes, double t_fast,
                          double t_slow) {
  assert(num_nodes >= 2 && t_fast > 0.0 && t_slow > 0.0 && t_slow <= t_fast);
  const double l = static_cast<double>(util::ceil_log2(num_nodes));
  return l * t_slow / (t_fast + (l - 1.0) * t_slow);
}

double average_slack(std::size_t num_nodes) {
  assert(num_nodes >= 4);
  const double l = static_cast<double>(util::ceil_log2(num_nodes));
  const double n = static_cast<double>(num_nodes);
  return 2.0 * (1.0 - (l - 1.0) / (n - 2.0));
}

}  // namespace rdmc::analysis
