// Closed-form performance and robustness models (paper §4.4-4.5).
//
// These are the analytical predictions the paper states; the robustness
// bench and the property tests compare simulator measurements against them.
#pragma once

#include <cstddef>

namespace rdmc::analysis {

/// Steps for a k-block binomial pipeline over n nodes: l + k - 1 with
/// l = ceil(log2 n) (§4.4). n >= 2.
std::size_t pipeline_steps(std::size_t num_nodes, std::size_t num_blocks);

/// Predicted total transfer time for each algorithm under an idealised
/// network where one block takes `block_time` seconds per hop and the
/// message has k blocks. These are the first-order models behind Fig 4's
/// shapes (software overheads excluded).
double sequential_time(std::size_t num_nodes, std::size_t num_blocks,
                       double block_time);
double chain_time(std::size_t num_nodes, std::size_t num_blocks,
                  double block_time);
double binomial_tree_time(std::size_t num_nodes, std::size_t num_blocks,
                          double block_time);
double binomial_pipeline_time(std::size_t num_nodes, std::size_t num_blocks,
                              double block_time);

/// §4.5 item 1: a single delay of epsilon adds at most epsilon to the
/// total: (l + k - 1) * block_time + epsilon.
double delayed_pipeline_time(std::size_t num_nodes, std::size_t num_blocks,
                             double block_time, double epsilon);

/// §4.5 item 2: with one slow link of bandwidth t_slow among links of
/// bandwidth t_fast, effective multicast bandwidth is at least
/// l*t_slow / (t_fast + (l-1)*t_slow) of the uniform-bandwidth case.
/// Returns that fraction (in (0, 1]). The paper's example: t_slow = t/2,
/// n = 64 gives 0.856.
double slow_link_fraction(std::size_t num_nodes, double t_fast,
                          double t_slow);

/// §4.5 item 3: average steady-step slack 2(1 - (l-1)/(n-2)), ~2 for
/// moderate n. Requires n >= 4 and n a power of two for exactness.
double average_slack(std::size_t num_nodes);

}  // namespace rdmc::analysis
