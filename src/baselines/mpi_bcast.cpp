#include "baselines/mpi_bcast.hpp"

#include <algorithm>
#include <cassert>

#include "util/bitops.hpp"

namespace rdmc::baseline {

MpiBcastSchedule::MpiBcastSchedule(std::size_t num_nodes, std::size_t rank)
    : Schedule(num_nodes, rank),
      rounds_(num_nodes > 1 ? util::ceil_log2(num_nodes) : 0) {}

std::vector<sched::Transfer> MpiBcastSchedule::tree_sends_at(
    std::size_t num_blocks, std::size_t step) const {
  const std::size_t round = step / num_blocks;
  const std::size_t block = step % num_blocks;
  if (round >= rounds_) return {};
  const std::size_t s = std::size_t{1} << (rounds_ - 1 - round);
  if (rank_ % (2 * s) != 0 || rank_ + s >= num_nodes_) return {};
  return {sched::Transfer{static_cast<std::uint32_t>(rank_ + s), block}};
}

std::vector<sched::Transfer> MpiBcastSchedule::tree_recvs_at(
    std::size_t num_blocks, std::size_t step) const {
  if (rank_ == 0) return {};
  const std::size_t round = step / num_blocks;
  const std::size_t block = step % num_blocks;
  if (round >= rounds_) return {};
  const std::size_t s = std::size_t{1} << (rounds_ - 1 - round);
  // Node i joins the tree at the round whose stride is i's lowest set bit.
  if (rank_ % (2 * s) != s) return {};
  return {sched::Transfer{static_cast<std::uint32_t>(rank_ - s), block}};
}

std::size_t MpiBcastSchedule::max_chunk(std::size_t num_blocks) const {
  std::size_t m = 0;
  for (std::size_t i = 0; i < num_nodes_; ++i)
    m = std::max(m, chunk_end(i, num_blocks) - chunk_begin(i, num_blocks));
  return m;
}

std::vector<MpiBcastSchedule::ScatterXfer> MpiBcastSchedule::scatter_plan(
    std::size_t num_blocks) const {
  // Binomial-tree scatter: at stride s = 2^(l-1), 2^(l-2), ..., 1 every
  // subtree root i (i % 2s == 0) hands the blocks owned by ranks
  // [i+s, min(i+2s, n)) to node i+s. Steps within a stride are packed so a
  // stride occupies max-transfer-size consecutive steps.
  std::vector<ScatterXfer> plan;
  std::size_t base = 0;
  for (std::size_t r = 0; r < rounds_; ++r) {
    const std::size_t s = std::size_t{1} << (rounds_ - 1 - r);
    std::size_t widest = 0;
    for (std::size_t i = 0; i + s < num_nodes_; i += 2 * s) {
      const std::size_t lo = chunk_begin(i + s, num_blocks);
      const std::size_t hi =
          chunk_begin(std::min(i + 2 * s, num_nodes_), num_blocks);
      widest = std::max(widest, hi - lo);
      for (std::size_t b = lo; b < hi; ++b) {
        plan.push_back(ScatterXfer{static_cast<std::uint32_t>(i),
                                   static_cast<std::uint32_t>(i + s), b,
                                   base + (b - lo)});
      }
    }
    base += widest;
  }
  return plan;
}

MpiBcastSchedule::PhaseSplit MpiBcastSchedule::split(
    std::size_t num_blocks) const {
  std::size_t scatter_steps = 0;
  for (std::size_t r = 0; r < rounds_; ++r) {
    const std::size_t s = std::size_t{1} << (rounds_ - 1 - r);
    std::size_t widest = 0;
    for (std::size_t i = 0; i + s < num_nodes_; i += 2 * s) {
      const std::size_t lo = chunk_begin(i + s, num_blocks);
      const std::size_t hi =
          chunk_begin(std::min(i + 2 * s, num_nodes_), num_blocks);
      widest = std::max(widest, hi - lo);
    }
    scatter_steps += widest;
  }
  return PhaseSplit{scatter_steps, max_chunk(num_blocks)};
}

std::vector<sched::Transfer> MpiBcastSchedule::sends_at(
    std::size_t num_blocks, std::size_t step) const {
  std::vector<sched::Transfer> out;
  if (num_blocks == 0 || num_nodes_ <= 1) return out;
  if (use_tree(num_blocks)) return tree_sends_at(num_blocks, step);
  const PhaseSplit ps = split(num_blocks);
  if (step < ps.scatter_steps) {
    for (const auto& x : scatter_plan(num_blocks)) {
      if (x.src == rank_ && x.step == step)
        out.push_back(sched::Transfer{x.dst, x.block});
    }
    return out;
  }
  // Ring allgather: at round t, rank i forwards chunk((i - t) mod n) to
  // rank (i + 1) mod n, one block per step.
  if (ps.ring_round_steps == 0) return out;
  const std::size_t ring_step = step - ps.scatter_steps;
  const std::size_t t = ring_step / ps.ring_round_steps;
  if (t >= num_nodes_ - 1) return out;
  const std::size_t idx = ring_step % ps.ring_round_steps;
  const std::size_t chunk_owner = (rank_ + num_nodes_ - t) % num_nodes_;
  const std::size_t lo = chunk_begin(chunk_owner, num_blocks);
  const std::size_t hi = chunk_end(chunk_owner, num_blocks);
  if (lo + idx < hi) {
    out.push_back(sched::Transfer{
        static_cast<std::uint32_t>((rank_ + 1) % num_nodes_), lo + idx});
  }
  return out;
}

std::vector<sched::Transfer> MpiBcastSchedule::recvs_at(
    std::size_t num_blocks, std::size_t step) const {
  std::vector<sched::Transfer> out;
  if (num_blocks == 0 || num_nodes_ <= 1) return out;
  if (use_tree(num_blocks)) return tree_recvs_at(num_blocks, step);
  const PhaseSplit ps = split(num_blocks);
  if (step < ps.scatter_steps) {
    for (const auto& x : scatter_plan(num_blocks)) {
      if (x.dst == rank_ && x.step == step)
        out.push_back(sched::Transfer{x.src, x.block});
    }
    return out;
  }
  if (ps.ring_round_steps == 0) return out;
  const std::size_t ring_step = step - ps.scatter_steps;
  const std::size_t t = ring_step / ps.ring_round_steps;
  if (t >= num_nodes_ - 1) return out;
  const std::size_t idx = ring_step % ps.ring_round_steps;
  const std::size_t pred = (rank_ + num_nodes_ - 1) % num_nodes_;
  const std::size_t chunk_owner = (pred + num_nodes_ - t) % num_nodes_;
  const std::size_t lo = chunk_begin(chunk_owner, num_blocks);
  const std::size_t hi = chunk_end(chunk_owner, num_blocks);
  if (lo + idx < hi) {
    out.push_back(sched::Transfer{static_cast<std::uint32_t>(pred),
                                  lo + idx});
  }
  return out;
}

std::size_t MpiBcastSchedule::num_steps(std::size_t num_blocks) const {
  if (num_blocks == 0 || num_nodes_ <= 1) return 0;
  if (use_tree(num_blocks)) return rounds_ * num_blocks;
  const PhaseSplit ps = split(num_blocks);
  return ps.scatter_steps + (num_nodes_ - 1) * ps.ring_round_steps;
}

}  // namespace rdmc::baseline
