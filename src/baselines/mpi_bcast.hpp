// MVAPICH-style MPI_Bcast baseline (paper §5.2, Fig 4).
//
// MVAPICH broadcasts large messages as a binomial-tree *scatter* (each node
// ends up owning a ~k/n chunk of the blocks) followed by a *ring allgather*
// (n-1 rounds in which every node forwards the chunk it most recently
// received to its successor). We express that as an RDMC block-transfer
// schedule so the baseline runs through the identical engine and fabric —
// an apples-to-apples comparison.
//
// Note the ring wraps through the root, so unlike RDMC's own algorithms
// this schedule has rank 0 receiving (redundant) blocks; the engine
// supports root receives for exactly this baseline.
//
// Like MVAPICH, the broadcast switches algorithm by message size: when the
// message has fewer blocks than the group has members (empty scatter
// chunks), it falls back to a whole-message binomial-tree broadcast over
// the *same* tree the scatter uses (parent = clear the lowest set bit).
// Besides matching MVAPICH, using one tree for both regimes keeps every
// node's first-hop source independent of message size, which the RDMC
// engine's initial-receive protocol requires.
#pragma once

#include "sched/schedule.hpp"

namespace rdmc::baseline {

class MpiBcastSchedule final : public sched::Schedule {
 public:
  MpiBcastSchedule(std::size_t num_nodes, std::size_t rank);

  std::vector<sched::Transfer> sends_at(std::size_t num_blocks,
                                        std::size_t step) const override;
  std::vector<sched::Transfer> recvs_at(std::size_t num_blocks,
                                        std::size_t step) const override;
  std::size_t num_steps(std::size_t num_blocks) const override;
  std::string_view name() const override { return "mpi_scatter_allgather"; }

 private:
  /// Blocks [chunk_begin(i), chunk_end(i)) are owned by rank i after the
  /// scatter phase.
  std::size_t chunk_begin(std::size_t rank, std::size_t num_blocks) const {
    return rank * num_blocks / num_nodes_;
  }
  std::size_t chunk_end(std::size_t rank, std::size_t num_blocks) const {
    return chunk_begin(rank + 1, num_blocks);
  }
  std::size_t max_chunk(std::size_t num_blocks) const;

  struct PhaseSplit {
    std::size_t scatter_steps;
    std::size_t ring_round_steps;  // steps per allgather round
  };
  PhaseSplit split(std::size_t num_blocks) const;

  /// Scatter transfers: all (src, dst, block, step) tuples, precomputed
  /// per num_blocks on demand (cheap: O(k log n)).
  struct ScatterXfer {
    std::uint32_t src, dst;
    std::size_t block;
    std::size_t step;
  };
  std::vector<ScatterXfer> scatter_plan(std::size_t num_blocks) const;

  bool use_tree(std::size_t num_blocks) const {
    return num_blocks < num_nodes_;
  }
  /// Small-message fallback: whole-message binomial tree with descending
  /// strides (round r uses stride 2^(l-1-r); i with i % 2s == 0 feeds i+s).
  std::vector<sched::Transfer> tree_sends_at(std::size_t num_blocks,
                                             std::size_t step) const;
  std::vector<sched::Transfer> tree_recvs_at(std::size_t num_blocks,
                                             std::size_t step) const;

  std::size_t rounds_;  // ceil(log2 n)
};

}  // namespace rdmc::baseline
