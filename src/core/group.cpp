#include "core/group.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/stall.hpp"
#include "obs/trace.hpp"
#include "sched/hybrid.hpp"
#include "util/logging.hpp"

namespace rdmc {

namespace {
/// k values probed to enumerate the neighbours a schedule can ever use and
/// whether each pair can ever receive. The probe set covers the clamping
/// regimes (k=1, k<log n, k~n, k>>n) of every implemented schedule; the
/// property suite sweeps many more k values end-to-end.
constexpr std::size_t kNeighbourProbes[] = {1, 2, 3, 5, 8, 64, 257, 1031};
}  // namespace

Group::Group(Node& node, GroupId id, std::vector<NodeId> members,
             GroupOptions options, IncomingMessageCallback incoming,
             MessageCompletionCallback completion, FailureCallback on_failure)
    : node_(node),
      id_(id),
      members_(std::move(members)),
      options_(options),
      incoming_(std::move(incoming)),
      completion_(std::move(completion)),
      on_failure_(std::move(on_failure)) {
  assert(members_.size() >= 2);
  const auto self = std::find(members_.begin(), members_.end(), node_.id());
  assert(self != members_.end() && "creating node must be a member");
  rank_ = static_cast<std::size_t>(self - members_.begin());

  if (options_.make_schedule) {
    schedule_ = options_.make_schedule(members_.size(), rank_);
  } else if (options_.hybrid_racks) {
    assert(options_.hybrid_racks->size() == members_.size());
    schedule_ = std::make_unique<sched::HybridSchedule>(
        members_.size(), rank_, *options_.hybrid_racks);
  } else {
    schedule_ =
        sched::make_schedule(options_.algorithm, members_.size(), rank_);
  }

  // Enumerate every neighbour this node can exchange blocks with, across
  // all message sizes, and bind one queue pair per neighbour (§3 step 1:
  // the group's overlay mesh).
  std::vector<std::uint32_t> send_peers, recv_peers;
  auto note = [](std::vector<std::uint32_t>& set, std::uint32_t peer) {
    if (std::find(set.begin(), set.end(), peer) == set.end())
      set.push_back(peer);
  };
  for (std::size_t k : kNeighbourProbes) {
    const std::size_t steps = schedule_->num_steps(k);
    for (std::size_t j = 0; j < steps; ++j) {
      for (const auto& t : schedule_->sends_at(k, j))
        note(send_peers, t.peer);
      for (const auto& t : schedule_->recvs_at(k, j))
        note(recv_peers, t.peer);
    }
  }
  std::vector<std::uint32_t> neighbour_ranks = send_peers;
  for (auto peer : recv_peers) note(neighbour_ranks, peer);
  std::sort(neighbour_ranks.begin(), neighbour_ranks.end());

  pairs_.reserve(neighbour_ranks.size());
  for (std::uint32_t peer_rank : neighbour_ranks) {
    Pair pair;
    pair.peer_rank = peer_rank;
    pair.peer = members_[peer_rank];
    pair.qp = node_.fabric().connect(node_.id(), pair.peer,
                                     static_cast<std::uint32_t>(id_));
    pairs_.push_back(pair);
  }
  for (std::size_t i = 0; i < pairs_.size(); ++i)
    node_.register_qp(pairs_[i].qp->id(), this, i);

  // Determine the designated first pair: the neighbour this node's first
  // block always comes from. It must be the same for every message size
  // (otherwise an idle receiver could not know where to post the initial
  // receive, §4.2) — all supported schedules have this property; we verify
  // it across the probe set.
  if (rank_ != 0) {
    std::uint32_t first_source = UINT32_MAX;
    for (std::size_t k : kNeighbourProbes) {
      const std::size_t steps = schedule_->num_steps(k);
      for (std::size_t j = 0; j < steps; ++j) {
        const auto recvs = schedule_->recvs_at(k, j);
        if (recvs.empty()) continue;
        if (first_source == UINT32_MAX) {
          first_source = recvs.front().peer;
        } else {
          assert(recvs.front().peer == first_source &&
                 "schedule's first receive source must be k-invariant");
        }
        break;
      }
    }
    assert(first_source != UINT32_MAX && "receiver with no incoming blocks");
    for (std::size_t p = 0; p < pairs_.size(); ++p)
      if (pairs_[p].peer_rank == first_source) first_pair_ = p;
    scratch_.resize(options_.block_size);
    arm_first_block();
  }
}

Group::~Group() {
  // Destroy-QP semantics: fence and revoke posted receives (the scratch
  // and message buffers die with this object).
  for (Pair& pair : pairs_) {
    if (pair.qp != nullptr) pair.qp->close();
  }
}

std::size_t Group::block_bytes(std::size_t block) const {
  const std::size_t begin = block * options_.block_size;
  assert(begin < size_);
  return std::min(options_.block_size, size_ - begin);
}

bool Group::send(std::byte* data, std::size_t size) {
  if (rank_ != 0 || failed_) return false;
  if (size == 0 || size >= (std::uint64_t{1} << 32)) return false;
  outbox_.push_back(Outgoing{data, size});
  if (!transfer_active_) start_next_outgoing();
  return true;
}

void Group::start_next_outgoing() {
  assert(rank_ == 0 && !transfer_active_ && !outbox_.empty());
  const Outgoing out = outbox_.front();
  outbox_.pop_front();
  data_ = out.data;
  size_ = out.size;
  num_blocks_ = (size_ + options_.block_size - 1) / options_.block_size;
  const double t0 = node_.clock()();
  build_transfer_lists(num_blocks_);
  have_.assign(num_blocks_, true);
  have_count_ = num_blocks_;
  transfer_active_ = true;
  stats_.setup_seconds += node_.clock()() - t0;
  stats_.last_transfer_start = node_.clock()();
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kCore, "msg", node_.id(),
              obs::msg_span_id(id_, stats_.messages_sent),
              stats_.last_transfer_start, "group,seq,blocks,bytes",
              static_cast<std::uint32_t>(id_), stats_.messages_sent,
              num_blocks_, size_);
  for (std::size_t p = 0; p < pairs_.size(); ++p) post_receives(p);
  pump_all_sends();
}

void Group::build_transfer_lists(std::size_t num_blocks) {
  for (Pair& pair : pairs_) {
    pair.send_blocks.clear();
    pair.recv_blocks.clear();
    pair.next_send = 0;
    pair.next_recv_post = 0;
    pair.recvs_completed_msg = 0;
  }
  // Flatten the step schedule into per-pair FIFOs. Within a step the
  // schedule's own emission order (primary vertex, then shadow) is used by
  // both sides, so the two FIFOs of a pair always mirror each other.
  std::vector<std::size_t> pair_of_rank(members_.size(), SIZE_MAX);
  for (std::size_t p = 0; p < pairs_.size(); ++p)
    pair_of_rank[pairs_[p].peer_rank] = p;

  const std::size_t steps = schedule_->num_steps(num_blocks);
  msg_sends_total_ = 0;
  msg_recvs_total_ = 0;
  for (std::size_t j = 0; j < steps; ++j) {
    for (const auto& t : schedule_->sends_at(num_blocks, j)) {
      assert(pair_of_rank[t.peer] != SIZE_MAX);
      pairs_[pair_of_rank[t.peer]].send_blocks.push_back(t.block);
      ++msg_sends_total_;
    }
    for (const auto& t : schedule_->recvs_at(num_blocks, j)) {
      assert(pair_of_rank[t.peer] != SIZE_MAX);
      pairs_[pair_of_rank[t.peer]].recv_blocks.push_back(t.block);
      ++msg_recvs_total_;
    }
  }
  msg_sends_done_ = 0;
  msg_recvs_done_ = 0;
  // The armed scratch receive is the designated pair's post #0.
  if (scratch_armed_ && first_pair_ != SIZE_MAX &&
      !pairs_[first_pair_].recv_blocks.empty())
    pairs_[first_pair_].next_recv_post = 1;
}

void Group::arm_first_block() {
  if (rank_ == 0 || scratch_armed_ || failed_) return;
  Pair& pair = pairs_[first_pair_];
  if (!fabric::ok(pair.qp->post_recv(
          fabric::MemoryView{scratch_.data(), scratch_.size()},
          /*wr_id=*/0)))
    return;
  scratch_armed_ = true;
  ++pair.credits_granted;
  pair.qp->post_write_imm(static_cast<std::uint32_t>(pair.credits_granted),
                          0);
}

void Group::activate_incoming(std::size_t pair_index,
                              std::uint32_t size_imm) {
  assert(!transfer_active_);
  const double t0 = node_.clock()();
  size_ = size_imm;
  num_blocks_ = (size_ + options_.block_size - 1) / options_.block_size;
  const fabric::MemoryView region = incoming_(size_);
  data_ = region.data;
  assert(data_ == nullptr || region.size >= size_);
  build_transfer_lists(num_blocks_);
  have_.assign(num_blocks_, false);
  have_count_ = 0;
  transfer_active_ = true;
  stats_.last_transfer_start = t0;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kCore, "msg", node_.id(),
              obs::msg_span_id(id_, stats_.messages_delivered), t0,
              "group,seq,blocks,bytes", static_cast<std::uint32_t>(id_),
              stats_.messages_delivered, num_blocks_, size_);
  stats_.setup_seconds += node_.clock()() - t0;

  for (std::size_t p = 0; p < pairs_.size(); ++p) post_receives(p);
  // The caller then routes the scratch block through on_recv_completion's
  // normal path, and pumps.
  (void)pair_index;
}

void Group::post_receives(std::size_t pair_index) {
  if (failed_ || !transfer_active_) return;
  Pair& pair = pairs_[pair_index];
  bool granted = false;
  while (pair.next_recv_post < pair.recv_blocks.size() &&
         pair.next_recv_post <
             pair.recvs_completed_msg + options_.recv_window) {
    const std::size_t block = pair.recv_blocks[pair.next_recv_post];
    fabric::MemoryView buf{
        data_ != nullptr ? data_ + block_offset(block) : nullptr,
        block_bytes(block)};
    if (!fabric::ok(pair.qp->post_recv(buf, pair.next_recv_post))) return;
    ++pair.next_recv_post;
    ++pair.credits_granted;
    granted = true;
  }
  if (granted) {
    // One cumulative ready-for-block write covers every receive just
    // posted (§4.2): the sender may transmit up to `credits_granted`
    // blocks on this pair.
    pair.qp->post_write_imm(
        static_cast<std::uint32_t>(pair.credits_granted), 0);
  }
}

void Group::pump_sends(std::size_t pair_index) {
  if (failed_ || !transfer_active_) return;
  Pair& pair = pairs_[pair_index];
  while (pair.next_send < pair.send_blocks.size()) {
    const std::size_t block = pair.send_blocks[pair.next_send];
    if (!have_[block]) break;  // §4.3: send pending until block arrives
    if (pair.credits_from_peer <= pair.sends_posted) break;  // no credit
    fabric::MemoryView buf{
        data_ != nullptr ? data_ + block_offset(block) : nullptr,
        block_bytes(block)};
    const std::uint64_t wr = pair.next_send;
    if (!fabric::ok(pair.qp->post_send(buf, wr,
                                       static_cast<std::uint32_t>(size_))))
      return;
    ++pair.sends_posted;
    ++pair.next_send;
    ++stats_.blocks_sent;
    if (auto* tr = obs::tracer())
      tr->begin(obs::Cat::kCore, "block", node_.id(),
                obs::block_span_id(id_, block, node_.id(), pair.peer),
                node_.clock()(), "block,dst,qp,wr", block, pair.peer,
                pair.qp->id(), wr);
  }
}

void Group::pump_all_sends() {
  for (std::size_t p = 0; p < pairs_.size(); ++p) pump_sends(p);
}

void Group::on_recv_completion(std::size_t pair_index,
                               const fabric::Completion& c) {
  Pair& pair = pairs_[pair_index];
  if (!transfer_active_) {
    // A first block announcing a new message: the armed scratch on the
    // designated pair is the only receive that can be outstanding while
    // the group is idle. scratch_armed_ stays set through activation:
    // build_transfer_lists counts it as the designated pair's post #0.
    assert(scratch_armed_ && pair_index == first_pair_ &&
           "first block must arrive on the designated pair");
    activate_incoming(pair_index, c.immediate);
  }
  // Evaluate after activation (which resets the per-message counters): the
  // designated pair's first completion of a message is its scratch.
  const bool via_scratch = scratch_armed_ && pair_index == first_pair_ &&
                           pair.recvs_completed_msg == 0;
  if (via_scratch) scratch_armed_ = false;
  assert(pair.recvs_completed_msg < pair.recv_blocks.size());
  const std::size_t block = pair.recv_blocks[pair.recvs_completed_msg];
  ++pair.recvs_completed_msg;
  if (via_scratch && data_ != nullptr) {
    // §4.2: copy the first block from the scratch area to its offset.
    const double c0 = node_.clock()();
    std::memcpy(data_ + block_offset(block), scratch_.data(),
                block_bytes(block));
    stats_.copy_seconds += node_.clock()() - c0;
  }
  assert(c.immediate == size_);
  on_block_received(pair_index, block);
}

void Group::on_block_received(std::size_t pair_index, std::size_t block) {
  if (have_[block]) {
    ++stats_.duplicate_blocks;  // aliasing or baseline ring redundancy
  } else {
    have_[block] = true;
    ++have_count_;
  }
  ++msg_recvs_done_;
  ++stats_.blocks_received;
  if (auto* tr = obs::tracer())
    tr->end(obs::Cat::kCore, "block", node_.id(),
            obs::block_span_id(id_, block, pairs_[pair_index].peer,
                               node_.id()),
            node_.clock()(), "block,src", block, pairs_[pair_index].peer);
  post_receives(pair_index);
  pump_all_sends();
  check_message_done();
}

void Group::on_send_completed(std::size_t pair_index, std::uint64_t wr_id) {
  ++msg_sends_done_;
  Pair& pair = pairs_[pair_index];
  const std::size_t block =
      wr_id < pair.send_blocks.size() ? pair.send_blocks[wr_id] : 0;
  if (auto* tr = obs::tracer()) {
    // A raw record: instants normally carry no id, but send completions
    // need the block-span id so the analyzer can match them to their hop.
    obs::TraceEvent e;
    e.ts = node_.clock()();
    e.name = "send.done";
    e.keys = "block,dst,qp,wr";
    e.phase = obs::Phase::kInstant;
    e.cat = obs::Cat::kCore;
    e.node = node_.id();
    e.id = obs::block_span_id(id_, block, node_.id(), pair.peer);
    e.a[0] = block;
    e.a[1] = pair.peer;
    e.a[2] = pair.qp->id();
    e.a[3] = wr_id;
    tr->record(e);
  }
  check_message_done();
}

void Group::check_message_done() {
  if (!transfer_active_) return;
  if (msg_sends_done_ < msg_sends_total_) return;
  if (have_count_ < num_blocks_ || msg_recvs_done_ < msg_recvs_total_)
    return;
  finish_message();
}

void Group::finish_message() {
  transfer_active_ = false;
  stats_.last_transfer_end = node_.clock()();
  if (auto* tr = obs::tracer()) {
    const std::uint64_t seq =
        rank_ == 0 ? stats_.messages_sent : stats_.messages_delivered;
    tr->end(obs::Cat::kCore, "msg", node_.id(), obs::msg_span_id(id_, seq),
            stats_.last_transfer_end, "group,seq",
            static_cast<std::uint32_t>(id_), seq);
  }
  std::byte* data = data_;
  const std::size_t size = size_;
  if (rank_ == 0) {
    ++stats_.messages_sent;
    arm_first_block();
    if (completion_) completion_(data, size);
    if (!outbox_.empty() && !failed_ && !transfer_active_)
      start_next_outgoing();
  } else {
    ++stats_.messages_delivered;
    arm_first_block();
    if (completion_) completion_(data, size);
  }
}

void Group::on_completion(const fabric::Completion& c,
                          std::size_t pair_index) {
  // Fault-path accounting happens even for quarantined completions, so
  // campaigns can observe the flush volume a break produced.
  if (c.status == fabric::WcStatus::kFlushed) ++stats_.flushed_completions;
  if (c.opcode == fabric::WcOpcode::kDisconnect) ++stats_.disconnects;
  if (failed_) return;  // dead-epoch completions are quarantined
  Pair& pair = pairs_[pair_index];
  switch (c.opcode) {
    case fabric::WcOpcode::kRecv: {
      if (c.status != fabric::WcStatus::kSuccess) {
        fail(pair.peer, /*relay=*/true);
        return;
      }
      on_recv_completion(pair_index, c);
      break;
    }
    case fabric::WcOpcode::kSend: {
      if (c.status != fabric::WcStatus::kSuccess) {
        fail(pair.peer, /*relay=*/true);
        return;
      }
      on_send_completed(pair_index, c.wr_id);
      break;
    }
    case fabric::WcOpcode::kRecvWriteImm: {
      // Ready-for-block: cumulative credit count from the receiver.
      pair.credits_from_peer =
          std::max<std::uint64_t>(pair.credits_from_peer, c.immediate);
      if (auto* tr = obs::tracer())
        tr->instant(obs::Cat::kCore, "credit.rx", node_.id(),
                    node_.clock()(), "peer,count", pair.peer, c.immediate);
      pump_sends(pair_index);
      break;
    }
    case fabric::WcOpcode::kWriteImm:
      break;  // our own ready-write finished; nothing to do
    case fabric::WcOpcode::kDisconnect:
      fail(pair.peer, /*relay=*/true);
      break;
    case fabric::WcOpcode::kWindowWrite:
    case fabric::WcOpcode::kRecvWindowWrite:
    case fabric::WcOpcode::kSendUd:
    case fabric::WcOpcode::kRecvUd:
      break;  // RC group QPs carry no window writes or datagrams
  }
}

std::string Group::debug_dump() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "group %d rank %zu active=%d failed=%d k=%zu have=%zu/%zu "
                "sends=%llu/%llu recvs=%llu/%llu scratch_armed=%d\n",
                id_, rank_, transfer_active_, failed_, num_blocks_,
                have_count_, num_blocks_,
                static_cast<unsigned long long>(msg_sends_done_),
                static_cast<unsigned long long>(msg_sends_total_),
                static_cast<unsigned long long>(msg_recvs_done_),
                static_cast<unsigned long long>(msg_recvs_total_),
                scratch_armed_);
  out += line;
  for (const Pair& pair : pairs_) {
    std::snprintf(line, sizeof line,
                  "  pair peer_rank=%u send=%zu/%zu posted=%llu "
                  "credits_in=%llu recv_done=%zu/%zu recv_posted=%zu "
                  "credits_out=%llu\n",
                  pair.peer_rank, pair.next_send, pair.send_blocks.size(),
                  static_cast<unsigned long long>(pair.sends_posted),
                  static_cast<unsigned long long>(pair.credits_from_peer),
                  pair.recvs_completed_msg, pair.recv_blocks.size(),
                  pair.next_recv_post,
                  static_cast<unsigned long long>(pair.credits_granted));
    out += line;
  }
  return out;
}

void Group::on_failure_notice(NodeId suspect) {
  ++stats_.failure_notices;
  fail(suspect, false);
}

void Group::fail(NodeId suspect, bool relay) {
  if (failed_) return;
  failed_ = true;
  RDMC_LOG_INFO("core", "group %d failed (suspect node %u)", id_, suspect);
  if (relay) node_.relay_failure(id_, members_, suspect);
  if (on_failure_) on_failure_(id_, suspect);
}

}  // namespace rdmc
