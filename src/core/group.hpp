// The RDMC group engine (paper §4.2-4.3).
//
// A Group is a pure event-driven state machine: it reacts to fabric
// completions and emits verb posts, so identical code runs on the threaded
// MemFabric and the virtual-time SimFabric.
//
// Execution model. The schedule's asynchronous steps are flattened into,
// for every neighbour pair, a FIFO list of outgoing blocks and a FIFO list
// of incoming blocks (ordered by step). Correctness then rests on three
// rules, each from the paper:
//   1. per-QP FIFO — RC verbs deliver in post order (§2);
//   2. ready-for-block — a send is posted only once the receiver has
//      granted a credit for it by posting the matching receive and issuing
//      a one-sided write (§4.2), so RNR retries never happen;
//   3. availability gating — a send whose block has not arrived yet simply
//      stays pending, the decoupling §4.3 describes.
//
// Message framing. Every block carries the total message size as its
// 32-bit immediate. Each receiver keeps exactly one "first block" receive
// armed between messages, on its *designated first pair* — the neighbour
// its first block always arrives from, which is invariant across message
// sizes for every supported schedule (verified at group creation by
// probing, and by the property suite). Only that pair holds a pre-granted
// ready-for-block credit while the group is idle; every other pair's
// credits are granted after activation, so a neighbour running a message
// ahead can never inject a future message's block out of sequence. The
// scratch block is copied to its in-message offset once the size is known
// (§4.2 Data Transfer). The root normally never receives, but schedules
// such as the MPI scatter+allgather baseline route (redundant) blocks
// through it post-activation; the engine supports that uniformly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/rdmc.hpp"
#include "sched/schedule.hpp"

namespace rdmc {

class Group : public QpSink {
 public:
  Group(Node& node, GroupId id, std::vector<NodeId> members,
        GroupOptions options, IncomingMessageCallback incoming,
        MessageCompletionCallback completion, FailureCallback on_failure);
  ~Group();

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  GroupId id() const { return id_; }
  bool is_root() const { return rank_ == 0; }
  std::size_t rank() const { return rank_; }
  const std::vector<NodeId>& members() const { return members_; }
  bool failed() const { return failed_; }

  /// Root only: enqueue a message (data/size must stay valid until the
  /// completion callback fires for it).
  bool send(std::byte* data, std::size_t size);

  /// Fabric event entry points (called by Node with its lock held).
  void on_completion(const fabric::Completion& c,
                     std::size_t pair_index) override;
  void on_failure_notice(NodeId suspect) override;

  // -- Introspection ------------------------------------------------------

  struct Stats {
    std::uint64_t messages_sent = 0;       // root: locally completed sends
    std::uint64_t messages_delivered = 0;  // non-root: delivered messages
    std::uint64_t blocks_sent = 0;
    std::uint64_t blocks_received = 0;
    std::uint64_t duplicate_blocks = 0;  // aliasing / baseline redundancy
    double last_transfer_start = 0.0;
    double last_transfer_end = 0.0;
    /// Local setup seconds (allocation callback + list building).
    double setup_seconds = 0.0;
    /// Scratch-to-offset first-block copy seconds (§4.2).
    double copy_seconds = 0.0;
    // Fault-path counters: what the failure machinery saw, including
    // quarantined completions arriving after the group failed.
    std::uint64_t flushed_completions = 0;  // kFlushed status seen
    std::uint64_t disconnects = 0;          // kDisconnect completions seen
    std::uint64_t failure_notices = 0;      // relayed OOB notices received
  };
  const Stats& stats() const { return stats_; }

  /// One-line-per-pair snapshot of the engine's counters (for diagnostics
  /// and the failure-investigation examples).
  std::string debug_dump() const;

 private:
  /// Per-neighbour connection state. Credit counters are cumulative over
  /// the group's lifetime so consecutive messages cannot be confused.
  struct Pair {
    NodeId peer = 0;              // fabric node id
    std::uint32_t peer_rank = 0;  // rank within the group
    fabric::QueuePair* qp = nullptr;

    // Sender side.
    std::vector<std::size_t> send_blocks;  // this message, schedule order
    std::size_t next_send = 0;             // index into send_blocks
    std::uint64_t sends_posted = 0;        // cumulative
    std::uint64_t credits_from_peer = 0;   // cumulative recvs peer posted

    // Receiver side.
    std::vector<std::size_t> recv_blocks;  // this message, schedule order
    std::size_t next_recv_post = 0;        // posts issued for this message
    std::size_t recvs_completed_msg = 0;   // completions for this message
    std::uint64_t credits_granted = 0;     // cumulative recvs we posted
  };

  /// Root: begin transmitting the head of the send queue.
  void start_next_outgoing();
  /// Build per-pair send/recv lists for a k-block message.
  void build_transfer_lists(std::size_t num_blocks);
  /// A first block arrived (in the designated pair's scratch) while idle.
  void activate_incoming(std::size_t pair_index, std::uint32_t size_imm);
  /// Re-arm the scratch first-block receive on the designated first pair.
  void arm_first_block();
  /// Post receives up to the window on one pair; grant credits.
  void post_receives(std::size_t pair_index);
  /// Post every currently eligible send on one pair.
  void pump_sends(std::size_t pair_index);
  void pump_all_sends();
  /// Handle a completed receive (block landed, possibly via scratch).
  void on_recv_completion(std::size_t pair_index,
                          const fabric::Completion& c);
  /// A block of the active message was received.
  void on_block_received(std::size_t pair_index, std::size_t block);
  void on_send_completed(std::size_t pair_index, std::uint64_t wr_id);
  void check_message_done();
  void finish_message();
  void fail(NodeId suspect, bool relay);

  std::size_t block_offset(std::size_t block) const {
    return block * options_.block_size;
  }
  std::size_t block_bytes(std::size_t block) const;

  Node& node_;
  GroupId id_;
  std::vector<NodeId> members_;
  GroupOptions options_;
  IncomingMessageCallback incoming_;
  MessageCompletionCallback completion_;
  FailureCallback on_failure_;

  std::size_t rank_ = 0;
  std::unique_ptr<sched::Schedule> schedule_;
  std::vector<Pair> pairs_;
  /// Index of the designated first pair (SIZE_MAX for the root).
  std::size_t first_pair_ = SIZE_MAX;
  /// Scratch landing zone for each message's first block.
  std::vector<std::byte> scratch_;
  /// Whether the scratch receive is currently posted and unconsumed.
  bool scratch_armed_ = false;

  // Active message state.
  bool transfer_active_ = false;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t num_blocks_ = 0;
  std::vector<bool> have_;
  std::size_t have_count_ = 0;
  std::uint64_t msg_sends_total_ = 0;
  std::uint64_t msg_sends_done_ = 0;
  std::uint64_t msg_recvs_total_ = 0;
  std::uint64_t msg_recvs_done_ = 0;

  /// Root-side queue of outgoing messages (paper: sends are ordered).
  struct Outgoing {
    std::byte* data;
    std::size_t size;
  };
  std::deque<Outgoing> outbox_;

  bool failed_ = false;
  Stats stats_;
};

}  // namespace rdmc
