// Per-group configuration (the "configuration parameters like block size"
// Figure 1 omits).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sched/schedule.hpp"

namespace rdmc {

struct GroupOptions {
  /// Message block size in bytes. Fig 6 sweeps this; 1 MB is the paper's
  /// usual operating point for large transfers.
  std::size_t block_size = std::size_t{1} << 20;

  /// Which block-transfer algorithm the group uses (§4.3).
  sched::Algorithm algorithm = sched::Algorithm::kBinomialPipeline;

  /// If set, use the two-level hybrid binomial pipeline with this
  /// member-rank -> rack-id mapping (overrides `algorithm`).
  std::optional<std::vector<std::uint32_t>> hybrid_racks;

  /// Escape hatch for custom schedules (e.g. the MPI scatter+allgather
  /// baseline); overrides both `algorithm` and `hybrid_racks`.
  std::function<std::unique_ptr<sched::Schedule>(std::size_t num_nodes,
                                                 std::size_t rank)>
      make_schedule;

  /// Receive buffers kept posted ahead per neighbour. The paper posts
  /// "only a few receives per group" to respect NIC caching limits (§4.2).
  std::size_t recv_window = 4;
};

}  // namespace rdmc
