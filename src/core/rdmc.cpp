#include "core/rdmc.hpp"

#include <cassert>
#include <chrono>
#include <cstring>

#include "core/group.hpp"
#include "core/small_group.hpp"
#include "util/logging.hpp"

namespace rdmc {

namespace {

/// Out-of-band message header (the role the paper's N x N TCP mesh plays
/// after bootstrap, §2 / §3 item 6). Two kinds share the mesh: failure
/// relays and group-scoped control blobs for layers above RDMC.
struct OobHeader {
  static constexpr std::uint32_t kMagic = 0x52444D43;  // "RDMC"
  enum Type : std::uint32_t { kFailure = 0, kControl = 1 };
  std::uint32_t magic = kMagic;
  std::uint32_t type = kFailure;
  GroupId group = 0;
  NodeId suspect = 0;  // kFailure only
};

std::vector<std::byte> encode(const OobHeader& header,
                              std::span<const std::byte> body = {}) {
  std::vector<std::byte> out(sizeof(OobHeader) + body.size());
  std::memcpy(out.data(), &header, sizeof header);
  if (!body.empty())
    std::memcpy(out.data() + sizeof header, body.data(), body.size());
  return out;
}

bool decode(std::span<const std::byte> payload, OobHeader& header) {
  if (payload.size() < sizeof(OobHeader)) return false;
  std::memcpy(&header, payload.data(), sizeof header);
  return header.magic == OobHeader::kMagic;
}

}  // namespace

Clock steady_clock_seconds() {
  // rdmc-lint: allow(wall-clock) this IS the explicit wall-clock factory; deterministic runs inject the simulator clock instead
  const auto epoch = std::chrono::steady_clock::now();
  return [epoch] {
    // rdmc-lint: allow(wall-clock) body of the wall-clock factory above
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         epoch)
        .count();
  };
}

Node::Node(fabric::Fabric& fabric, NodeId id, Clock clock)
    : fabric_(fabric),
      endpoint_(fabric.endpoint(id)),
      id_(id),
      clock_(clock ? std::move(clock) : steady_clock_seconds()) {
  endpoint_.set_completion_handler(
      [this](const fabric::Completion& c) { on_completion(c); });
  endpoint_.set_oob_handler(
      [this](NodeId from, std::span<const std::byte> payload) {
        on_oob(from, payload);
      });
}

Node::~Node() {
  // Detach from the fabric first: after these return, no completion or OOB
  // handler referencing this Node can still be running (the backends
  // guarantee set_*_handler synchronises with in-flight dispatch).
  endpoint_.set_completion_handler(nullptr);
  endpoint_.set_oob_handler(nullptr);
  std::lock_guard lock(mutex_);
  qp_map_.clear();
  groups_.clear();
  small_groups_.clear();
}

bool Node::create_group(GroupId group, std::vector<NodeId> members,
                        GroupOptions options,
                        IncomingMessageCallback incoming_message,
                        MessageCompletionCallback message_completion,
                        FailureCallback on_failure) {
  if (members.size() < 2 || options.block_size == 0 ||
      options.recv_window == 0)
    return false;
  std::lock_guard lock(mutex_);
  if (groups_.contains(group)) return false;
  auto g = std::make_unique<Group>(*this, group, std::move(members),
                                   options, std::move(incoming_message),
                                   std::move(message_completion),
                                   std::move(on_failure));
  groups_.emplace(group, std::move(g));
  return true;
}

bool Node::destroy_group(GroupId group) {
  std::lock_guard lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  const bool clean = !it->second->failed();
  retire_qps(it->second.get());
  groups_.erase(it);
  return clean;
}

bool Node::send(GroupId group, std::byte* data, std::size_t size) {
  std::lock_guard lock(mutex_);
  auto it = groups_.find(group);
  if (it == groups_.end()) return false;
  return it->second->send(data, size);
}

bool Node::group_failed(GroupId group) const {
  std::lock_guard lock(mutex_);
  if (auto it = groups_.find(group); it != groups_.end())
    return it->second->failed();
  auto it = small_groups_.find(group);
  return it != small_groups_.end() && it->second->failed();
}

bool Node::create_small_group(
    GroupId group, std::vector<NodeId> members,
    const SmallGroupOptions& options,
    std::function<void(const std::byte*, std::size_t)> deliver,
    std::function<void(std::size_t)> sent, FailureCallback on_failure) {
  if (members.size() < 2 || options.slot_size == 0 ||
      options.ring_depth == 0)
    return false;
  std::lock_guard lock(mutex_);
  if (groups_.contains(group) || small_groups_.contains(group))
    return false;
  auto g = std::make_unique<SmallMessageGroup>(
      *this, group, std::move(members), options, std::move(deliver),
      std::move(sent), std::move(on_failure));
  small_groups_.emplace(group, std::move(g));
  return true;
}

bool Node::send_small(GroupId group, const std::byte* data,
                      std::size_t size) {
  std::lock_guard lock(mutex_);
  auto it = small_groups_.find(group);
  if (it == small_groups_.end()) return false;
  return it->second->send(data, size);
}

bool Node::destroy_small_group(GroupId group) {
  std::lock_guard lock(mutex_);
  auto it = small_groups_.find(group);
  if (it == small_groups_.end()) return false;
  const bool clean = !it->second->failed();
  retire_qps(it->second.get());
  small_groups_.erase(it);
  return clean;
}

const Group* Node::group(GroupId group) const {
  std::lock_guard lock(mutex_);
  auto it = groups_.find(group);
  return it == groups_.end() ? nullptr : it->second.get();
}

void Node::on_completion(const fabric::Completion& c) {
  std::lock_guard lock(mutex_);
  auto it = qp_map_.find(c.qp);
  if (it == qp_map_.end()) {
    // Quarantine: completions for a destroyed group's queue pairs (flushes
    // and disconnects racing the teardown) are dropped, never buffered —
    // they belong to a dead epoch and must not be replayed into whatever
    // group reuses the channel later.
    if (retired_qps_.contains(c.qp)) return;
    // Otherwise an early credit from a member that finished create_group
    // before we did (replayed by register_qp).
    constexpr std::size_t kMaxUnrouted = 65536;
    RDMC_LOG_DEBUG("core",
                   "node %u: buffering unrouted completion qp=%llu op=%d",
                   id_, static_cast<unsigned long long>(c.qp),
                   static_cast<int>(c.opcode));
    if (unrouted_.size() < kMaxUnrouted) unrouted_.push_back(c);
    return;
  }
  it->second.first->on_completion(c, it->second.second);
}

void Node::on_oob(NodeId from, std::span<const std::byte> payload) {
  OobHeader header;
  if (!decode(payload, header)) {
    RDMC_LOG_WARN("core", "node %u: malformed OOB message from %u", id_,
                  from);
    return;
  }
  std::lock_guard lock(mutex_);
  if (header.type == OobHeader::kControl) {
    if (auto it = control_handlers_.find(header.group);
        it != control_handlers_.end() && it->second) {
      it->second(from, payload.subspan(sizeof(OobHeader)));
    }
    return;
  }
  if (auto it = groups_.find(header.group); it != groups_.end()) {
    it->second->on_failure_notice(header.suspect);
    return;
  }
  if (auto it = small_groups_.find(header.group);
      it != small_groups_.end()) {
    it->second->on_failure_notice(header.suspect);
  }
  // Otherwise: group unknown here (yet); ignore.
}

void Node::send_control(GroupId group, NodeId to,
                        std::vector<std::byte> payload) {
  OobHeader header;
  header.type = OobHeader::kControl;
  header.group = group;
  endpoint_.send_oob(to, encode(header, payload));
}

void Node::register_control_handler(
    GroupId group,
    std::function<void(NodeId, std::span<const std::byte>)> handler) {
  std::lock_guard lock(mutex_);
  control_handlers_[group] = std::move(handler);
}

void Node::unregister_control_handler(GroupId group) {
  std::lock_guard lock(mutex_);
  control_handlers_.erase(group);
}

void Node::relay_failure(GroupId group, const std::vector<NodeId>& members,
                         NodeId suspect) {
  OobHeader header;
  header.group = group;
  header.suspect = suspect;
  const auto payload = encode(header);
  for (NodeId member : members) {
    if (member == id_) continue;
    endpoint_.send_oob(member, payload);
  }
}

void Node::retire_qps(QpSink* sink) {
  // rdmc-lint: allow(unordered-iter) partitions entries by sink into a set; per-entry effect is order-independent
  for (auto qp_it = qp_map_.begin(); qp_it != qp_map_.end();) {
    if (qp_it->second.first == sink) {
      retired_qps_.insert(qp_it->first);
      qp_it = qp_map_.erase(qp_it);
    } else {
      ++qp_it;
    }
  }
  std::erase_if(unrouted_, [this](const fabric::Completion& c) {
    return retired_qps_.contains(c.qp);
  });
}

void Node::register_qp(fabric::QpId qp, QpSink* sink,
                       std::size_t pair_index) {
  // Called from Group's constructor, which runs under mutex_ via
  // create_group; the recursive mutex also admits re-entry from callbacks.
  std::lock_guard lock(mutex_);
  qp_map_[qp] = {sink, pair_index};
  // The channel (and thus the QP) may be reused by a re-formed group; from
  // here on its completions belong to the new epoch.
  retired_qps_.erase(qp);
  // Replay completions that raced ahead of this group's creation.
  std::vector<fabric::Completion> replay;
  for (auto it = unrouted_.begin(); it != unrouted_.end();) {
    if (it->qp == qp) {
      replay.push_back(*it);
      it = unrouted_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& c : replay) sink->on_completion(c, pair_index);
}

}  // namespace rdmc
