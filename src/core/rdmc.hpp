// RDMC public API (paper Figure 1).
//
// One rdmc::Node per process/member, bound to a fabric endpoint. Groups are
// created collectively — every member calls create_group with identical
// membership — and within a group only the root (first member) sends.
// Messages of any size flow through the group; receivers learn each
// message's size from the immediate value on its first block and allocate
// via the incoming-message callback (§4.2).
//
//   rdmc::Node node(fabric, my_id, clock);
//   node.create_group(7, {0, 1, 2, 3}, options,
//       /*incoming=*/[&](std::size_t size) { return my_alloc(size); },
//       /*completion=*/[&](std::byte* data, std::size_t size) { ... });
//   if (my_id == 0) node.send(7, data, size);
//
// Reliability contract (§3): within a group, messages arrive uncorrupted,
// in sender order, without duplication — or the group reports a failure to
// every survivor, after which the application tears it down and re-forms it
// (§4.6 "Recovery From Failure").
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/options.hpp"
#include "fabric/fabric.hpp"

namespace rdmc {

using NodeId = fabric::NodeId;
using GroupId = std::int32_t;

/// Called on receivers when a new transfer begins; returns the memory
/// region the message lands in (may be phantom — null data — in simulated
/// cluster-scale runs). Registration cost considerations are the
/// application's (§4.6 Memory management).
using IncomingMessageCallback =
    std::function<fabric::MemoryView(std::size_t size)>;

/// Called when a message send/receive is locally complete and the region
/// can be reused. Note other receivers may still be mid-transfer (§4.1).
using MessageCompletionCallback =
    std::function<void(std::byte* data, std::size_t size)>;

/// Called once when the group fails (a member crashed or a connection
/// broke); `suspect` is the member the failure was detected against.
using FailureCallback = std::function<void(GroupId group, NodeId suspect)>;

/// Virtual-or-real clock, seconds. SimFabric users pass the simulator
/// clock; MemFabric users the default steady clock.
using Clock = std::function<double()>;

Clock steady_clock_seconds();

/// Consumer of completions for a set of queue pairs (implemented by the
/// RDMC Group engine and by the small-message protocol of §4.6).
class QpSink {
 public:
  virtual ~QpSink() = default;
  virtual void on_completion(const fabric::Completion& c,
                             std::size_t pair_index) = 0;
  virtual void on_failure_notice(NodeId suspect) = 0;
};

class Group;
class SmallMessageGroup;
struct SmallGroupOptions;
namespace derecho_lite {
class AtomicGroup;
}

/// Per-member RDMC instance. Thread-safe; callbacks are invoked on the
/// fabric's completion thread for this endpoint.
class Node {
 public:
  Node(fabric::Fabric& fabric, NodeId id, Clock clock = {});
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Create a new group with the designated members (first member is the
  /// root). Must be called by every member with identical arguments;
  /// returns false if the group id is in use or the arguments are invalid.
  bool create_group(GroupId group, std::vector<NodeId> members,
                    GroupOptions options,
                    IncomingMessageCallback incoming_message,
                    MessageCompletionCallback message_completion,
                    FailureCallback on_failure = {});

  /// Destroy the group and deallocate associated resources. Returns false
  /// (and still destroys) if the group had failed — mirroring the paper's
  /// "failure is always reported when closing the group" (§4.6).
  ///
  /// Group ids name fabric channels, so an id must not be reused while any
  /// member still holds the old group (the paper's recovery flow likewise
  /// re-forms groups under fresh numbers). Fresh ids are always safe.
  bool destroy_group(GroupId group);

  /// Attempt to send a message to the group. Fails if this node is not the
  /// root, the group is unknown/failed, or size is 0 or >= 4 GiB (the size
  /// immediate is 32-bit). Messages queue and transmit in order.
  bool send(GroupId group, std::byte* data, std::size_t size);

  // -- Small-message protocol (§4.6) --------------------------------------
  // One-sided writes into per-receiver round-robin bounded buffers; up to
  // ~5x faster than RDMC for small messages in small groups, while the
  // binomial pipeline dominates beyond ~16 members / ~10 KB.

  /// Create a small-message group (same collective contract and id space
  /// as create_group; ids must not collide across the two kinds).
  bool create_small_group(
      GroupId group, std::vector<NodeId> members,
      const SmallGroupOptions& options,
      std::function<void(const std::byte* data, std::size_t size)> deliver,
      std::function<void(std::size_t seq)> sent = {},
      FailureCallback on_failure = {});

  /// Root only: send one small message (size <= options.slot_size). The
  /// buffer must stay valid until the `sent` callback fires for its
  /// sequence number. Returns false when the group is unknown/failed, the
  /// caller is not the root, or the send window is full (backpressure).
  bool send_small(GroupId group, const std::byte* data, std::size_t size);

  bool destroy_small_group(GroupId group);

  /// True once the group has observed a failure.
  bool group_failed(GroupId group) const;

  /// Reliable control-plane messaging over the out-of-band mesh, scoped by
  /// group id (used by layers above RDMC, e.g. the atomic-multicast
  /// extension's cleanup protocol, §4.6).
  void send_control(GroupId group, NodeId to, std::vector<std::byte> payload);
  void register_control_handler(
      GroupId group,
      std::function<void(NodeId from, std::span<const std::byte>)> handler);
  void unregister_control_handler(GroupId group);

  NodeId id() const { return id_; }
  const Clock& clock() const { return clock_; }
  fabric::Fabric& fabric() { return fabric_; }
  fabric::Endpoint& endpoint() { return endpoint_; }

  /// Aggregate per-group statistics (see Group::Stats in group.hpp).
  const Group* group(GroupId group) const;

 private:
  friend class Group;
  friend class SmallMessageGroup;
  friend class derecho_lite::AtomicGroup;

  void on_completion(const fabric::Completion& c);
  void on_oob(NodeId from, std::span<const std::byte> payload);
  /// Relay a failure observation to all members of a group (§3 item 6).
  void relay_failure(GroupId group, const std::vector<NodeId>& members,
                     NodeId suspect);
  void register_qp(fabric::QpId qp, QpSink* sink, std::size_t pair_index);
  /// Move every queue pair routed to `sink` into the retired set and purge
  /// its buffered unrouted completions (group teardown, §4.6).
  void retire_qps(QpSink* sink);

  fabric::Fabric& fabric_;
  fabric::Endpoint& endpoint_;
  NodeId id_;
  Clock clock_;
  /// Reentrant by necessity: completion dispatch re-enters the Node through
  /// user callbacks (a delivery handler may create or destroy groups), and
  /// Clang Thread Safety Analysis has no reentrancy model — so this stays a
  /// raw recursive mutex outside the util::Mutex vocabulary (DESIGN.md §11).
  // rdmc-lint: allow(raw-mutex) reentrant completion dispatch; TSA cannot model recursive locking
  mutable std::recursive_mutex mutex_;
  std::unordered_map<GroupId, std::unique_ptr<Group>> groups_;
  std::unordered_map<GroupId, std::unique_ptr<SmallMessageGroup>>
      small_groups_;
  std::unordered_map<fabric::QpId, std::pair<QpSink*, std::size_t>> qp_map_;
  std::unordered_map<GroupId,
                     std::function<void(NodeId, std::span<const std::byte>)>>
      control_handlers_;
  /// Completions for queue pairs not registered yet. create_group is
  /// collective but not synchronised (the paper barriers over its TCP
  /// mesh); a member that creates the group early may send ready-for-block
  /// credits before a peer has created its side. Those completions are
  /// buffered here and replayed on registration.
  std::vector<fabric::Completion> unrouted_;
  /// Queue pairs of destroyed groups. Their dead-epoch completions (often
  /// flushes racing the teardown) are dropped instead of being buffered in
  /// unrouted_, where they would eventually crowd out genuine early
  /// credits during long recovery campaigns. register_qp removes the id
  /// again: a re-formed group reusing a channel gets the same QP back.
  std::unordered_set<fabric::QpId> retired_qps_;
};

}  // namespace rdmc
