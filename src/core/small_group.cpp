#include "core/small_group.hpp"

#include <algorithm>
#include <cassert>

#include "obs/stall.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace rdmc {

namespace {
/// Small-message groups share the fabric channel namespace with RDMC
/// groups; offset them so ids never collide with block-transfer QPs.
constexpr std::uint32_t kSmallChannelBase = 0x40000000u;
}  // namespace

SmallMessageGroup::SmallMessageGroup(
    Node& node, GroupId id, std::vector<NodeId> members,
    const SmallGroupOptions& options,
    std::function<void(const std::byte*, std::size_t)> deliver,
    std::function<void(std::size_t)> sent, FailureCallback on_failure)
    : node_(node),
      id_(id),
      members_(std::move(members)),
      options_(options),
      deliver_(std::move(deliver)),
      sent_(std::move(sent)),
      on_failure_(std::move(on_failure)) {
  assert(members_.size() >= 2);
  assert(options_.slot_size > 0 && options_.ring_depth > 0);
  const auto self = std::find(members_.begin(), members_.end(), node_.id());
  assert(self != members_.end());
  rank_ = static_cast<std::size_t>(self - members_.begin());

  const std::uint32_t channel =
      kSmallChannelBase | static_cast<std::uint32_t>(id_);
  if (rank_ == 0) {
    // Root: a star of QPs, one per receiver.
    peers_.reserve(members_.size() - 1);
    for (std::size_t r = 1; r < members_.size(); ++r) {
      Peer peer;
      peer.node = members_[r];
      peer.qp = node_.fabric().connect(node_.id(), peer.node, channel);
      // The ring starts fully free.
      peer.consumed = 0;
      peers_.push_back(peer);
    }
    for (std::size_t i = 0; i < peers_.size(); ++i)
      node_.register_qp(peers_[i].qp->id(), this, i);
  } else {
    // Receiver: expose the ring window and bind the single QP to the root.
    ring_.resize(options_.slot_size * options_.ring_depth);
    node_.endpoint().register_window(
        static_cast<std::uint32_t>(channel),
        fabric::MemoryView{ring_.data(), ring_.size()});
    root_qp_ = node_.fabric().connect(node_.id(), members_[0], channel);
    node_.register_qp(root_qp_->id(), this, 0);
    // Announce readiness (ring registered; all slots free).
    root_qp_->post_write_imm(0, 0);
  }
}

SmallMessageGroup::~SmallMessageGroup() {
  for (Peer& peer : peers_) {
    if (peer.qp != nullptr) peer.qp->close();
  }
  if (root_qp_ != nullptr) root_qp_->close();
  if (rank_ != 0) {
    // Fence the ring before it is freed (RDMA memory deregistration).
    node_.endpoint().unregister_window(
        kSmallChannelBase | static_cast<std::uint32_t>(id_));
  }
}

bool SmallMessageGroup::send(const std::byte* data, std::size_t size) {
  if (rank_ != 0 || failed_) return false;
  if (size == 0 || size > options_.slot_size) return false;
  // Bounded buffers: refuse (backpressure) if any receiver has not
  // registered its ring yet or its ring would be overrun. Callers retry
  // after the `sent` callback advances.
  for (const Peer& peer : peers_) {
    if (!peer.ready) return false;
    if (next_seq_ >= peer.consumed + options_.ring_depth) return false;
  }
  const std::uint64_t seq = next_seq_++;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kCore, "smsg", node_.id(),
              obs::msg_span_id(id_, seq), node_.clock()(),
              "group,seq,bytes", static_cast<std::uint32_t>(id_), seq, size);
  const std::uint64_t offset = (seq % options_.ring_depth) *
                               options_.slot_size;
  const std::uint32_t channel =
      kSmallChannelBase | static_cast<std::uint32_t>(id_);
  // Signal only every signal_period-th write (FIFO per QP: a signaled
  // completion for seq s implies every write up to s finished) — real
  // senders batch doorbells and signals the same way.
  const bool signal =
      (seq % options_.signal_period) == options_.signal_period - 1;
  for (Peer& peer : peers_) {
    peer.qp->post_window_write(
        channel, offset,
        fabric::MemoryView{const_cast<std::byte*>(data), size},
        static_cast<std::uint32_t>(size), /*wr_id=*/seq, signal);
  }
  return true;
}

void SmallMessageGroup::note_send_progress() {
  // A message is complete once its writes finished at every receiver
  // (per-QP FIFO lets the batched signal for seq s vouch for all <= s).
  std::uint64_t done = next_seq_;
  for (const Peer& peer : peers_) done = std::min(done, peer.writes_done);
  while (sent_complete_ < done) {
    const std::size_t seq = sent_complete_++;
    if (sent_) sent_(seq);
  }
}

void SmallMessageGroup::on_completion(const fabric::Completion& c,
                                      std::size_t pair_index) {
  if (failed_) return;
  switch (c.opcode) {
    case fabric::WcOpcode::kWindowWrite: {
      if (c.status != fabric::WcStatus::kSuccess) {
        fail(peers_[pair_index].node, true);
        return;
      }
      assert(rank_ == 0);
      // Batched signal: write seq c.wr_id completing implies all earlier
      // writes on this QP completed.
      peers_[pair_index].writes_done = std::max<std::uint64_t>(
          peers_[pair_index].writes_done, c.wr_id + 1);
      note_send_progress();
      break;
    }
    case fabric::WcOpcode::kRecvWindowWrite: {
      // A message landed in our ring. FIFO per QP makes arrival order the
      // sequence order; the offset (c.wr_id) must match our cursor.
      assert(rank_ != 0);
      const std::uint64_t expect_offset =
          (delivered_ % options_.ring_depth) * options_.slot_size;
      assert(c.wr_id == expect_offset && "ring sequence out of order");
      (void)expect_offset;
      if (deliver_) deliver_(ring_.data() + c.wr_id, c.byte_len);
      if (auto* tr = obs::tracer())
        tr->end(obs::Cat::kCore, "smsg", node_.id(),
                obs::msg_span_id(id_, delivered_), node_.clock()(),
                "group,seq,bytes", static_cast<std::uint32_t>(id_),
                delivered_, c.byte_len);
      ++delivered_;
      // Return consumption credits in batches (a real receiver bumps a
      // polled counter; per-message acks would cost a completion each).
      // The batch size divides ring_depth, so a full ring always crosses
      // a batch boundary and the sender can never deadlock; the window
      // is effectively ring_depth - batch + 1 deep.
      const std::uint64_t batch =
          std::max<std::uint64_t>(1, options_.ring_depth / 4);
      if (delivered_ % batch == 0) {
        root_qp_->post_write_imm(static_cast<std::uint32_t>(delivered_), 0);
      }
      break;
    }
    case fabric::WcOpcode::kRecvWriteImm: {
      // Consumption credit from a receiver (the initial write with
      // credit 0 announces the ring window is registered).
      if (rank_ == 0) {
        Peer& peer = peers_[pair_index];
        peer.ready = true;
        peer.consumed = std::max<std::uint64_t>(peer.consumed, c.immediate);
      }
      break;
    }
    case fabric::WcOpcode::kWriteImm:
      break;  // our own credit write finished
    case fabric::WcOpcode::kDisconnect: {
      const NodeId suspect =
          rank_ == 0 ? peers_[pair_index].node : members_[0];
      fail(suspect, true);
      break;
    }
    case fabric::WcOpcode::kSend:
    case fabric::WcOpcode::kRecv:
      // Two-sided traffic never flows on small-group QPs.
      if (c.status != fabric::WcStatus::kSuccess) {
        fail(rank_ == 0 ? peers_[pair_index].node : members_[0], true);
      }
      break;
    case fabric::WcOpcode::kSendUd:
    case fabric::WcOpcode::kRecvUd:
      break;  // datagrams never flow on small-group QPs
  }
}

void SmallMessageGroup::on_failure_notice(NodeId suspect) {
  fail(suspect, false);
}

void SmallMessageGroup::fail(NodeId suspect, bool relay) {
  if (failed_) return;
  failed_ = true;
  RDMC_LOG_INFO("core", "small group %d failed (suspect node %u)", id_,
                suspect);
  if (relay) node_.relay_failure(id_, members_, suspect);
  if (on_failure_) on_failure_(id_, suspect);
}

}  // namespace rdmc
