// Small-message protocol (paper §4.6 "Small messages").
//
// RDMC is built for bulk transfers; for small messages Derecho layers an
// optimised protocol over one-sided RDMA writes "into a set of round-robin
// bounded buffers, one per receiver", which the paper reports is up to 5x
// faster than RDMC for groups of up to ~16 members and messages up to
// ~10 KB — beyond that, the binomial pipeline dominates.
//
// This is that protocol. Each receiver exposes a ring of `ring_depth`
// slots of `slot_size` bytes as a one-sided window. The root writes
// message seq into slot (seq % ring_depth) of every receiver's ring with
// the byte count as the immediate; per-QP FIFO makes the arrival order the
// sequence order, so no headers are needed. Receivers return cumulative
// consumption credits with tiny one-sided writes; the root never lets more
// than `ring_depth` messages be outstanding toward any receiver, so slots
// are never overwritten while live (the bounded-buffer discipline).
//
// Failure semantics mirror the RDMC group: a broken connection fails the
// group everywhere via the out-of-band relay.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/rdmc.hpp"

namespace rdmc {

struct SmallGroupOptions {
  /// Maximum message size (a ring slot).
  std::size_t slot_size = 10 * 1024;
  /// Slots per receiver ring; bounds sender-side pipelining. Credits
  /// return in ring_depth/4 batches, so the effective window is
  /// ring_depth - ring_depth/4 + 1.
  std::size_t ring_depth = 32;
  /// Sender-side completion signalling period: 1 signals every write (the
  /// `sent` callback is precise); k>1 signals every k-th write (cheaper —
  /// real senders batch signals — but `sent` lags up to k-1 messages until
  /// the next signaled write).
  std::size_t signal_period = 1;
};

class SmallMessageGroup final : public QpSink {
 public:
  SmallMessageGroup(
      Node& node, GroupId id, std::vector<NodeId> members,
      const SmallGroupOptions& options,
      std::function<void(const std::byte* data, std::size_t size)> deliver,
      std::function<void(std::size_t seq)> sent, FailureCallback on_failure);
  ~SmallMessageGroup() override;

  SmallMessageGroup(const SmallMessageGroup&) = delete;
  SmallMessageGroup& operator=(const SmallMessageGroup&) = delete;

  GroupId id() const { return id_; }
  bool is_root() const { return rank_ == 0; }
  bool failed() const { return failed_; }
  const std::vector<NodeId>& members() const { return members_; }

  /// Root only. False on overflow (any receiver's window full), failure,
  /// or size > slot_size. The buffer must remain valid until `sent(seq)`.
  bool send(const std::byte* data, std::size_t size);

  /// Messages fully acknowledged (safe high-water mark for buffer reuse).
  std::size_t sent_count() const { return sent_complete_; }

  // QpSink
  void on_completion(const fabric::Completion& c,
                     std::size_t pair_index) override;
  void on_failure_notice(NodeId suspect) override;

 private:
  struct Peer {
    NodeId node = 0;
    fabric::QueuePair* qp = nullptr;
    /// The receiver announced its ring window (first credit write seen);
    /// sending before this would fault on an unregistered window.
    bool ready = false;
    /// Cumulative messages the receiver has consumed (freed slots).
    std::uint64_t consumed = 0;
    /// Cumulative write completions observed for this peer.
    std::uint64_t writes_done = 0;
  };

  void fail(NodeId suspect, bool relay);
  void note_send_progress();

  Node& node_;
  GroupId id_;
  std::vector<NodeId> members_;
  SmallGroupOptions options_;
  std::function<void(const std::byte*, std::size_t)> deliver_;
  std::function<void(std::size_t)> sent_;
  FailureCallback on_failure_;

  std::size_t rank_ = 0;
  bool failed_ = false;

  // Root state.
  std::vector<Peer> peers_;
  std::uint64_t next_seq_ = 0;        // next message sequence to send
  std::uint64_t sent_complete_ = 0;   // messages with all writes+acks done

  // Receiver state.
  std::vector<std::byte> ring_;
  std::uint64_t delivered_ = 0;       // messages consumed (== credits)
  fabric::QueuePair* root_qp_ = nullptr;
};

}  // namespace rdmc
