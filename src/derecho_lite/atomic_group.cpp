#include "derecho_lite/atomic_group.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "util/logging.hpp"

namespace rdmc::derecho_lite {

namespace {
/// Fabric channel / window namespace for status tables.
constexpr std::uint32_t kStatusChannelBase = 0x20000000u;

struct ControlMsg {
  enum Type : std::uint32_t { kReport = 0, kDecision = 1 };
  std::uint32_t type = kReport;
  NodeId suspect = 0;
  std::uint64_t count = 0;
};
}  // namespace

AtomicGroup::AtomicGroup(Node& node, GroupId id, std::vector<NodeId> members,
                         AtomicGroupOptions options,
                         AtomicDeliveryCallback deliver,
                         WedgedCallback on_wedged)
    : node_(node),
      id_(id),
      members_(std::move(members)),
      options_(options),
      deliver_(std::move(deliver)),
      on_wedged_(std::move(on_wedged)),
      data_group_(id) {
  assert(members_.size() >= 2);
  const auto self = std::find(members_.begin(), members_.end(), node_.id());
  assert(self != members_.end());
  rank_ = static_cast<std::size_t>(self - members_.begin());

  status_.assign(members_.size(), 0);
  survivor_counts_.assign(members_.size(), std::nullopt);

  // Expose the status table for one-sided writes and connect the status
  // mesh (all-to-all; member r writes its count into slot r everywhere).
  const std::uint32_t channel =
      kStatusChannelBase | static_cast<std::uint32_t>(id_);
  node_.endpoint().register_window(
      channel, fabric::MemoryView{
                   reinterpret_cast<std::byte*>(status_.data()),
                   status_.size() * sizeof(std::uint64_t)});
  status_qps_.assign(members_.size(), nullptr);
  for (std::size_t r = 0; r < members_.size(); ++r) {
    if (r == rank_) continue;
    status_qps_[r] = node_.fabric().connect(node_.id(), members_[r], channel);
    node_.register_qp(status_qps_[r]->id(), this, r);
  }

  node_.register_control_handler(
      id_, [this](NodeId from, std::span<const std::byte> payload) {
        on_control(from, payload);
      });

  // The underlying RDMC group carries the bulk data (§4.6: "transfers all
  // messages over RDMC").
  const bool ok = node_.create_group(
      data_group_, members_, options_.rdmc,
      [this](std::size_t size) {
        staging_.assign(size, std::byte{0});
        return fabric::MemoryView{staging_.data(), size};
      },
      [this](std::byte*, std::size_t) {
        if (rank_ != 0) on_raw_receipt(std::move(staging_));
      },
      [this](GroupId, NodeId suspect) { on_rdmc_failure(suspect); });
  assert(ok && "underlying RDMC group creation failed");
  (void)ok;
}

AtomicGroup::~AtomicGroup() {
  // Retire the status-table queue pairs (registered with this object as
  // their sink) under the Node lock BEFORE anything else: close() below
  // flushes posted work, and those dead-epoch completions would otherwise
  // dispatch through Node::qp_map_ into a freed sink — a teardown
  // use-after-free the completion thread hit a few percent of the time.
  // destroy_group does the same for the data-plane group's pairs.
  {
    std::lock_guard lock(node_.mutex_);
    node_.retire_qps(this);
  }
  for (auto* qp : status_qps_) {
    if (qp != nullptr) qp->close();
  }
  node_.unregister_control_handler(id_);
  node_.destroy_group(data_group_);
  // Fence the status table before it is freed.
  node_.endpoint().unregister_window(
      kStatusChannelBase | static_cast<std::uint32_t>(id_));
}

bool AtomicGroup::send(const std::byte* data, std::size_t size) {
  // All other entry points run under the Node lock (completion and OOB
  // handlers); serialise the caller-thread send path with them.
  std::lock_guard lock(node_.mutex_);
  if (rank_ != 0 || failed_) return false;
  // RDMC owns the wire copy; we keep our own so the message can be
  // delivered locally once stable.
  std::vector<std::byte> copy(data, data + size);
  if (!node_.send(data_group_, copy.data(), copy.size())) return false;
  // The send buffer must outlive the transfer: park the copy in pending_
  // immediately (it is the next sequence number from this root).
  on_raw_receipt(std::move(copy));
  return true;
}

void AtomicGroup::on_raw_receipt(std::vector<std::byte> message) {
  if (wedged_) return;
  pending_.push_back(std::move(message));
  ++received_;
  status_[rank_] = received_;
  if (received_ % options_.status_period == 0) push_status();
  deliver_stable();
}

void AtomicGroup::push_status() {
  const std::uint32_t channel =
      kStatusChannelBase | static_cast<std::uint32_t>(id_);
  ++status_writes_;
  for (std::size_t r = 0; r < members_.size(); ++r) {
    if (r == rank_ || status_qps_[r] == nullptr) continue;
    // One-sided update of our slot in the peer's table; unsignaled — no
    // sender-side bookkeeping is needed (the SST discipline).
    status_qps_[r]->post_window_write(
        channel, rank_ * sizeof(std::uint64_t),
        fabric::MemoryView{
            reinterpret_cast<std::byte*>(&status_[rank_]),
            sizeof(std::uint64_t)},
        static_cast<std::uint32_t>(status_[rank_]), status_[rank_],
        /*signaled=*/false);
  }
}

std::size_t AtomicGroup::stable_count() const {
  std::uint64_t stable = status_[0];
  for (std::size_t r = 1; r < members_.size(); ++r)
    stable = std::min(stable, status_[r]);
  return static_cast<std::size_t>(stable);
}

void AtomicGroup::deliver_stable() {
  const std::size_t stable = stable_count();
  while (delivered_ < stable && !pending_.empty()) {
    const std::vector<std::byte> message = std::move(pending_.front());
    pending_.pop_front();
    const std::size_t seq = delivered_++;
    if (deliver_) deliver_(seq, message.data(), message.size());
  }
}

void AtomicGroup::on_completion(const fabric::Completion& c,
                                std::size_t pair_index) {
  switch (c.opcode) {
    case fabric::WcOpcode::kRecvWindowWrite:
      // A peer bumped its slot in our table (the bytes already landed);
      // re-evaluate stability.
      if (!wedged_) deliver_stable();
      break;
    case fabric::WcOpcode::kDisconnect:
      on_rdmc_failure(members_[pair_index]);
      break;
    default:
      break;  // unsignaled writes produce nothing else of interest
  }
}

void AtomicGroup::on_failure_notice(NodeId suspect) {
  on_rdmc_failure(suspect);
}

void AtomicGroup::on_rdmc_failure(NodeId suspect) {
  if (failed_ || wedged_) return;
  failed_ = true;
  suspect_ = suspect;
  RDMC_LOG_INFO("derecho_lite", "group %d: failure (suspect %u); starting "
                "leader cleanup", id_, suspect);
  // §4.6: "a leader-based cleanup mechanism ... to collect state from all
  // surviving nodes, analyze the outcome, and then tell the participants
  // which buffered messages to deliver and which to discard."
  // Every survivor reports its received count to the lowest-ranked
  // survivor.
  NodeId leader = members_[0];
  for (NodeId m : members_) {
    if (m != suspect) {
      leader = m;
      break;
    }
  }
  ControlMsg report{ControlMsg::kReport, suspect_, received_};
  std::vector<std::byte> payload(sizeof report);
  std::memcpy(payload.data(), &report, sizeof report);
  if (node_.id() == leader) {
    // Record our own report locally.
    survivor_counts_[rank_] = received_;
    maybe_decide();
  } else {
    node_.send_control(id_, leader, std::move(payload));
  }
}

void AtomicGroup::on_control(NodeId from, std::span<const std::byte> payload) {
  if (payload.size() < sizeof(ControlMsg)) return;
  ControlMsg msg;
  std::memcpy(&msg, payload.data(), sizeof msg);
  if (msg.type == ControlMsg::kReport) {
    // Leader side: a survivor's count. A report can arrive before we have
    // locally observed the failure; adopt its suspect and join cleanup.
    if (!failed_) on_rdmc_failure(msg.suspect);
    const auto it = std::find(members_.begin(), members_.end(), from);
    if (it == members_.end()) return;
    survivor_counts_[static_cast<std::size_t>(it - members_.begin())] =
        msg.count;
    maybe_decide();
  } else if (msg.type == ControlMsg::kDecision) {
    if (!failed_) on_rdmc_failure(msg.suspect);
    wedge(static_cast<std::size_t>(msg.count), msg.suspect);
  }
}

void AtomicGroup::maybe_decide() {
  // Leader: once every survivor reported, the safe prefix is the minimum —
  // every survivor provably holds those messages.
  std::uint64_t safe = received_;
  for (std::size_t r = 0; r < members_.size(); ++r) {
    if (members_[r] == suspect_) continue;
    if (r == rank_) continue;
    if (!survivor_counts_[r].has_value()) return;  // still collecting
    safe = std::min(safe, *survivor_counts_[r]);
  }
  ControlMsg decision{ControlMsg::kDecision, suspect_, safe};
  std::vector<std::byte> payload(sizeof decision);
  std::memcpy(payload.data(), &decision, sizeof decision);
  for (NodeId m : members_) {
    if (m == suspect_ || m == node_.id()) continue;
    node_.send_control(id_, m, payload);
  }
  wedge(static_cast<std::size_t>(safe), suspect_);
}

void AtomicGroup::wedge(std::size_t safe_prefix, NodeId suspect) {
  if (wedged_) return;
  wedged_ = true;
  // Deliver exactly the agreed prefix; discard the rest (§4.6: "which
  // buffered messages to deliver and which to discard").
  while (delivered_ < safe_prefix && !pending_.empty()) {
    const std::vector<std::byte> message = std::move(pending_.front());
    pending_.pop_front();
    const std::size_t seq = delivered_++;
    if (deliver_) deliver_(seq, message.data(), message.size());
  }
  pending_.clear();
  if (on_wedged_) on_wedged_(safe_prefix, suspect);
}

}  // namespace rdmc::derecho_lite
