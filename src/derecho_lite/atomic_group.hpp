// Atomic multicast over RDMC — the Derecho layering sketched in §4.6.
//
// "Derecho augments RDMC with a replicated status table implemented using
// one-sided RDMA writes. On reception of an RDMC message, Derecho buffers
// it briefly. Delivery occurs only after every receiver has a copy of the
// message, which receivers discover by monitoring the status table."
//
// AtomicGroup wraps an RDMC group and adds exactly that:
//   * a *status table* — every member holds an n-slot array of received
//     counts and pushes its own count into every other member's table with
//     one-sided window writes (the SST pattern);
//   * *stability-gated delivery* — a raw RDMC receipt is buffered; it is
//     delivered (in order, with its sequence number) once min over the
//     table says every member holds it. All members therefore deliver the
//     same messages in the same order, and no message is delivered
//     anywhere until it is everywhere (atomic multicast for the
//     failure-free path);
//   * *leader-based cleanup* (§4.6 Recovery From Failure) — when the RDMC
//     group fails, the lowest-ranked survivor collects received counts
//     from all survivors over the control mesh, computes the common safe
//     prefix, and announces it; every survivor then delivers exactly that
//     prefix and reports the group wedged. Survivors thus agree on the
//     delivered sequence even across the failure.
//
// Like Derecho, the layer adds "a small delay" and no bandwidth cost: the
// status writes are tiny one-sided updates off the bulk data path.
//
// Thread-safety: externally synchronised by the owning Node's recursive
// lock (DESIGN.md §11). Every entry point except send() is a completion,
// OOB, or control callback, which the Node invokes with its lock held;
// send() takes the same lock itself. AtomicGroup therefore owns no mutex
// and carries no annotations — its state inherits the Node's exclusion.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/group.hpp"
#include "core/rdmc.hpp"

namespace rdmc::derecho_lite {

/// Atomic delivery: sequence number plus the message bytes (owned by the
/// group; valid for the duration of the callback).
using AtomicDeliveryCallback = std::function<void(
    std::size_t seq, const std::byte* data, std::size_t size)>;

/// The group wedged after a failure; `safe_prefix` messages were (or will
/// have been) delivered by every survivor — the agreed common prefix.
using WedgedCallback =
    std::function<void(std::size_t safe_prefix, NodeId suspect)>;

struct AtomicGroupOptions {
  GroupOptions rdmc;
  /// Push a status update after every message (1) or every k-th (cheaper).
  std::size_t status_period = 1;
};

class AtomicGroup final : public QpSink {
 public:
  AtomicGroup(Node& node, GroupId id, std::vector<NodeId> members,
              AtomicGroupOptions options, AtomicDeliveryCallback deliver,
              WedgedCallback on_wedged = {});
  ~AtomicGroup() override;

  AtomicGroup(const AtomicGroup&) = delete;
  AtomicGroup& operator=(const AtomicGroup&) = delete;

  /// Root only: multicast a message atomically. The buffer must stay valid
  /// until the message's atomic delivery at this node.
  bool send(const std::byte* data, std::size_t size);

  bool is_root() const { return rank_ == 0; }
  bool wedged() const { return wedged_; }
  /// Messages atomically delivered at this member so far.
  std::size_t delivered() const { return delivered_; }
  /// Messages received (raw RDMC receipt) at this member so far.
  std::size_t received() const { return received_; }

  // QpSink (status-table queue pairs).
  void on_completion(const fabric::Completion& c,
                     std::size_t pair_index) override;
  void on_failure_notice(NodeId suspect) override;

 private:
  void on_raw_receipt(std::vector<std::byte> message);
  /// Push our received count into every peer's status table.
  void push_status();
  /// Deliver every buffered message the table proves globally received.
  void deliver_stable();
  std::size_t stable_count() const;
  void on_rdmc_failure(NodeId suspect);
  void on_control(NodeId from, std::span<const std::byte> payload);
  /// Leader: decide the safe prefix once every survivor reported.
  void maybe_decide();
  void wedge(std::size_t safe_prefix, NodeId suspect);

  Node& node_;
  GroupId id_;
  std::vector<NodeId> members_;
  AtomicGroupOptions options_;
  AtomicDeliveryCallback deliver_;
  WedgedCallback on_wedged_;

  std::size_t rank_ = 0;
  GroupId data_group_;  // the underlying RDMC group id (== id_)

  /// status_[r]: messages member r is known to have received. Our own slot
  /// is authoritative locally; peers' slots arrive via one-sided writes.
  std::vector<std::uint64_t> status_;
  std::vector<fabric::QueuePair*> status_qps_;  // one per peer (rank order)

  /// Landing buffer for the in-flight RDMC message.
  std::vector<std::byte> staging_;
  /// Messages received but not yet stable, in sequence order.
  std::deque<std::vector<std::byte>> pending_;
  std::size_t received_ = 0;
  std::size_t delivered_ = 0;
  std::uint64_t status_writes_ = 0;

  bool failed_ = false;
  bool wedged_ = false;
  // Leader cleanup state.
  std::vector<std::optional<std::uint64_t>> survivor_counts_;
  NodeId suspect_ = 0;
};

}  // namespace rdmc::derecho_lite
