#include "fabric/datagram.hpp"

#include "util/random.hpp"

namespace rdmc::fabric {

namespace {

/// splitmix64 finalizer — the same mixer util::Rng seeds through, used
/// here to fold (seed, src, dst, index) into one verdict-stream seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

void DatagramEngine::set_profile(const DatagramFaultProfile& profile) {
  util::MutexLock lock(mutex_);
  profile_ = profile;
  pairs_.clear();
  counters_ = DatagramCounters{};
}

DatagramFaultProfile DatagramEngine::profile() const {
  util::MutexLock lock(mutex_);
  return profile_;
}

std::vector<UdDelivery> DatagramEngine::on_send(NodeId src, NodeId dst,
                                                MemoryView buf,
                                                std::uint32_t immediate) {
  util::MutexLock lock(mutex_);
  PairState& ps = pairs_[pair_key(src, dst)];
  const std::uint64_t index = ps.next_index++;
  ++counters_.sent;

  // The verdict is a pure function of (seed, src, dst, index): one fresh
  // generator per datagram, all draws made unconditionally so the stream
  // shape never depends on earlier outcomes.
  util::Rng rng(mix(profile_.seed ^ mix(pair_key(src, dst)) ^ mix(index)));
  const bool drop = rng.bernoulli(profile_.loss);
  const bool duplicate = rng.bernoulli(profile_.duplicate);
  const bool reorder =
      profile_.reorder_span > 0 && rng.bernoulli(profile_.reorder);
  const std::uint32_t span = static_cast<std::uint32_t>(
      rng.uniform(1, profile_.reorder_span == 0 ? 1 : profile_.reorder_span));

  std::vector<UdDelivery> out;
  bool held_now = false;
  if (drop) {
    ++counters_.dropped;
  } else if (reorder) {
    ++counters_.reordered;
    held_now = true;
  } else {
    UdDelivery d;
    d.index = index;
    d.immediate = immediate;
    d.view = buf;
    out.push_back(std::move(d));
    if (duplicate) {
      ++counters_.duplicated;
      UdDelivery d2;
      d2.index = index;
      d2.immediate = immediate;
      d2.view = buf;
      out.push_back(std::move(d2));
    }
  }

  // Datagrams held *before* this attempt count it toward their release.
  std::vector<Held> still_held;
  still_held.reserve(ps.held.size());
  for (Held& h : ps.held) {
    if (--h.remaining == 0) {
      UdDelivery d;
      d.index = h.index;
      d.immediate = h.immediate;
      if (h.phantom) {
        d.view = MemoryView{nullptr, static_cast<std::size_t>(h.phantom_size)};
      } else {
        d.owned = std::move(h.payload);
        d.view = MemoryView{d.owned->data(), d.owned->size()};
      }
      out.push_back(std::move(d));
    } else {
      still_held.push_back(std::move(h));
    }
  }
  ps.held = std::move(still_held);

  if (held_now) {
    Held h;
    h.index = index;
    h.immediate = immediate;
    h.remaining = span;
    if (buf.data == nullptr) {
      h.phantom = true;
      h.phantom_size = buf.size;
    } else {
      h.payload.assign(buf.data, buf.data + buf.size);
    }
    ps.held.push_back(std::move(h));
  }
  return out;
}

void DatagramEngine::count_no_recv() {
  util::MutexLock lock(mutex_);
  ++counters_.no_recv;
}

void DatagramEngine::count_delivered() {
  util::MutexLock lock(mutex_);
  ++counters_.delivered;
}

DatagramCounters DatagramEngine::counters() const {
  util::MutexLock lock(mutex_);
  return counters_;
}

}  // namespace rdmc::fabric
