// Shared datagram impairment engine — one implementation for all backends.
//
// The cross-backend parity contract of DatagramFaultProfile (fabric.hpp)
// demands that drop/duplicate/reorder verdicts be a pure function of
// (seed, src, dst, per-directed-pair sequence index), never of timing.
// Rather than trusting three backends to reimplement that identically,
// they all own a DatagramEngine and route every post_send_ud through
// on_send(), which returns the ordered list of datagrams to put on the
// wire *now* — the current datagram (possibly twice, when duplicated),
// plus any previously held-back datagrams whose release point this send
// attempt is. A dropped datagram returns no deliveries; a held datagram
// returns none now and appears in a later call's list.
//
// Reordering is defined in *send attempts*, not time: a held datagram is
// released after 1..reorder_span subsequent on_send calls on its pair.
// Backends that transmit in call order (all three do, per directed pair)
// therefore produce identical wire sequences.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fabric/fabric.hpp"
#include "util/thread_annotations.hpp"

namespace rdmc::fabric {

/// One datagram the backend must transmit as a result of an on_send call.
struct UdDelivery {
  /// Per-directed-pair sequence index of the originating post_send_ud.
  std::uint64_t index = 0;
  std::uint32_t immediate = 0;
  /// Payload to move. For datagrams released from the hold-back buffer
  /// this points into `owned`; for the current datagram it aliases the
  /// caller's buffer and is only valid during the on_send call (backends
  /// that deliver later must copy). data == nullptr is a phantom payload
  /// of `view.size` bytes, as everywhere else.
  MemoryView view{};
  /// Backing storage for held datagrams (empty when `view` aliases the
  /// caller's buffer or the payload is phantom).
  std::optional<std::vector<std::byte>> owned;
};

class DatagramEngine {
 public:
  /// Install a new profile: resets every per-pair stream, drops any
  /// held-back datagrams, zeroes the counters.
  void set_profile(const DatagramFaultProfile& profile);
  DatagramFaultProfile profile() const;

  /// Decide the fate of one posted datagram and collect everything that
  /// goes on the wire now, in transmission order. Thread-safe.
  std::vector<UdDelivery> on_send(NodeId src, NodeId dst, MemoryView buf,
                                  std::uint32_t immediate);

  /// Receiver-side bookkeeping: a datagram arrived but no posted UD recv
  /// could take it.
  void count_no_recv();
  /// A datagram was placed into a posted UD recv.
  void count_delivered();

  DatagramCounters counters() const;

 private:
  struct Held {
    std::uint64_t index = 0;
    std::uint32_t immediate = 0;
    std::uint32_t remaining = 0;  // send attempts until release
    bool phantom = false;
    std::uint64_t phantom_size = 0;
    std::vector<std::byte> payload;
  };
  struct PairState {
    std::uint64_t next_index = 0;
    std::vector<Held> held;  // FIFO by hold order
  };

  static std::uint64_t pair_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  mutable util::Mutex mutex_;
  DatagramFaultProfile profile_ RDMC_GUARDED_BY(mutex_){};
  std::unordered_map<std::uint64_t, PairState> pairs_ RDMC_GUARDED_BY(mutex_);
  DatagramCounters counters_ RDMC_GUARDED_BY(mutex_){};
};

}  // namespace rdmc::fabric
