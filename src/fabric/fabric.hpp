// Verbs-shaped fabric abstraction.
//
// RDMC (the core library) is written against this interface, which captures
// exactly the slice of RDMA reliable-connected (RC) verbs semantics the
// paper relies on (§2):
//
//   * two-sided sends/receives over bound queue pairs, zero-copy between
//     registered buffers, FIFO per QP, no corruption or duplication;
//   * a 32-bit "immediate" value carried with each send (RDMC uses it to
//     announce total message size, §4.2);
//   * a one-sided write-with-immediate used for the tiny ready-for-block
//     notification (§4.2; see DESIGN.md §6 for the modelling note);
//   * completion events on a single per-node completion queue, consumed by
//     one completion thread in polling / interrupt / hybrid mode (§4.2);
//   * connection breakage reported to the surviving endpoint(s) after
//     hardware retry exhaustion (§2, §3 item 6);
//   * an out-of-band control mesh standing in for the N x N TCP mesh the
//     paper bootstraps with (§2).
//
// Beyond the paper's RC slice, every QueuePair also offers an *unreliable
// datagram* service type (post_send_ud / post_recv_ud): per-packet,
// droppable, never break-on-loss — the substrate software-defined
// reliability (SDR-RDMA, arXiv:2505.05366) runs on for lossy/WAN paths.
// Loss, duplication and reordering are injected by a seeded
// DatagramFaultProfile identically on every backend.
//
// Two interchangeable backends implement it:
//   * MemFabric  — real threads, real byte movement (tests, examples);
//   * SimFabric  — discrete-event virtual time at cluster scale (benches).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace rdmc::fabric {

using NodeId = std::uint32_t;
using QpId = std::uint64_t;

/// A view of registered memory. `data` may be null: a *phantom* buffer that
/// moves simulated bytes without touching host memory, used for
/// cluster-scale experiments where allocating 512 x 256 MB is infeasible.
struct MemoryView {
  std::byte* data = nullptr;
  std::size_t size = 0;
};

enum class WcOpcode : std::uint8_t {
  kSend,          // a posted send finished (sender side)
  kRecv,          // a posted receive was filled (receiver side)
  kWriteImm,      // a one-sided write-with-immediate finished (issuer side)
  kRecvWriteImm,  // a one-sided write-with-immediate arrived (target side)
  kWindowWrite,   // a one-sided window write finished (issuer side)
  kRecvWindowWrite,  // a one-sided window write landed (target side)
  kDisconnect,    // the connection broke; peer identifies the QP's peer
  kSendUd,        // a datagram left the local NIC (fire-and-forget)
  kRecvUd,        // a datagram arrived into a posted UD receive
};

enum class WcStatus : std::uint8_t {
  kSuccess,
  kFlushed,  // posted work discarded because the QP broke
  kError,
};

/// Outcome of a QueuePair::post_* call, reported synchronously. Verbs
/// distinguishes "the connection is (known to be) dead" from "the caller
/// handed us garbage"; collapsing both into one bool made every caller
/// guess which recovery path to take (tear the group down vs. fix the
/// arguments). Remote failures (e.g. an out-of-bounds window write
/// detected at the target) still surface asynchronously as a connection
/// break, exactly like a remote-access error on real hardware.
///
/// Thread-safety during fault windows (the contract test_failures
/// exercises): post_* may race freely with fault injection. A post that
/// loses the race either returns kQpBroken, or returns kOk and the work is
/// later flushed (kFlushed completion) — never both, never neither, and
/// never a torn/partial transfer. Completion callbacks are *never* invoked
/// inline from a post_* call or from a FaultInjector method: flush and
/// disconnect completions always arrive on the node's completion thread
/// (its virtual-CPU instant on SimFabric), at most one invocation per node
/// at a time, so a handler observing kDisconnect may immediately re-post
/// elsewhere without reentrancy. Backends assert this single-dispatch
/// invariant.
enum class PostResult : std::uint8_t {
  kOk = 0,
  kQpBroken,  // the connection broke, or the QP was locally closed
  kBadArgs,   // locally detectable misuse (e.g. payload >= 4 GiB: the
              // byte_len/immediate fields are 32-bit)
  kWindowViolation,  // locally detectable window misuse (offset + length
                     // overflows the 64-bit window address space)
};

constexpr bool ok(PostResult r) { return r == PostResult::kOk; }

struct Completion {
  std::uint64_t wr_id = 0;
  WcOpcode opcode = WcOpcode::kSend;
  WcStatus status = WcStatus::kSuccess;
  std::uint32_t byte_len = 0;
  std::uint32_t immediate = 0;
  QpId qp = 0;
  NodeId peer = 0;
};

/// Seeded probabilistic impairment applied to *datagram* (UD) traffic only
/// — the WAN substrate of SDR-RDMA (arXiv:2505.05366). RC connections are
/// never subject to it: reliable-connected verbs retransmit in hardware
/// until the retry budget breaks the connection, while UD exposes every
/// lost packet to software.
///
/// Every per-datagram decision is a pure function of (seed, src, dst, the
/// datagram's per-directed-pair sequence index) — never of wall-clock or
/// virtual timing — so the same profile produces the *identical* sequence
/// of drop/duplicate/reorder verdicts on every backend (the cross-backend
/// parity contract tested by test_ud_fabric).
struct DatagramFaultProfile {
  /// Probability a datagram is silently dropped in the network.
  double loss = 0.0;
  /// Probability a surviving datagram is delivered twice.
  double duplicate = 0.0;
  /// Probability a surviving datagram is held back and released only after
  /// later datagrams on the same directed pair overtake it.
  double reorder = 0.0;
  /// A held datagram is released after 1..reorder_span subsequent send
  /// attempts on its pair (uniformly chosen, same determinism rule).
  std::uint32_t reorder_span = 3;
  /// Seed for the per-pair verdict streams.
  std::uint64_t seed = 0x5D7A6BA5ull;
};

/// Fabric-wide datagram accounting (UD traffic only), exposed through
/// FaultInjector so benches and tests can audit where datagrams went.
struct DatagramCounters {
  std::uint64_t sent = 0;        // post_send_ud calls accepted
  std::uint64_t delivered = 0;   // datagrams placed into a posted UD recv
  std::uint64_t dropped = 0;     // dropped by the fault profile
  std::uint64_t duplicated = 0;  // extra copies injected
  std::uint64_t reordered = 0;   // datagrams held back for later release
  std::uint64_t no_recv = 0;     // arrived with no posted UD recv (or one
                                 // too small) — silently discarded
};

/// How the per-node completion thread detects completions (§4.2, Fig 11).
enum class CompletionMode : std::uint8_t {
  kPolling,    // busy-poll: zero pickup latency, one core at 100%
  kInterrupt,  // event-driven: wakeup latency on every completion
  kHybrid,     // poll for a window after each event, then sleep (default)
};

/// One bound queue pair (one side of an RC connection).
///
/// All post_* calls are non-blocking and thread-safe. They return
/// PostResult::kQpBroken if the connection is (already known to be) broken
/// or the QP was locally closed.
class QueuePair {
 public:
  virtual ~QueuePair() = default;

  QpId id() const { return id_; }
  NodeId peer() const { return peer_; }

  /// Two-sided send carrying an immediate value. Completes with kSend at
  /// the sender and kRecv at the receiver (into its oldest posted recv).
  /// kBadArgs if a real buffer's size does not fit the 32-bit byte_len
  /// field (phantom — null data — buffers are exempt: they model timing
  /// only and may legitimately exceed 4 GiB).
  virtual PostResult post_send(MemoryView buf, std::uint64_t wr_id,
                               std::uint32_t immediate) = 0;

  /// Post a receive buffer. Buffers are consumed in FIFO order.
  /// kBadArgs under the same size rule as post_send.
  virtual PostResult post_recv(MemoryView buf, std::uint64_t wr_id) = 0;

  /// One-sided write-with-immediate: delivers a kRecvWriteImm completion at
  /// the peer without consuming a posted receive. Used for the
  /// ready-for-block notification.
  virtual PostResult post_write_imm(std::uint32_t immediate,
                                    std::uint64_t wr_id) = 0;

  /// One-sided write with payload into the peer's registered memory window
  /// (the RDMA one-sided write-with-immediate mode of §2, as used by
  /// Derecho's small-message and status-table protocols, §4.6): places
  /// `local` at `offset` within the peer's window `window_id` and delivers
  /// a kRecvWindowWrite completion there (no posted receive consumed).
  /// FIFO-ordered with the QP's two-sided sends.
  /// Returns kWindowViolation if `offset + local.size` overflows the
  /// 64-bit window address space (locally detectable misuse); a write
  /// beyond the *remote* window's bounds is only discovered at the target
  /// and breaks the connection asynchronously, like a remote-access error
  /// on real hardware.
  /// `signaled=false` suppresses the issuer-side kWindowWrite completion
  /// (unsignaled verbs posts — senders typically signal every Nth write).
  virtual PostResult post_window_write(std::uint32_t window_id,
                                       std::uint64_t offset, MemoryView local,
                                       std::uint32_t immediate,
                                       std::uint64_t wr_id,
                                       bool signaled = true) = 0;

  // -- Unreliable-datagram service type (SDR-RDMA substrate) ---------------
  //
  // The second QP service type: per-packet, droppable, never break-on-loss.
  // RC semantics make loss a *connection* event (hardware retries, then the
  // QP breaks); that is the right contract inside a datacenter and exactly
  // the wrong one over lossy/WAN paths, where a 1e-3 loss rate would break
  // every connection within a second. UD instead delivers each datagram
  // independently: lost, duplicated, or reordered packets are surfaced to
  // (or hidden from) software, and reliability becomes a schedule-level
  // concern (src/reliability). See DESIGN.md §9.

  /// Fire-and-forget datagram to the peer. Always completes kSendUd at the
  /// sender with kSuccess once the local NIC is done with `buf` — delivery
  /// is NOT implied; the fabric's DatagramFaultProfile may drop, duplicate,
  /// or reorder it, and an unmatched arrival (no posted UD recv) is
  /// silently discarded and counted, never an error. Datagram traffic never
  /// breaks the QP; posting on an already-broken (RC-severed) or closed QP
  /// returns kQpBroken and the datagram is not sent. kBadArgs under the
  /// same 32-bit size rule as post_send.
  virtual PostResult post_send_ud(MemoryView buf, std::uint64_t wr_id,
                                  std::uint32_t immediate) = 0;

  /// Post a receive buffer for datagrams from this QP's peer. UD receives
  /// form their own FIFO queue, separate from the RC receive queue: a
  /// datagram never consumes an RC recv and vice versa. A datagram larger
  /// than the oldest posted UD buffer discards the datagram (counted as
  /// no_recv), not the buffer — unlike RC, where a too-small recv is a
  /// protocol violation that breaks the connection.
  virtual PostResult post_recv_ud(MemoryView buf, std::uint64_t wr_id) = 0;

  /// Locally tear the QP down (RDMA destroy-QP): posted receives are
  /// revoked with a fence — on return no in-flight transfer will touch
  /// their buffers again — and traffic still arriving for this QP is
  /// silently discarded. No completions are delivered after close(); the
  /// peer is NOT notified (group teardown is collective, §4.1). Posting
  /// after close fails. Revocation covers posted UD receives too.
  virtual void close() = 0;

  bool broken() const { return broken_; }

  /// Backend-internal: mark the QP dead after a connection break.
  void mark_broken() { broken_ = true; }

 protected:
  QueuePair(QpId id, NodeId peer) : id_(id), peer_(peer) {}
  QpId id_;
  NodeId peer_;
  bool broken_ = false;
};

/// Per-node endpoint: owns the node's single completion queue/thread and
/// its out-of-band control mesh port.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  virtual NodeId id() const = 0;

  /// Handler invoked for every completion, on the node's completion thread
  /// (MemFabric) or at the node's virtual CPU time (SimFabric). At most one
  /// invocation runs at a time per node. Must be set before traffic flows.
  /// Setting a new handler (including nullptr) synchronises with any
  /// in-flight invocation: once the setter returns, the old handler is
  /// guaranteed not to be running.
  virtual void set_completion_handler(
      std::function<void(const Completion&)> handler) = 0;

  /// Out-of-band reliable control channel (the bootstrap "TCP mesh").
  virtual void send_oob(NodeId to, std::vector<std::byte> payload) = 0;
  virtual void set_oob_handler(
      std::function<void(NodeId from, std::span<const std::byte>)>
          handler) = 0;

  virtual void set_completion_mode(CompletionMode mode) = 0;
  virtual CompletionMode completion_mode() const = 0;

  /// Expose a memory region for one-sided writes from peers (RDMA memory
  /// registration + rkey exchange, collapsed: window ids are agreed out of
  /// band, here by convention). Re-registering an id replaces the region.
  virtual void register_window(std::uint32_t window_id,
                               MemoryView region) = 0;

  /// Withdraw a window. Like RDMA memory deregistration this *fences*: on
  /// return, no in-flight one-sided write will touch the region again, so
  /// the caller may free it. Unknown ids are a no-op.
  virtual void unregister_window(std::uint32_t window_id) = 0;
};

/// First-class failure injection, exposed uniformly by every backend via
/// Fabric::faults().
///
/// The contract, identical across backends (only the notion of "now"
/// differs — SimFabric injects at the current *virtual* instant, MemFabric
/// and TcpFabric immediately in real time):
///
///   * break_link(a, b): every connection between the two nodes breaks.
///     Each non-closed QP side receives kFlushed completions for its posted
///     work followed by exactly one kDisconnect (this is the hardware
///     retry-exhaustion report of §2 that RDMC's failure handling, §3
///     item 6, builds on). Closed QPs receive nothing — close() fences.
///     A no-op if the nodes share no connection.
///   * crash_node(n): the node fail-stops. Every connection it participates
///     in breaks as above (survivors each get their kDisconnect), the node
///     is marked crashed, and all future out-of-band traffic to or from it
///     is silently dropped. Connecting to a crashed node yields a
///     born-broken connection (the QP flushes immediately) rather than a
///     silent hang.
///   * degrade_link(a, b, factor, duration): transient capacity fault —
///     both directions of the pair run at `factor` x their normal bandwidth
///     for `duration` seconds, then recover. Overlapping degradations nest
///     (innermost factor wins until it expires). Only meaningful on
///     backends with a bandwidth model: SimFabric applies it to the flow
///     network; MemFabric/TcpFabric accept and ignore it (they move real
///     bytes with no modelled capacity) — returns false when ignored.
///   * slow_node(n, factor, duration): slow-receiver fault (§3 item 5, the
///     scenario of Fig 9). The node's completion handling runs `factor` x
///     slower for `duration` seconds. SimFabric scales the node's modelled
///     software costs in virtual time; MemFabric/TcpFabric inject a real
///     delay before each completion dispatch on that node's completion
///     thread for a real-time window. Returns false when ignored.
///
/// All injection calls are safe from any thread, including completion
/// handlers. They are asynchronous: completions resulting from an injection
/// surface through the normal completion path, never inline from the call.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  virtual void break_link(NodeId a, NodeId b) = 0;
  virtual void crash_node(NodeId node) = 0;
  virtual bool degrade_link(NodeId a, NodeId b, double factor,
                            double duration_s) = 0;
  virtual bool slow_node(NodeId node, double factor, double duration_s) = 0;

  /// Install the fabric-wide datagram impairment profile (UD traffic only;
  /// RC connections are unaffected). Resets the per-pair verdict streams
  /// and the datagram counters. Applies to datagrams posted after the call;
  /// safe from any thread, like the other injections.
  virtual void set_datagram_faults(const DatagramFaultProfile& profile) = 0;

  /// Snapshot of the fabric-wide datagram accounting.
  virtual DatagramCounters datagram_counters() const = 0;

  /// Ground truth for orchestrators standing in for the external
  /// membership service of §4.6: has `node` been fail-stopped?
  virtual bool crashed(NodeId node) const = 0;
};

/// A fabric instance: a set of endpoints plus connection management.
class Fabric {
 public:
  virtual ~Fabric() = default;

  virtual std::size_t num_nodes() const = 0;
  virtual Endpoint& endpoint(NodeId node) = 0;

  /// Create (or return the existing) queue pair between `a` and `b` on
  /// logical channel `channel` and return `a`'s side. Channels let one node
  /// pair carry several independent QPs (one per RDMC group). Symmetric:
  /// connect(a, b, c) and connect(b, a, c) return the two sides of the same
  /// connection.
  virtual QueuePair* connect(NodeId a, NodeId b, std::uint32_t channel) = 0;

  /// Failure injection for this fabric (see FaultInjector for the
  /// contract). The reference stays valid for the fabric's lifetime.
  virtual FaultInjector& faults() = 0;

  /// Convenience shorthands for the two most common injections.
  void break_link(NodeId a, NodeId b) { faults().break_link(a, b); }
  void crash_node(NodeId node) { faults().crash_node(node); }
};

}  // namespace rdmc::fabric
