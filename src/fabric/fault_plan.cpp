#include "fabric/fault_plan.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "fabric/sim_fabric.hpp"
#include "util/random.hpp"

namespace rdmc::fabric {

namespace {

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrashNode: return "crash";
    case FaultEvent::Kind::kBreakLink: return "break";
    case FaultEvent::Kind::kDegradeLink: return "degrade";
    case FaultEvent::Kind::kSlowNode: return "slow";
  }
  return "?";
}

}  // namespace

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
}

FaultPlan FaultPlan::random(std::uint64_t seed, const FaultPlanSpec& spec) {
  util::Rng rng(seed);
  std::vector<FaultEvent> events;
  if (spec.nodes.size() < 2 || spec.max_events == 0) return FaultPlan{};

  const std::set<NodeId> protect(spec.protect.begin(), spec.protect.end());
  std::set<NodeId> crashed;
  auto crashable = [&] {
    std::vector<NodeId> out;
    if (spec.nodes.size() - crashed.size() <= spec.min_survivors)
      return out;
    for (NodeId n : spec.nodes)
      if (!protect.contains(n) && !crashed.contains(n)) out.push_back(n);
    return out;
  };
  auto pick = [&](const std::vector<NodeId>& from) {
    return from[rng.uniform(0, from.size() - 1)];
  };

  const std::size_t lo = std::min(spec.min_events, spec.max_events);
  const std::size_t count = rng.uniform(lo, spec.max_events);
  for (std::size_t i = 0; i < count; ++i) {
    // Weighted kind selection; crash falls through to a link break when no
    // crashable node remains (so plans keep their event count).
    double w_crash = crashable().empty() ? 0.0 : spec.crash_weight;
    const double total = w_crash + spec.break_weight + spec.degrade_weight +
                         spec.slow_weight;
    if (total <= 0.0) break;
    double roll = rng.uniform01() * total;

    FaultEvent e;
    e.at = rng.uniform01() * spec.window_s;
    if ((roll -= w_crash) < 0.0) {
      e.kind = FaultEvent::Kind::kCrashNode;
      e.node = pick(crashable());
      crashed.insert(e.node);
    } else if ((roll -= spec.break_weight) < 0.0) {
      e.kind = FaultEvent::Kind::kBreakLink;
      e.node = pick(spec.nodes);
      do {
        e.peer = pick(spec.nodes);
      } while (e.peer == e.node);
    } else if ((roll -= spec.degrade_weight) < 0.0) {
      e.kind = FaultEvent::Kind::kDegradeLink;
      e.node = pick(spec.nodes);
      do {
        e.peer = pick(spec.nodes);
      } while (e.peer == e.node);
      e.factor = spec.degrade_factor_lo +
                 rng.uniform01() *
                     (spec.degrade_factor_hi - spec.degrade_factor_lo);
      e.duration_s =
          spec.duration_lo +
          rng.uniform01() * (spec.duration_hi - spec.duration_lo);
    } else {
      e.kind = FaultEvent::Kind::kSlowNode;
      e.node = pick(spec.nodes);
      e.factor =
          spec.slow_factor_lo +
          rng.uniform01() * (spec.slow_factor_hi - spec.slow_factor_lo);
      e.duration_s =
          spec.duration_lo +
          rng.uniform01() * (spec.duration_hi - spec.duration_lo);
    }
    events.push_back(e);
  }
  return FaultPlan(std::move(events));
}

std::vector<NodeId> FaultPlan::crashed_nodes() const {
  std::vector<NodeId> out;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultEvent::Kind::kCrashNode) continue;
    if (std::find(out.begin(), out.end(), e.node) == out.end())
      out.push_back(e.node);
  }
  return out;
}

void FaultPlan::apply(Fabric& fabric, const FaultEvent& event) {
  FaultInjector& inj = fabric.faults();
  switch (event.kind) {
    case FaultEvent::Kind::kCrashNode:
      inj.crash_node(event.node);
      break;
    case FaultEvent::Kind::kBreakLink:
      inj.break_link(event.node, event.peer);
      break;
    case FaultEvent::Kind::kDegradeLink:
      inj.degrade_link(event.node, event.peer, event.factor,
                       event.duration_s);
      break;
    case FaultEvent::Kind::kSlowNode:
      inj.slow_node(event.node, event.factor, event.duration_s);
      break;
  }
}

void FaultPlan::schedule_on(SimFabric& fabric) const {
  sim::Simulator& sim = fabric.simulator();
  const double start = sim.now();
  for (const FaultEvent& e : events_) {
    sim.at(start + e.at, [&fabric, e] { apply(fabric, e); });
  }
}

void FaultPlan::execute_now(Fabric& fabric) const {
  for (const FaultEvent& e : events_) apply(fabric, e);
}

std::string FaultPlan::describe() const {
  std::string out;
  char line[128];
  for (const FaultEvent& e : events_) {
    switch (e.kind) {
      case FaultEvent::Kind::kCrashNode:
        std::snprintf(line, sizeof line, "t=%+.3fms %s node %u\n",
                      e.at * 1e3, kind_name(e.kind), e.node);
        break;
      case FaultEvent::Kind::kBreakLink:
        std::snprintf(line, sizeof line, "t=%+.3fms %s link %u-%u\n",
                      e.at * 1e3, kind_name(e.kind), e.node, e.peer);
        break;
      case FaultEvent::Kind::kDegradeLink:
        std::snprintf(line, sizeof line,
                      "t=%+.3fms %s link %u-%u x%.2f for %.2fms\n",
                      e.at * 1e3, kind_name(e.kind), e.node, e.peer,
                      e.factor, e.duration_s * 1e3);
        break;
      case FaultEvent::Kind::kSlowNode:
        std::snprintf(line, sizeof line,
                      "t=%+.3fms %s node %u x%.1f for %.2fms\n", e.at * 1e3,
                      kind_name(e.kind), e.node, e.factor,
                      e.duration_s * 1e3);
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace rdmc::fabric
