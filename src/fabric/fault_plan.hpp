// Fault plans: declarative, seeded fault-injection campaigns.
//
// A FaultPlan is a list of timed fault events (node crashes, link breaks,
// transient bandwidth degradations, slow receivers) replayed against any
// fabric's FaultInjector. Plans exist so the §4.6 recovery machinery can be
// exercised systematically: `FaultPlan::random(seed, spec)` derives a
// deterministic plan from a seed, the chaos campaign sweeps hundreds of
// seeds, and any failing seed replays bit-identically for debugging.
//
// Timestamps are seconds relative to the plan's start. On SimFabric,
// schedule_on() turns them into virtual-time events on the simulator's
// queue, so a crash at t=2ms lands mid-transfer with full determinism. On
// the immediate-mode backends (Mem/Tcp) execute_now() applies every event
// back-to-back, which still exercises the failure paths but without timing
// control.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fabric/fabric.hpp"

namespace rdmc::fabric {

class SimFabric;

/// One timed fault. Which fields matter depends on `kind`:
///   kCrashNode   — node
///   kBreakLink   — node, peer
///   kDegradeLink — node, peer, factor (<1), duration_s
///   kSlowNode    — node, factor (>1), duration_s
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrashNode,
    kBreakLink,
    kDegradeLink,
    kSlowNode,
  };
  Kind kind = Kind::kCrashNode;
  double at = 0.0;  // seconds from plan start
  NodeId node = 0;
  NodeId peer = 0;
  double factor = 1.0;
  double duration_s = 0.0;
};

/// Knobs for FaultPlan::random. Weights select event kinds in proportion;
/// a weight of 0 disables that kind. Crashes respect `protect` (members
/// that must survive, e.g. the root) and `min_survivors`.
struct FaultPlanSpec {
  /// Candidate fault targets (typically the group's members).
  std::vector<NodeId> nodes;
  /// Nodes the plan must never crash (it may still break/degrade their
  /// links or slow them down).
  std::vector<NodeId> protect;
  /// Lower bound on nodes left uncrashed by the whole plan.
  std::size_t min_survivors = 2;

  std::size_t min_events = 1;
  std::size_t max_events = 3;
  /// Event times are drawn uniformly from [0, window_s).
  double window_s = 10e-3;

  double crash_weight = 1.0;
  double break_weight = 1.0;
  double degrade_weight = 1.0;
  double slow_weight = 1.0;

  /// Degradation multiplies a link's capacity by factor in this range.
  double degrade_factor_lo = 0.02;
  double degrade_factor_hi = 0.5;
  /// Slow-receiver factor multiplies software costs in this range.
  double slow_factor_lo = 2.0;
  double slow_factor_hi = 20.0;
  /// Transient (degrade/slow) durations, seconds.
  double duration_lo = 0.5e-3;
  double duration_hi = 5e-3;
};

class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events);

  /// Deterministic seeded plan: same (seed, spec) always yields the same
  /// events. Events come out sorted by time.
  static FaultPlan random(std::uint64_t seed, const FaultPlanSpec& spec);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Nodes this plan crashes (dedup'd, in crash order).
  std::vector<NodeId> crashed_nodes() const;

  /// Schedule every event on the simulator's queue at
  /// sim.now() + event.at. The fabric must outlive the scheduled events.
  void schedule_on(SimFabric& fabric) const;

  /// Apply every event immediately, in time order (for the immediate-mode
  /// Mem/Tcp backends, which have no virtual clock).
  void execute_now(Fabric& fabric) const;

  /// Apply a single event to any fabric's injector.
  static void apply(Fabric& fabric, const FaultEvent& event);

  /// Human-readable one-line-per-event rendering (for --replay output).
  std::string describe() const;

 private:
  std::vector<FaultEvent> events_;  // sorted by `at`
};

}  // namespace rdmc::fabric
