#include "fabric/mem_fabric.hpp"

#include <cassert>
#include <chrono>
#include <cstring>

#include "obs/stall.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace rdmc::fabric {

// ---------------------------------------------------------------------------
// MemEndpoint: per-node event queue + completion thread.
// ---------------------------------------------------------------------------

class MemFabric::MemEndpoint final : public Endpoint {
 public:
  MemEndpoint(MemFabric& fabric, NodeId id) : fabric_(fabric), id_(id) {
    thread_ = std::thread([this] { run(); });
  }

  ~MemEndpoint() override { stop(); }

  NodeId id() const override { return id_; }

  void set_completion_handler(
      std::function<void(const Completion&)> handler) override {
    util::MutexLock lock(handler_mutex_);
    completion_handler_ = std::move(handler);
  }

  void send_oob(NodeId to, std::vector<std::byte> payload) override {
    fabric_.deliver_oob(id_, to, std::move(payload));
  }

  void set_oob_handler(
      std::function<void(NodeId, std::span<const std::byte>)> handler)
      override {
    util::MutexLock lock(handler_mutex_);
    oob_handler_ = std::move(handler);
  }

  void set_completion_mode(CompletionMode mode) override {
    mode_.store(mode, std::memory_order_relaxed);
  }
  CompletionMode completion_mode() const override {
    return mode_.load(std::memory_order_relaxed);
  }

  void register_window(std::uint32_t window_id, MemoryView region) override {
    util::MutexLock lock(window_mutex_);
    windows_[window_id] = region;
  }

  void unregister_window(std::uint32_t window_id) override {
    // The lock fences in-flight apply_window_write calls.
    util::MutexLock lock(window_mutex_);
    windows_.erase(window_id);
  }

  /// Apply a one-sided write under the window lock (fenced against
  /// unregister_window). Writes to unknown windows are dropped like DMA
  /// after deregistration; out-of-bounds writes are connection errors.
  MemFabric::WindowApply apply_window_write(std::uint32_t window_id,
                                            std::uint64_t offset,
                                            MemoryView src) {
    util::MutexLock lock(window_mutex_);
    auto it = windows_.find(window_id);
    if (it == windows_.end()) return MemFabric::WindowApply::kUnknown;
    const MemoryView window = it->second;
    if (window.size < src.size || offset > window.size - src.size)
      return MemFabric::WindowApply::kOutOfBounds;
    if (window.data != nullptr && src.data != nullptr && src.size > 0)
      std::memcpy(window.data + offset, src.data, src.size);
    return MemFabric::WindowApply::kOk;
  }

  void push(NodeEvent event) {
    {
      util::MutexLock lock(queue_mutex_);
      queue_.push_back(std::move(event));
    }
    cv_.notify_one();
  }

  void stop() {
    {
      util::MutexLock lock(queue_mutex_);
      if (stopping_) return;
      stopping_ = true;
    }
    cv_.notify_one();
    if (thread_.joinable()) thread_.join();
  }

  /// True when nothing is queued and the thread is parked in a wait.
  bool quiescent() {
    util::MutexLock lock(queue_mutex_);
    return queue_.empty() && !handling_;
  }

 private:
  void run() {
    util::MutexLock lock(queue_mutex_);
    while (true) {
      // Hybrid mode in the real system polls for 50 ms after each event
      // before arming interrupts (§4.2); in-process the distinction is a
      // spin-vs-wait choice with identical semantics.
      while (!(stopping_ || !queue_.empty())) cv_.wait(lock);
      if (stopping_ && queue_.empty()) return;
      while (!queue_.empty()) {
        NodeEvent event = std::move(queue_.front());
        queue_.pop_front();
        handling_ = true;
        lock.unlock();
        slow_dispatch_delay();
        dispatch(event);
        lock.lock();
        handling_ = false;
      }
      cv_.notify_all();  // wake drain() waiters
    }
  }

  /// Slow-receiver injection (FaultInjector::slow_node): delay each
  /// completion dispatch while the real-time window is open.
  void slow_dispatch_delay() {
    const auto until = slow_until_.load(std::memory_order_relaxed);
    if (until == 0) return;
    const auto now =
        std::chrono::steady_clock::now().time_since_epoch().count();
    if (now >= until) {
      slow_until_.store(0, std::memory_order_relaxed);
      return;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(
        slow_delay_ns_.load(std::memory_order_relaxed)));
  }

  void set_slow(std::int64_t delay_ns, std::int64_t until_epoch_ns) {
    slow_delay_ns_.store(delay_ns, std::memory_order_relaxed);
    slow_until_.store(until_epoch_ns, std::memory_order_relaxed);
  }

  void dispatch(const NodeEvent& event) {
    // Invoke under handler_mutex_: once set_completion_handler(nullptr)
    // returns, no stale handler can still be mid-flight — the detach
    // guarantee rdmc::Node's destructor relies on.
    util::MutexLock lock(handler_mutex_);
    // The fabric.hpp single-dispatch contract: at most one handler
    // invocation per node at a time, even while fault injection races
    // with posts.
    assert(!in_dispatch_.exchange(true, std::memory_order_relaxed));
    if (const auto* c = std::get_if<Completion>(&event)) {
      if (completion_handler_) completion_handler_(*c);
    } else {
      const auto& msg = std::get<OobMsg>(event);
      if (oob_handler_)
        oob_handler_(msg.from, std::span<const std::byte>(msg.payload));
    }
    in_dispatch_.store(false, std::memory_order_relaxed);
  }

  MemFabric& fabric_;
  NodeId id_;
  util::Mutex window_mutex_;
  std::map<std::uint32_t, MemoryView> windows_ RDMC_GUARDED_BY(window_mutex_);
  util::Mutex handler_mutex_;
  std::function<void(const Completion&)> completion_handler_
      RDMC_GUARDED_BY(handler_mutex_);
  std::function<void(NodeId, std::span<const std::byte>)> oob_handler_
      RDMC_GUARDED_BY(handler_mutex_);
  std::atomic<CompletionMode> mode_{CompletionMode::kHybrid};
  std::atomic<bool> in_dispatch_{false};

  util::Mutex queue_mutex_;
  util::CondVar cv_;
  std::deque<NodeEvent> queue_ RDMC_GUARDED_BY(queue_mutex_);
  bool stopping_ RDMC_GUARDED_BY(queue_mutex_) = false;
  bool handling_ RDMC_GUARDED_BY(queue_mutex_) = false;
  std::atomic<std::int64_t> slow_delay_ns_{0};
  std::atomic<std::int64_t> slow_until_{0};  // steady_clock epoch ns; 0=off
  std::thread thread_;

  friend class MemFabric;
};

// ---------------------------------------------------------------------------
// Connection / MemQueuePair: a bound RC connection between two nodes.
// ---------------------------------------------------------------------------

class MemFabric::MemQueuePair final : public QueuePair {
 public:
  MemQueuePair(QpId id, NodeId self, NodeId peer, Connection& conn)
      : QueuePair(id, peer), self_(self), conn_(conn) {}

  PostResult post_send(MemoryView buf, std::uint64_t wr_id,
                       std::uint32_t immediate) override;
  PostResult post_recv(MemoryView buf, std::uint64_t wr_id) override;
  PostResult post_write_imm(std::uint32_t immediate,
                            std::uint64_t wr_id) override;
  PostResult post_window_write(std::uint32_t window_id, std::uint64_t offset,
                               MemoryView local, std::uint32_t immediate,
                               std::uint64_t wr_id, bool signaled) override;
  PostResult post_send_ud(MemoryView buf, std::uint64_t wr_id,
                          std::uint32_t immediate) override;
  PostResult post_recv_ud(MemoryView buf, std::uint64_t wr_id) override;
  void close() override;

  NodeId self_;
  Connection& conn_;
  /// Guarded by conn_.mutex (Connection is incomplete here, so the
  /// attribute cannot name it; every access is inside a REQUIRES(mutex)
  /// Connection method or under a MutexLock on conn_.mutex).
  bool closed_ = false;
};

struct MemFabric::Connection {
  struct PendingSend {
    MemoryView buf;
    std::uint64_t wr_id;
    std::uint32_t immediate;
    bool is_window_write = false;
    bool signaled = true;
    std::uint32_t window_id = 0;
    std::uint64_t window_offset = 0;
  };
  struct PostedRecv {
    MemoryView buf;
    std::uint64_t wr_id;
  };
  /// One direction of the connection: sends from `src` matched against
  /// receives posted by `dst`. UD receives are a separate queue — a
  /// datagram never consumes an RC recv (fabric.hpp contract).
  struct Direction {
    std::deque<PendingSend> sends;
    std::deque<PostedRecv> recvs;
    std::deque<PostedRecv> ud_recvs;
  };

  Connection(MemFabric& fabric, QpId qp_a, QpId qp_b, NodeId a, NodeId b)
      : fabric(fabric),
        side_a(qp_a, a, b, *this),
        side_b(qp_b, b, a, *this) {}

  MemQueuePair* side_for(NodeId node) {
    return node == side_a.self_ ? &side_a : &side_b;
  }
  Direction& direction_from(NodeId node) RDMC_REQUIRES(mutex) {
    return node == side_a.self_ ? a_to_b : b_to_a;
  }

  /// Match queued sends in `dir` (from `src`) against receives posted by
  /// the other side; copy bytes and emit completions. Call with lock held.
  void try_match(NodeId src, Direction& dir) RDMC_REQUIRES(mutex) {
    MemQueuePair* sender_qp = side_for(src);
    MemQueuePair* receiver_qp = side_for(sender_qp->peer());
    if (receiver_qp->closed_) {
      // Peer side destroyed: discard arriving traffic (sends "succeed" —
      // the bytes are gone, as after a remote destroy-QP during teardown).
      while (!dir.sends.empty()) {
        const PendingSend send = std::move(dir.sends.front());
        dir.sends.pop_front();
        if (!send.is_window_write || send.signaled) {
          fabric.deliver(sender_qp->self_,
                         Completion{send.wr_id,
                                    send.is_window_write
                                        ? WcOpcode::kWindowWrite
                                        : WcOpcode::kSend,
                                    WcStatus::kSuccess,
                                    static_cast<std::uint32_t>(
                                        send.buf.size),
                                    send.immediate, sender_qp->id(),
                                    sender_qp->peer()});
        }
      }
      return;
    }
    // Window writes at the queue head need no posted receive, but stay
    // FIFO-ordered behind earlier two-sided sends.
    while (!dir.sends.empty() &&
           (dir.sends.front().is_window_write || !dir.recvs.empty())) {
      PendingSend send = std::move(dir.sends.front());
      dir.sends.pop_front();
      if (send.is_window_write) {
        if (!execute_window_write(sender_qp, receiver_qp, send)) return;
        continue;
      }
      PostedRecv recv = std::move(dir.recvs.front());
      dir.recvs.pop_front();

      if (auto* tr = obs::tracer())
        tr->end(obs::Cat::kFabric, "xfer", sender_qp->self_,
                obs::xfer_span_id(sender_qp->id(), send.wr_id),
                obs::wall_seconds(), "qp,wr", sender_qp->id(), send.wr_id);
      Completion send_c{send.wr_id, WcOpcode::kSend, WcStatus::kSuccess,
                        static_cast<std::uint32_t>(send.buf.size),
                        send.immediate, sender_qp->id(), sender_qp->peer()};
      Completion recv_c{recv.wr_id, WcOpcode::kRecv, WcStatus::kSuccess,
                        static_cast<std::uint32_t>(send.buf.size),
                        send.immediate, receiver_qp->id(),
                        receiver_qp->peer()};
      if (send.buf.size > recv.buf.size) {
        // RC semantics: a receive buffer too small is a fatal QP error.
        RDMC_LOG_ERROR("memfabric",
                       "recv buffer too small (%zu < %zu), breaking QP",
                       recv.buf.size, send.buf.size);
        send_c.status = recv_c.status = WcStatus::kError;
        broken = true;
      } else if (send.buf.data != nullptr && recv.buf.data != nullptr &&
                 send.buf.size > 0) {
        std::memcpy(recv.buf.data, send.buf.data, send.buf.size);
      }
      fabric.deliver(sender_qp->self_, send_c);
      fabric.deliver(receiver_qp->self_, recv_c);
      if (broken) {
        flush_locked();
        return;
      }
    }
  }

  /// Place a one-sided window write at the target; call with lock held.
  /// Returns false after breaking the connection on an access error.
  bool execute_window_write(MemQueuePair* sender_qp,
                            MemQueuePair* receiver_qp,
                            const PendingSend& send) RDMC_REQUIRES(mutex) {
    if (auto* tr = obs::tracer())
      tr->end(obs::Cat::kFabric, "xferw", sender_qp->self_,
              obs::xfer_span_id(sender_qp->id(), send.wr_id),
              obs::wall_seconds(), "qp,wr", sender_qp->id(), send.wr_id);
    const auto result = fabric.apply_endpoint_window_write(
        receiver_qp->self_, send.window_id, send.window_offset, send.buf);
    if (result == MemFabric::WindowApply::kOutOfBounds) {
      RDMC_LOG_ERROR("memfabric",
                     "window write out of bounds (win %u, off %llu, len "
                     "%zu), breaking QP",
                     send.window_id,
                     static_cast<unsigned long long>(send.window_offset),
                     send.buf.size);
      flush_locked();
      return false;
    }
    if (result == MemFabric::WindowApply::kUnknown) {
      // Deregistered mid-flight: the payload is dropped, like DMA after
      // deregistration; the issuer still sees its completion.
      if (send.signaled) {
        fabric.deliver(sender_qp->self_,
                       Completion{send.wr_id, WcOpcode::kWindowWrite,
                                  WcStatus::kSuccess,
                                  static_cast<std::uint32_t>(send.buf.size),
                                  send.immediate, sender_qp->id(),
                                  sender_qp->peer()});
      }
      return true;
    }
    if (send.signaled) {
      fabric.deliver(sender_qp->self_,
                     Completion{send.wr_id, WcOpcode::kWindowWrite,
                                WcStatus::kSuccess,
                                static_cast<std::uint32_t>(send.buf.size),
                                send.immediate, sender_qp->id(),
                                sender_qp->peer()});
    }
    fabric.deliver(receiver_qp->self_,
                   Completion{send.window_offset, WcOpcode::kRecvWindowWrite,
                              WcStatus::kSuccess,
                              static_cast<std::uint32_t>(send.buf.size),
                              send.immediate, receiver_qp->id(),
                              receiver_qp->peer()});
    return true;
  }

  /// Place one surviving datagram into the receiver's oldest posted UD
  /// recv; a missing or too-small recv discards the datagram (counted),
  /// never an error. Call with lock held.
  void deliver_ud_locked(NodeId src, const UdDelivery& d)
      RDMC_REQUIRES(mutex) {
    MemQueuePair* sender_qp = side_for(src);
    MemQueuePair* receiver_qp = side_for(sender_qp->peer());
    Direction& dir = direction_from(src);
    DatagramEngine& engine = fabric.datagrams();
    if (receiver_qp->closed_ || dir.ud_recvs.empty() ||
        dir.ud_recvs.front().buf.size < d.view.size) {
      engine.count_no_recv();
      return;
    }
    PostedRecv recv = std::move(dir.ud_recvs.front());
    dir.ud_recvs.pop_front();
    if (recv.buf.data != nullptr && d.view.data != nullptr &&
        d.view.size > 0)
      std::memcpy(recv.buf.data, d.view.data, d.view.size);
    engine.count_delivered();
    fabric.deliver(receiver_qp->self_,
                   Completion{recv.wr_id, WcOpcode::kRecvUd,
                              WcStatus::kSuccess,
                              static_cast<std::uint32_t>(d.view.size),
                              d.immediate, receiver_qp->id(),
                              receiver_qp->peer()});
  }

  /// Flush all posted work with kFlushed and notify both sides of the
  /// break. Locally closed QPs receive nothing — close() fences. Call with
  /// lock held.
  void flush_locked() RDMC_REQUIRES(mutex) {
    broken = true;
    side_a.mark_broken();
    side_b.mark_broken();
    auto flush_dir = [&](Direction& dir, NodeId src) {
      MemQueuePair* sqp = side_for(src);
      MemQueuePair* rqp = side_for(sqp->peer());
      if (!sqp->closed_) {
        for (auto& s : dir.sends) {
          fabric.deliver(sqp->self_,
                         Completion{s.wr_id, WcOpcode::kSend,
                                    WcStatus::kFlushed, 0, 0, sqp->id(),
                                    sqp->peer()});
        }
      }
      dir.sends.clear();
      if (!rqp->closed_) {
        for (auto& r : dir.recvs) {
          fabric.deliver(rqp->self_,
                         Completion{r.wr_id, WcOpcode::kRecv,
                                    WcStatus::kFlushed, 0, 0, rqp->id(),
                                    rqp->peer()});
        }
      }
      dir.recvs.clear();
      if (!rqp->closed_) {
        for (auto& r : dir.ud_recvs) {
          fabric.deliver(rqp->self_,
                         Completion{r.wr_id, WcOpcode::kRecvUd,
                                    WcStatus::kFlushed, 0, 0, rqp->id(),
                                    rqp->peer()});
        }
      }
      dir.ud_recvs.clear();
    };
    flush_dir(a_to_b, side_a.self_);
    flush_dir(b_to_a, side_b.self_);
    for (MemQueuePair* side : {&side_a, &side_b}) {
      if (side->closed_) continue;
      fabric.deliver(side->self_,
                     Completion{0, WcOpcode::kDisconnect, WcStatus::kError,
                                0, 0, side->id(), side->peer()});
    }
  }

  MemFabric& fabric;
  util::Mutex mutex;
  MemQueuePair side_a;
  MemQueuePair side_b;
  Direction a_to_b RDMC_GUARDED_BY(mutex);
  Direction b_to_a RDMC_GUARDED_BY(mutex);
  bool broken RDMC_GUARDED_BY(mutex) = false;
};

PostResult MemFabric::MemQueuePair::post_send(MemoryView buf,
                                              std::uint64_t wr_id,
                                              std::uint32_t immediate) {
  util::MutexLock lock(conn_.mutex);
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kFabric, "xfer", self_,
              obs::xfer_span_id(id_, wr_id), obs::wall_seconds(),
              "dst,bytes,qp,wr", peer_, buf.size, id_, wr_id);
  auto& dir = conn_.direction_from(self_);
  dir.sends.push_back({buf, wr_id, immediate});
  conn_.try_match(self_, dir);
  return PostResult::kOk;
}

PostResult MemFabric::MemQueuePair::post_recv(MemoryView buf,
                                              std::uint64_t wr_id) {
  util::MutexLock lock(conn_.mutex);
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  auto& dir = conn_.direction_from(peer_);
  dir.recvs.push_back({buf, wr_id});
  conn_.try_match(peer_, dir);
  return PostResult::kOk;
}

PostResult MemFabric::MemQueuePair::post_write_imm(std::uint32_t immediate,
                                                   std::uint64_t wr_id) {
  util::MutexLock lock(conn_.mutex);
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  conn_.fabric.deliver(self_,
                       Completion{wr_id, WcOpcode::kWriteImm,
                                  WcStatus::kSuccess, 0, immediate, id_,
                                  peer_});
  MemQueuePair* other = conn_.side_for(peer_);
  conn_.fabric.deliver(peer_,
                       Completion{0, WcOpcode::kRecvWriteImm,
                                  WcStatus::kSuccess, 0, immediate,
                                  other->id(), other->peer()});
  return PostResult::kOk;
}

PostResult MemFabric::MemQueuePair::post_send_ud(MemoryView buf,
                                                 std::uint64_t wr_id,
                                                 std::uint32_t immediate) {
  util::MutexLock lock(conn_.mutex);
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  const auto deliveries =
      conn_.fabric.datagrams().on_send(self_, peer_, buf, immediate);
  // Fire-and-forget: the sender completes as soon as the NIC is done with
  // the buffer, whatever the fault profile decided.
  conn_.fabric.deliver(self_,
                       Completion{wr_id, WcOpcode::kSendUd,
                                  WcStatus::kSuccess,
                                  static_cast<std::uint32_t>(buf.size),
                                  immediate, id_, peer_});
  for (const auto& d : deliveries) conn_.deliver_ud_locked(self_, d);
  return PostResult::kOk;
}

PostResult MemFabric::MemQueuePair::post_recv_ud(MemoryView buf,
                                                 std::uint64_t wr_id) {
  util::MutexLock lock(conn_.mutex);
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  conn_.direction_from(peer_).ud_recvs.push_back({buf, wr_id});
  return PostResult::kOk;
}

void MemFabric::MemQueuePair::close() {
  util::MutexLock lock(conn_.mutex);
  closed_ = true;
  mark_broken();
  // Revoke our posted receives (they point at memory about to be freed)
  // and discard anything already queued toward us.
  auto& incoming = conn_.direction_from(peer_);
  incoming.recvs.clear();
  incoming.ud_recvs.clear();
  conn_.try_match(peer_, incoming);
}

PostResult MemFabric::MemQueuePair::post_window_write(
    std::uint32_t window_id, std::uint64_t offset, MemoryView local,
    std::uint32_t immediate, std::uint64_t wr_id, bool signaled) {
  util::MutexLock lock(conn_.mutex);
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (local.data && local.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  if (local.size > 0 && offset > ~std::uint64_t{0} - local.size)
    return PostResult::kWindowViolation;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kFabric, "xferw", self_,
              obs::xfer_span_id(id_, wr_id), obs::wall_seconds(),
              "dst,bytes,qp,wr", peer_, local.size, id_, wr_id);
  auto& dir = conn_.direction_from(self_);
  Connection::PendingSend send;
  send.buf = local;
  send.wr_id = wr_id;
  send.immediate = immediate;
  send.is_window_write = true;
  send.signaled = signaled;
  send.window_id = window_id;
  send.window_offset = offset;
  dir.sends.push_back(send);
  conn_.try_match(self_, dir);
  return PostResult::kOk;
}

// ---------------------------------------------------------------------------
// MemFabric
// ---------------------------------------------------------------------------

MemFabric::MemFabric(std::size_t num_nodes) {
  endpoints_.reserve(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    endpoints_.push_back(
        std::make_unique<MemEndpoint>(*this, static_cast<NodeId>(i)));
  }
}

MemFabric::~MemFabric() { stop(); }

void MemFabric::stop() {
  for (auto& ep : endpoints_) ep->stop();
}

void MemFabric::drain() {
  // Quiescence: every queue empty and no handler mid-flight, observed
  // twice in a row (a handler can enqueue to another node between checks).
  for (int settled = 0; settled < 3;) {
    bool all_idle = true;
    for (auto& ep : endpoints_) {
      if (!ep->quiescent()) {
        all_idle = false;
        break;
      }
    }
    if (all_idle) {
      ++settled;
    } else {
      settled = 0;
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

std::pair<std::size_t, bool> MemFabric::queue_state(NodeId node) {
  MemEndpoint& ep = *endpoints_[node];
  util::MutexLock lock(ep.queue_mutex_);
  return {ep.queue_.size(), ep.handling_};
}

Endpoint& MemFabric::endpoint(NodeId node) {
  assert(node < endpoints_.size());
  return *endpoints_[node];
}

QueuePair* MemFabric::connect(NodeId a, NodeId b, std::uint32_t channel) {
  assert(a < endpoints_.size() && b < endpoints_.size() && a != b);
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  util::MutexLock lock(connections_mutex_);
  auto key = std::make_tuple(lo, hi, channel);
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    auto conn = std::make_unique<Connection>(*this, next_qp_id_,
                                             next_qp_id_ + 1, lo, hi);
    next_qp_id_ += 2;
    it = connections_.emplace(key, std::move(conn)).first;
  }
  Connection* conn = it->second.get();
  const bool dead_peer = crashed_.contains(lo) || crashed_.contains(hi);
  if (dead_peer) {
    // Born-broken rather than a silent hang (see FaultInjector contract).
    util::MutexLock conn_lock(conn->mutex);
    if (!conn->broken) conn->flush_locked();
  }
  return conn->side_for(a);
}

void MemFabric::break_link(NodeId a, NodeId b) {
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  std::vector<Connection*> affected;
  {
    util::MutexLock lock(connections_mutex_);
    for (auto& [key, conn] : connections_) {
      if (std::get<0>(key) == lo && std::get<1>(key) == hi)
        affected.push_back(conn.get());
    }
  }
  for (auto* conn : affected) {
    util::MutexLock lock(conn->mutex);
    if (!conn->broken) conn->flush_locked();
  }
}

void MemFabric::crash_node(NodeId node) {
  std::vector<Connection*> affected;
  {
    util::MutexLock lock(connections_mutex_);
    crashed_.insert(node);
    for (auto& [key, conn] : connections_) {
      if (std::get<0>(key) == node || std::get<1>(key) == node)
        affected.push_back(conn.get());
    }
  }
  for (auto* conn : affected) {
    util::MutexLock lock(conn->mutex);
    if (!conn->broken) conn->flush_locked();
  }
}

bool MemFabric::degrade_link(NodeId, NodeId, double, double) {
  // MemFabric moves real bytes with no modelled capacity; accepted and
  // ignored per the FaultInjector contract.
  return false;
}

bool MemFabric::slow_node(NodeId node, double factor, double duration_s) {
  if (node >= endpoints_.size() || factor <= 1.0 || duration_s <= 0.0)
    return false;
  // Real-time approximation of a slow receiver: (factor - 1) x a nominal
  // 10 us handler cost, injected before each dispatch while the window is
  // open.
  const auto delay_ns = static_cast<std::int64_t>((factor - 1.0) * 10e3);
  const auto until = (std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(duration_s)))
                         .time_since_epoch()
                         .count();
  endpoints_[node]->set_slow(delay_ns, until);
  return true;
}

bool MemFabric::crashed(NodeId node) const {
  util::MutexLock lock(connections_mutex_);
  return crashed_.contains(node);
}

MemFabric::WindowApply MemFabric::apply_endpoint_window_write(
    NodeId node, std::uint32_t window_id, std::uint64_t offset,
    MemoryView src) {
  return endpoints_[node]->apply_window_write(window_id, offset, src);
}

void MemFabric::deliver(NodeId node, NodeEvent event) {
  assert(node < endpoints_.size());
  endpoints_[node]->push(std::move(event));
}

void MemFabric::deliver_oob(NodeId from, NodeId to,
                            std::vector<std::byte> payload) {
  assert(to < endpoints_.size());
  {
    util::MutexLock lock(connections_mutex_);
    // A crashed node can neither send nor receive on the control mesh.
    if (crashed_.contains(from) || crashed_.contains(to)) return;
  }
  endpoints_[to]->push(OobMsg{from, std::move(payload)});
}

}  // namespace rdmc::fabric
