// MemFabric: an in-process, multi-threaded fabric backend.
//
// Every node gets a real completion thread; sends really copy bytes between
// registered buffers under per-connection locks. This backend exercises the
// protocol engine's concurrency for real — out-of-order completions across
// queue pairs, readiness races, failure notifications racing with data —
// and is what the functional test suite and the examples run on.
//
// Transfers complete "instantly" (at memcpy speed); timing fidelity is the
// job of SimFabric. Semantics match fabric.hpp exactly: FIFO per QP, sends
// match the oldest posted receive, write-with-immediate bypasses receive
// buffers, breaks flush posted work.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <tuple>
#include <variant>

#include "fabric/datagram.hpp"
#include "fabric/fabric.hpp"
#include "util/thread_annotations.hpp"

namespace rdmc::fabric {

class MemFabric;

class MemFabric final : public Fabric, public FaultInjector {
 public:
  explicit MemFabric(std::size_t num_nodes);
  ~MemFabric() override;

  MemFabric(const MemFabric&) = delete;
  MemFabric& operator=(const MemFabric&) = delete;

  std::size_t num_nodes() const override { return endpoints_.size(); }
  Endpoint& endpoint(NodeId node) override;
  QueuePair* connect(NodeId a, NodeId b, std::uint32_t channel) override;
  FaultInjector& faults() override { return *this; }

  // FaultInjector: immediate-mode semantics — injections take effect as
  // soon as the call returns. There is no bandwidth model, so
  // degrade_link is accepted-and-ignored (returns false); slow_node
  // injects a real dispatch delay on the node's completion thread for a
  // real-time window.
  void break_link(NodeId a, NodeId b) override;
  void crash_node(NodeId node) override;
  bool degrade_link(NodeId a, NodeId b, double factor,
                    double duration_s) override;
  bool slow_node(NodeId node, double factor, double duration_s) override;
  void set_datagram_faults(const DatagramFaultProfile& profile) override {
    datagrams_.set_profile(profile);
  }
  DatagramCounters datagram_counters() const override {
    return datagrams_.counters();
  }
  bool crashed(NodeId node) const override;

  DatagramEngine& datagrams() { return datagrams_; }

  /// Stop all completion threads (also done by the destructor). After
  /// stop(), no further handlers run.
  void stop();

  /// Block until every node's event queue is empty and no handler is
  /// running (useful in tests to reach quiescence).
  void drain();

  /// Diagnostics: events currently queued for a node (and whether its
  /// completion thread is mid-dispatch).
  std::pair<std::size_t, bool> queue_state(NodeId node);

  /// Result of applying a one-sided window write at an endpoint.
  enum class WindowApply { kOk, kUnknown, kOutOfBounds };

 private:
  struct OobMsg {
    NodeId from;
    std::vector<std::byte> payload;
  };
  using NodeEvent = std::variant<Completion, OobMsg>;

  class MemEndpoint;
  struct Connection;
  class MemQueuePair;

  void deliver(NodeId node, NodeEvent event);
  void deliver_oob(NodeId from, NodeId to, std::vector<std::byte> payload);
  WindowApply apply_endpoint_window_write(NodeId node,
                                          std::uint32_t window_id,
                                          std::uint64_t offset,
                                          MemoryView src);

  std::vector<std::unique_ptr<MemEndpoint>> endpoints_;
  /// Lock order (DESIGN.md §11): connections_mutex_ before Connection::mutex
  /// before MemEndpoint::queue_mutex_ (connect() holds it while breaking a
  /// born-dead connection, which delivers flush completions).
  mutable util::Mutex connections_mutex_;
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>,
           std::unique_ptr<Connection>>
      connections_ RDMC_GUARDED_BY(connections_mutex_);
  /// Crashed nodes: their out-of-band mesh is dead too (a crash kills the
  /// bootstrap TCP connections along with the RDMA sessions).
  std::set<NodeId> crashed_ RDMC_GUARDED_BY(connections_mutex_);
  DatagramEngine datagrams_;
  QpId next_qp_id_ RDMC_GUARDED_BY(connections_mutex_) = 1;
};

}  // namespace rdmc::fabric
