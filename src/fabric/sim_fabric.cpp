#include "fabric/sim_fabric.hpp"

#include <cassert>
#include <cstring>
#include <map>

#include "obs/stall.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace rdmc::fabric {

// ---------------------------------------------------------------------------
// Per-node state: the virtual CPU.
// ---------------------------------------------------------------------------

struct SimFabric::NodeState {
  /// Virtual time at which the node's software thread becomes free.
  sim::SimTime cpu_free = 0.0;
  /// Accumulated busy seconds (handler execution + posting costs).
  double busy = 0.0;
  /// Accumulated completion-pickup + queueing wait (Table 1 "Waiting").
  double wait = 0.0;
  /// Last instant a completion handler finished (hybrid window anchor).
  sim::SimTime last_event = -1e18;
  /// Slow-receiver injection: software costs scale by this (product of
  /// active slow_node windows; 1.0 when healthy).
  double software_factor = 1.0;
  /// UD wire cursors: datagrams bypass the max-min flow network (they are
  /// fire-and-forget packets, not long-lived flows) and instead serialise
  /// store-and-forward through the sender's tx port and the receiver's rx
  /// port. These record when each port next frees up.
  sim::SimTime ud_tx_free = 0.0;
  sim::SimTime ud_rx_free = 0.0;
  util::Rng rng;
};

// ---------------------------------------------------------------------------
// SimEndpoint
// ---------------------------------------------------------------------------

class SimFabric::SimEndpoint final : public Endpoint {
 public:
  SimEndpoint(SimFabric& fabric, NodeId id, CompletionMode mode)
      : fabric_(fabric), id_(id), mode_(mode) {}

  NodeId id() const override { return id_; }

  void set_completion_handler(
      std::function<void(const Completion&)> handler) override {
    completion_handler_ = std::move(handler);
  }

  void send_oob(NodeId to, std::vector<std::byte> payload) override {
    fabric_.deliver_oob(to, id_, std::move(payload));
  }

  void set_oob_handler(
      std::function<void(NodeId, std::span<const std::byte>)> handler)
      override {
    oob_handler_ = std::move(handler);
  }

  void set_completion_mode(CompletionMode mode) override { mode_ = mode; }
  CompletionMode completion_mode() const override { return mode_; }

  void register_window(std::uint32_t window_id, MemoryView region) override {
    windows_[window_id] = region;
  }
  void unregister_window(std::uint32_t window_id) override {
    windows_.erase(window_id);
  }
  MemoryView window(std::uint32_t window_id) const {
    auto it = windows_.find(window_id);
    return it == windows_.end() ? MemoryView{} : it->second;
  }

  SimFabric& fabric_;
  NodeId id_;
  CompletionMode mode_;
  std::map<std::uint32_t, MemoryView> windows_;
  std::function<void(const Completion&)> completion_handler_;
  std::function<void(NodeId, std::span<const std::byte>)> oob_handler_;
};

// ---------------------------------------------------------------------------
// Connection / SimQueuePair
// ---------------------------------------------------------------------------

class SimFabric::SimQueuePair final : public QueuePair {
 public:
  SimQueuePair(QpId id, NodeId self, NodeId peer, Connection& conn)
      : QueuePair(id, peer), self_(self), conn_(conn) {}

  PostResult post_send(MemoryView buf, std::uint64_t wr_id,
                       std::uint32_t immediate) override;
  PostResult post_recv(MemoryView buf, std::uint64_t wr_id) override;
  PostResult post_write_imm(std::uint32_t immediate,
                            std::uint64_t wr_id) override;
  PostResult post_window_write(std::uint32_t window_id, std::uint64_t offset,
                               MemoryView local, std::uint32_t immediate,
                               std::uint64_t wr_id, bool signaled) override;
  PostResult post_send_ud(MemoryView buf, std::uint64_t wr_id,
                          std::uint32_t immediate) override;
  PostResult post_recv_ud(MemoryView buf, std::uint64_t wr_id) override;
  void close() override;

  NodeId self_;
  Connection& conn_;
  bool closed_ = false;
};

struct SimFabric::Connection {
  struct PendingSend {
    MemoryView buf;
    std::uint64_t wr_id;
    std::uint32_t immediate;
    sim::SimTime posted_at;  // virtual time the post takes effect
    bool is_window_write = false;
    bool signaled = true;
    std::uint32_t window_id = 0;
    std::uint64_t window_offset = 0;
  };
  struct PostedRecv {
    MemoryView buf;
    std::uint64_t wr_id;
  };
  struct Direction {
    std::deque<PendingSend> sends;
    std::deque<PostedRecv> recvs;
    /// UD receives are a separate FIFO from RC receives (distinct service
    /// type); a datagram arriving with this empty is dropped, never parked.
    std::deque<PostedRecv> ud_recvs;
    bool in_flight = false;  // RC FIFO: one flow at a time per direction
    sim::FlowId flow = sim::kInvalidFlow;
  };

  Connection(SimFabric& fabric, QpId qp_a, QpId qp_b, NodeId a, NodeId b)
      : fabric(fabric),
        side_a(qp_a, a, b, *this),
        side_b(qp_b, b, a, *this) {}

  SimQueuePair* side_for(NodeId node) {
    return node == side_a.self_ ? &side_a : &side_b;
  }
  Direction& direction_from(NodeId node) {
    return node == side_a.self_ ? a_to_b : b_to_a;
  }

  /// Start the next flow on `dir` if the head send is posted, a receive is
  /// available at the target, and nothing is in flight.
  void maybe_start(NodeId src, Direction& dir);
  void on_flow_done(NodeId src, sim::SimTime t);
  /// A datagram's last byte reached the receiver's NIC at virtual time `t`;
  /// match it against the UD receive FIFO or drop it.
  void deliver_ud(NodeId src, std::vector<std::byte> payload, bool phantom,
                  std::size_t bytes, std::uint32_t immediate,
                  std::uint64_t span, sim::SimTime t);
  void flush(sim::SimTime when_hint);

  SimFabric& fabric;
  SimQueuePair side_a;
  SimQueuePair side_b;
  Direction a_to_b;
  Direction b_to_a;
  bool broken = false;
};

void SimFabric::Connection::maybe_start(NodeId src, Direction& dir) {
  if (broken || dir.in_flight || dir.sends.empty()) return;
  // Window writes need no posted receive; two-sided sends do.
  if (!dir.sends.front().is_window_write && dir.recvs.empty()) return;
  PendingSend& send = dir.sends.front();
  dir.in_flight = true;
  auto& sim = fabric.sim_;
  const sim::SimTime start = std::max(sim.now(), send.posted_at);
  const double bytes = static_cast<double>(send.buf.size);
  sim.at(start, [this, src, &dir, bytes] {
    if (broken || !dir.in_flight) return;
    if (auto* tr = obs::tracer()) {
      const PendingSend& s = dir.sends.front();
      const QpId qp = side_for(src)->id();
      tr->begin(obs::Cat::kFabric, s.is_window_write ? "xferw" : "xfer",
                src, obs::xfer_span_id(qp, s.wr_id), fabric.sim_.now(),
                "dst,bytes,qp,wr", side_for(src)->peer(), s.buf.size, qp,
                s.wr_id);
    }
    dir.flow = fabric.flows_.start_flow(
        src, side_for(src)->peer(), bytes,
        [this, src](sim::SimTime t) { on_flow_done(src, t); });
  });
}

void SimFabric::Connection::on_flow_done(NodeId src, sim::SimTime t) {
  auto& dir = direction_from(src);
  dir.flow = sim::kInvalidFlow;
  if (broken) return;
  assert(dir.in_flight && !dir.sends.empty());
  if (auto* tr = obs::tracer()) {
    const PendingSend& s = dir.sends.front();
    const QpId qp = side_for(src)->id();
    tr->end(obs::Cat::kFabric, s.is_window_write ? "xferw" : "xfer", src,
            obs::xfer_span_id(qp, s.wr_id), t, "qp,wr", qp, s.wr_id);
  }
  SimQueuePair* sqp = side_for(src);
  SimQueuePair* rqp = side_for(sqp->peer());

  if (rqp->closed_) {
    // Receiver side destroyed mid-flight: the bytes are discarded.
    const PendingSend send = std::move(dir.sends.front());
    dir.sends.pop_front();
    dir.in_flight = false;
    if (!send.is_window_write || send.signaled) {
      fabric.deliver_completion(
          sqp->self_,
          Completion{send.wr_id,
                     send.is_window_write ? WcOpcode::kWindowWrite
                                          : WcOpcode::kSend,
                     WcStatus::kSuccess,
                     static_cast<std::uint32_t>(send.buf.size),
                     send.immediate, sqp->id(), sqp->peer()},
          t);
    }
    maybe_start(src, dir);
    return;
  }

  if (dir.sends.front().is_window_write) {
    const PendingSend send = std::move(dir.sends.front());
    dir.sends.pop_front();
    dir.in_flight = false;
    const MemoryView window =
        fabric.endpoints_[rqp->self_]->window(send.window_id);
    if (window.size == 0 && window.data == nullptr) {
      // Deregistered mid-flight: dropped, like DMA after deregistration.
    } else if (window.size < send.buf.size ||
               send.window_offset > window.size - send.buf.size) {
      RDMC_LOG_ERROR("simfabric",
                     "window write out of bounds, breaking QP");
      flush(t);
      return;
    } else if (send.buf.data && window.data && send.buf.size > 0) {
      std::memcpy(window.data + send.window_offset, send.buf.data,
                  send.buf.size);
    }
    if (send.signaled) {
      fabric.deliver_completion(
          sqp->self_,
          Completion{send.wr_id, WcOpcode::kWindowWrite, WcStatus::kSuccess,
                     static_cast<std::uint32_t>(send.buf.size),
                     send.immediate, sqp->id(), sqp->peer()},
          t);
    }
    fabric.deliver_completion(
        rqp->self_,
        Completion{send.window_offset, WcOpcode::kRecvWindowWrite,
                   WcStatus::kSuccess,
                   static_cast<std::uint32_t>(send.buf.size),
                   send.immediate, rqp->id(), rqp->peer()},
        t + fabric.topology_.latency(sqp->self_, rqp->self_));
    maybe_start(src, dir);
    return;
  }

  assert(!dir.recvs.empty());
  PendingSend send = std::move(dir.sends.front());
  dir.sends.pop_front();
  PostedRecv recv = std::move(dir.recvs.front());
  dir.recvs.pop_front();
  dir.in_flight = false;

  Completion send_c{send.wr_id, WcOpcode::kSend, WcStatus::kSuccess,
                    static_cast<std::uint32_t>(send.buf.size),
                    send.immediate, sqp->id(), sqp->peer()};
  Completion recv_c{recv.wr_id, WcOpcode::kRecv, WcStatus::kSuccess,
                    static_cast<std::uint32_t>(send.buf.size),
                    send.immediate, rqp->id(), rqp->peer()};
  if (send.buf.size > recv.buf.size) {
    RDMC_LOG_ERROR("simfabric",
                   "recv buffer too small (%zu < %zu), breaking QP",
                   recv.buf.size, send.buf.size);
    broken = true;
    send_c.status = recv_c.status = WcStatus::kError;
  } else if (send.buf.data && recv.buf.data && send.buf.size > 0) {
    std::memcpy(recv.buf.data, send.buf.data, send.buf.size);
  }
  // Sender sees its completion when the last byte leaves; the receiver
  // after propagation.
  fabric.deliver_completion(sqp->self_, send_c, t);
  fabric.deliver_completion(
      rqp->self_, recv_c,
      t + fabric.topology_.latency(sqp->self_, rqp->self_));
  if (broken) {
    flush(t);
  } else {
    maybe_start(src, dir);
  }
}

void SimFabric::Connection::flush(sim::SimTime when_hint) {
  broken = true;
  side_a.mark_broken();
  side_b.mark_broken();
  fabric.fault_counters_.links_broken++;
  const sim::SimTime t = std::max(when_hint, fabric.sim_.now());
  auto flush_dir = [&](Direction& dir, NodeId src) {
    if (dir.flow != sim::kInvalidFlow) {
      fabric.flows_.abort_flow(dir.flow);
      dir.flow = sim::kInvalidFlow;
    }
    dir.in_flight = false;
    SimQueuePair* sqp = side_for(src);
    SimQueuePair* rqp = side_for(sqp->peer());
    // close() fences: a locally closed QP receives nothing, not even
    // flushes for work it posted before closing.
    if (!sqp->closed_) {
      for (auto& s : dir.sends) {
        fabric.fault_counters_.flushed_completions++;
        fabric.deliver_completion(
            sqp->self_,
            Completion{s.wr_id, WcOpcode::kSend, WcStatus::kFlushed, 0, 0,
                       sqp->id(), sqp->peer()},
            t);
      }
    }
    dir.sends.clear();
    if (!rqp->closed_) {
      for (auto& r : dir.recvs) {
        fabric.fault_counters_.flushed_completions++;
        fabric.deliver_completion(
            rqp->self_,
            Completion{r.wr_id, WcOpcode::kRecv, WcStatus::kFlushed, 0, 0,
                       rqp->id(), rqp->peer()},
            t);
      }
      for (auto& r : dir.ud_recvs) {
        fabric.fault_counters_.flushed_completions++;
        fabric.deliver_completion(
            rqp->self_,
            Completion{r.wr_id, WcOpcode::kRecvUd, WcStatus::kFlushed, 0, 0,
                       rqp->id(), rqp->peer()},
            t);
      }
    }
    dir.recvs.clear();
    dir.ud_recvs.clear();
  };
  flush_dir(a_to_b, side_a.self_);
  flush_dir(b_to_a, side_b.self_);
  for (SimQueuePair* side : {&side_a, &side_b}) {
    if (side->closed_) continue;
    fabric.fault_counters_.disconnects_delivered++;
    fabric.deliver_completion(
        side->self_,
        Completion{0, WcOpcode::kDisconnect, WcStatus::kError, 0, 0,
                   side->id(), side->peer()},
        t);
  }
}

PostResult SimFabric::SimQueuePair::post_send(MemoryView buf,
                                              std::uint64_t wr_id,
                                              std::uint32_t immediate) {
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  const sim::SimTime effective =
      conn_.fabric.charge_software(self_, conn_.fabric.options_.costs.post_send_s);
  auto& dir = conn_.direction_from(self_);
  dir.sends.push_back({buf, wr_id, immediate, effective});
  conn_.maybe_start(self_, dir);
  return PostResult::kOk;
}

PostResult SimFabric::SimQueuePair::post_recv(MemoryView buf,
                                              std::uint64_t wr_id) {
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  conn_.fabric.charge_software(self_,
                               conn_.fabric.options_.costs.post_recv_s);
  auto& dir = conn_.direction_from(peer_);
  dir.recvs.push_back({buf, wr_id});
  conn_.maybe_start(peer_, dir);
  return PostResult::kOk;
}

PostResult SimFabric::SimQueuePair::post_write_imm(std::uint32_t immediate,
                                                   std::uint64_t wr_id) {
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  auto& fabric = conn_.fabric;
  const sim::SimTime effective =
      fabric.charge_software(self_, fabric.options_.costs.post_send_s);
  // Tiny control message: propagation + a fixed wire time, no bandwidth
  // contention (negligible next to block payloads).
  const sim::SimTime arrive = effective +
                              fabric.topology_.latency(self_, peer_) +
                              fabric.options_.write_imm_wire_s;
  fabric.deliver_completion(self_,
                            Completion{wr_id, WcOpcode::kWriteImm,
                                       WcStatus::kSuccess, 0, immediate,
                                       id_, peer_},
                            effective);
  SimQueuePair* other = conn_.side_for(peer_);
  fabric.deliver_completion(peer_,
                            Completion{0, WcOpcode::kRecvWriteImm,
                                       WcStatus::kSuccess, 0, immediate,
                                       other->id(), other->peer()},
                            arrive);
  return PostResult::kOk;
}

void SimFabric::SimQueuePair::close() {
  closed_ = true;
  mark_broken();
  conn_.direction_from(peer_).recvs.clear();
  conn_.direction_from(peer_).ud_recvs.clear();
}

PostResult SimFabric::SimQueuePair::post_send_ud(MemoryView buf,
                                                 std::uint64_t wr_id,
                                                 std::uint32_t immediate) {
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  auto& fabric = conn_.fabric;
  const sim::SimTime effective =
      fabric.charge_software(self_, fabric.options_.costs.post_send_s);
  // The engine decides loss/duplication/reordering at the sender's egress,
  // so only surviving datagrams occupy wire time — identical verdict
  // sequences to the mem/tcp backends by construction.
  auto deliveries = fabric.datagrams().on_send(self_, peer_, buf, immediate);
  NodeState& tx = fabric.node_state_[self_];
  sim::SimTime sender_done = effective;
  for (auto& d : deliveries) {
    const std::size_t bytes = d.view.size;
    const bool phantom = d.view.data == nullptr;
    std::vector<std::byte> payload;
    if (!phantom && bytes > 0)
      payload.assign(d.view.data, d.view.data + bytes);
    // Store-and-forward: serialise through the sender's tx port, propagate,
    // then serialise through the receiver's rx port. Directed-pair caps
    // (degrade_link) constrain the wire rate like they do for flows.
    double rate = std::min(fabric.topology_.node_tx_Bps(self_),
                           fabric.topology_.node_rx_Bps(peer_));
    if (auto cap = fabric.topology_.pair_cap_Bps(self_, peer_))
      rate = std::min(rate, *cap);
    const double wire_s =
        rate > 0.0 ? static_cast<double>(bytes) / rate : 0.0;
    const sim::SimTime tx_start = std::max(effective, tx.ud_tx_free);
    const sim::SimTime tx_end = tx_start + wire_s;
    tx.ud_tx_free = tx_end;
    sender_done = tx_end;
    NodeState& rx = fabric.node_state_[peer_];
    const sim::SimTime rx_end =
        std::max(tx_end + fabric.topology_.latency(self_, peer_),
                 rx.ud_rx_free + wire_s);
    rx.ud_rx_free = rx_end;
    const std::uint64_t span = fabric.ud_wire_seq_++;
    if (auto* tr = obs::tracer())
      tr->begin(obs::Cat::kFabric, "udxfer", self_, span, tx_start,
                "dst,bytes,imm,seq", peer_, bytes, d.immediate, d.index);
    fabric.sim_.at(rx_end, [conn = &conn_, src = self_,
                            payload = std::move(payload), phantom, bytes,
                            imm = d.immediate, span]() mutable {
      conn->deliver_ud(src, std::move(payload), phantom, bytes, imm, span,
                       conn->fabric.sim_.now());
    });
  }
  // Fire-and-forget: the sender always completes successfully once its NIC
  // handed off the last surviving byte (or immediately if nothing survived).
  fabric.deliver_completion(
      self_,
      Completion{wr_id, WcOpcode::kSendUd, WcStatus::kSuccess,
                 static_cast<std::uint32_t>(buf.size), immediate, id_,
                 peer_},
      sender_done);
  return PostResult::kOk;
}

PostResult SimFabric::SimQueuePair::post_recv_ud(MemoryView buf,
                                                 std::uint64_t wr_id) {
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  conn_.fabric.charge_software(self_,
                               conn_.fabric.options_.costs.post_recv_s);
  conn_.direction_from(peer_).ud_recvs.push_back({buf, wr_id});
  return PostResult::kOk;
}

void SimFabric::Connection::deliver_ud(NodeId src,
                                       std::vector<std::byte> payload,
                                       bool phantom, std::size_t bytes,
                                       std::uint32_t immediate,
                                       std::uint64_t span, sim::SimTime t) {
  SimQueuePair* sqp = side_for(src);
  SimQueuePair* rqp = side_for(sqp->peer());
  auto& dir = direction_from(src);
  bool delivered = false;
  if (!broken && !rqp->closed_ && !fabric.crashed_.contains(rqp->self_) &&
      !dir.ud_recvs.empty() && dir.ud_recvs.front().buf.size >= bytes) {
    PostedRecv recv = std::move(dir.ud_recvs.front());
    dir.ud_recvs.pop_front();
    if (!phantom && recv.buf.data && bytes > 0)
      std::memcpy(recv.buf.data, payload.data(), bytes);
    fabric.datagrams().count_delivered();
    delivered = true;
    fabric.deliver_completion(
        rqp->self_,
        Completion{recv.wr_id, WcOpcode::kRecvUd, WcStatus::kSuccess,
                   static_cast<std::uint32_t>(bytes), immediate, rqp->id(),
                   rqp->peer()},
        t);
  } else {
    // No posted receive / too small / receiver gone: silently discarded
    // and counted — a dropped datagram never breaks the QP.
    fabric.datagrams().count_no_recv();
  }
  if (auto* tr = obs::tracer())
    tr->end(obs::Cat::kFabric, "udxfer", src, span, t, "dst,delivered",
            rqp->self_, delivered ? 1 : 0);
}

PostResult SimFabric::SimQueuePair::post_window_write(
    std::uint32_t window_id, std::uint64_t offset, MemoryView local,
    std::uint32_t immediate, std::uint64_t wr_id, bool signaled) {
  if (conn_.broken || broken()) return PostResult::kQpBroken;
  if (local.data && local.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  if (local.size > 0 && offset > ~std::uint64_t{0} - local.size)
    return PostResult::kWindowViolation;
  const sim::SimTime effective = conn_.fabric.charge_software(
      self_, conn_.fabric.options_.costs.post_send_s);
  auto& dir = conn_.direction_from(self_);
  Connection::PendingSend send;
  send.buf = local;
  send.wr_id = wr_id;
  send.immediate = immediate;
  send.posted_at = effective;
  send.is_window_write = true;
  send.signaled = signaled;
  send.window_id = window_id;
  send.window_offset = offset;
  dir.sends.push_back(send);
  conn_.maybe_start(self_, dir);
  return PostResult::kOk;
}

// ---------------------------------------------------------------------------
// SimFabric
// ---------------------------------------------------------------------------

SimFabric::SimFabric(sim::Simulator& sim, sim::Topology& topology,
                     Options options)
    : sim_(sim),
      topology_(topology),
      flows_(sim, topology),
      options_(options) {
  endpoints_.reserve(topology.num_nodes());
  node_state_.resize(topology.num_nodes());
  util::Rng seeder(options_.seed);
  for (std::size_t i = 0; i < topology.num_nodes(); ++i) {
    endpoints_.push_back(std::make_unique<SimEndpoint>(
        *this, static_cast<NodeId>(i), options_.default_mode));
    node_state_[i].rng = seeder.split();
  }
}

SimFabric::~SimFabric() = default;

SimFabric::Options SimFabric::options_from(const sim::ClusterProfile& p) {
  Options o;
  o.costs = p.costs;
  o.preemption = p.preemption;
  return o;
}

Endpoint& SimFabric::endpoint(NodeId node) {
  assert(node < endpoints_.size());
  return *endpoints_[node];
}

QueuePair* SimFabric::connect(NodeId a, NodeId b, std::uint32_t channel) {
  assert(a < num_nodes() && b < num_nodes() && a != b);
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  auto key = std::make_tuple(lo, hi, channel);
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    auto conn = std::make_unique<Connection>(*this, next_qp_id_,
                                             next_qp_id_ + 1, lo, hi);
    next_qp_id_ += 2;
    it = connections_.emplace(key, std::move(conn)).first;
  }
  // Connecting to a crashed node yields a born-broken connection rather
  // than a silent hang: the survivor's side flushes immediately.
  if (!it->second->broken &&
      (crashed_.contains(lo) || crashed_.contains(hi))) {
    it->second->flush(sim_.now());
  }
  return it->second->side_for(a);
}

void SimFabric::break_link(NodeId a, NodeId b) {
  if (auto* tr = obs::tracer())
    tr->instant(obs::Cat::kFabric, "fault.break", a, sim_.now(), "a,b", a, b);
  const NodeId lo = std::min(a, b);
  const NodeId hi = std::max(a, b);
  for (auto& [key, conn] : connections_) {
    if (std::get<0>(key) == lo && std::get<1>(key) == hi && !conn->broken)
      conn->flush(sim_.now());
  }
}

void SimFabric::crash_node(NodeId node) {
  if (auto* tr = obs::tracer())
    tr->instant(obs::Cat::kFabric, "fault.crash", node, sim_.now(), "node",
                node);
  if (crashed_.insert(node).second) fault_counters_.crashes++;
  for (auto& [key, conn] : connections_) {
    if ((std::get<0>(key) == node || std::get<1>(key) == node) &&
        !conn->broken)
      conn->flush(sim_.now());
  }
}

void SimFabric::apply_degrade(NodeId src, NodeId dst, double factor) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 32) | dst;
  Degrade& d = degrades_[key];
  if (d.depth == 0) {
    const auto original = topology_.pair_cap_Bps(src, dst);
    d.had_original = original.has_value();
    d.original_gbps = original ? *original * 8.0 / 1e9 : 0.0;
    // Base bandwidth of an uncapped pair: whatever the tighter NIC port
    // allows (the pair cap only matters when below that anyway).
    d.base_gbps =
        d.had_original
            ? d.original_gbps
            : std::min(topology_.node_tx_Bps(src), topology_.node_rx_Bps(dst)) *
                  8.0 / 1e9;
    d.combined = 1.0;
  }
  d.depth++;
  d.combined *= factor;
  topology_.set_pair_cap(src, dst, d.base_gbps * d.combined);
}

void SimFabric::expire_degrade(NodeId src, NodeId dst, double factor) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 32) | dst;
  auto it = degrades_.find(key);
  if (it == degrades_.end()) return;
  Degrade& d = it->second;
  d.depth--;
  d.combined /= factor;
  if (d.depth > 0) {
    topology_.set_pair_cap(src, dst, d.base_gbps * d.combined);
    return;
  }
  if (d.had_original)
    topology_.set_pair_cap(src, dst, d.original_gbps);
  else
    topology_.clear_pair_cap(src, dst);
  degrades_.erase(it);
}

bool SimFabric::degrade_link(NodeId a, NodeId b, double factor,
                             double duration_s) {
  if (factor <= 0.0 || duration_s < 0.0) return false;
  fault_counters_.degrades++;
  const std::uint64_t span =
      (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kFabric, "fault.degrade", a, span, sim_.now(),
              "a,b,permille", a, b,
              static_cast<std::uint64_t>(factor * 1000.0));
  apply_degrade(a, b, factor);
  apply_degrade(b, a, factor);
  flows_.topology_changed();
  sim_.after(duration_s, [this, a, b, factor, span] {
    expire_degrade(a, b, factor);
    expire_degrade(b, a, factor);
    flows_.topology_changed();
    if (auto* tr = obs::tracer())
      tr->end(obs::Cat::kFabric, "fault.degrade", a, span, sim_.now(),
              "a,b", a, b);
  });
  return true;
}

bool SimFabric::slow_node(NodeId node, double factor, double duration_s) {
  if (factor <= 0.0 || duration_s < 0.0 || node >= node_state_.size())
    return false;
  fault_counters_.slowdowns++;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kFabric, "fault.slow", node, node, sim_.now(),
              "node,permille", node,
              static_cast<std::uint64_t>(factor * 1000.0));
  node_state_[node].software_factor *= factor;
  sim_.after(duration_s, [this, node, factor] {
    node_state_[node].software_factor /= factor;
    if (auto* tr = obs::tracer())
      tr->end(obs::Cat::kFabric, "fault.slow", node, node, sim_.now(),
              "node", node);
  });
  return true;
}

sim::SimTime SimFabric::charge_software(NodeId node, double cost) {
  NodeState& st = node_state_[node];
  if (options_.cross_channel) {
    // CORE-Direct: the NIC walks the posted dependency graph; no software
    // involvement per operation.
    return std::max(sim_.now(), st.cpu_free);
  }
  const double preempt = options_.preemption.sample(st.rng);
  const double scaled = cost * st.software_factor;  // slow-receiver fault
  const sim::SimTime start = std::max(sim_.now(), st.cpu_free);
  const sim::SimTime done = start + scaled + preempt;
  st.busy += scaled;  // preemption is stolen time, not useful work
  st.cpu_free = done;
  return done;
}

void SimFabric::deliver_completion(NodeId node, Completion c,
                                   sim::SimTime ready) {
  // Fail-stop: a crashed node's software never runs again, so nothing is
  // delivered to it — not even the flushes its own crash produced.
  if (crashed_.contains(node)) return;
  NodeState& st = node_state_[node];
  const SimEndpoint& ep = *endpoints_[node];
  double pickup = 0.0;
  if (!options_.cross_channel) {
    switch (ep.mode_) {
      case CompletionMode::kPolling:
        pickup = 0.0;
        break;
      case CompletionMode::kInterrupt:
        pickup = options_.costs.interrupt_wakeup_s;
        break;
      case CompletionMode::kHybrid:
        pickup = (ready - st.last_event <= options_.hybrid_poll_window_s)
                     ? 0.0
                     : options_.costs.interrupt_wakeup_s;
        break;
    }
  }
  const sim::SimTime earliest = std::max(ready + pickup, sim_.now());
  sim_.at(earliest,
          [this, node, c, ready] { attempt_handle(node, c, ready); });
}

void SimFabric::attempt_handle(NodeId node, const Completion& c,
                               sim::SimTime ready) {
  NodeState& st = node_state_[node];
  if (st.cpu_free > sim_.now()) {
    // The single completion thread is busy; retry when it frees up.
    sim_.at(st.cpu_free,
            [this, node, c, ready] { attempt_handle(node, c, ready); });
    return;
  }
  SimEndpoint& ep = *endpoints_[node];
  const sim::SimTime start = sim_.now();
  st.wait += std::max(0.0, start - ready);
  double cost = 0.0;
  if (!options_.cross_channel) {
    const double scaled =
        options_.costs.handle_completion_s * st.software_factor;
    cost = scaled + options_.preemption.sample(st.rng);
    st.busy += scaled;
  }
  st.cpu_free = start + cost;
  st.last_event = start + cost;
  if (ep.completion_handler_) ep.completion_handler_(c);
}

void SimFabric::deliver_oob(NodeId to, NodeId from,
                            std::vector<std::byte> payload) {
  // A crashed node's control mesh is dead along with its RDMA sessions.
  if (crashed_.contains(from) || crashed_.contains(to)) return;
  sim_.after(options_.oob_latency_s,
             [this, to, from, payload = std::move(payload)] {
               SimEndpoint& ep = *endpoints_[to];
               if (ep.oob_handler_)
                 ep.oob_handler_(from, std::span<const std::byte>(payload));
             });
}

double SimFabric::cpu_busy_seconds(NodeId node) const {
  return node_state_[node].busy;
}

double SimFabric::completion_wait_seconds(NodeId node) const {
  return node_state_[node].wait;
}

}  // namespace rdmc::fabric
