// SimFabric: the fabric API driven by the discrete-event simulator.
//
// Identical semantics to MemFabric, but every action takes virtual time:
//   * block payloads move as max-min-fair flows through the topology
//     (bandwidth contention, oversubscribed TOR, slow links);
//   * software actions (posting work, handling completions, the first-block
//     memcpy) charge a per-node virtual CPU, serialised per node exactly
//     like the paper's single completion thread (§4.2);
//   * completion pickup latency depends on the completion mode —
//     polling / interrupt / 50 ms-window hybrid (Fig 11);
//   * a per-node preemption process injects OS scheduling delays
//     (Fig 5's ~100 us anomaly, §4.5 robustness);
//   * cross-channel mode executes the posted dependency graph with zero
//     software cost, modelling CORE-Direct offload (§2, Fig 12).
//
// Payload buffers may be phantom (null data) so 512-node Fig 8 runs do not
// allocate hundreds of gigabytes; with real buffers bytes are copied at
// flow completion, which the integrity tests rely on.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "fabric/datagram.hpp"
#include "fabric/fabric.hpp"
#include "sim/cluster_profiles.hpp"
#include "sim/delay_model.hpp"
#include "sim/flow_network.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"
#include "util/random.hpp"

namespace rdmc::fabric {

class SimFabric final : public Fabric, public FaultInjector {
 public:
  struct Options {
    sim::SoftwareCosts costs{};
    sim::PreemptionModel preemption{};
    CompletionMode default_mode = CompletionMode::kHybrid;
    /// Hybrid mode: poll window after the last handled event (paper: 50 ms).
    double hybrid_poll_window_s = 50e-3;
    /// One-way latency of the out-of-band (TCP mesh) control channel.
    double oob_latency_s = 15e-6;
    /// Wire time of a ready-for-block write-with-immediate.
    double write_imm_wire_s = 0.3e-6;
    /// CORE-Direct: the NIC executes posted dependency graphs itself; all
    /// software costs and pickup latencies drop to zero (Fig 12).
    bool cross_channel = false;
    std::uint64_t seed = 0x5EEDBA5E;
  };

  SimFabric(sim::Simulator& sim, sim::Topology& topology, Options options);
  ~SimFabric() override;

  /// Convenience: build options from a cluster profile's calibrated costs.
  static Options options_from(const sim::ClusterProfile& profile);

  std::size_t num_nodes() const override { return topology_.num_nodes(); }
  Endpoint& endpoint(NodeId node) override;
  QueuePair* connect(NodeId a, NodeId b, std::uint32_t channel) override;
  FaultInjector& faults() override { return *this; }

  // FaultInjector: injections take effect at the current virtual instant;
  // degradations/slowdowns recover after `duration_s` of virtual time.
  void break_link(NodeId a, NodeId b) override;
  void crash_node(NodeId node) override;
  bool degrade_link(NodeId a, NodeId b, double factor,
                    double duration_s) override;
  bool slow_node(NodeId node, double factor, double duration_s) override;
  void set_datagram_faults(const DatagramFaultProfile& profile) override {
    datagrams_.set_profile(profile);
  }
  DatagramCounters datagram_counters() const override {
    return datagrams_.counters();
  }
  bool crashed(NodeId node) const override {
    return crashed_.contains(node);
  }

  DatagramEngine& datagrams() { return datagrams_; }

  /// Charge application-level software work (e.g. an erasure decode in
  /// src/reliability) on `node`'s virtual CPU, honouring slow-node factors
  /// and the preemption process exactly like the fabric's own costs.
  /// Returns the virtual time at which the work completes.
  sim::SimTime charge_app_seconds(NodeId node, double seconds) {
    return charge_software(node, seconds);
  }

  /// Fault-path observability (PerfStats and the chaos campaign read these
  /// instead of re-deriving them from completion streams).
  struct FaultCounters {
    std::uint64_t disconnects_delivered = 0;  // kDisconnect completions
    std::uint64_t flushed_completions = 0;    // kFlushed completions
    std::uint64_t links_broken = 0;           // connections flushed
    std::uint64_t crashes = 0;
    std::uint64_t degrades = 0;
    std::uint64_t slowdowns = 0;
  };
  const FaultCounters& fault_counters() const { return fault_counters_; }

  sim::Simulator& simulator() { return sim_; }
  sim::FlowNetwork& flows() { return flows_; }
  const Options& options() const { return options_; }

  /// Seconds of virtual CPU consumed by node's software path so far.
  double cpu_busy_seconds(NodeId node) const;

  /// Sum of software-induced wait (time completions sat ready before their
  /// handler started) — the "Waiting" row of Table 1.
  double completion_wait_seconds(NodeId node) const;

 private:
  class SimEndpoint;
  struct Connection;
  class SimQueuePair;
  struct NodeState;

  /// Schedule `c` for handling on `node`'s virtual CPU; `ready` is the
  /// instant the NIC raised it.
  void deliver_completion(NodeId node, Completion c, sim::SimTime ready);
  /// Run the completion handler once the node's virtual CPU is free.
  void attempt_handle(NodeId node, const Completion& c, sim::SimTime ready);
  void deliver_oob(NodeId to, NodeId from, std::vector<std::byte> payload);

  /// Charge one software action on `node`'s CPU; returns the virtual time
  /// at which the action takes effect. Zero-cost in cross-channel mode.
  sim::SimTime charge_software(NodeId node, double cost);

  /// Nested transient degradations on one directed pair. `depth` counts
  /// active windows; the pair cap is base x product of active factors and
  /// the original cap (or its absence) is restored when depth reaches 0.
  struct Degrade {
    int depth = 0;
    double combined = 1.0;
    bool had_original = false;
    double original_gbps = 0.0;
    double base_gbps = 0.0;
  };
  void apply_degrade(NodeId src, NodeId dst, double factor);
  void expire_degrade(NodeId src, NodeId dst, double factor);

  sim::Simulator& sim_;
  sim::Topology& topology_;
  sim::FlowNetwork flows_;
  Options options_;
  std::vector<std::unique_ptr<SimEndpoint>> endpoints_;
  std::vector<NodeState> node_state_;
  std::map<std::tuple<NodeId, NodeId, std::uint32_t>,
           std::unique_ptr<Connection>>
      connections_;
  std::set<NodeId> crashed_;
  std::map<std::uint64_t, Degrade> degrades_;
  FaultCounters fault_counters_;
  DatagramEngine datagrams_;
  /// Monotonic id for "udxfer" trace spans (one per datagram on the wire).
  std::uint64_t ud_wire_seq_ = 1;
  QpId next_qp_id_ = 1;
};

}  // namespace rdmc::fabric
