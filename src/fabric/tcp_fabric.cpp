#include "fabric/tcp_fabric.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/stall.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace rdmc::fabric {

namespace {

constexpr std::uint32_t kFrameMagic = 0x52444D54;  // "RDMT"

enum class FrameType : std::uint8_t {
  kHello = 0,        // first frame on a dialed socket; immediate = src node
  kSend = 1,         // two-sided send (consumes a posted receive)
  kWriteImm = 2,     // one-sided write-with-immediate (no payload)
  kWindowWrite = 3,  // one-sided payload write into a registered window
  kOob = 4,          // out-of-band control mesh
  kSendUd = 5,       // unreliable datagram (consumes a posted UD receive);
                     // impairment decided sender-side, so the wire carries
                     // only surviving datagrams in their final order
};

/// Wire header. Single-architecture deployments assumed (host byte order),
/// as is usual for RDMA-era datacenter protocols; a WAN port would add
/// explicit endianness.
struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  FrameType type = FrameType::kSend;
  std::uint32_t channel = 0;
  std::uint32_t immediate = 0;
  std::uint32_t window_id = 0;
  std::uint64_t offset_or_wrid = 0;
  std::uint64_t length = 0;  // payload bytes following the header
};

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<std::byte*>(buf);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const void* buf, std::size_t len) {
  auto* p = static_cast<const std::byte*>(buf);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpQueuePair
// ---------------------------------------------------------------------------

class TcpFabric::TcpQueuePair final : public QueuePair {
 public:
  TcpQueuePair(QpId id, TcpEndpoint& owner, NodeId peer,
               std::uint32_t channel)
      : QueuePair(id, peer), owner_(owner), channel_(channel) {}

  PostResult post_send(MemoryView buf, std::uint64_t wr_id,
                       std::uint32_t immediate) override;
  PostResult post_recv(MemoryView buf, std::uint64_t wr_id) override;
  PostResult post_write_imm(std::uint32_t immediate,
                            std::uint64_t wr_id) override;
  PostResult post_window_write(std::uint32_t window_id, std::uint64_t offset,
                               MemoryView local, std::uint32_t immediate,
                               std::uint64_t wr_id, bool signaled) override;
  PostResult post_send_ud(MemoryView buf, std::uint64_t wr_id,
                          std::uint32_t immediate) override;
  PostResult post_recv_ud(MemoryView buf, std::uint64_t wr_id) override;
  void close() override;

  TcpEndpoint& owner_;
  std::uint32_t channel_;
  /// Guarded by owner_.state_mutex_ (TcpEndpoint is incomplete here, so the
  /// attribute cannot name it; every access happens under a MutexLock on
  /// owner_.state_mutex_).
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// TcpEndpoint: one locally hosted node.
// ---------------------------------------------------------------------------

class TcpFabric::TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(TcpFabric& fabric, NodeId id) : fabric_(fabric), id_(id) {}

  ~TcpEndpoint() override { stop(); }

  void start_listening(const TcpAddress& address);
  TcpAddress listen_address() const { return listen_address_; }

  NodeId id() const override { return id_; }

  void set_completion_handler(
      std::function<void(const Completion&)> handler) override {
    util::MutexLock lock(handler_mutex_);
    completion_handler_ = std::move(handler);
  }
  void set_oob_handler(
      std::function<void(NodeId, std::span<const std::byte>)> handler)
      override {
    util::MutexLock lock(handler_mutex_);
    oob_handler_ = std::move(handler);
  }
  void set_completion_mode(CompletionMode mode) override {
    mode_.store(mode, std::memory_order_relaxed);
  }
  CompletionMode completion_mode() const override {
    return mode_.load(std::memory_order_relaxed);
  }
  void register_window(std::uint32_t window_id, MemoryView region) override {
    util::MutexLock lock(state_mutex_);
    windows_[window_id] = region;
  }
  void unregister_window(std::uint32_t window_id) override {
    // state_mutex_ fences in-flight window applications.
    util::MutexLock lock(state_mutex_);
    windows_.erase(window_id);
  }

  void send_oob(NodeId to, std::vector<std::byte> payload) override;

  QueuePair* get_or_create_qp(NodeId peer, std::uint32_t channel);
  bool send_frame(NodeId peer, const FrameHeader& header,
                  MemoryView payload);
  void sever_peer(NodeId peer);
  void stop();

 private:
  struct ChannelRx {
    struct PostedRecv {
      MemoryView buf;
      std::uint64_t wr_id;
    };
    std::deque<PostedRecv> recvs;
    /// Early arrivals (sender raced our post_recv): kernel TCP has the
    /// bytes either way, so we park them here. Bounded.
    std::deque<std::pair<std::vector<std::byte>, std::uint32_t>> pending;
    /// UD receive queue — separate FIFO; a datagram arriving with no
    /// posted UD recv is dropped (counted), never parked: unreliable
    /// datagrams have no early-arrival cushion.
    std::deque<PostedRecv> ud_recvs;
  };

  struct OobMsg {
    NodeId from;
    std::vector<std::byte> payload;
  };
  using NodeEvent = std::variant<Completion, OobMsg>;

  void accept_loop();
  void reader_loop(int fd);
  /// Handle one frame from `peer`; false on any protocol/socket error.
  bool handle_frame(int fd, NodeId peer, const FrameHeader& header);
  int dial(NodeId peer) RDMC_REQUIRES(state_mutex_);
  void push(NodeEvent event);
  void completion_loop();
  void slow_dispatch_delay();
  void dispatch(const NodeEvent& event);

 public:
  void set_slow(std::int64_t delay_ns, std::int64_t until_epoch_ns) {
    slow_delay_ns_.store(delay_ns, std::memory_order_relaxed);
    slow_until_.store(until_epoch_ns, std::memory_order_relaxed);
  }

 private:

  TcpFabric& fabric_;
  NodeId id_;
  TcpAddress listen_address_;
  int listen_fd_ = -1;
  std::thread accept_thread_;

  /// Lock order (DESIGN.md §11): a per-peer write mutex (out_mutexes_) is
  /// acquired *before* state_mutex_ on the sever-on-write-failure path;
  /// send_frame therefore releases state_mutex_ before taking the write
  /// mutex, and nothing acquires a write mutex with state_mutex_ held.
  util::Mutex state_mutex_;
  /// Outgoing sockets (we dial when we first talk to a peer).
  std::map<NodeId, int> out_fds_ RDMC_GUARDED_BY(state_mutex_);
  /// Per-peer write mutexes serialise frames on one socket; the map itself
  /// is guarded, the pointed-to mutexes outlive any unlocked use (entries
  /// are never erased before stop()).
  std::map<NodeId, std::unique_ptr<util::Mutex>> out_mutexes_
      RDMC_GUARDED_BY(state_mutex_);
  /// (peer, channel) -> queue pair.
  std::map<std::pair<NodeId, std::uint32_t>, std::unique_ptr<TcpQueuePair>>
      qps_ RDMC_GUARDED_BY(state_mutex_);
  /// (peer, channel) -> receive state.
  std::map<std::pair<NodeId, std::uint32_t>, ChannelRx> rx_
      RDMC_GUARDED_BY(state_mutex_);
  std::map<std::uint32_t, MemoryView> windows_ RDMC_GUARDED_BY(state_mutex_);
  std::vector<std::thread> reader_threads_ RDMC_GUARDED_BY(state_mutex_);
  std::vector<int> in_fds_ RDMC_GUARDED_BY(state_mutex_);
  std::map<NodeId, bool> severed_ RDMC_GUARDED_BY(state_mutex_);

  util::Mutex handler_mutex_;
  std::function<void(const Completion&)> completion_handler_
      RDMC_GUARDED_BY(handler_mutex_);
  std::function<void(NodeId, std::span<const std::byte>)> oob_handler_
      RDMC_GUARDED_BY(handler_mutex_);
  std::atomic<CompletionMode> mode_{CompletionMode::kHybrid};
  std::atomic<bool> in_dispatch_{false};

  util::Mutex queue_mutex_;
  util::CondVar cv_;
  std::deque<NodeEvent> queue_ RDMC_GUARDED_BY(queue_mutex_);
  bool stopping_ RDMC_GUARDED_BY(queue_mutex_) = false;
  std::atomic<std::int64_t> slow_delay_ns_{0};
  std::atomic<std::int64_t> slow_until_{0};  // steady_clock epoch ns; 0=off
  std::thread completion_thread_;

  friend class TcpFabric;
  friend class TcpQueuePair;
};

void TcpFabric::TcpEndpoint::start_listening(const TcpAddress& address) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  assert(listen_fd_ >= 0);
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  ::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    RDMC_LOG_ERROR("tcpfabric", "node %u: bind %s:%u failed: %s", id_,
                   address.host.c_str(), address.port,
                   std::strerror(errno));
    assert(false && "bind failed");
  }
  ::listen(listen_fd_, 64);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  listen_address_ = {address.host, ntohs(bound.sin_port)};
  accept_thread_ = std::thread([this] { accept_loop(); });
  completion_thread_ = std::thread([this] { completion_loop(); });
}

void TcpFabric::TcpEndpoint::accept_loop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // listener closed: shutting down
    set_nodelay(fd);
    util::MutexLock lock(state_mutex_);
    in_fds_.push_back(fd);
    reader_threads_.emplace_back([this, fd] { reader_loop(fd); });
  }
}

void TcpFabric::TcpEndpoint::reader_loop(int fd) {
  // The dialer introduces itself first.
  FrameHeader hello;
  if (!read_exact(fd, &hello, sizeof hello) ||
      hello.magic != kFrameMagic || hello.type != FrameType::kHello) {
    ::close(fd);
    return;
  }
  const NodeId peer = hello.immediate;
  while (true) {
    FrameHeader header;
    if (!read_exact(fd, &header, sizeof header) ||
        header.magic != kFrameMagic) {
      break;
    }
    if (!handle_frame(fd, peer, header)) break;
  }
  sever_peer(peer);
}

bool TcpFabric::TcpEndpoint::handle_frame(int fd, NodeId peer,
                                          const FrameHeader& header) {
  switch (header.type) {
    case FrameType::kSend: {
      auto* qp = static_cast<TcpQueuePair*>(
          get_or_create_qp(peer, header.channel));
      // Drain the payload off the socket first, then match it under the
      // state lock — the lock fences QueuePair::close(), so a posted
      // receive's buffer can never be freed mid-copy.
      std::vector<std::byte> payload(header.length);
      if (!read_exact(fd, payload.data(), header.length)) return false;
      util::MutexLock lock(state_mutex_);
      if (qp->closed_) return true;  // destroyed locally: discard
      ChannelRx& rx = rx_[{peer, header.channel}];
      if (!rx.recvs.empty()) {
        const auto recv = rx.recvs.front();
        rx.recvs.pop_front();
        if (header.length > recv.buf.size) {
          RDMC_LOG_ERROR("tcpfabric", "recv buffer too small (%zu < %llu)",
                         recv.buf.size,
                         static_cast<unsigned long long>(header.length));
          return false;
        }
        if (recv.buf.data != nullptr)
          std::memcpy(recv.buf.data, payload.data(), header.length);
        push(Completion{recv.wr_id, WcOpcode::kRecv, WcStatus::kSuccess,
                        static_cast<std::uint32_t>(header.length),
                        header.immediate, qp->id(), peer});
      } else {
        // Early arrival: park the payload until a receive is posted.
        constexpr std::size_t kMaxPending = 4096;
        if (rx.pending.size() >= kMaxPending) return false;
        rx.pending.emplace_back(std::move(payload), header.immediate);
      }
      return true;
    }
    case FrameType::kSendUd: {
      auto* qp = static_cast<TcpQueuePair*>(
          get_or_create_qp(peer, header.channel));
      std::vector<std::byte> payload(header.length);
      if (!read_exact(fd, payload.data(), header.length)) return false;
      DatagramEngine& engine = fabric_.datagrams();
      util::MutexLock lock(state_mutex_);
      ChannelRx& rx = rx_[{peer, header.channel}];
      if (qp->closed_ || rx.ud_recvs.empty() ||
          rx.ud_recvs.front().buf.size < header.length) {
        // UD semantics: no posted (or a too-small) UD recv discards the
        // datagram, never the buffer, and never severs anything.
        engine.count_no_recv();
        return true;
      }
      const auto recv = rx.ud_recvs.front();
      rx.ud_recvs.pop_front();
      if (recv.buf.data != nullptr)
        std::memcpy(recv.buf.data, payload.data(), header.length);
      engine.count_delivered();
      push(Completion{recv.wr_id, WcOpcode::kRecvUd, WcStatus::kSuccess,
                      static_cast<std::uint32_t>(header.length),
                      header.immediate, qp->id(), peer});
      return true;
    }
    case FrameType::kWriteImm: {
      QueuePair* qp = get_or_create_qp(peer, header.channel);
      push(Completion{header.offset_or_wrid, WcOpcode::kRecvWriteImm,
                      WcStatus::kSuccess, 0, header.immediate, qp->id(),
                      peer});
      return true;
    }
    case FrameType::kWindowWrite: {
      QueuePair* qp = get_or_create_qp(peer, header.channel);
      // Drain the payload off the socket first, then apply it under the
      // window lock — the lock fences unregister_window, so the region can
      // never be freed mid-copy.
      std::vector<std::byte> payload(header.length);
      if (!read_exact(fd, payload.data(), header.length)) return false;
      {
        util::MutexLock lock(state_mutex_);
        auto it = windows_.find(header.window_id);
        if (it == windows_.end()) {
          // Deregistered mid-flight: drop, like DMA after deregistration.
          return true;
        }
        const MemoryView window = it->second;
        if (window.size < header.length ||
            header.offset_or_wrid > window.size - header.length) {
          RDMC_LOG_ERROR("tcpfabric", "window write out of bounds");
          return false;
        }
        if (window.data != nullptr) {
          std::memcpy(window.data + header.offset_or_wrid, payload.data(),
                      header.length);
        }
      }
      push(Completion{header.offset_or_wrid, WcOpcode::kRecvWindowWrite,
                      WcStatus::kSuccess,
                      static_cast<std::uint32_t>(header.length),
                      header.immediate, qp->id(), peer});
      return true;
    }
    case FrameType::kOob: {
      std::vector<std::byte> payload(header.length);
      if (!read_exact(fd, payload.data(), header.length)) return false;
      push(OobMsg{peer, std::move(payload)});
      return true;
    }
    case FrameType::kHello:
      return true;  // redundant hello: ignore
  }
  return false;
}

int TcpFabric::TcpEndpoint::dial(NodeId peer) {
  auto it = out_fds_.find(peer);
  if (it != out_fds_.end()) return it->second;
  if (severed_[peer]) return -1;
  // A crashed peer will never answer; fail fast instead of burning the
  // bootstrap retry window against a dead listener.
  if (fabric_.crashed(peer)) return -1;
  const TcpAddress address = fabric_.addresses_[peer];
  // Retry for a bootstrap window: peers of a distributed deployment come
  // up in arbitrary order (the paper's TCP mesh barriers over the same
  // problem). Connection refused within the window is not a failure.
  int fd = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(address.port);
    ::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
        0) {
      break;
    }
    const int saved = errno;
    ::close(fd);
    fd = -1;
    if (saved != ECONNREFUSED && saved != ETIMEDOUT) break;
    ::usleep(50 * 1000);
  }
  if (fd < 0) {
    RDMC_LOG_WARN("tcpfabric", "node %u: dial node %u (%s:%u) failed: %s",
                  id_, peer, address.host.c_str(), address.port,
                  std::strerror(errno));
    return -1;
  }
  set_nodelay(fd);
  FrameHeader hello;
  hello.type = FrameType::kHello;
  hello.immediate = id_;
  if (!write_all(fd, &hello, sizeof hello)) {
    ::close(fd);
    return -1;
  }
  out_fds_[peer] = fd;
  out_mutexes_[peer] = std::make_unique<util::Mutex>();
  return fd;
}

bool TcpFabric::TcpEndpoint::send_frame(NodeId peer,
                                        const FrameHeader& header,
                                        MemoryView payload) {
  int fd;
  util::Mutex* write_mutex;
  {
    util::MutexLock lock(state_mutex_);
    fd = dial(peer);
    if (fd < 0) return false;
    write_mutex = out_mutexes_[peer].get();
  }
  util::MutexLock lock(*write_mutex);
  if (!write_all(fd, &header, sizeof header)) {
    sever_peer(peer);
    return false;
  }
  if (header.length > 0) {
    if (payload.data != nullptr) {
      if (!write_all(fd, payload.data, header.length)) {
        sever_peer(peer);
        return false;
      }
    } else {
      // Phantom payload: still honour the wire contract.
      std::byte zeros[4096] = {};
      std::uint64_t left = header.length;
      while (left > 0) {
        const std::size_t chunk =
            std::min<std::uint64_t>(left, sizeof zeros);
        if (!write_all(fd, zeros, chunk)) {
          sever_peer(peer);
          return false;
        }
        left -= chunk;
      }
    }
  }
  return true;
}

QueuePair* TcpFabric::TcpEndpoint::get_or_create_qp(NodeId peer,
                                                    std::uint32_t channel) {
  util::MutexLock lock(state_mutex_);
  auto& slot = qps_[{peer, channel}];
  if (!slot) {
    slot = std::make_unique<TcpQueuePair>(
        fabric_.next_qp_id_.fetch_add(1), *this, peer, channel);
  }
  return slot.get();
}

void TcpFabric::TcpEndpoint::sever_peer(NodeId peer) {
  std::vector<Completion> flushes;
  {
    util::MutexLock lock(state_mutex_);
    if (severed_[peer]) return;
    severed_[peer] = true;
    if (auto it = out_fds_.find(peer); it != out_fds_.end()) {
      ::shutdown(it->second, SHUT_RDWR);
      ::close(it->second);
      out_fds_.erase(it);
    }
    for (auto& [key, qp] : qps_) {
      if (key.first != peer) continue;
      qp->mark_broken();
      auto rx_it = rx_.find(key);
      if (rx_it != rx_.end()) {
        // close() fences: a locally closed QP receives nothing.
        if (!qp->closed_) {
          for (const auto& recv : rx_it->second.recvs) {
            flushes.push_back(Completion{recv.wr_id, WcOpcode::kRecv,
                                         WcStatus::kFlushed, 0, 0, qp->id(),
                                         peer});
          }
          for (const auto& recv : rx_it->second.ud_recvs) {
            flushes.push_back(Completion{recv.wr_id, WcOpcode::kRecvUd,
                                         WcStatus::kFlushed, 0, 0, qp->id(),
                                         peer});
          }
        }
        rx_it->second.recvs.clear();
        rx_it->second.ud_recvs.clear();
      }
      if (!qp->closed_) {
        flushes.push_back(Completion{0, WcOpcode::kDisconnect,
                                     WcStatus::kError, 0, 0, qp->id(),
                                     peer});
      }
    }
  }
  for (auto& c : flushes) push(c);
}

void TcpFabric::TcpEndpoint::send_oob(NodeId to,
                                      std::vector<std::byte> payload) {
  if (to == id_) {
    push(OobMsg{id_, std::move(payload)});
    return;
  }
  FrameHeader header;
  header.type = FrameType::kOob;
  header.length = payload.size();
  send_frame(to, header, MemoryView{payload.data(), payload.size()});
}

void TcpFabric::TcpEndpoint::push(NodeEvent event) {
  {
    util::MutexLock lock(queue_mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(event));
  }
  cv_.notify_one();
}

void TcpFabric::TcpEndpoint::completion_loop() {
  util::MutexLock lock(queue_mutex_);
  while (true) {
    while (!(stopping_ || !queue_.empty())) cv_.wait(lock);
    if (stopping_ && queue_.empty()) return;
    while (!queue_.empty()) {
      NodeEvent event = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      slow_dispatch_delay();
      dispatch(event);
      lock.lock();
    }
  }
}

/// Slow-receiver injection (FaultInjector::slow_node): delay each
/// completion dispatch while the real-time window is open.
void TcpFabric::TcpEndpoint::slow_dispatch_delay() {
  const auto until = slow_until_.load(std::memory_order_relaxed);
  if (until == 0) return;
  const auto now =
      std::chrono::steady_clock::now().time_since_epoch().count();
  if (now >= until) {
    slow_until_.store(0, std::memory_order_relaxed);
    return;
  }
  std::this_thread::sleep_for(std::chrono::nanoseconds(
      slow_delay_ns_.load(std::memory_order_relaxed)));
}

void TcpFabric::TcpEndpoint::dispatch(const NodeEvent& event) {
  util::MutexLock lock(handler_mutex_);
  // The fabric.hpp single-dispatch contract: at most one handler
  // invocation per node at a time, even while fault injection races
  // with posts.
  assert(!in_dispatch_.exchange(true, std::memory_order_relaxed));
  if (const auto* c = std::get_if<Completion>(&event)) {
    if (completion_handler_) completion_handler_(*c);
  } else {
    const auto& msg = std::get<OobMsg>(event);
    if (oob_handler_)
      oob_handler_(msg.from, std::span<const std::byte>(msg.payload));
  }
  in_dispatch_.store(false, std::memory_order_relaxed);
}

void TcpFabric::TcpEndpoint::stop() {
  {
    util::MutexLock lock(queue_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    util::MutexLock lock(state_mutex_);
    for (auto& [peer, fd] : out_fds_) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    out_fds_.clear();
    for (int fd : in_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Joining the accept thread first means no new reader can be spawned;
  // move the vector out under the lock rather than iterating the guarded
  // field unlocked.
  std::vector<std::thread> readers;
  {
    util::MutexLock lock(state_mutex_);
    readers.swap(reader_threads_);
  }
  for (auto& t : readers)
    if (t.joinable()) t.join();
  {
    util::MutexLock lock(state_mutex_);
    for (int fd : in_fds_) ::close(fd);
    in_fds_.clear();
  }
  if (completion_thread_.joinable()) completion_thread_.join();
}

// ---------------------------------------------------------------------------
// TcpQueuePair posts
// ---------------------------------------------------------------------------

void TcpFabric::TcpQueuePair::close() {
  // state_mutex_ fences concurrent frame application; afterwards no
  // transfer touches this QP's posted buffers.
  util::MutexLock lock(owner_.state_mutex_);
  closed_ = true;
  mark_broken();
  auto it = owner_.rx_.find({peer_, channel_});
  if (it != owner_.rx_.end()) {
    it->second.recvs.clear();
    it->second.pending.clear();
    it->second.ud_recvs.clear();
  }
}

PostResult TcpFabric::TcpQueuePair::post_send(MemoryView buf,
                                              std::uint64_t wr_id,
                                              std::uint32_t immediate) {
  if (broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  FrameHeader header;
  header.type = FrameType::kSend;
  header.channel = channel_;
  header.immediate = immediate;
  header.length = buf.size;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kFabric, "xfer", owner_.id(),
              obs::xfer_span_id(id(), wr_id), obs::wall_seconds(),
              "dst,bytes,qp,wr", peer_, buf.size, id(), wr_id);
  if (!owner_.send_frame(peer_, header, buf)) return PostResult::kQpBroken;
  // TCP semantics: the kernel accepted the bytes; completion now.
  if (auto* tr = obs::tracer())
    tr->end(obs::Cat::kFabric, "xfer", owner_.id(),
            obs::xfer_span_id(id(), wr_id), obs::wall_seconds(), "qp,wr",
            id(), wr_id);
  owner_.push(Completion{wr_id, WcOpcode::kSend, WcStatus::kSuccess,
                         static_cast<std::uint32_t>(buf.size), immediate,
                         id(), peer_});
  return PostResult::kOk;
}

PostResult TcpFabric::TcpQueuePair::post_recv(MemoryView buf,
                                              std::uint64_t wr_id) {
  if (broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  util::MutexLock lock(owner_.state_mutex_);
  auto& rx = owner_.rx_[{peer_, channel_}];
  if (!rx.pending.empty()) {
    auto [payload, immediate] = std::move(rx.pending.front());
    rx.pending.pop_front();
    lock.unlock();
    if (payload.size() > buf.size) {
      RDMC_LOG_ERROR("tcpfabric", "recv buffer too small for early send");
      owner_.sever_peer(peer_);
      return PostResult::kQpBroken;
    }
    if (buf.data != nullptr)
      std::memcpy(buf.data, payload.data(), payload.size());
    owner_.push(Completion{wr_id, WcOpcode::kRecv, WcStatus::kSuccess,
                           static_cast<std::uint32_t>(payload.size()),
                           immediate, id(), peer_});
    return PostResult::kOk;
  }
  rx.recvs.push_back({buf, wr_id});
  return PostResult::kOk;
}

PostResult TcpFabric::TcpQueuePair::post_send_ud(MemoryView buf,
                                                 std::uint64_t wr_id,
                                                 std::uint32_t immediate) {
  if (broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  const auto deliveries =
      owner_.fabric_.datagrams().on_send(owner_.id(), peer_, buf, immediate);
  // Fire-and-forget: completion once the kernel has the surviving bytes
  // (or immediately, when the profile dropped/held the datagram).
  for (const auto& d : deliveries) {
    FrameHeader header;
    header.type = FrameType::kSendUd;
    header.channel = channel_;
    header.immediate = d.immediate;
    header.length = d.view.size;
    // A socket-level failure here is real loss — exactly what UD permits;
    // it never fails the post.
    (void)owner_.send_frame(peer_, header, d.view);
  }
  owner_.push(Completion{wr_id, WcOpcode::kSendUd, WcStatus::kSuccess,
                         static_cast<std::uint32_t>(buf.size), immediate,
                         id(), peer_});
  return PostResult::kOk;
}

PostResult TcpFabric::TcpQueuePair::post_recv_ud(MemoryView buf,
                                                 std::uint64_t wr_id) {
  if (broken()) return PostResult::kQpBroken;
  if (buf.data && buf.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  util::MutexLock lock(owner_.state_mutex_);
  owner_.rx_[{peer_, channel_}].ud_recvs.push_back({buf, wr_id});
  return PostResult::kOk;
}

PostResult TcpFabric::TcpQueuePair::post_write_imm(std::uint32_t immediate,
                                                   std::uint64_t wr_id) {
  if (broken()) return PostResult::kQpBroken;
  FrameHeader header;
  header.type = FrameType::kWriteImm;
  header.channel = channel_;
  header.immediate = immediate;
  if (!owner_.send_frame(peer_, header, MemoryView{}))
    return PostResult::kQpBroken;
  owner_.push(Completion{wr_id, WcOpcode::kWriteImm, WcStatus::kSuccess, 0,
                         immediate, id(), peer_});
  return PostResult::kOk;
}

PostResult TcpFabric::TcpQueuePair::post_window_write(
    std::uint32_t window_id, std::uint64_t offset, MemoryView local,
    std::uint32_t immediate, std::uint64_t wr_id, bool signaled) {
  if (broken()) return PostResult::kQpBroken;
  if (local.data && local.size > 0xFFFFFFFFu) return PostResult::kBadArgs;
  if (local.size > 0 && offset > ~std::uint64_t{0} - local.size)
    return PostResult::kWindowViolation;
  FrameHeader header;
  header.type = FrameType::kWindowWrite;
  header.channel = channel_;
  header.immediate = immediate;
  header.window_id = window_id;
  header.offset_or_wrid = offset;
  header.length = local.size;
  if (!owner_.send_frame(peer_, header, local)) return PostResult::kQpBroken;
  if (signaled) {
    owner_.push(Completion{wr_id, WcOpcode::kWindowWrite,
                           WcStatus::kSuccess,
                           static_cast<std::uint32_t>(local.size), immediate,
                           id(), peer_});
  }
  return PostResult::kOk;
}

// ---------------------------------------------------------------------------
// TcpFabric
// ---------------------------------------------------------------------------

TcpFabric::TcpFabric(std::vector<TcpAddress> addresses,
                     std::vector<NodeId> local_nodes)
    : addresses_(std::move(addresses)) {
  endpoints_.resize(addresses_.size());
  crashed_.resize(addresses_.size(), false);
  for (NodeId node : local_nodes) {
    assert(node < addresses_.size());
    endpoints_[node] = std::make_unique<TcpEndpoint>(*this, node);
    endpoints_[node]->start_listening(addresses_[node]);
    // Resolve ephemeral ports so local peers can dial each other.
    addresses_[node] = endpoints_[node]->listen_address();
  }
}

TcpFabric::~TcpFabric() { stop(); }

void TcpFabric::stop() {
  for (auto& ep : endpoints_)
    if (ep) ep->stop();
}

TcpFabric::TcpEndpoint* TcpFabric::local(NodeId node) const {
  assert(node < endpoints_.size() && endpoints_[node] &&
         "endpoint not hosted by this process");
  return endpoints_[node].get();
}

Endpoint& TcpFabric::endpoint(NodeId node) { return *local(node); }

QueuePair* TcpFabric::connect(NodeId a, NodeId b, std::uint32_t channel) {
  return local(a)->get_or_create_qp(b, channel);
}

void TcpFabric::break_link(NodeId a, NodeId b) {
  if (a < endpoints_.size() && endpoints_[a]) endpoints_[a]->sever_peer(b);
  if (b < endpoints_.size() && endpoints_[b]) endpoints_[b]->sever_peer(a);
}

void TcpFabric::crash_node(NodeId node) {
  {
    util::MutexLock lock(crashed_mutex_);
    if (node < crashed_.size()) crashed_[node] = true;
  }
  // Close everything the node owns; peers discover via EOF/reset, exactly
  // like a real process crash.
  if (node < endpoints_.size() && endpoints_[node])
    endpoints_[node]->stop();
}

bool TcpFabric::degrade_link(NodeId, NodeId, double, double) {
  // Kernel TCP pacing is not injectable from here; accepted and ignored
  // per the FaultInjector contract.
  return false;
}

bool TcpFabric::slow_node(NodeId node, double factor, double duration_s) {
  if (node >= endpoints_.size() || !endpoints_[node] || factor <= 1.0 ||
      duration_s <= 0.0)
    return false;
  const auto delay_ns = static_cast<std::int64_t>((factor - 1.0) * 10e3);
  const auto until = (std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(duration_s)))
                         .time_since_epoch()
                         .count();
  endpoints_[node]->set_slow(delay_ns, until);
  return true;
}

bool TcpFabric::crashed(NodeId node) const {
  util::MutexLock lock(crashed_mutex_);
  return node < crashed_.size() && crashed_[node];
}

TcpAddress TcpFabric::local_address(NodeId node) const {
  return local(node)->listen_address();
}

}  // namespace rdmc::fabric
