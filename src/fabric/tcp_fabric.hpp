// TcpFabric: the fabric API over real TCP sockets (paper §5.3, "RDMC on
// TCP").
//
// The paper's slack analysis suggests RDMC "might work surprisingly well
// over high speed datacenter TCP (with no RDMA)", and reports an OFI/
// LibFabrics port in progress. This backend realises that: the identical
// RDMC engine runs over kernel TCP, in one process (tests) or across
// processes/machines (each process hosts one endpoint; see
// examples/tcp_node.cpp).
//
// Mapping of RC verbs semantics onto TCP:
//   * each ordered node pair uses one socket per direction (the traffic
//     sender dials), carrying length-prefixed frames; frames multiplex all
//     channels of the pair, so per-QP FIFO order is inherited from TCP's
//     byte-stream order;
//   * two-sided sends match the receiver's posted-receive FIFO per
//     channel; an early send parks in a bounded pending queue (kernel TCP
//     has already buffered it — the RNR case cannot exist);
//   * one-sided writes (immediate and window) become frames the receiver
//     host applies to its registered windows;
//   * a send completion fires once the kernel accepted the bytes — weaker
//     than RC's delivered-or-broken contract, exactly as a TCP port of
//     RDMC would behave (the paper's reliability argument then leans on
//     the connection-break report, which maps to TCP reset/EOF);
//   * the out-of-band mesh uses the same sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "fabric/datagram.hpp"
#include "fabric/fabric.hpp"
#include "util/thread_annotations.hpp"

namespace rdmc::fabric {

struct TcpAddress {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral (single-process use)
};

class TcpFabric final : public Fabric, public FaultInjector {
 public:
  /// `addresses[i]` is node i's listen address. `local_nodes` are the
  /// endpoints this instance hosts (all of them for single-process runs;
  /// exactly one per process in a distributed deployment). With ephemeral
  /// ports, all nodes must be local (peers could not be located).
  TcpFabric(std::vector<TcpAddress> addresses,
            std::vector<NodeId> local_nodes);
  ~TcpFabric() override;

  TcpFabric(const TcpFabric&) = delete;
  TcpFabric& operator=(const TcpFabric&) = delete;

  std::size_t num_nodes() const override { return addresses_.size(); }
  Endpoint& endpoint(NodeId node) override;  // local nodes only
  /// `a` must be local; the QP is a's side. (In a distributed deployment
  /// the peer process creates its own side symmetrically.)
  QueuePair* connect(NodeId a, NodeId b, std::uint32_t channel) override;
  FaultInjector& faults() override { return *this; }

  // FaultInjector: immediate-mode semantics. crash_node stops the node's
  // endpoint if hosted here; peers discover via EOF/reset, exactly like a
  // real process crash. degrade_link is accepted-and-ignored (kernel TCP
  // has no injectable bandwidth model here); slow_node injects a real
  // dispatch delay on the node's completion thread for a real-time window.
  void break_link(NodeId a, NodeId b) override;
  void crash_node(NodeId node) override;
  bool degrade_link(NodeId a, NodeId b, double factor,
                    double duration_s) override;
  bool slow_node(NodeId node, double factor, double duration_s) override;
  void set_datagram_faults(const DatagramFaultProfile& profile) override {
    datagrams_.set_profile(profile);
  }
  DatagramCounters datagram_counters() const override {
    return datagrams_.counters();
  }
  bool crashed(NodeId node) const override;

  DatagramEngine& datagrams() { return datagrams_; }

  /// The resolved listen address of a local node (useful with port 0).
  TcpAddress local_address(NodeId node) const;

  void stop();

 private:
  class TcpEndpoint;
  class TcpQueuePair;
  struct PeerLink;

  TcpEndpoint* local(NodeId node) const;

  std::vector<TcpAddress> addresses_;
  std::vector<std::unique_ptr<TcpEndpoint>> endpoints_;  // index = node id
  mutable util::Mutex crashed_mutex_;
  std::vector<bool> crashed_ RDMC_GUARDED_BY(crashed_mutex_);  // by node id
  DatagramEngine datagrams_;
  std::atomic<QpId> next_qp_id_{1};
};

}  // namespace rdmc::fabric
