#include "harness/chaos.hpp"

#include <algorithm>

#include "harness/parallel.hpp"
#include "harness/recovery.hpp"
#include "obs/trace.hpp"

namespace rdmc::harness {

namespace {

std::vector<NodeId> membership(const ChaosSpec& spec) {
  std::vector<NodeId> members(spec.group_size);
  for (std::size_t i = 0; i < spec.group_size; ++i)
    members[i] = static_cast<NodeId>(i);
  return members;
}

RecoveryConfig recovery_config(const ChaosSpec& spec) {
  RecoveryConfig config;
  config.members = membership(spec);
  config.group_options = spec.group_options;
  config.messages = spec.messages;
  config.message_bytes = spec.message_bytes;
  return config;
}

}  // namespace

double calibrate(const ChaosSpec& spec) {
  sim::ClusterProfile profile = spec.profile;
  profile.topology.num_nodes =
      std::max<std::size_t>(profile.topology.num_nodes, spec.group_size);
  SimCluster cluster(profile);
  RecoveryDriver driver(cluster, recovery_config(spec));
  return driver.run().virtual_seconds;
}

ChaosSeedResult run_chaos_seed(std::uint64_t seed, const ChaosSpec& spec,
                               double window_s) {
  sim::ClusterProfile profile = spec.profile;
  profile.topology.num_nodes =
      std::max<std::size_t>(profile.topology.num_nodes, spec.group_size);
  SimCluster cluster(profile);

  RecoveryConfig config = recovery_config(spec);
  config.payload_seed = seed;

  fabric::FaultPlanSpec fault_spec = spec.faults;
  fault_spec.nodes = config.members;
  if (spec.protect_root &&
      std::find(fault_spec.protect.begin(), fault_spec.protect.end(),
                config.members.front()) == fault_spec.protect.end()) {
    fault_spec.protect.push_back(config.members.front());
  }
  if (fault_spec.window_s <= 0.0 || window_s > 0.0)
    fault_spec.window_s = window_s;

  const fabric::FaultPlan plan = fabric::FaultPlan::random(seed, fault_spec);
  plan.schedule_on(cluster.fabric());

  RecoveryDriver driver(cluster, config);
  const RecoveryResult r = driver.run();

  ChaosSeedResult out;
  out.seed = seed;
  out.ok = r.ok;
  out.root_lost = r.root_lost;
  out.exhausted = r.exhausted;
  out.reforms = r.reforms;
  out.failures_observed = r.failures_observed;
  out.deliveries = r.deliveries;
  out.redeliveries = r.redeliveries;
  out.virtual_seconds = r.virtual_seconds;
  out.violations = r.violations;
  out.plan = plan.describe();
  return out;
}

ChaosCampaignResult run_chaos_campaign(std::uint64_t first_seed,
                                       std::size_t count,
                                       const ChaosSpec& spec,
                                       std::size_t jobs) {
  ChaosCampaignResult result;
  // Spread fault events over 1.5x the fault-free makespan: most plans then
  // strike mid-transfer, some strike near/after completion (both matter —
  // late breaks exercise the post-delivery failure report).
  result.window_s = 1.5 * calibrate(spec);

  // Seeds are independent experiments; fan them out and aggregate in seed
  // order afterwards so the verdict table, the failure list and (with
  // tracing on) the exported trace are identical for any job count.
  std::vector<ChaosSeedResult> results(count);
  const bool tracing = obs::TraceRecorder::instance().enabled();
  std::vector<std::vector<obs::TraceEvent>> shards(tracing ? count : 0);
  parallel_for(count, jobs, [&](std::size_t i) {
    if (tracing) {
      obs::TraceRecorder::ThreadShard shard;
      results[i] = run_chaos_seed(first_seed + i, spec, result.window_s);
      shards[i] = shard.take();
    } else {
      results[i] = run_chaos_seed(first_seed + i, spec, result.window_s);
    }
  });
  if (tracing) {
    auto& recorder = obs::TraceRecorder::instance();
    for (const auto& shard : shards) recorder.absorb(shard);
  }

  for (ChaosSeedResult& r : results) {
    ++result.seeds_run;
    if (r.ok) ++result.passed;
    if (r.root_lost) ++result.root_lost;
    if (r.exhausted) ++result.exhausted;
    if (r.failures_observed > 0) ++result.fault_hit;
    result.total_reforms += r.reforms;
    result.total_deliveries += r.deliveries;
    if (!r.ok) result.failures.push_back(std::move(r));
  }
  return result;
}

}  // namespace rdmc::harness
