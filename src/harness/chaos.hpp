// Chaos campaigns: hundreds of seeded fault plans against §4.6 recovery.
//
// One seed = one experiment: build a fresh simulated cluster, derive a
// deterministic FaultPlan from the seed, schedule it, and drive the
// workload through RecoveryDriver, which checks the reliability contract
// (§3) on every delivery. A campaign sweeps a seed range and aggregates;
// any failing seed is reported with its plan and replays bit-identically
// via run_chaos_seed (the bench/chaos_campaign --replay flag).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "fabric/fault_plan.hpp"
#include "sim/cluster_profiles.hpp"

namespace rdmc::harness {

struct ChaosSpec {
  sim::ClusterProfile profile = sim::fractus_profile(16);
  std::size_t group_size = 16;
  GroupOptions group_options;

  std::size_t messages = 3;
  std::size_t message_bytes = 1 << 20;

  /// Fault-mix knobs. `faults.nodes`, `faults.protect` and (when zero)
  /// `faults.window_s` are filled in per run: nodes from the membership,
  /// protect from `protect_root`, window from `calibrate()`.
  fabric::FaultPlanSpec faults;
  /// Never crash the root (RDMC cannot replace the sender below the
  /// application layer, so a crashed root ends the experiment early; the
  /// campaign's default is to probe recovery instead).
  bool protect_root = true;
};

struct ChaosSeedResult {
  std::uint64_t seed = 0;
  bool ok = false;
  bool root_lost = false;
  bool exhausted = false;
  std::size_t reforms = 0;
  std::size_t failures_observed = 0;
  std::size_t deliveries = 0;
  std::size_t redeliveries = 0;
  double virtual_seconds = 0.0;
  std::vector<std::string> violations;
  std::string plan;  // FaultPlan::describe()
};

/// Fault-free run time of the workload (virtual seconds). Campaigns spread
/// fault events over ~1.5x this window so they land mid-transfer.
double calibrate(const ChaosSpec& spec);

/// Run one seed. `window_s` must come from the same calibrate() result the
/// campaign used, or a replay will schedule different fault times.
ChaosSeedResult run_chaos_seed(std::uint64_t seed, const ChaosSpec& spec,
                               double window_s);

struct ChaosCampaignResult {
  std::size_t seeds_run = 0;
  std::size_t passed = 0;
  std::size_t root_lost = 0;   // counted as passed (separate outcome)
  std::size_t exhausted = 0;   // counted as passed (separate outcome)
  std::size_t fault_hit = 0;   // seeds whose plan caused >= 1 failure
  std::uint64_t total_reforms = 0;
  std::uint64_t total_deliveries = 0;
  double window_s = 0.0;       // calibrated fault window used
  std::vector<ChaosSeedResult> failures;  // failing seeds only
};

/// Sweep `count` seeds starting at `first_seed`. `jobs` > 1 fans the seeds
/// out over a thread pool (harness/parallel.hpp); every per-seed result is
/// bit-identical to a serial run regardless of job count — each seed builds
/// its own cluster, and when tracing is on, per-seed trace shards are merged
/// into the process recorder in seed order, so the exported trace matches
/// serial execution too.
ChaosCampaignResult run_chaos_campaign(std::uint64_t first_seed,
                                       std::size_t count,
                                       const ChaosSpec& spec,
                                       std::size_t jobs = 1);

}  // namespace rdmc::harness
