// Parallel sweep executor: run independent experiment instances on a small
// thread pool with deterministic, input-ordered collection.
//
// Every sweep in this repo — chaos seeds, figure points, ablation cells —
// is embarrassingly parallel: each item builds its own SimCluster (own
// Simulator, FlowNetwork, MetricsRegistry) and shares nothing with its
// neighbours. The only process-wide state a simulation touches is the
// TraceRecorder singleton, which workers redirect per item with
// obs::TraceRecorder::ThreadShard so the merged trace comes out in input
// order (see run_chaos_campaign).
//
// The executor itself lives in util/parallel.hpp — the simulator core now
// also runs *intra-step* work (independent max-min components within one
// reallocation) on the same pool, and sim sits below harness in the
// dependency order. This header re-exports it under the historical names
// for the sweep callers.
#pragma once

#include "util/parallel.hpp"

namespace rdmc::harness {

/// Worker count for `--jobs 0`: the hardware concurrency, at least 1.
inline std::size_t default_jobs() { return util::default_jobs(); }

/// Invoke `fn(i)` for every i in [0, count), using up to `jobs` worker
/// threads (clamped to count; <= 1 runs inline on the calling thread, which
/// keeps single-job runs bit-identical to the pre-parallel code path).
/// Blocks until all items finish. The first exception thrown by any item is
/// rethrown on the calling thread after the pool drains.
inline void parallel_for(std::size_t count, std::size_t jobs,
                         const std::function<void(std::size_t)>& fn) {
  util::parallel_for(count, jobs, fn);
}

}  // namespace rdmc::harness
