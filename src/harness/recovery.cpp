#include "harness/recovery.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

#include "obs/trace.hpp"
#include "util/random.hpp"

namespace rdmc::harness {

namespace {

/// Violations are capped so a systematic breakage (every delivery corrupt)
/// does not build a million-line report.
constexpr std::size_t kMaxViolations = 20;

void note_violation(RecoveryResult& res, std::string text) {
  if (res.violations.size() < kMaxViolations)
    res.violations.push_back(std::move(text));
}

}  // namespace

/// Per-node state that survives re-formations.
struct RecoveryDriver::Member {
  NodeId node = 0;
  std::vector<bool> delivered;      // by seq, across all epochs
  std::size_t epoch_delivered = 0;  // consecutive deliveries this epoch
  std::size_t epoch_failures = 0;   // failure callbacks this epoch
  /// Buffers handed to incoming-message callbacks this epoch. Inner
  /// vectors never reallocate after creation, so the data pointers the
  /// engine holds stay valid while the outer vector grows.
  std::vector<std::vector<std::byte>> rx;
};

/// One group instance (one §4.6 epoch).
struct RecoveryDriver::Epoch {
  GroupId gid = 0;
  std::vector<NodeId> members;  // front = root
  std::size_t base_seq = 0;     // first sequence (re)sent this epoch
  std::size_t queued = 0;       // messages the root queued
  std::size_t root_completed = 0;
  bool failure_seen = false;
  std::vector<SimCluster::GroupRecord::FailureObservation> failure_log;
};

RecoveryDriver::RecoveryDriver(SimCluster& cluster, RecoveryConfig config)
    : cluster_(cluster), config_(std::move(config)) {}

void RecoveryDriver::build_payloads() {
  payloads_.resize(config_.messages);
  for (std::size_t s = 0; s < config_.messages; ++s) {
    auto& p = payloads_[s];
    p.resize(config_.message_bytes);
    const std::uint64_t seq = s;
    std::memcpy(p.data(), &seq, std::min<std::size_t>(8, p.size()));
    util::Rng rng(config_.payload_seed * 0x9E3779B97F4A7C15ull + s);
    for (std::size_t i = 8; i < p.size(); ++i)
      p[i] = static_cast<std::byte>(rng() & 0xFF);
  }
}

bool RecoveryDriver::epoch_done(const Epoch& e) const {
  if (e.root_completed < e.queued) return false;
  (void)this;
  return true;  // receiver progress is checked by the caller
}

std::vector<NodeId> RecoveryDriver::survivors_of(const Epoch& e) const {
  std::vector<NodeId> out;
  for (NodeId n : e.members)
    if (!cluster_.fabric().faults().crashed(n)) out.push_back(n);
  return out;
}

RecoveryResult RecoveryDriver::run() {
  build_payloads();
  RecoveryResult res;
  const double t0 = cluster_.sim().now();

  std::map<NodeId, Member> state;
  for (NodeId n : config_.members) {
    Member& m = state[n];
    m.node = n;
    m.delivered.assign(config_.messages, false);
  }

  std::vector<NodeId> current = config_.members;
  GroupId next_gid = config_.first_group_id;
  std::size_t base_seq = 0;
  bool finished = false;

  for (std::size_t epoch_i = 0; !finished; ++epoch_i) {
    if (epoch_i > config_.max_reforms) {
      note_violation(res, "re-formation limit exceeded");
      break;
    }
    Epoch e;
    e.gid = next_gid++;
    e.members = current;
    e.base_seq = base_seq;
    const NodeId root = e.members.front();
    const std::size_t expect =
        config_.messages - e.base_seq;  // deliveries per receiver

    // Per-epoch labeled series: each group instance gets its own scope, so
    // telemetry windows show which epoch's deliveries/failures moved
    // (counter lookups are cold; the callbacks below reuse the references).
    cluster_.metrics().counter("recovery.epochs").add();
    auto& epoch_scope =
        cluster_.metrics().scope("gid=" + std::to_string(e.gid));
    obs::Counter& epoch_deliveries = epoch_scope.counter("recovery.deliveries");
    obs::Counter& epoch_failures = epoch_scope.counter("recovery.failures");
    if (auto* tr = obs::tracer())
      tr->begin(obs::Cat::kRecovery, "epoch", root,
                static_cast<std::uint64_t>(e.gid), cluster_.sim().now(),
                "gid,members,base_seq", static_cast<std::uint32_t>(e.gid),
                e.members.size(), e.base_seq);

    // -- Create the group on every member (§4.6: the application layer
    // re-creates after each failure; ids are never recycled). ------------
    for (NodeId n : e.members) {
      Member& m = state[n];
      m.epoch_delivered = 0;
      m.epoch_failures = 0;
      const bool is_root = (n == root);
      auto incoming = [this, &m](std::size_t size) {
        m.rx.emplace_back(size);
        return fabric::MemoryView{m.rx.back().data(), size};
      };
      auto completion = [this, &res, &m, &e, is_root,
                         &epoch_deliveries](std::byte* data,
                                            std::size_t size) {
        if (is_root) {
          ++e.root_completed;
          return;
        }
        ++res.deliveries;
        epoch_deliveries.add();
        if (m.epoch_failures > 0) {
          note_violation(res, "delivery after failure callback at node " +
                                  std::to_string(m.node));
        }
        if (size != config_.message_bytes || size < 8) {
          note_violation(res, "delivery with wrong size at node " +
                                  std::to_string(m.node));
          return;
        }
        std::uint64_t seq = 0;
        std::memcpy(&seq, data, 8);
        const std::uint64_t want = e.base_seq + m.epoch_delivered;
        if (seq != want) {
          note_violation(
              res, "node " + std::to_string(m.node) + " delivered seq " +
                       std::to_string(seq) + ", expected " +
                       std::to_string(want) + " (dup/gap/reorder)");
          return;
        }
        if (std::memcmp(data, payloads_[seq].data(), size) != 0) {
          note_violation(res, "corrupt payload for seq " +
                                  std::to_string(seq) + " at node " +
                                  std::to_string(m.node));
        }
        ++m.epoch_delivered;
        if (m.delivered[seq])
          ++res.redeliveries;
        else
          m.delivered[seq] = true;
      };
      auto on_failure = [this, &res, &m, &e,
                         &epoch_failures](GroupId, NodeId suspect) {
        ++res.failures_observed;
        ++m.epoch_failures;
        epoch_failures.add();
        if (m.epoch_failures > 1) {
          note_violation(res, "failure reported twice to node " +
                                  std::to_string(m.node));
        }
        if (auto* tr = obs::tracer()) {
          tr->instant(obs::Cat::kRecovery, "failure", m.node,
                      cluster_.sim().now(), "gid,suspect",
                      static_cast<std::uint32_t>(e.gid), suspect);
          // The §4.6 recovery window opens at the first observation; it
          // closes at the reform (or never, if the run ends degraded).
          if (!e.failure_seen)
            tr->begin(obs::Cat::kRecovery, "recovery", e.members.front(),
                      static_cast<std::uint64_t>(e.gid),
                      cluster_.sim().now(), "gid",
                      static_cast<std::uint32_t>(e.gid));
        }
        e.failure_seen = true;
        e.failure_log.push_back({cluster_.sim().now(), m.node, suspect});
      };
      const bool created = cluster_.node(n).create_group(
          e.gid, e.members, config_.group_options, incoming, completion,
          on_failure);
      if (!created) {
        note_violation(res,
                       "create_group failed on node " + std::to_string(n));
        finished = true;
      }
    }
    if (finished) {
      // Unwind the sides already created this epoch before their
      // callbacks' referents go out of scope.
      for (NodeId n : e.members) cluster_.node(n).destroy_group(e.gid);
      current = e.members;
      break;
    }

    // -- Root (re)sends everything from the resume point. -----------------
    for (std::size_t s = e.base_seq; s < config_.messages; ++s) {
      if (cluster_.node(root).send(e.gid, payloads_[s].data(),
                                   payloads_[s].size())) {
        ++e.queued;
      } else {
        note_violation(res, "send refused for seq " + std::to_string(s));
      }
    }

    // -- Poll in slices so scheduled fault events land mid-epoch. ---------
    const double deadline = cluster_.sim().now() + config_.epoch_timeout_s;
    bool epoch_failed = false;
    while (true) {
      cluster_.run_slice(config_.slice_s);
      if (e.failure_seen) {
        epoch_failed = true;
        break;
      }
      bool all = epoch_done(e);
      for (NodeId n : e.members)
        all = all && (n == root || state[n].epoch_delivered == expect);
      if (all) break;  // success: every member done, no failure
      if (cluster_.sim().idle()) {
        note_violation(res, "stalled without a failure report");
        finished = true;
        break;
      }
      if (cluster_.sim().now() > deadline) {
        note_violation(res, "epoch exceeded its virtual-time budget");
        finished = true;
        break;
      }
    }

    if (epoch_failed) {
      // Reliability contract item 6: the failure must reach *every*
      // survivor of the group, exactly once each.
      const double grace = cluster_.sim().now() + config_.notify_grace_s;
      auto all_notified = [&] {
        for (NodeId n : survivors_of(e))
          if (state[n].epoch_failures == 0) return false;
        return true;
      };
      while (cluster_.sim().now() < grace && !all_notified() &&
             !cluster_.sim().idle()) {
        cluster_.run_slice(config_.slice_s);
      }
      for (NodeId n : survivors_of(e)) {
        if (state[n].epoch_failures == 0) {
          note_violation(res, "survivor " + std::to_string(n) +
                                  " was never told about the failure");
        }
      }
    }

    // -- Tear down this epoch's group everywhere. --------------------------
    for (NodeId n : e.members) cluster_.node(n).destroy_group(e.gid);
    for (NodeId n : e.members) state[n].rx.clear();
    if (auto* tr = obs::tracer())
      tr->end(obs::Cat::kRecovery, "epoch", root,
              static_cast<std::uint64_t>(e.gid), cluster_.sim().now(),
              "gid", static_cast<std::uint32_t>(e.gid));

    if (!epoch_failed || finished) {
      finished = true;
      current = e.members;
      break;
    }

    // -- §4.6: drop the suspects, re-form on the survivors, resume. --------
    std::set<NodeId> drop;
    for (const auto& obs : e.failure_log) {
      // A crashed member's own (fail-stop-suppressed) observations cannot
      // occur; every logged suspect was seen by a live member.
      if (obs.suspect != root) drop.insert(obs.suspect);
    }
    if (cluster_.fabric().faults().crashed(root)) {
      res.root_lost = true;
      current = survivors_of(e);
      break;
    }
    std::vector<NodeId> next;
    for (NodeId n : e.members) {
      if (n != root && cluster_.fabric().faults().crashed(n)) continue;
      if (drop.contains(n)) continue;
      next.push_back(n);
    }
    if (next.size() == e.members.size()) {
      // Every suspect was the root (e.g. a broken root link reported only
      // root-side). Progress demands dropping someone: drop the member
      // that reported against the root.
      NodeId reporter = root;
      for (const auto& obs : e.failure_log)
        if (obs.suspect == root && obs.by != root) reporter = obs.by;
      if (reporter != root)
        next.erase(std::find(next.begin(), next.end(), reporter));
    }
    if (next.size() < 2) {
      res.exhausted = true;
      current = next;
      break;
    }

    // Resume from the earliest sequence any survivor still misses.
    std::size_t resume = config_.messages;
    for (std::size_t i = 1; i < next.size(); ++i) {
      const Member& m = state[next[i]];
      std::size_t first_missing = config_.messages;
      for (std::size_t s = 0; s < config_.messages; ++s) {
        if (!m.delivered[s]) {
          first_missing = s;
          break;
        }
      }
      resume = std::min(resume, first_missing);
    }
    current = next;
    if (resume >= config_.messages) {
      finished = true;  // survivors already hold everything
      break;
    }
    base_seq = resume;
    ++res.reforms;
    cluster_.note_reform();
    if (auto* tr = obs::tracer()) {
      tr->end(obs::Cat::kRecovery, "recovery", root,
              static_cast<std::uint64_t>(e.gid), cluster_.sim().now(),
              "gid", static_cast<std::uint32_t>(e.gid));
      tr->instant(obs::Cat::kRecovery, "reform", root, cluster_.sim().now(),
                  "epoch,survivors", epoch_i + 1, current.size());
    }
  }

  // -- Final invariants over the surviving membership. ---------------------
  if (!res.root_lost && !res.exhausted && res.violations.empty()) {
    for (std::size_t i = 1; i < current.size(); ++i) {
      const Member& m = state[current[i]];
      for (std::size_t s = 0; s < config_.messages; ++s) {
        if (!m.delivered[s]) {
          note_violation(res, "survivor " + std::to_string(current[i]) +
                                  " never delivered seq " +
                                  std::to_string(s));
          break;
        }
      }
    }
  }
  res.final_members = current;
  res.virtual_seconds = cluster_.sim().now() - t0;
  res.ok = res.violations.empty();
  return res;
}

}  // namespace rdmc::harness
