// §4.6 "Recovery From Failure" driver.
//
// RDMC itself never masks failures: a group that loses a member or a
// connection reports the failure to every survivor and stops. The paper
// pushes recovery to the layer above — "tear down the group, drop the
// suspected member, re-create the group on the survivors, and resend any
// message that was in flight". RecoveryDriver is that layer, written
// against the simulated cluster so fault plans land at exact virtual
// instants and every run is reproducible.
//
// The driver also doubles as the chaos campaign's invariant checker: every
// delivery is verified against the seeded payload (no corruption), must
// extend the member's per-epoch prefix (no duplication, no gaps, sender
// order), and failures must reach every survivor exactly once per group
// before the driver tears it down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "harness/sim_harness.hpp"

namespace rdmc::harness {

struct RecoveryConfig {
  /// Initial membership; front is the root (the sender).
  std::vector<NodeId> members;
  GroupOptions group_options;

  /// The workload: `messages` back-to-back multicasts of `message_bytes`,
  /// payloads derived from `payload_seed` (first 8 bytes carry the
  /// sequence number; the rest a seeded pattern the receivers verify).
  std::size_t messages = 4;
  std::size_t message_bytes = 1 << 20;
  std::uint64_t payload_seed = 1;

  /// Virtual time the driver advances per poll. Small slices let scheduled
  /// fault events land mid-epoch (and cascade across re-formed groups)
  /// instead of draining inside one run-to-quiescence call.
  double slice_s = 50e-6;
  /// Virtual-time cap per epoch; exceeding it is reported as a violation.
  double epoch_timeout_s = 1.0;
  /// After a failure is first observed, how long the driver waits for the
  /// remaining survivors' callbacks before declaring them un-notified.
  double notify_grace_s = 5e-3;
  /// Re-formation cap (defence against livelock; hitting it is reported).
  std::size_t max_reforms = 32;
  /// First group id; each re-formation uses the next id (group ids name
  /// fabric channels and must not be recycled across epochs, rdmc.hpp).
  GroupId first_group_id = 100;
};

struct RecoveryResult {
  /// True when every invariant held (root loss is not a violation; see
  /// `root_lost`).
  bool ok = false;
  /// The root itself crashed. RDMC's sender is not replaceable below the
  /// application (§4.6); the driver stops and reports it separately.
  bool root_lost = false;
  /// Membership ran out (fewer than two nodes left to re-form on).
  bool exhausted = false;
  std::vector<std::string> violations;

  std::size_t reforms = 0;               // §4.6 re-creations performed
  std::size_t failures_observed = 0;     // failure callbacks, all epochs
  std::size_t deliveries = 0;            // completion callbacks, receivers
  std::size_t redeliveries = 0;          // resends of already-held seqs
  std::vector<NodeId> final_members;
  double virtual_seconds = 0.0;
};

class RecoveryDriver {
 public:
  RecoveryDriver(SimCluster& cluster, RecoveryConfig config);

  /// Run epochs (create group, send, poll, on failure tear down and
  /// re-form on survivors) until every survivor holds the full message
  /// sequence or the run ends in root loss / exhaustion / violation.
  RecoveryResult run();

 private:
  struct Member;
  struct Epoch;

  void build_payloads();
  bool epoch_done(const Epoch& e) const;
  std::vector<NodeId> survivors_of(const Epoch& e) const;

  SimCluster& cluster_;
  RecoveryConfig config_;
  std::vector<std::vector<std::byte>> payloads_;
};

}  // namespace rdmc::harness
