#include "harness/sim_harness.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>

#include "harness/telemetry_ticker.hpp"
#include "obs/telemetry.hpp"
#include "sched/schedule.hpp"

namespace rdmc::harness {

SimCluster::SimCluster(const sim::ClusterProfile& profile,
                       fabric::SimFabric::Options options_override,
                       bool use_profile_costs)
    : topology_(profile.topology) {
  fabric::SimFabric::Options options = options_override;
  if (use_profile_costs) {
    options.costs = profile.costs;
    options.preemption = profile.preemption;
  }
  fabric_ = std::make_unique<fabric::SimFabric>(sim_, topology_, options);
  nodes_.reserve(topology_.num_nodes());
  const Clock clock = [this] { return sim_.now(); };
  for (std::size_t i = 0; i < topology_.num_nodes(); ++i) {
    nodes_.push_back(
        std::make_unique<Node>(*fabric_, static_cast<NodeId>(i), clock));
  }
}

SimCluster::GroupRecord& SimCluster::create_group(GroupId id,
                                                  std::vector<NodeId> members,
                                                  GroupOptions options) {
  auto rec = std::make_unique<GroupRecord>();
  rec->id = id;
  rec->members = members;
  rec->delivery_times.resize(members.size());
  GroupRecord* r = rec.get();
  for (std::size_t m = 0; m < members.size(); ++m) {
    const NodeId node = members[m];
    const bool ok = nodes_[node]->create_group(
        id, members, options,
        // Phantom receive region: cluster-scale runs move no host memory.
        [](std::size_t size) { return fabric::MemoryView{nullptr, size}; },
        [this, r, m](std::byte*, std::size_t) {
          r->delivery_times[m].push_back(sim_.now());
          if (m > 0 && r->on_latency) {
            const std::size_t seq = r->delivery_times[m].size() - 1;
            if (seq < r->submit_times.size())
              r->on_latency(seq, m, sim_.now() - r->submit_times[seq]);
          }
        },
        [this, r, node](GroupId, NodeId suspect) {
          r->failure_log.push_back({sim_.now(), node, suspect});
        });
    assert(ok && "create_group failed");
    (void)ok;
  }
  records_.push_back(std::move(rec));
  return *records_.back();
}

void SimCluster::run_to_quiescence() {
  const auto t0 = std::chrono::steady_clock::now();
  sim_.run();
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
}

bool SimCluster::run_slice(double dt) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool more = sim_.run_until(sim_.now() + dt);
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return more;
}

PerfStats PerfStats::from(const obs::MetricsRegistry& registry) {
  auto get = [&registry](const char* name) -> std::uint64_t {
    const obs::Counter* c = registry.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  PerfStats s;
  s.wall_seconds = static_cast<double>(get("harness.wall_ns")) / 1e9;
  s.events_processed = get("sim.events");
  s.reallocations = get("sim.reallocations");
  s.filling_rounds = get("sim.filling_rounds");
  s.flows_touched = get("sim.flows_touched");
  s.max_component = get("sim.max_component");
  s.expand_rounds = get("sim.expand_rounds");
  s.full_recomputes = get("sim.full_recomputes");
  s.flow_starts = get("sim.flow_starts");
  s.memo_hits = get("sim.memo_hits");
  s.memo_misses = get("sim.memo_misses");
  s.component_fills = get("sim.component_fills");
  s.hier_fills = get("sim.hier_fills");
  s.hier_rounds = get("sim.hier_rounds");
  s.hier_fallbacks = get("sim.hier_fallbacks");
  s.split_cuts = get("sim.split_cuts");
  s.split_pieces = get("sim.split_pieces");
  s.island_par_rounds = get("sim.island_par_rounds");
  s.breaks_delivered = get("fault.disconnects");
  s.flushed_completions = get("fault.flushed");
  s.reforms = get("harness.reforms");
  return s;
}

void SimCluster::sync_metrics() const {
  const auto& c = fabric_->flows().counters();
  metrics_.counter("harness.wall_ns")
      .set(static_cast<std::uint64_t>(wall_seconds_ * 1e9));
  metrics_.counter("sim.events").set(sim_.events_processed());
  metrics_.counter("sim.reallocations").set(c.reallocations);
  metrics_.counter("sim.filling_rounds").set(c.filling_rounds);
  metrics_.counter("sim.flows_touched").set(c.flows_touched);
  metrics_.counter("sim.max_component").set(c.max_component);
  metrics_.counter("sim.expand_rounds").set(c.expand_rounds);
  metrics_.counter("sim.full_recomputes").set(c.full_recomputes);
  metrics_.counter("sim.flow_starts").set(c.flow_starts);
  metrics_.counter("sim.flow_completions").set(c.flow_completions);
  metrics_.counter("sim.flow_aborts").set(c.flow_aborts);
  metrics_.counter("sim.memo_hits").set(c.memo_hits);
  metrics_.counter("sim.memo_misses").set(c.memo_misses);
  metrics_.counter("sim.component_fills").set(c.component_fills);
  metrics_.counter("sim.hier_fills").set(c.hier_fills);
  metrics_.counter("sim.hier_rounds").set(c.hier_rounds);
  metrics_.counter("sim.hier_fallbacks").set(c.hier_fallbacks);
  metrics_.counter("sim.split_cuts").set(c.split_cuts);
  metrics_.counter("sim.split_pieces").set(c.split_pieces);
  metrics_.counter("sim.island_par_rounds").set(c.island_par_rounds);
  const auto& f = fabric_->fault_counters();
  metrics_.counter("fault.disconnects").set(f.disconnects_delivered);
  metrics_.counter("fault.flushed").set(f.flushed_completions);
  metrics_.counter("fault.breaks").set(f.links_broken);
  metrics_.counter("fault.crashes").set(f.crashes);
  metrics_.counter("fault.degrades").set(f.degrades);
  metrics_.counter("fault.slowdowns").set(f.slowdowns);
  metrics_.counter("harness.reforms").set(reforms_);
}

PerfStats SimCluster::perf_stats() const {
  sync_metrics();
  return PerfStats::from(metrics_);
}

const SimCluster::GroupRecord& SimCluster::record(GroupId id) const {
  for (const auto& r : records_)
    if (r->id == id) return *r;
  assert(false && "unknown group");
  return *records_.front();
}

SimCluster::~SimCluster() = default;

void SimCluster::send(GroupId group, std::uint64_t bytes) {
  GroupRecord& r = record(group);
  r.submit_times.push_back(sim_.now());
  const bool ok = nodes_[r.members.front()]->send(group, nullptr, bytes);
  assert(ok && "send failed");
  (void)ok;
  if (ticker_) ticker_->ensure_scheduled();
}

void SimCluster::attach_telemetry(obs::TelemetryHub& hub, double period_s) {
  ticker_ = std::make_unique<TelemetryTicker>(
      sim_, hub, period_s, [this] { sync_metrics(); });
  ticker_->ensure_scheduled();
}

double SimCluster::run_one(GroupId group, std::uint64_t bytes) {
  const GroupRecord& r = record(group);
  const double start = sim_.now();
  send(group, bytes);
  run_to_quiescence();
  double last = start;
  for (const auto& times : r.delivery_times)
    if (!times.empty()) last = std::max(last, times.back());
  return last - start;
}

MulticastResult run_multicast(const MulticastConfig& config) {
  sim::ClusterProfile profile = config.profile;
  std::size_t needed = config.group_size;
  if (config.members)
    for (NodeId m : *config.members)
      needed = std::max<std::size_t>(needed, m + 1);
  profile.topology.num_nodes =
      std::max<std::size_t>(profile.topology.num_nodes, needed);
  fabric::SimFabric::Options options;
  options.costs = profile.costs;
  options.preemption = profile.preemption;
  options.default_mode = config.completion_mode;
  options.cross_channel = config.cross_channel;
  if (config.ideal_software) {
    options.costs = sim::SoftwareCosts{0, 0, 0, 0, 1e18, 0};
    options.preemption = sim::PreemptionModel{0.0, 0.0};
  }
  SimCluster cluster(profile, options, /*use_profile_costs=*/false);
  cluster.fabric().flows().set_fill_jobs(config.fill_jobs);

  std::vector<NodeId> members;
  if (config.members) {
    members = *config.members;
    assert(members.size() == config.group_size);
  } else {
    members.resize(config.group_size);
    for (std::size_t i = 0; i < config.group_size; ++i)
      members[i] = static_cast<NodeId>(i);
  }
  GroupOptions group_options;
  group_options.block_size = config.block_size;
  group_options.algorithm = config.algorithm;
  group_options.hybrid_racks = config.hybrid_racks;
  group_options.make_schedule = config.make_schedule;
  auto& rec = cluster.create_group(1, members, group_options);

  // Per-schedule labeled series: every (message, receiver) delivery latency
  // lands in "multicast.delivery_latency_s{algo=...,group=1}" as it
  // happens, so telemetry windows and SLO trackers see live deliveries.
  auto& scope = cluster.metrics().scope(
      "algo=" + std::string(sched::algorithm_name(config.algorithm)) +
      ",group=1");
  auto& scoped_hist = scope.histogram("multicast.delivery_latency_s");
  rec.on_latency = [&scoped_hist](std::size_t, std::size_t, double latency) {
    scoped_hist.add(latency);
  };

  const double start = cluster.sim().now();
  for (std::size_t m = 0; m < config.messages; ++m)
    cluster.send(1, config.message_bytes);
  cluster.run_to_quiescence();
  const double end_time = cluster.sim().now();

  MulticastResult result;
  double last_delivery = start;
  double first_last = 1e300, max_last = 0.0;
  auto& latency_hist =
      cluster.metrics().histogram("multicast.delivery_latency_s");
  for (std::size_t m = 1; m < rec.members.size(); ++m) {
    const auto& times = rec.delivery_times[m];
    assert(times.size() == config.messages && "receiver missed messages");
    last_delivery = std::max(last_delivery, times.back());
    first_last = std::min(first_last, times.back());
    max_last = std::max(max_last, times.back());
    latency_hist.add(times.back() - start);
  }
  result.total_seconds = last_delivery - start;
  result.latency_seconds =
      result.total_seconds / static_cast<double>(config.messages);
  result.bandwidth_gbps =
      static_cast<double>(config.message_bytes) *
      static_cast<double>(config.messages) * 8.0 /
      result.total_seconds / 1e9;
  result.skew_seconds = max_last - first_last;
  const double busy = cluster.fabric().cpu_busy_seconds(0);
  result.root_cpu_fraction = end_time > 0 ? busy / end_time : 0.0;
  result.perf = cluster.perf_stats();
  return result;
}

ConcurrentResult run_concurrent(const ConcurrentConfig& config) {
  sim::ClusterProfile profile = config.profile;
  profile.topology.num_nodes =
      std::max<std::size_t>(profile.topology.num_nodes, config.group_size);
  fabric::SimFabric::Options options;
  options.costs = profile.costs;
  options.preemption = profile.preemption;
  options.default_mode = config.completion_mode;
  SimCluster cluster(profile, options, /*use_profile_costs=*/false);
  cluster.fabric().flows().set_fill_jobs(config.fill_jobs);

  // `senders` groups over the same `group_size` members, roots rotated
  // (the Fig 10 overlap pattern).
  std::vector<SimCluster::GroupRecord*> recs;
  for (std::size_t g = 0; g < config.senders; ++g) {
    std::vector<NodeId> members;
    members.push_back(static_cast<NodeId>(g % config.group_size));
    for (std::size_t i = 0; i < config.group_size; ++i)
      if (i != g % config.group_size)
        members.push_back(static_cast<NodeId>(i));
    GroupOptions group_options;
    group_options.block_size = config.block_size;
    recs.push_back(&cluster.create_group(static_cast<GroupId>(g), members,
                                         group_options));
  }

  const double start = cluster.sim().now();
  for (std::size_t g = 0; g < config.senders; ++g) {
    for (std::size_t m = 0; m < config.messages; ++m) {
      const bool ok = cluster.node(g % config.group_size)
                          .send(static_cast<GroupId>(g), nullptr,
                                config.message_bytes);
      assert(ok);
      (void)ok;
    }
  }
  cluster.run_to_quiescence();

  double last = start;
  for (const auto* rec : recs)
    for (std::size_t m = 1; m < rec->members.size(); ++m)
      if (!rec->delivery_times[m].empty())
        last = std::max(last, rec->delivery_times[m].back());

  ConcurrentResult result;
  result.makespan_seconds = last - start;
  result.perf = cluster.perf_stats();
  result.aggregate_gbps =
      static_cast<double>(config.message_bytes) *
      static_cast<double>(config.messages) *
      static_cast<double>(config.senders) * 8.0 /
      result.makespan_seconds / 1e9;
  return result;
}

}  // namespace rdmc::harness
