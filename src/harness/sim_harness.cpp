#include "harness/sim_harness.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace rdmc::harness {

SimCluster::SimCluster(const sim::ClusterProfile& profile,
                       fabric::SimFabric::Options options_override,
                       bool use_profile_costs)
    : topology_(profile.topology) {
  fabric::SimFabric::Options options = options_override;
  if (use_profile_costs) {
    options.costs = profile.costs;
    options.preemption = profile.preemption;
  }
  fabric_ = std::make_unique<fabric::SimFabric>(sim_, topology_, options);
  nodes_.reserve(topology_.num_nodes());
  const Clock clock = [this] { return sim_.now(); };
  for (std::size_t i = 0; i < topology_.num_nodes(); ++i) {
    nodes_.push_back(
        std::make_unique<Node>(*fabric_, static_cast<NodeId>(i), clock));
  }
}

SimCluster::GroupRecord& SimCluster::create_group(GroupId id,
                                                  std::vector<NodeId> members,
                                                  GroupOptions options) {
  auto rec = std::make_unique<GroupRecord>();
  rec->id = id;
  rec->members = members;
  rec->delivery_times.resize(members.size());
  GroupRecord* r = rec.get();
  for (std::size_t m = 0; m < members.size(); ++m) {
    const NodeId node = members[m];
    const bool ok = nodes_[node]->create_group(
        id, members, options,
        // Phantom receive region: cluster-scale runs move no host memory.
        [](std::size_t size) { return fabric::MemoryView{nullptr, size}; },
        [this, r, m](std::byte*, std::size_t) {
          r->delivery_times[m].push_back(sim_.now());
        },
        [this, r, node](GroupId, NodeId suspect) {
          r->failure_log.push_back({sim_.now(), node, suspect});
        });
    assert(ok && "create_group failed");
    (void)ok;
  }
  records_.push_back(std::move(rec));
  return *records_.back();
}

void SimCluster::run_to_quiescence() {
  const auto t0 = std::chrono::steady_clock::now();
  sim_.run();
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
}

bool SimCluster::run_slice(double dt) {
  const auto t0 = std::chrono::steady_clock::now();
  const bool more = sim_.run_until(sim_.now() + dt);
  wall_seconds_ += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  return more;
}

PerfStats SimCluster::perf_stats() const {
  const auto& c = fabric_->flows().counters();
  PerfStats s;
  s.wall_seconds = wall_seconds_;
  s.events_processed = sim_.events_processed();
  s.reallocations = c.reallocations;
  s.filling_rounds = c.filling_rounds;
  s.flows_touched = c.flows_touched;
  s.max_component = c.max_component;
  s.expand_rounds = c.expand_rounds;
  s.full_recomputes = c.full_recomputes;
  s.flow_starts = c.flow_starts;
  const auto& f = fabric_->fault_counters();
  s.breaks_delivered = f.disconnects_delivered;
  s.flushed_completions = f.flushed_completions;
  s.reforms = reforms_;
  return s;
}

const SimCluster::GroupRecord& SimCluster::record(GroupId id) const {
  for (const auto& r : records_)
    if (r->id == id) return *r;
  assert(false && "unknown group");
  return *records_.front();
}

double SimCluster::run_one(GroupId group, std::uint64_t bytes) {
  const GroupRecord& r = record(group);
  const double start = sim_.now();
  const bool ok = nodes_[r.members.front()]->send(group, nullptr, bytes);
  assert(ok && "send failed");
  (void)ok;
  run_to_quiescence();
  double last = start;
  for (const auto& times : r.delivery_times)
    if (!times.empty()) last = std::max(last, times.back());
  return last - start;
}

MulticastResult run_multicast(const MulticastConfig& config) {
  sim::ClusterProfile profile = config.profile;
  std::size_t needed = config.group_size;
  if (config.members)
    for (NodeId m : *config.members)
      needed = std::max<std::size_t>(needed, m + 1);
  profile.topology.num_nodes =
      std::max<std::size_t>(profile.topology.num_nodes, needed);
  fabric::SimFabric::Options options;
  options.costs = profile.costs;
  options.preemption = profile.preemption;
  options.default_mode = config.completion_mode;
  options.cross_channel = config.cross_channel;
  if (config.ideal_software) {
    options.costs = sim::SoftwareCosts{0, 0, 0, 0, 1e18, 0};
    options.preemption = sim::PreemptionModel{0.0, 0.0};
  }
  SimCluster cluster(profile, options, /*use_profile_costs=*/false);

  std::vector<NodeId> members;
  if (config.members) {
    members = *config.members;
    assert(members.size() == config.group_size);
  } else {
    members.resize(config.group_size);
    for (std::size_t i = 0; i < config.group_size; ++i)
      members[i] = static_cast<NodeId>(i);
  }
  GroupOptions group_options;
  group_options.block_size = config.block_size;
  group_options.algorithm = config.algorithm;
  group_options.hybrid_racks = config.hybrid_racks;
  group_options.make_schedule = config.make_schedule;
  auto& rec = cluster.create_group(1, members, group_options);

  const double start = cluster.sim().now();
  for (std::size_t m = 0; m < config.messages; ++m) {
    const bool ok = cluster.node(members.front())
                        .send(1, nullptr, config.message_bytes);
    assert(ok);
    (void)ok;
  }
  cluster.run_to_quiescence();
  const double end_time = cluster.sim().now();

  MulticastResult result;
  double last_delivery = start;
  double first_last = 1e300, max_last = 0.0;
  for (std::size_t m = 1; m < rec.members.size(); ++m) {
    const auto& times = rec.delivery_times[m];
    assert(times.size() == config.messages && "receiver missed messages");
    last_delivery = std::max(last_delivery, times.back());
    first_last = std::min(first_last, times.back());
    max_last = std::max(max_last, times.back());
  }
  result.total_seconds = last_delivery - start;
  result.latency_seconds =
      result.total_seconds / static_cast<double>(config.messages);
  result.bandwidth_gbps =
      static_cast<double>(config.message_bytes) *
      static_cast<double>(config.messages) * 8.0 /
      result.total_seconds / 1e9;
  result.skew_seconds = max_last - first_last;
  const double busy = cluster.fabric().cpu_busy_seconds(0);
  result.root_cpu_fraction = end_time > 0 ? busy / end_time : 0.0;
  result.perf = cluster.perf_stats();
  return result;
}

ConcurrentResult run_concurrent(const ConcurrentConfig& config) {
  sim::ClusterProfile profile = config.profile;
  profile.topology.num_nodes =
      std::max<std::size_t>(profile.topology.num_nodes, config.group_size);
  fabric::SimFabric::Options options;
  options.costs = profile.costs;
  options.preemption = profile.preemption;
  options.default_mode = config.completion_mode;
  SimCluster cluster(profile, options, /*use_profile_costs=*/false);

  // `senders` groups over the same `group_size` members, roots rotated
  // (the Fig 10 overlap pattern).
  std::vector<SimCluster::GroupRecord*> recs;
  for (std::size_t g = 0; g < config.senders; ++g) {
    std::vector<NodeId> members;
    members.push_back(static_cast<NodeId>(g % config.group_size));
    for (std::size_t i = 0; i < config.group_size; ++i)
      if (i != g % config.group_size)
        members.push_back(static_cast<NodeId>(i));
    GroupOptions group_options;
    group_options.block_size = config.block_size;
    recs.push_back(&cluster.create_group(static_cast<GroupId>(g), members,
                                         group_options));
  }

  const double start = cluster.sim().now();
  for (std::size_t g = 0; g < config.senders; ++g) {
    for (std::size_t m = 0; m < config.messages; ++m) {
      const bool ok = cluster.node(g % config.group_size)
                          .send(static_cast<GroupId>(g), nullptr,
                                config.message_bytes);
      assert(ok);
      (void)ok;
    }
  }
  cluster.run_to_quiescence();

  double last = start;
  for (const auto* rec : recs)
    for (std::size_t m = 1; m < rec->members.size(); ++m)
      if (!rec->delivery_times[m].empty())
        last = std::max(last, rec->delivery_times[m].back());

  ConcurrentResult result;
  result.makespan_seconds = last - start;
  result.perf = cluster.perf_stats();
  result.aggregate_gbps =
      static_cast<double>(config.message_bytes) *
      static_cast<double>(config.messages) *
      static_cast<double>(config.senders) * 8.0 /
      result.makespan_seconds / 1e9;
  return result;
}

}  // namespace rdmc::harness
