// Experiment harness over the simulated fabric.
//
// Every benchmark in bench/ regenerates a paper table or figure by running
// RDMC (and the baselines) on SimFabric under a cluster profile. This
// harness owns the boilerplate: build simulator + topology + fabric +
// rdmc::Node per member, create groups with phantom receive buffers,
// drive one or many multicasts, and report the same quantities the paper
// plots (latency, bandwidth, per-receiver delivery times, CPU busy time).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/group.hpp"
#include "core/rdmc.hpp"
#include "fabric/sim_fabric.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster_profiles.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rdmc::obs {
class TelemetryHub;
}

namespace rdmc::harness {

class TelemetryTicker;

/// Simulator-core performance observability, reported by every experiment
/// (and dumped into BENCH_core.json by bench/perf_core). `wall_seconds` is
/// host time spent inside Simulator::run; the rest are FlowNetwork /
/// Simulator counters over the experiment.
///
/// This struct is a *typed view* over an obs::MetricsRegistry: SimCluster
/// publishes its counters under the registry names listed per field and
/// `from()` materialises the struct from any registry holding them. New
/// counters can flow from a layer to consumers through the registry alone;
/// this struct only grows a field when a stable name deserves one.
struct PerfStats {
  double wall_seconds = 0.0;              // harness.wall_ns / 1e9
  std::uint64_t events_processed = 0;     // sim.events
  std::uint64_t reallocations = 0;        // sim.reallocations
  std::uint64_t filling_rounds = 0;       // sim.filling_rounds
  std::uint64_t flows_touched = 0;        // sim.flows_touched
  std::uint64_t max_component = 0;        // sim.max_component
  std::uint64_t expand_rounds = 0;        // sim.expand_rounds
  std::uint64_t full_recomputes = 0;      // sim.full_recomputes
  std::uint64_t flow_starts = 0;          // sim.flow_starts
  std::uint64_t memo_hits = 0;            // sim.memo_hits
  std::uint64_t memo_misses = 0;          // sim.memo_misses
  std::uint64_t component_fills = 0;      // sim.component_fills
  std::uint64_t hier_fills = 0;           // sim.hier_fills
  std::uint64_t hier_rounds = 0;          // sim.hier_rounds
  std::uint64_t hier_fallbacks = 0;       // sim.hier_fallbacks
  std::uint64_t split_cuts = 0;           // sim.split_cuts
  std::uint64_t split_pieces = 0;         // sim.split_pieces
  std::uint64_t island_par_rounds = 0;    // sim.island_par_rounds
  // Fault-path counters (SimFabric::FaultCounters + harness bookkeeping).
  std::uint64_t breaks_delivered = 0;     // fault.disconnects
  std::uint64_t flushed_completions = 0;  // fault.flushed
  std::uint64_t reforms = 0;              // harness.reforms

  /// Materialise the view from a registry (absent names read as zero).
  static PerfStats from(const obs::MetricsRegistry& registry);
};

/// A simulated cluster with one rdmc::Node per machine.
class SimCluster {
 public:
  explicit SimCluster(const sim::ClusterProfile& profile,
                      fabric::SimFabric::Options options_override = {},
                      bool use_profile_costs = true);
  ~SimCluster();

  sim::Simulator& sim() { return sim_; }
  sim::Topology& topology() { return topology_; }
  fabric::SimFabric& fabric() { return *fabric_; }
  Node& node(NodeId id) { return *nodes_[id]; }
  std::size_t size() const { return nodes_.size(); }

  /// Per-(group, member) delivery bookkeeping.
  struct GroupRecord {
    GroupId id;
    std::vector<NodeId> members;
    /// delivery_times[i]: virtual times member i delivered each message
    /// (senders record local send completion instead).
    std::vector<std::vector<double>> delivery_times;
    /// One failure-callback firing: at virtual time `when`, member `by`
    /// reported the group failed, suspecting `suspect`. The §4.6 recovery
    /// driver and the chaos invariants read this instead of re-deriving
    /// who-saw-what from completion streams.
    struct FailureObservation {
      double when = 0.0;
      NodeId by = 0;
      NodeId suspect = 0;
    };
    std::vector<FailureObservation> failure_log;
    /// Virtual submit time of each message sent through SimCluster::send,
    /// in sequence order.
    std::vector<double> submit_times;
    /// Live per-delivery hook: (seq, member_index, latency_s) as each
    /// non-root member delivers a message submitted via SimCluster::send.
    /// Per-member delivery order is FIFO, so the member's delivery count
    /// maps to the sequence number. Runs inside the simulator event, so
    /// SLO trackers see deliveries as they happen, not post-hoc.
    std::function<void(std::size_t, std::size_t, double)> on_latency;
  };

  /// Create `members.front()`-rooted group on every member with phantom
  /// receive buffers and delivery recording. Returns the record handle.
  GroupRecord& create_group(GroupId id, std::vector<NodeId> members,
                            GroupOptions options);

  /// Submit a send from the group's root without running the simulator:
  /// records the submit time for live latency attribution
  /// (GroupRecord::on_latency) and re-arms the telemetry ticker.
  void send(GroupId group, std::uint64_t bytes);

  /// Send and run the simulator to quiescence. Returns virtual makespan
  /// (send-submit to last delivery across all members).
  double run_one(GroupId group, std::uint64_t bytes);

  /// Drive `hub` with deterministic virtual-time ticks every `period_s`,
  /// refreshing this cluster's metrics (sync_metrics) before each tick.
  /// The hub should be built over metrics() and must outlive the cluster.
  void attach_telemetry(obs::TelemetryHub& hub, double period_s);

  /// Counter snapshot (cumulative since construction); wall_seconds covers
  /// the Simulator::run calls made through this cluster. Implemented as
  /// sync_metrics() + PerfStats::from(metrics()).
  PerfStats perf_stats() const;

  /// The cluster's metrics registry. sync_metrics() refreshes it from the
  /// simulator/flow-network/fault counters; layers may also publish into
  /// it directly (histograms, extra counters) without touching PerfStats.
  obs::MetricsRegistry& metrics() const { return metrics_; }
  void sync_metrics() const;

  /// sim().run() wrapped with host-clock accounting into the wall_seconds
  /// reported by perf_stats().
  void run_to_quiescence();

  /// sim().run_until(now + dt) with the same wall accounting. Returns true
  /// while events remain past the deadline. Recovery drivers advance in
  /// slices so pending fault events can land mid-epoch instead of all
  /// draining inside one run-to-quiescence call.
  bool run_slice(double dt);

  /// Record one §4.6 group re-creation (reported via perf_stats).
  void note_reform() { ++reforms_; }

  const GroupRecord& record(GroupId id) const;
  GroupRecord& record(GroupId id) {
    return const_cast<GroupRecord&>(
        static_cast<const SimCluster*>(this)->record(id));
  }

 private:
  sim::Simulator sim_;
  sim::Topology topology_;
  std::unique_ptr<fabric::SimFabric> fabric_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<GroupRecord>> records_;
  std::unique_ptr<TelemetryTicker> ticker_;
  double wall_seconds_ = 0.0;
  std::uint64_t reforms_ = 0;
  mutable obs::MetricsRegistry metrics_;
};

/// One-shot multicast experiment (most figures).
struct MulticastConfig {
  sim::ClusterProfile profile;
  std::size_t group_size = 4;
  std::uint64_t message_bytes = 256ull << 20;
  std::size_t block_size = 1 << 20;
  sched::Algorithm algorithm = sched::Algorithm::kBinomialPipeline;
  std::optional<std::vector<std::uint32_t>> hybrid_racks;
  std::function<std::unique_ptr<sched::Schedule>(std::size_t, std::size_t)>
      make_schedule;
  /// Explicit member list (rank order; front is the root). Defaults to
  /// nodes 0..group_size-1. A shuffled list models the paper's "overlay
  /// built from random pairs of nodes" placement (§4.3 Hybrid).
  std::optional<std::vector<NodeId>> members;
  /// Back-to-back messages through the same group (steady-state rate).
  std::size_t messages = 1;
  fabric::CompletionMode completion_mode = fabric::CompletionMode::kHybrid;
  bool cross_channel = false;
  /// Zero out software costs/preemption (pure network behaviour).
  bool ideal_software = false;
  /// Worker threads for component-parallel max-min fills inside one sim
  /// step (FlowNetwork::set_fill_jobs). 1 = serial; any value produces
  /// byte-identical results, so this is purely a wall-clock knob.
  std::size_t fill_jobs = 1;
};

struct MulticastResult {
  /// Send-submit to last delivery of the last message, seconds.
  double total_seconds = 0.0;
  /// Mean per-message latency (total / messages).
  double latency_seconds = 0.0;
  /// Paper metric: message bytes x messages / total time, decimal Gb/s.
  double bandwidth_gbps = 0.0;
  /// Delivery-time spread of the last message across receivers (skew).
  double skew_seconds = 0.0;
  /// Virtual CPU busy fraction at the root over the run.
  double root_cpu_fraction = 0.0;
  PerfStats perf;
};

MulticastResult run_multicast(const MulticastConfig& config);

/// Fig 10-style concurrent experiment: `senders` groups with identical
/// membership (rotated roots), every sender transmitting `messages`
/// messages of `message_bytes` concurrently. Returns aggregate goodput.
struct ConcurrentConfig {
  sim::ClusterProfile profile;
  std::size_t group_size = 8;
  std::size_t senders = 8;
  std::uint64_t message_bytes = 100ull << 20;
  std::size_t block_size = 1 << 20;
  std::size_t messages = 4;
  fabric::CompletionMode completion_mode = fabric::CompletionMode::kHybrid;
  /// See MulticastConfig::fill_jobs.
  std::size_t fill_jobs = 1;
};

struct ConcurrentResult {
  double makespan_seconds = 0.0;
  double aggregate_gbps = 0.0;  // total bytes sent / makespan
  PerfStats perf;
};

ConcurrentResult run_concurrent(const ConcurrentConfig& config);

}  // namespace rdmc::harness
