#include "harness/telemetry_ticker.hpp"

namespace rdmc::harness {

TelemetryTicker::TelemetryTicker(sim::Simulator& sim, obs::TelemetryHub& hub,
                                 double period_s,
                                 std::function<void()> pre_tick)
    : sim_(sim), hub_(hub), period_(period_s),
      pre_tick_(std::move(pre_tick)) {}

void TelemetryTicker::ensure_scheduled() {
  if (scheduled_) return;
  scheduled_ = true;
  sim_.after(period_, [this] { fire(); });
}

void TelemetryTicker::fire() {
  scheduled_ = false;
  ++fired_;
  if (pre_tick_) pre_tick_();
  hub_.tick(sim_.now());
  // The tick event itself was already popped: an empty queue here means
  // the run is quiescing, and rescheduling would keep it alive forever.
  if (!sim_.idle()) ensure_scheduled();
}

}  // namespace rdmc::harness
