// Virtual-time tick source for a TelemetryHub.
//
// The obs layer deliberately knows nothing about the simulator, so the
// deterministic tick source lives here: a self-rescheduling simulator
// event that closes a telemetry window every `period_s` of *virtual*
// time. Ticks land at exact deterministic instants, which is what makes
// the exported JSONL byte-identical across runs and --jobs settings.
//
// Termination: when a tick fires and finds the event queue otherwise
// empty, it does not reschedule — so run()/run_to_quiescence() still
// quiesce. Submitting more work re-arms the ticker (SimCluster::send
// calls ensure_scheduled()).
#pragma once

#include <cstdint>
#include <functional>

#include "obs/telemetry.hpp"
#include "sim/simulator.hpp"

namespace rdmc::harness {

class TelemetryTicker {
 public:
  /// `pre_tick` runs right before every hub tick (SimCluster passes
  /// sync_metrics, so windows see fresh simulator counters). The ticker
  /// must not outlive `sim`, `hub` or anything `pre_tick` captures.
  TelemetryTicker(sim::Simulator& sim, obs::TelemetryHub& hub,
                  double period_s, std::function<void()> pre_tick = {});

  /// Arm the next tick at now() + period if one is not already pending.
  void ensure_scheduled();

  std::uint64_t ticks_fired() const { return fired_; }

 private:
  void fire();

  sim::Simulator& sim_;
  obs::TelemetryHub& hub_;
  double period_;
  std::function<void()> pre_tick_;
  bool scheduled_ = false;
  std::uint64_t fired_ = 0;
};

}  // namespace rdmc::harness
