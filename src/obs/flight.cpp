#include "obs/flight.hpp"

#include <cstdio>
#include <fstream>

#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace rdmc::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
}

void append_warnings(std::string& out,
                     const std::vector<std::string>& warnings) {
  out += ",\"warnings\":[";
  bool first = true;
  for (const std::string& w : warnings) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, w);
    out.push_back('"');
  }
  out += "]}";
}

}  // namespace

FlightRecorder::FlightRecorder(FlightOptions options)
    : options_(options) {}

bool FlightRecorder::armed(const std::string& key, std::uint64_t tick) const {
  if (incidents_.size() >= options_.max_incidents) return false;
  auto it = last_tick_.find(key);
  return it == last_tick_.end() || tick >= it->second + options_.dedup_ticks;
}

const Incident* FlightRecorder::record(const std::string& key,
                                       std::uint64_t tick, double t,
                                       const std::string& reason,
                                       const std::string& analysis_json,
                                       const std::string& window_json) {
  if (!armed(key, tick)) {
    ++suppressed_;
    return nullptr;
  }
  last_tick_[key] = tick;

  std::vector<TraceEvent> events = TraceRecorder::instance().snapshot();
  if (events.size() > options_.max_trace_events)
    events.erase(events.begin(),
                 events.end() - static_cast<std::ptrdiff_t>(
                                    options_.max_trace_events));

  Incident inc;
  inc.key = key;
  inc.tick = tick;
  inc.t = t;
  inc.reason = reason;

  char buf[64];
  std::string& out = inc.json;
  out += "{\"key\":\"";
  append_escaped(out, key);
  std::snprintf(buf, sizeof buf, "\",\"tick\":%llu,\"t\":%.9g",
                static_cast<unsigned long long>(tick), t);
  out += buf;
  out += ",\"reason\":\"";
  append_escaped(out, reason);
  out += "\",\"analysis\":";
  out += analysis_json.empty() ? "null" : analysis_json;
  out += ",\"window\":";
  out += window_json.empty() ? "null" : window_json;
  out += ",\"trace\":";
  out += to_chrome_json(events);
  out.push_back('}');

  incidents_.push_back(std::move(inc));
  return &incidents_.back();
}

std::string FlightRecorder::to_json() const {
  std::string out = "{\"incidents\":[";
  bool first = true;
  for (const Incident& inc : incidents_) {
    if (!first) out.push_back(',');
    first = false;
    out += inc.json;
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "],\"suppressed\":%llu}",
                static_cast<unsigned long long>(suppressed_));
  out += buf;
  return out;
}

bool FlightRecorder::write(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << to_json();
  return static_cast<bool>(f);
}

std::string stall_tiling_json(const MulticastAnalysis& a) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf, "{\"msg_start\":%.9g,\"receivers\":[",
                a.msg_start);
  out += buf;
  bool first = true;
  for (const StallBreakdown& r : a.receivers) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"node\":%u,\"latency_s\":%.9g,\"transfer_s\":%.9g,"
                  "\"wait_s\":%.9g,\"software_s\":%.9g",
                  r.node, r.latency_s, r.transfer_s, r.wait_s, r.software_s);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ",\"injected_s\":%.9g,\"recovery_s\":%.9g,\"hops\":%zu,"
                  "\"sum_s\":%.9g}",
                  r.injected_s, r.recovery_s, r.hops, r.sum());
    out += buf;
  }
  out += ']';
  append_warnings(out, a.warnings);
  return out;
}

std::string ud_stall_tiling_json(const UdMulticastAnalysis& a) {
  char buf[160];
  std::string out;
  std::snprintf(buf, sizeof buf, "{\"msg_start\":%.9g,\"receivers\":[",
                a.msg_start);
  out += buf;
  bool first = true;
  for (const UdStallBreakdown& r : a.receivers) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"node\":%u,\"latency_s\":%.9g,\"transfer_s\":%.9g,"
                  "\"wait_s\":%.9g,\"retransmit_s\":%.9g,\"repair_s\":%.9g",
                  r.node, r.latency_s, r.transfer_s, r.wait_s, r.retransmit_s,
                  r.repair_s);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ",\"datagrams\":%zu,\"retx_datagrams\":%zu,\"sum_s\":%.9g}",
                  r.datagrams, r.retx_datagrams, r.sum());
    out += buf;
  }
  out += ']';
  append_warnings(out, a.warnings);
  return out;
}

}  // namespace rdmc::obs
