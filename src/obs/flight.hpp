// Flight recorder: violation-triggered incident capture.
//
// The TraceRecorder ring holds the recent past but is only dumped at
// process exit — by the time a p999 outlier shows up in a report, its
// causal trace has been overwritten. The flight recorder closes that gap:
// when an SLO alert fires (or a caller-detected latency breach), it
// freeze-copies the ring *right then*, trims it to the newest events, and
// packages a self-contained incident JSON:
//
//   { key, tick, t, reason,
//     analysis — the exact stall tiling of the offending transfer
//                (stall_tiling_json / ud_stall_tiling_json),
//     window   — the telemetry window that tripped the alert
//                (obs::window_json),
//     trace    — a Chrome trace_event slice, loadable in Perfetto }
//
// Sustained breaches don't flood: incidents are deduplicated per key by
// tick distance (a key re-arms only after dedup_ticks further ticks) and
// capped globally; everything refused is counted in suppressed().
//
// The recorder is passive — callers decide what a violation is (usually a
// SloTracker alert listener) and hand in the analysis; this keeps obs
// free of harness/session dependencies.
//
// Thread-safety: none needed (DESIGN.md §11). record() runs inside an SLO
// alert listener on the single ticking thread, with no hub lock held; the
// TraceRecorder freeze-copy it takes (snapshot()) locks only the trace
// ring mutex, and every histogram lock acquired while building the
// snapshot inputs was released before the listener fired — so no lock is
// ever held across record() and no ordering edge is created.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/stall.hpp"
#include "obs/telemetry.hpp"
#include "obs/ud_stall.hpp"

namespace rdmc::obs {

struct FlightOptions {
  /// Hard cap on stored incidents for the recorder's lifetime.
  std::size_t max_incidents = 8;
  /// A key that recorded at tick T is suppressed until tick T + dedup_ticks.
  std::uint64_t dedup_ticks = 8;
  /// Newest trace events embedded per incident (64 B each in the ring;
  /// ~200 B each as JSON).
  std::size_t max_trace_events = 4096;
};

struct Incident {
  std::string key;       // dedup key, e.g. "slo:delivery-p99"
  std::uint64_t tick = 0;
  double t = 0.0;        // tick timestamp (virtual or wall seconds)
  std::string reason;    // human-readable trigger description
  std::string json;      // the self-contained incident document
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightOptions options = {});

  /// Would record(key, tick, ...) be accepted right now? (Cap not hit and
  /// the key is out of its dedup interval.) Lets callers skip an expensive
  /// analysis for an incident that would be suppressed anyway.
  bool armed(const std::string& key, std::uint64_t tick) const;

  /// Capture an incident: freeze-copy the calling thread's TraceRecorder,
  /// trim to the newest max_trace_events, and store the packaged JSON.
  /// `analysis_json` / `window_json` may be empty (emitted as null).
  /// Returns the stored incident, or nullptr if suppressed (cap/dedup).
  const Incident* record(const std::string& key, std::uint64_t tick, double t,
                         const std::string& reason,
                         const std::string& analysis_json,
                         const std::string& window_json);

  const std::vector<Incident>& incidents() const { return incidents_; }
  /// Triggers refused by the cap or per-key dedup.
  std::uint64_t suppressed() const { return suppressed_; }

  /// {"incidents":[...],"suppressed":N} — deterministic given the inputs.
  std::string to_json() const;
  /// Write to_json() to `path`. Returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  FlightOptions options_;
  std::vector<Incident> incidents_;
  std::map<std::string, std::uint64_t> last_tick_;  // key -> last record tick
  std::uint64_t suppressed_ = 0;
};

/// Stall tilings as JSON, for the incident `analysis` slot. Per-receiver
/// class sums tile latency_s exactly (see the analyzers' contracts).
std::string stall_tiling_json(const MulticastAnalysis& a);
std::string ud_stall_tiling_json(const UdMulticastAnalysis& a);

}  // namespace rdmc::obs
