#include "obs/metrics.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace rdmc::obs {

Log2Histogram::Log2Histogram(int min_exp, int max_exp)
    : min_exp_(min_exp), max_exp_(max_exp) {
  assert(max_exp_ >= min_exp_);
  counts_.assign(static_cast<std::size_t>(max_exp_ - min_exp_ + 1), 0);
}

void Log2Histogram::add(double value) {
  ++total_;
  if (value > 0.0) {
    sum_ += value;
    if (value > max_) max_ = value;
  }
  if (!(value > 0.0)) {  // zero, negative, NaN
    ++underflow_;
    return;
  }
  // floor(log2(value)) without rounding surprises at exact powers of two:
  // frexp(v) = m * 2^e with m in [0.5, 1), so floor(log2(v)) == e - 1 and
  // v == 2^k maps to exponent k exactly (m == 0.5, e == k + 1).
  int e = 0;
  (void)std::frexp(value, &e);
  const int exp = e - 1;
  if (exp < min_exp_) {
    ++underflow_;
  } else if (exp > max_exp_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(exp - min_exp_)];
  }
}

double Log2Histogram::bucket_lo(std::size_t i) const {
  return std::ldexp(1.0, min_exp_ + static_cast<int>(i));
}

double Log2Histogram::bucket_hi(std::size_t i) const {
  return std::ldexp(1.0, min_exp_ + static_cast<int>(i) + 1);
}

double Log2Histogram::approx_quantile(double q) const {
  if (total_ == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total_ - 1);
  std::uint64_t seen = underflow_;
  if (rank < static_cast<double>(seen)) return 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (rank < static_cast<double>(seen)) {
      // Geometric midpoint of the bucket: sqrt(lo * hi) = lo * sqrt(2).
      return bucket_lo(i) * 1.4142135623730951;
    }
  }
  return max_;  // overflow bucket
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Log2Histogram& MetricsRegistry::histogram(const std::string& name,
                                          int min_exp, int max_exp) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Log2Histogram>(min_exp, max_exp);
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Log2Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[64];
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":{\"total\":";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(h->total()));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"mean\":%.9g", h->mean());
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"max\":%.9g", h->max());
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p50\":%.9g", h->approx_quantile(0.5));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p99\":%.9g",
                  h->approx_quantile(0.99));
    out += buf;
    out += ",\"buckets\":[";
    // Sparse: [exponent, count] pairs for non-empty buckets only.
    bool bfirst = true;
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      if (h->count_at(i) == 0) continue;
      if (!bfirst) out.push_back(',');
      bfirst = false;
      std::snprintf(buf, sizeof buf, "[%d,%llu]",
                    h->min_exp() + static_cast<int>(i),
                    static_cast<unsigned long long>(h->count_at(i)));
      out += buf;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace rdmc::obs
