#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace rdmc::obs {

namespace {

/// floor(log2(value)) without rounding surprises at exact powers of two:
/// frexp(v) = m * 2^e with m in [0.5, 1), so floor(log2(v)) == e - 1 and
/// v == 2^k maps to exponent k exactly (m == 0.5, e == k + 1).
int floor_log2(double value) {
  int e = 0;
  (void)std::frexp(value, &e);
  return e - 1;
}

}  // namespace

// -- HistogramSnapshot -----------------------------------------------------

double HistogramSnapshot::bucket_lo(std::size_t i) const {
  return std::ldexp(1.0, min_exp + static_cast<int>(i));
}

double HistogramSnapshot::bucket_hi(std::size_t i) const {
  return std::ldexp(1.0, min_exp + static_cast<int>(i) + 1);
}

double HistogramSnapshot::quantile(double q) const {
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t seen = underflow;
  if (rank < static_cast<double>(seen)) return 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(seen + c)) {
      // Linear interpolation within the bucket: samples are assumed
      // uniform, so rank r sits at fractional position (r - seen + 0.5)/c.
      // Clamped to the recorded max — the interpolant can otherwise
      // exceed every observed sample near the top of the distribution.
      const double pos =
          (rank - static_cast<double>(seen) + 0.5) / static_cast<double>(c);
      const double lo = bucket_lo(i);
      const double v = lo + (bucket_hi(i) - lo) * std::min(pos, 1.0);
      return max > 0.0 ? std::min(v, max) : v;
    }
    seen += c;
  }
  return max;  // overflow bucket
}

double HistogramSnapshot::count_above(double threshold) const {
  double above = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t c = counts[i];
    if (c == 0) continue;
    const double lo = bucket_lo(i), hi = bucket_hi(i);
    if (threshold <= lo) {
      above += static_cast<double>(c);
    } else if (threshold < hi) {
      above += static_cast<double>(c) * (hi - threshold) / (hi - lo);
    }
  }
  // Overflow samples are all >= 2^(max_exp+1).
  if (overflow > 0 && max_exp >= min_exp &&
      threshold < bucket_hi(counts.size() - 1)) {
    above += static_cast<double>(overflow);
  }
  return above;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (other.total == 0 && other.counts.empty()) return;
  if (counts.empty() && total == 0) {
    *this = other;
    return;
  }
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    if (other.counts[i] == 0) continue;
    const int e = other.min_exp + static_cast<int>(i);
    if (e < min_exp) {
      underflow += other.counts[i];
    } else if (e > max_exp) {
      overflow += other.counts[i];
    } else {
      counts[static_cast<std::size_t>(e - min_exp)] += other.counts[i];
    }
  }
  underflow += other.underflow;
  overflow += other.overflow;
  total += other.total;
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot HistogramSnapshot::delta(const HistogramSnapshot& cur,
                                           const HistogramSnapshot& prev) {
  // An empty prev (first window) or a reset (total shrank, or the bucket
  // range changed) makes the whole current state the delta.
  if (prev.total > cur.total || prev.counts.size() != cur.counts.size() ||
      prev.min_exp != cur.min_exp) {
    return cur;
  }
  HistogramSnapshot d;
  d.min_exp = cur.min_exp;
  d.max_exp = cur.max_exp;
  d.counts.resize(cur.counts.size());
  int top = -1;
  for (std::size_t i = 0; i < cur.counts.size(); ++i) {
    const std::uint64_t c =
        cur.counts[i] >= prev.counts[i] ? cur.counts[i] - prev.counts[i] : 0;
    d.counts[i] = c;
    if (c > 0) top = static_cast<int>(i);
  }
  d.underflow =
      cur.underflow >= prev.underflow ? cur.underflow - prev.underflow : 0;
  d.overflow =
      cur.overflow >= prev.overflow ? cur.overflow - prev.overflow : 0;
  d.total = cur.total - prev.total;
  d.sum = cur.sum - prev.sum;
  if (cur.max > prev.max) {
    d.max = cur.max;
  } else if (d.overflow > 0) {
    d.max = cur.max;  // overflow samples are unbounded above; best we know
  } else if (top >= 0) {
    d.max = d.bucket_hi(static_cast<std::size_t>(top));
  }
  return d;
}

// -- Log2Histogram ---------------------------------------------------------

Log2Histogram::Log2Histogram(int min_exp, int max_exp)
    : min_exp_(min_exp), max_exp_(max_exp) {
  assert(max_exp_ >= min_exp_);
  counts_.assign(static_cast<std::size_t>(max_exp_ - min_exp_ + 1), 0);
}

void Log2Histogram::add(double value) {
  util::MutexLock lock(mutex_);
  ++total_;
  if (value > 0.0) {
    sum_ += value;
    if (value > max_) max_ = value;
  }
  if (!(value > 0.0)) {  // zero, negative, NaN
    ++underflow_;
    return;
  }
  const int exp = floor_log2(value);
  if (exp < min_exp_) {
    ++underflow_;
  } else if (exp > max_exp_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(exp - min_exp_)];
  }
}

void Log2Histogram::merge(const Log2Histogram& other) {
  // Snapshot the source first so self-merge and lock order are non-issues.
  const HistogramSnapshot s = other.snapshot();
  util::MutexLock lock(mutex_);
  for (std::size_t i = 0; i < s.counts.size(); ++i) {
    if (s.counts[i] == 0) continue;
    const int e = s.min_exp + static_cast<int>(i);
    if (e < min_exp_) {
      underflow_ += s.counts[i];
    } else if (e > max_exp_) {
      overflow_ += s.counts[i];
    } else {
      counts_[static_cast<std::size_t>(e - min_exp_)] += s.counts[i];
    }
  }
  underflow_ += s.underflow;
  overflow_ += s.overflow;
  total_ += s.total;
  sum_ += s.sum;
  max_ = std::max(max_, s.max);
}

HistogramSnapshot Log2Histogram::snapshot() const {
  util::MutexLock lock(mutex_);
  HistogramSnapshot s;
  s.min_exp = min_exp_;
  s.max_exp = max_exp_;
  s.counts = counts_;
  s.underflow = underflow_;
  s.overflow = overflow_;
  s.total = total_;
  s.sum = sum_;
  s.max = max_;
  return s;
}

std::size_t Log2Histogram::bucket_count() const {
  return static_cast<std::size_t>(max_exp_ - min_exp_ + 1);
}

double Log2Histogram::bucket_lo(std::size_t i) const {
  return std::ldexp(1.0, min_exp_ + static_cast<int>(i));
}

double Log2Histogram::bucket_hi(std::size_t i) const {
  return std::ldexp(1.0, min_exp_ + static_cast<int>(i) + 1);
}

std::uint64_t Log2Histogram::count_at(std::size_t i) const {
  util::MutexLock lock(mutex_);
  return counts_[i];
}

std::uint64_t Log2Histogram::underflow() const {
  util::MutexLock lock(mutex_);
  return underflow_;
}

std::uint64_t Log2Histogram::overflow() const {
  util::MutexLock lock(mutex_);
  return overflow_;
}

std::uint64_t Log2Histogram::total() const {
  util::MutexLock lock(mutex_);
  return total_;
}

double Log2Histogram::sum() const {
  util::MutexLock lock(mutex_);
  return sum_;
}

double Log2Histogram::mean() const {
  util::MutexLock lock(mutex_);
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double Log2Histogram::max() const {
  util::MutexLock lock(mutex_);
  return max_;
}

double Log2Histogram::approx_quantile(double q) const {
  return snapshot().quantile(q);
}

// -- MetricsScope ----------------------------------------------------------

std::string MetricsScope::decorate(const std::string& name) const {
  if (labels_.empty()) return name;
  return name + "{" + labels_ + "}";
}

Counter& MetricsScope::counter(const std::string& name) {
  return registry_->counter(decorate(name));
}

Log2Histogram& MetricsScope::histogram(const std::string& name, int min_exp,
                                       int max_exp) {
  return registry_->histogram(decorate(name), min_exp, max_exp);
}

// -- MetricsRegistry -------------------------------------------------------

Counter& MetricsRegistry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Log2Histogram& MetricsRegistry::histogram(const std::string& name,
                                          int min_exp, int max_exp) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Log2Histogram>(min_exp, max_exp);
  return *slot;
}

MetricsScope& MetricsRegistry::scope(const std::string& labels) {
  util::MutexLock lock(mutex_);
  auto& slot = scopes_[labels];
  if (!slot) slot.reset(new MetricsScope(*this, labels));
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Log2Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  util::MutexLock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::to_json() const {
  util::MutexLock lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  char buf[96];
  for (const auto& [name, c] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    out += "\"" + name + "\":";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out.push_back(',');
    first = false;
    const HistogramSnapshot s = h->snapshot();
    out += "\"" + name + "\":{\"summary\":{\"count\":";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(s.total));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"mean\":%.9g,\"max\":%.9g", s.mean(),
                  s.max);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p50\":%.9g,\"p90\":%.9g", s.quantile(0.5),
                  s.quantile(0.9));
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"p99\":%.9g,\"p999\":%.9g",
                  s.quantile(0.99), s.quantile(0.999));
    out += buf;
    std::snprintf(buf, sizeof buf, "},\"underflow\":%llu,\"overflow\":%llu",
                  static_cast<unsigned long long>(s.underflow),
                  static_cast<unsigned long long>(s.overflow));
    out += buf;
    out += ",\"buckets\":[";
    // Sparse: [exponent, count] pairs for non-empty buckets only.
    bool bfirst = true;
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (s.counts[i] == 0) continue;
      if (!bfirst) out.push_back(',');
      bfirst = false;
      std::snprintf(buf, sizeof buf, "[%d,%llu]",
                    s.min_exp + static_cast<int>(i),
                    static_cast<unsigned long long>(s.counts[i]));
      out += buf;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

namespace {

/// "name{k=v,k2=v2}" -> prometheus-safe base + rendered label set.
void split_prom_name(const std::string& name, std::string& base,
                     std::string& labels) {
  const std::size_t brace = name.find('{');
  std::string raw = name.substr(0, brace);
  base = "rdmc_";
  for (char ch : raw) {
    base.push_back(std::isalnum(static_cast<unsigned char>(ch)) ? ch : '_');
  }
  labels.clear();
  if (brace == std::string::npos) return;
  // "k=v,k2=v2}" -> k="v",k2="v2"
  std::string inner = name.substr(brace + 1);
  if (!inner.empty() && inner.back() == '}') inner.pop_back();
  std::size_t start = 0;
  while (start < inner.size()) {
    std::size_t comma = inner.find(',', start);
    if (comma == std::string::npos) comma = inner.size();
    const std::string kv = inner.substr(start, comma - start);
    const std::size_t eq = kv.find('=');
    if (!labels.empty()) labels.push_back(',');
    if (eq == std::string::npos) {
      labels += kv + "=\"\"";
    } else {
      labels += kv.substr(0, eq) + "=\"" + kv.substr(eq + 1) + "\"";
    }
    start = comma + 1;
  }
}

void append_prom_labels(std::string& out, const std::string& labels,
                        const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return;
  out.push_back('{');
  out += labels;
  if (!labels.empty() && !extra.empty()) out.push_back(',');
  out += extra;
  out.push_back('}');
}

}  // namespace

std::string MetricsRegistry::to_prometheus() const {
  util::MutexLock lock(mutex_);
  std::string out;
  char buf[96];
  std::string base, labels, last_typed;
  for (const auto& [name, c] : counters_) {
    split_prom_name(name, base, labels);
    if (base != last_typed) {
      out += "# TYPE " + base + " counter\n";
      last_typed = base;
    }
    out += base;
    append_prom_labels(out, labels);
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  last_typed.clear();
  for (const auto& [name, h] : histograms_) {
    split_prom_name(name, base, labels);
    const HistogramSnapshot s = h->snapshot();
    if (base != last_typed) {
      out += "# TYPE " + base + " histogram\n";
      last_typed = base;
    }
    std::uint64_t cum = s.underflow;
    for (std::size_t i = 0; i < s.counts.size(); ++i) {
      if (s.counts[i] == 0) continue;
      cum += s.counts[i];
      out += base + "_bucket";
      std::snprintf(buf, sizeof buf, "le=\"%.9g\"", s.bucket_hi(i));
      append_prom_labels(out, labels, buf);
      std::snprintf(buf, sizeof buf, " %llu\n",
                    static_cast<unsigned long long>(cum));
      out += buf;
    }
    out += base + "_bucket";
    append_prom_labels(out, labels, "le=\"+Inf\"");
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(s.total));
    out += buf;
    out += base + "_sum";
    append_prom_labels(out, labels);
    std::snprintf(buf, sizeof buf, " %.9g\n", s.sum);
    out += buf;
    out += base + "_count";
    append_prom_labels(out, labels);
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(s.total));
    out += buf;
  }
  return out;
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mutex_);
  counters_.clear();
  histograms_.clear();
  scopes_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace rdmc::obs
