// Metrics registry: named counters and log2-bucketed histograms, with
// labeled scopes and snapshot/delta support for windowed telemetry.
//
// Ends the one-struct-edit-per-counter plumbing around PerfStats: a layer
// that wants a new counter calls registry.counter("sim.flow_starts") and
// bumps it; consumers iterate the registry (or read the typed PerfStats
// view harness/sim_harness builds over it) without every intermediate
// struct learning the new field.
//
// Counters are atomic (MemFabric/TcpFabric bump them from completion
// threads). Histograms bucket by powers of two — bucket i of a histogram
// with min_exp m covers [2^(m+i), 2^(m+i+1)) — which spans nanoseconds to
// kiloseconds in ~40 buckets at a fixed 2x resolution, the right shape for
// latency tails. Histogram state is guarded by a per-histogram mutex so the
// wall-clock telemetry tick thread can snapshot while fabric completion
// threads record; adds are cold-path (per delivery, not per block).
//
// Labels: registry.scope("group=42,policy=sr") interns a child scope whose
// counter()/histogram() lookups decorate the metric name as
// "name{group=42,policy=sr}". Callers cache the returned references, so the
// hot path never formats a string; the decorated names live in the same
// sorted maps as unlabeled metrics, keeping every export deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rdmc::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time copy of a Log2Histogram's state: plain data, no locks.
/// The telemetry layer stores one per (histogram, tick) and differences
/// consecutive snapshots into per-window deltas; parallel sweep shards
/// merge per-cell snapshots back in input order instead of dropping them.
struct HistogramSnapshot {
  int min_exp = 0;
  int max_exp = -1;  // empty default: no buckets
  std::vector<std::uint64_t> counts;
  std::uint64_t underflow = 0;
  std::uint64_t overflow = 0;
  std::uint64_t total = 0;
  double sum = 0.0;
  double max = 0.0;

  bool empty() const { return total == 0; }
  double mean() const {
    return total ? sum / static_cast<double>(total) : 0.0;
  }
  /// Inclusive lower / exclusive upper bound of bucket i.
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Value at quantile q in [0, 1], linearly interpolated within the
  /// bucket holding that rank (samples are assumed uniform in-bucket).
  /// Underflow ranks read as 0, overflow ranks as `max`.
  double quantile(double q) const;

  /// Samples with value > threshold, linearly interpolated within the
  /// bucket straddling the threshold. Overflow samples count as above
  /// whenever the threshold is below their range; underflow samples
  /// (nonpositive or below-range values) never count. Fractional.
  double count_above(double threshold) const;

  /// Accumulate `other` into this snapshot. An empty (default) snapshot
  /// adopts the other's bucket range; otherwise out-of-range buckets from
  /// `other` clamp into this snapshot's under/overflow.
  void merge(const HistogramSnapshot& other);

  /// Per-window difference cur - prev. A shrinking total (histogram reset
  /// between snapshots) yields `cur` unchanged, same as an empty `prev`.
  /// The delta's `max` is the cumulative max when it advanced during the
  /// window, else the upper bound of the highest non-empty delta bucket
  /// (the tightest deterministic bound the buckets allow).
  static HistogramSnapshot delta(const HistogramSnapshot& cur,
                                 const HistogramSnapshot& prev);
};

/// Histogram over positive values with power-of-two buckets. Values below
/// 2^min_exp land in the underflow bucket, values >= 2^(max_exp+1) in the
/// overflow bucket; zero/negative values count as underflow.
class Log2Histogram {
 public:
  Log2Histogram(int min_exp, int max_exp);

  void add(double value);

  /// Merge another histogram's samples into this one (shard merge after a
  /// parallel sweep). Buckets outside this histogram's exponent range
  /// clamp into under/overflow.
  void merge(const Log2Histogram& other);

  /// Consistent point-in-time copy of the full state.
  HistogramSnapshot snapshot() const;

  std::size_t bucket_count() const;
  /// Inclusive lower bound of bucket i: 2^(min_exp + i).
  double bucket_lo(std::size_t i) const;
  /// Exclusive upper bound of bucket i: 2^(min_exp + i + 1).
  double bucket_hi(std::size_t i) const;
  std::uint64_t count_at(std::size_t i) const;
  std::uint64_t underflow() const;
  std::uint64_t overflow() const;
  std::uint64_t total() const;
  double sum() const;
  double mean() const;
  double max() const;

  /// Value at quantile q in [0, 1], linearly interpolated within the
  /// bucket holding that rank (HistogramSnapshot::quantile).
  double approx_quantile(double q) const;

  int min_exp() const { return min_exp_; }
  int max_exp() const { return max_exp_; }

 private:
  int min_exp_;  // immutable after construction
  int max_exp_;  // immutable after construction
  mutable util::Mutex mutex_;
  std::vector<std::uint64_t> counts_ RDMC_GUARDED_BY(mutex_);
  std::uint64_t underflow_ RDMC_GUARDED_BY(mutex_) = 0;
  std::uint64_t overflow_ RDMC_GUARDED_BY(mutex_) = 0;
  std::uint64_t total_ RDMC_GUARDED_BY(mutex_) = 0;
  double sum_ RDMC_GUARDED_BY(mutex_) = 0.0;
  double max_ RDMC_GUARDED_BY(mutex_) = 0.0;
};

class MetricsRegistry;

/// An interned labeled view of a registry. counter("x") resolves to the
/// registry metric "x{<labels>}"; callers look up once (cold) and cache the
/// returned reference, so per-event recording never touches a string.
class MetricsScope {
 public:
  Counter& counter(const std::string& name);
  Log2Histogram& histogram(const std::string& name, int min_exp = -30,
                           int max_exp = 10);
  const std::string& labels() const { return labels_; }
  /// The decorated registry name: "name{labels}" (or "name" if unlabeled).
  std::string decorate(const std::string& name) const;

 private:
  friend class MetricsRegistry;
  MetricsScope(MetricsRegistry& registry, std::string labels)
      : registry_(&registry), labels_(std::move(labels)) {}
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

  MetricsRegistry* registry_;
  std::string labels_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  /// Exponent bounds apply on creation only; later lookups reuse the
  /// existing histogram. Defaults cover ~1 ns .. ~1100 s (seconds units).
  Log2Histogram& histogram(const std::string& name, int min_exp = -30,
                           int max_exp = 10);

  /// Find-or-create an interned labeled scope. `labels` is a canonical
  /// comma-separated "key=value" list; the caller is responsible for a
  /// stable key order (scopes are interned by the exact string).
  MetricsScope& scope(const std::string& labels);

  /// Null if the name is unknown (lookup without creation). Labeled
  /// metrics are found under their decorated name ("x{group=1}").
  const Counter* find_counter(const std::string& name) const;
  const Log2Histogram* find_histogram(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> histogram_names() const;

  /// {"counters":{name:value,...},"histograms":{name:{"summary":{...},
  /// ...},...}} — deterministic (names sorted by the underlying map).
  /// Each histogram carries a summary block (count/mean/max/p50/p90/p99/
  /// p999) so consumers stop recomputing quantiles ad hoc, plus the
  /// sparse bucket list and under/overflow counts.
  std::string to_json() const;

  /// Prometheus text exposition of the full registry: counters as
  /// rdmc_<name> counter samples, histograms as cumulative le-bucket
  /// series plus _sum/_count. "{k=v,...}" label decorations become
  /// standard prometheus label sets. Deterministic.
  std::string to_prometheus() const;

  void reset();

  /// Process-wide registry used by layers without an injection path.
  static MetricsRegistry& global();

 private:
  mutable util::Mutex mutex_;
  /// The maps are guarded; the metrics they own are not (Counter is atomic,
  /// Log2Histogram locks internally) — find-or-create hands out stable
  /// references that outlive the lock.
  std::map<std::string, std::unique_ptr<Counter>> counters_
      RDMC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Log2Histogram>> histograms_
      RDMC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<MetricsScope>> scopes_
      RDMC_GUARDED_BY(mutex_);
};

}  // namespace rdmc::obs
