// Metrics registry: named counters and log2-bucketed histograms.
//
// Ends the one-struct-edit-per-counter plumbing around PerfStats: a layer
// that wants a new counter calls registry.counter("sim.flow_starts") and
// bumps it; consumers iterate the registry (or read the typed PerfStats
// view harness/sim_harness builds over it) without every intermediate
// struct learning the new field.
//
// Counters are atomic (MemFabric/TcpFabric bump them from completion
// threads). Histograms bucket by powers of two — bucket i of a histogram
// with min_exp m covers [2^(m+i), 2^(m+i+1)) — which spans nanoseconds to
// kiloseconds in ~40 buckets at a fixed 2x resolution, the right shape for
// latency tails.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rdmc::obs {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Histogram over positive values with power-of-two buckets. Values below
/// 2^min_exp land in the underflow bucket, values >= 2^(max_exp+1) in the
/// overflow bucket; zero/negative values count as underflow.
class Log2Histogram {
 public:
  Log2Histogram(int min_exp, int max_exp);

  void add(double value);

  std::size_t bucket_count() const { return counts_.size(); }
  /// Inclusive lower bound of bucket i: 2^(min_exp + i).
  double bucket_lo(std::size_t i) const;
  /// Exclusive upper bound of bucket i: 2^(min_exp + i + 1).
  double bucket_hi(std::size_t i) const;
  std::uint64_t count_at(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  double mean() const { return total_ ? sum_ / double(total_) : 0.0; }
  double max() const { return max_; }

  /// Value at quantile q in [0, 1], approximated as the geometric midpoint
  /// of the bucket holding that rank (exact for the min/max of a bucket).
  double approx_quantile(double q) const;

  int min_exp() const { return min_exp_; }
  int max_exp() const { return max_exp_; }

 private:
  int min_exp_;
  int max_exp_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  /// Exponent bounds apply on creation only; later lookups reuse the
  /// existing histogram. Defaults cover ~1 ns .. ~1100 s (seconds units).
  Log2Histogram& histogram(const std::string& name, int min_exp = -30,
                           int max_exp = 10);

  /// Null if the name is unknown (lookup without creation).
  const Counter* find_counter(const std::string& name) const;
  const Log2Histogram* find_histogram(const std::string& name) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> histogram_names() const;

  /// {"counters":{name:value,...},"histograms":{name:{...},...}} —
  /// deterministic (names sorted by the underlying map).
  std::string to_json() const;

  void reset();

  /// Process-wide registry used by layers without an injection path.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Log2Histogram>> histograms_;
};

}  // namespace rdmc::obs
