#include "obs/slo.hpp"

#include <cstdio>

namespace rdmc::obs {

namespace {

// Burn rate of one merged window: violating-fraction / budget.
double burn_rate(const HistogramSnapshot& s, double threshold, double budget) {
  if (s.empty() || budget <= 0.0) return 0.0;
  const double frac = s.count_above(threshold) / static_cast<double>(s.total);
  return frac / budget;
}

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
}

}  // namespace

SloTracker::SloTracker(std::vector<SloObjective> objectives) {
  states_.reserve(objectives.size());
  for (auto& o : objectives) {
    SloState st;
    st.objective = std::move(o);
    states_.push_back(std::move(st));
  }
}

void SloTracker::attach(TelemetryHub& hub) {
  hub.add_tick_listener([this, &hub](const TelemetryWindow& w) {
    evaluate(hub, w);
  });
}

void SloTracker::evaluate(const TelemetryHub& hub, const TelemetryWindow& w) {
  for (SloState& st : states_) {
    const SloObjective& o = st.objective;

    // Ledger: this window's delta only (each sample counted once).
    auto it = w.histograms.find(o.histogram);
    if (it != w.histograms.end() && !it->second.empty()) {
      st.violating += it->second.count_above(o.threshold);
      st.total += static_cast<double>(it->second.total);
    }

    const HistogramSnapshot fast = hub.merged(o.histogram, o.fast_windows);
    const HistogramSnapshot slow = hub.merged(o.histogram, o.slow_windows);
    st.fast_value = fast.quantile(o.quantile);
    st.slow_value = slow.quantile(o.quantile);
    st.fast_burn = burn_rate(fast, o.threshold, o.budget);
    st.slow_burn = burn_rate(slow, o.threshold, o.budget);

    const bool now_alerting =
        st.fast_burn >= o.alert_burn && st.slow_burn >= o.alert_burn;
    const bool rising = now_alerting && !st.alerting;
    st.alerting = now_alerting;
    if (rising) {
      ++st.alerts;
      for (const AlertListener& listener : alert_listeners_) listener(st, w);
    }
  }
}

void SloTracker::add_alert_listener(AlertListener listener) {
  alert_listeners_.push_back(std::move(listener));
}

std::string SloTracker::ledger_json() const {
  char buf[128];
  std::string out = "{\"objectives\":[";
  bool first = true;
  for (const SloState& st : states_) {
    const SloObjective& o = st.objective;
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, o.name);
    out += "\",\"histogram\":\"";
    append_escaped(out, o.histogram);
    std::snprintf(buf, sizeof buf,
                  "\",\"quantile\":%.9g,\"threshold\":%.9g,\"budget\":%.9g",
                  o.quantile, o.threshold, o.budget);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ",\"fast_value\":%.9g,\"slow_value\":%.9g", st.fast_value,
                  st.slow_value);
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"fast_burn\":%.9g,\"slow_burn\":%.9g",
                  st.fast_burn, st.slow_burn);
    out += buf;
    std::snprintf(buf, sizeof buf,
                  ",\"violating\":%.9g,\"total\":%.9g,"
                  "\"budget_consumed\":%.9g",
                  st.violating, st.total, st.budget_consumed());
    out += buf;
    std::snprintf(buf, sizeof buf, ",\"alerts\":%llu,\"alerting\":%s}",
                  static_cast<unsigned long long>(st.alerts),
                  st.alerting ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

}  // namespace rdmc::obs
