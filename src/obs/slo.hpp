// SLO tracker: declarative latency objectives evaluated per telemetry tick
// with multi-window burn-rate alerting and an error-budget ledger.
//
// An objective says "quantile q of histogram H must stay below T over a
// window of W ticks, with an error budget of B" (B = the fraction of
// samples allowed above T — e.g. 0.01 for a 99%-within-threshold SLO).
// On every tick the tracker merges the newest fast_windows and
// slow_windows histogram deltas from the hub and computes, for each:
//
//     burn = (samples above T / total samples) / B
//
// burn == 1 means the budget is being consumed exactly at the sustainable
// rate; burn == 20 means a month's budget burns in ~1.5 days. Following
// the standard multi-window pattern, an alert fires only when BOTH the
// fast and the slow burn rate exceed alert_burn — the fast window makes
// the alert responsive, the slow window keeps a short blip from paging.
//
// The ledger accumulates (violating, total) sample counts over the whole
// run from the per-window deltas, so budget_consumed() reports how much
// of the error budget the run has spent regardless of window rotation.
// Violating counts are fractional: samples inside the bucket straddling
// the threshold are attributed by linear interpolation, matching
// HistogramSnapshot::count_above.
//
// Evaluation is pure arithmetic on snapshots — deterministic under a
// virtual-time tick source — and runs on the ticking thread via
// attach(hub). Alert listeners see rising edges only (hook the flight
// recorder there).
//
// Thread-safety: none, by design (DESIGN.md §11). All state is mutated
// only from the tick-listener callback, which the hub invokes on the
// single ticking thread with no hub lock held; readers (report printing)
// run after ticking stops. Adding a mutex here would only mask misuse.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"

namespace rdmc::obs {

struct SloObjective {
  std::string name;       // e.g. "delivery-p99"
  std::string histogram;  // registry histogram the objective watches
  double quantile = 0.99;
  double threshold = 0.0;          // seconds; objective: q(quantile) < threshold
  std::size_t fast_windows = 4;    // burn-rate fast window, in ticks
  std::size_t slow_windows = 16;   // burn-rate slow window, in ticks
  double budget = 0.01;            // allowed fraction of samples above threshold
  double alert_burn = 2.0;         // alert when BOTH burn rates reach this
};

struct SloState {
  SloObjective objective;

  // Latest evaluation.
  double fast_value = 0.0;  // measured quantile over the fast window
  double slow_value = 0.0;  // measured quantile over the slow window
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  bool alerting = false;
  std::uint64_t alerts = 0;  // rising edges into the alerting state

  // Error-budget ledger (cumulative over the run; fractional counts).
  double violating = 0.0;  // samples above threshold
  double total = 0.0;      // all samples

  /// Fraction of the error budget spent: 1.0 = exactly exhausted.
  double budget_consumed() const {
    return total > 0.0 ? violating / (objective.budget * total) : 0.0;
  }
};

class SloTracker {
 public:
  using AlertListener =
      std::function<void(const SloState&, const TelemetryWindow&)>;

  explicit SloTracker(std::vector<SloObjective> objectives);

  /// Register as a tick listener on `hub`. The tracker (and any alert
  /// listeners) must outlive the hub's ticking.
  void attach(TelemetryHub& hub);

  /// Evaluate all objectives against the hub's windows after `w` closed.
  /// attach() wires this up; tests may call it directly.
  void evaluate(const TelemetryHub& hub, const TelemetryWindow& w);

  /// Fired on rising edges only (entering the alerting state).
  void add_alert_listener(AlertListener listener);

  const std::vector<SloState>& states() const { return states_; }

  /// Deterministic JSON ledger: per-objective burn rates, budget
  /// consumption and alert counts.
  std::string ledger_json() const;

 private:
  std::vector<SloState> states_;
  std::vector<AlertListener> alert_listeners_;
};

}  // namespace rdmc::obs
