#include "obs/stall.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>

namespace rdmc::obs {

namespace {

constexpr double kEps = 1e-15;

bool name_is(const TraceEvent& e, const char* name) {
  return std::strcmp(e.name, name) == 0;
}

bool group_of_id(std::uint64_t id, std::int32_t group) {
  return (id >> 48) ==
         static_cast<std::uint64_t>(static_cast<std::uint16_t>(group));
}

struct PostInfo {
  double ts = 0.0;
  std::uint64_t qp = 0;
  std::uint64_t wr = 0;
  bool valid = false;
};

struct XferSpan {
  double begin = 0.0;
  double end = 0.0;
  bool has_begin = false;
  bool has_end = false;
};

enum class Cls : std::uint8_t { kTransfer, kWait, kSoftware };

struct Seg {
  double lo = 0.0;
  double hi = 0.0;
  Cls cls = Cls::kWait;
  std::uint32_t src = 0;  // transfer: link endpoints; others: owner node
  std::uint32_t dst = 0;
};

struct Window {
  double lo = 0.0;
  double hi = 1e300;  // still active at trace end
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Indexes over one group's trace (single message analyzed at a time).
struct Index {
  double msg_start = 0.0;
  bool have_start = false;
  std::map<std::uint32_t, double> msg_done;  // node -> delivery ts
  // (node, block) -> arrival ts / source of the arrival.
  std::map<std::pair<std::uint32_t, std::uint64_t>, double> recv_ts;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint32_t> recv_src;
  // (src, block, dst) -> post / send-completion info.
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>, PostInfo>
      post;
  std::map<std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>, double>
      send_done;
  // Sender-side (qp, wr) -> wire span.
  std::map<std::pair<std::uint64_t, std::uint64_t>, XferSpan> xfer;
  std::vector<Window> degrades;
  std::vector<Window> slows;
  std::vector<Window> recoveries;
};

Index build_index(const std::vector<TraceEvent>& events, std::int32_t group,
                  std::uint32_t root, std::uint64_t seq) {
  Index ix;
  const std::uint64_t msg_id = msg_span_id(group, seq);
  std::map<std::uint64_t, std::size_t> open_degrades, open_slows,
      open_recoveries;
  for (const TraceEvent& e : events) {
    switch (e.cat) {
      case Cat::kCore: {
        if (name_is(e, "msg")) {
          if (e.id != msg_id) break;
          if (e.phase == Phase::kBegin && e.node == root) {
            ix.msg_start = e.ts;
            ix.have_start = true;
          } else if (e.phase == Phase::kEnd) {
            ix.msg_done[e.node] = e.ts;
          }
        } else if (name_is(e, "block")) {
          if (!group_of_id(e.id, group)) break;
          if (e.phase == Phase::kBegin) {
            // Sender posted block a[0] toward a[1] on qp a[2], wr a[3].
            ix.post[{e.node, e.a[0], static_cast<std::uint32_t>(e.a[1])}] =
                PostInfo{e.ts, e.a[2], e.a[3], true};
          } else if (e.phase == Phase::kEnd) {
            // Receiver got block a[0] from a[1].
            ix.recv_ts[{e.node, e.a[0]}] = e.ts;
            ix.recv_src[{e.node, e.a[0]}] =
                static_cast<std::uint32_t>(e.a[1]);
          }
        } else if (name_is(e, "send.done")) {
          if (!group_of_id(e.id, group)) break;
          ix.send_done[{e.node, e.a[0],
                        static_cast<std::uint32_t>(e.a[1])}] = e.ts;
        }
        break;
      }
      case Cat::kFabric: {
        if (name_is(e, "xfer")) {
          if (e.phase == Phase::kBegin) {
            XferSpan& s = ix.xfer[{e.a[2], e.a[3]}];
            s.begin = e.ts;
            s.has_begin = true;
          } else if (e.phase == Phase::kEnd) {
            XferSpan& s = ix.xfer[{e.a[0], e.a[1]}];
            s.end = e.ts;
            s.has_end = true;
          }
        } else if (name_is(e, "fault.degrade")) {
          if (e.phase == Phase::kBegin) {
            open_degrades[e.id] = ix.degrades.size();
            ix.degrades.push_back(
                Window{e.ts, 1e300, static_cast<std::uint32_t>(e.a[0]),
                       static_cast<std::uint32_t>(e.a[1])});
          } else if (e.phase == Phase::kEnd) {
            auto it = open_degrades.find(e.id);
            if (it != open_degrades.end()) {
              ix.degrades[it->second].hi = e.ts;
              open_degrades.erase(it);
            }
          }
        } else if (name_is(e, "fault.slow")) {
          if (e.phase == Phase::kBegin) {
            open_slows[e.id] = ix.slows.size();
            ix.slows.push_back(Window{
                e.ts, 1e300, static_cast<std::uint32_t>(e.a[0]), 0});
          } else if (e.phase == Phase::kEnd) {
            auto it = open_slows.find(e.id);
            if (it != open_slows.end()) {
              ix.slows[it->second].hi = e.ts;
              open_slows.erase(it);
            }
          }
        }
        break;
      }
      case Cat::kRecovery: {
        // "epoch" spans cover whole group lifetimes (visualization); only
        // the failure-to-reform "recovery" windows reclassify time.
        if (name_is(e, "recovery")) {
          if (e.phase == Phase::kBegin) {
            open_recoveries[e.id] = ix.recoveries.size();
            ix.recoveries.push_back(Window{e.ts, 1e300, 0, 0});
          } else if (e.phase == Phase::kEnd) {
            auto it = open_recoveries.find(e.id);
            if (it != open_recoveries.end()) {
              ix.recoveries[it->second].hi = e.ts;
              open_recoveries.erase(it);
            }
          }
        }
        break;
      }
      default:
        break;
    }
  }
  return ix;
}

/// Total overlap between [lo, hi] and the given windows (windows may
/// overlap each other; overlapping parts are counted once).
double overlap_once(double lo, double hi, std::vector<Window> windows) {
  if (hi <= lo || windows.empty()) return 0.0;
  std::sort(windows.begin(), windows.end(),
            [](const Window& x, const Window& y) { return x.lo < y.lo; });
  double covered = 0.0;
  double cursor = lo;
  for (const Window& w : windows) {
    const double wlo = std::max(w.lo, cursor);
    const double whi = std::min(w.hi, hi);
    if (whi > wlo) {
      covered += whi - wlo;
      cursor = whi;
    }
    if (cursor >= hi) break;
  }
  return covered;
}

/// Attribute one tiled segment into the breakdown, peeling recovery
/// windows first, then applicable injected-fault windows.
void account(StallBreakdown& out, const Seg& seg, const Index& ix) {
  double len = seg.hi - seg.lo;
  if (len <= 0.0) return;
  const double rec = overlap_once(seg.lo, seg.hi, ix.recoveries);
  out.recovery_s += rec;
  len -= rec;
  if (len <= 0.0) return;

  std::vector<Window> applicable;
  if (seg.cls == Cls::kTransfer) {
    for (const Window& w : ix.degrades) {
      const bool same_link = (w.a == seg.src && w.b == seg.dst) ||
                             (w.a == seg.dst && w.b == seg.src);
      if (same_link) applicable.push_back(w);
    }
  } else {
    // wait/software segments owned by a slowed node's software path
    for (const Window& w : ix.slows) {
      if (w.a == seg.src) applicable.push_back(w);
    }
  }
  // Injected overlap is measured on the un-peeled interval; cap by the
  // non-recovery remainder so the classes still sum to the segment length.
  double inj = overlap_once(seg.lo, seg.hi, std::move(applicable));
  inj = std::min(inj, len);
  out.injected_s += inj;
  len -= inj;
  if (len <= 0.0) return;
  switch (seg.cls) {
    case Cls::kTransfer: out.transfer_s += len; break;
    case Cls::kWait: out.wait_s += len; break;
    case Cls::kSoftware: out.software_s += len; break;
  }
}

}  // namespace

MulticastAnalysis analyze_multicast(const std::vector<TraceEvent>& events,
                                    std::int32_t group,
                                    const std::vector<std::uint32_t>& members,
                                    std::size_t seq) {
  MulticastAnalysis analysis;
  if (members.empty()) {
    analysis.warnings.push_back("empty member list");
    return analysis;
  }
  const std::uint32_t root = members.front();
  const Index ix = build_index(events, group, root, seq);
  if (!ix.have_start) {
    analysis.warnings.push_back("no message-start event for the root "
                                "(trace ring too small or wrong group/seq?)");
    return analysis;
  }
  analysis.msg_start = ix.msg_start;
  const double t0 = ix.msg_start;

  for (std::size_t m = 1; m < members.size(); ++m) {
    const std::uint32_t r = members[m];
    StallBreakdown bd;
    bd.node = r;
    auto done_it = ix.msg_done.find(r);
    if (done_it == ix.msg_done.end()) {
      analysis.warnings.push_back("receiver " + std::to_string(r) +
                                  " has no delivery event");
      continue;
    }
    const double t_d = done_it->second;
    bd.latency_s = t_d - t0;

    std::vector<Seg> segments;
    // `cursor` is the tiling frontier: every appended segment ends exactly
    // where the previous one began, so the class sums reproduce latency_s.
    double cursor = t_d;
    auto push = [&](double lo, Cls cls, std::uint32_t src,
                    std::uint32_t dst) {
      lo = std::min(std::max(lo, t0), cursor);
      segments.push_back(Seg{lo, cursor, cls, src, dst});
      cursor = lo;
    };

    // Initial anchor: the last core event at r (a block arrival or one of
    // r's own relay-send completions) is what let finish_message run.
    bool anchor_is_recv = true;
    std::uint64_t anchor_block = 0;
    std::uint32_t anchor_peer = 0;  // recv: source; send.done: destination
    double anchor_ts = -1.0;
    for (const auto& [key, ts] : ix.recv_ts) {
      if (key.first == r && ts <= t_d + kEps && ts > anchor_ts) {
        anchor_ts = ts;
        anchor_is_recv = true;
        anchor_block = key.second;
        anchor_peer = ix.recv_src.at(key);
      }
    }
    for (const auto& [key, ts] : ix.send_done) {
      if (std::get<0>(key) == r && ts <= t_d + kEps && ts > anchor_ts) {
        anchor_ts = ts;
        anchor_is_recv = false;
        anchor_block = std::get<1>(key);
        anchor_peer = std::get<2>(key);
      }
    }
    if (anchor_ts < 0.0) {
      analysis.warnings.push_back("receiver " + std::to_string(r) +
                                  " has no block events");
      push(t0, Cls::kWait, r, r);
      for (const Seg& s : segments) account(bd, s, ix);
      analysis.receivers.push_back(bd);
      continue;
    }

    // Walk the causal chain back to the root's message start. Each hop
    // tiles [avail(block at sender), anchor] with software / transfer /
    // wait segments and then recurses on how the sender got the block.
    std::uint32_t cur = r;
    bool terminated = false;
    while (!terminated) {
      ++bd.hops;
      // Hop endpoints: the block moved send_node -> recv-side observer.
      const std::uint32_t send_node = anchor_is_recv ? anchor_peer : cur;
      const std::uint32_t recv_node = anchor_is_recv ? cur : anchor_peer;
      const auto post_key =
          std::make_tuple(send_node, anchor_block, recv_node);
      auto post_it = ix.post.find(post_key);
      if (post_it == ix.post.end() || !post_it->second.valid) {
        analysis.warnings.push_back(
            "no post event for block " + std::to_string(anchor_block) +
            " hop " + std::to_string(send_node) + "->" +
            std::to_string(recv_node));
        push(t0, Cls::kWait, send_node, recv_node);
        break;
      }
      const PostInfo& post = post_it->second;
      double xs = post.ts, xe = anchor_ts;
      auto xfer_it = ix.xfer.find({post.qp, post.wr});
      if (xfer_it != ix.xfer.end() && xfer_it->second.has_begin &&
          xfer_it->second.has_end) {
        xs = xfer_it->second.begin;
        xe = xfer_it->second.end;
      } else {
        analysis.warnings.push_back(
            "no fabric xfer span for block " + std::to_string(anchor_block) +
            " hop " + std::to_string(send_node) + "->" +
            std::to_string(recv_node));
      }
      // anchor_ts >= xe >= xs >= post.ts by causality; push clamps any
      // floating-point inversions so the tiling stays exact.
      push(xe, Cls::kSoftware, anchor_is_recv ? recv_node : send_node, 0);
      push(xs, Cls::kTransfer, send_node, recv_node);
      push(post.ts, Cls::kWait, send_node, recv_node);

      if (send_node == root) {
        // The root holds every block from the message start.
        push(t0, Cls::kWait, send_node, recv_node);
        terminated = true;
        break;
      }
      auto avail_it = ix.recv_ts.find({send_node, anchor_block});
      if (avail_it == ix.recv_ts.end()) {
        analysis.warnings.push_back(
            "no arrival event for block " + std::to_string(anchor_block) +
            " at relay " + std::to_string(send_node));
        push(t0, Cls::kWait, send_node, recv_node);
        break;
      }
      // Gap between the relay acquiring the block and posting it onward:
      // peer-not-ready (credit) wait.
      push(avail_it->second, Cls::kWait, send_node, recv_node);
      // Continue with how the relay itself received the block.
      cur = send_node;
      anchor_is_recv = true;
      anchor_ts = avail_it->second;
      anchor_peer = ix.recv_src.at({send_node, anchor_block});
    }

    for (const Seg& s : segments) account(bd, s, ix);
    analysis.receivers.push_back(bd);
  }
  return analysis;
}

std::vector<StepRow> step_profile(const std::vector<TraceEvent>& events,
                                  std::int32_t group, std::uint32_t node,
                                  bool sender_side) {
  const Index ix = build_index(events, group, node, 0);
  // Completion cadence: (ts, wire duration) per step.
  std::vector<std::pair<double, double>> steps;
  if (sender_side) {
    for (const auto& [key, ts] : ix.send_done) {
      if (std::get<0>(key) != node) continue;
      const auto post_it = ix.post.find(key);
      double dur = 0.0;
      if (post_it != ix.post.end()) {
        const auto xfer_it =
            ix.xfer.find({post_it->second.qp, post_it->second.wr});
        if (xfer_it != ix.xfer.end() && xfer_it->second.has_begin &&
            xfer_it->second.has_end)
          dur = xfer_it->second.end - xfer_it->second.begin;
      }
      steps.push_back({ts, dur});
    }
  } else {
    for (const auto& [key, ts] : ix.recv_ts) {
      if (key.first != node) continue;
      const std::uint32_t src = ix.recv_src.at(key);
      const auto post_it = ix.post.find({src, key.second, node});
      double dur = 0.0;
      if (post_it != ix.post.end()) {
        const auto xfer_it =
            ix.xfer.find({post_it->second.qp, post_it->second.wr});
        if (xfer_it != ix.xfer.end() && xfer_it->second.has_begin &&
            xfer_it->second.has_end)
          dur = xfer_it->second.end - xfer_it->second.begin;
      }
      steps.push_back({ts, dur});
    }
  }
  std::sort(steps.begin(), steps.end());
  std::vector<StepRow> rows;
  for (std::size_t i = 1; i < steps.size(); ++i) {
    const double gap = steps[i].first - steps[i - 1].first;
    const double transfer = std::min(gap, steps[i].second);
    rows.push_back(StepRow{steps[i].first, transfer * 1e6,
                           (gap - transfer) * 1e6});
  }
  return rows;
}

}  // namespace rdmc::obs
