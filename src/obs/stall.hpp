// Critical-path stall analyzer.
//
// Walks the block dependency graph of a finished multicast, reconstructed
// from the unified trace, and attributes each receiver's delivery latency
// to where the time actually went. This replaces fig5's windowed-median
// heuristic with an exact answer: the chain of events that *caused* a
// receiver's delivery is walked backwards hop by hop — delivery <- last
// block/send completion <- wire transfer <- sender's post <- sender's own
// acquisition of that block <- ... <- the root's message start — and every
// interval on that chain is classified. The segments tile the interval
// [root message start, receiver delivery] exactly, so the per-class sums
// add up to the measured delivery latency by construction.
//
// Classes:
//   * transfer — a block's bytes were on the wire (fabric xfer spans);
//   * wait     — the sender held the block but had not handed it to the
//                NIC (peer-not-ready: missing ready-for-block credit, or
//                per-QP FIFO behind earlier blocks);
//   * software — post-to-wire queueing at the NIC plus completion pickup
//                and handler execution (Table 1's "Waiting"/CPU rows);
//   * injected — portions of the above that fall inside an injected fault
//                window (degrade_link on the hop's link, slow_node on the
//                hop's node) — the chaos campaigns' "which link degrade
//                stalled which block" question;
//   * recovery — portions inside a §4.6 recovery epoch (failure detected
//                to group re-formed).
//
// Scope: one group, one message (pass the sequence number for multi-message
// runs). The trace must cover the whole message — size the recorder ring
// accordingly (a dropped-events warning is emitted otherwise).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rdmc::obs {

struct StallBreakdown {
  std::uint32_t node = 0;  // receiver
  double latency_s = 0.0;  // root message start -> this node's delivery
  double transfer_s = 0.0;
  double wait_s = 0.0;
  double software_s = 0.0;
  double injected_s = 0.0;
  double recovery_s = 0.0;
  std::size_t hops = 0;  // chain length (blocks crossed)
  double sum() const {
    return transfer_s + wait_s + software_s + injected_s + recovery_s;
  }
};

struct MulticastAnalysis {
  double msg_start = 0.0;  // root's message-start instant
  std::vector<StallBreakdown> receivers;
  std::vector<std::string> warnings;  // missing/unmatched trace events
  bool ok() const { return warnings.empty(); }
};

/// Attribute delivery latency for every non-root member of `members` for
/// message `seq` of `group`. `events` is a TraceRecorder snapshot.
MulticastAnalysis analyze_multicast(const std::vector<TraceEvent>& events,
                                    std::int32_t group,
                                    const std::vector<std::uint32_t>& members,
                                    std::size_t seq = 0);

/// Per-step transfer/wait profile for one node (Fig 5): the exact wire
/// time of each successive completion on the node's cadence (send
/// completions for the sender, block arrivals for a relayer), with the
/// remainder of each inter-completion gap reported as wait.
struct StepRow {
  double when_s = 0.0;
  double transfer_us = 0.0;
  double wait_us = 0.0;
};
std::vector<StepRow> step_profile(const std::vector<TraceEvent>& events,
                                  std::int32_t group, std::uint32_t node,
                                  bool sender_side);

// -- Trace schema helpers (shared by the emitting hook points) -------------

/// Span id for one block's hop src -> dst within a group.
inline std::uint64_t block_span_id(std::int32_t group, std::uint64_t block,
                                   std::uint32_t src, std::uint32_t dst) {
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(group))
          << 48) |
         ((block & 0xFFFFull) << 32) |
         (static_cast<std::uint64_t>(src & 0xFFFFu) << 16) |
         (dst & 0xFFFFu);
}

/// Span id for one message of a group.
inline std::uint64_t msg_span_id(std::int32_t group, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(group))
          << 32) |
         (seq & 0xFFFFFFFFull);
}

/// Span id for one fabric-level transfer (sender-side qp + wr).
inline std::uint64_t xfer_span_id(std::uint64_t qp, std::uint64_t wr) {
  return (qp << 24) ^ (wr & 0xFFFFFFull);
}

}  // namespace rdmc::obs
