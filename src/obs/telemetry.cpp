#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdio>

#include "obs/trace.hpp"

namespace rdmc::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
}

}  // namespace

TelemetryHub::TelemetryHub(MetricsRegistry& registry, TelemetryOptions options)
    : registry_(registry), options_(std::move(options)) {}

TelemetryHub::~TelemetryHub() { stop_wall_ticks(); }

void TelemetryHub::tick(double now) {
  TelemetryWindow window;
  std::vector<TickListener> listeners;
  {
    util::MutexLock lock(mutex_);
    window.seq = ticks_;
    window.t_start = ticks_ == 0 ? now : last_tick_t_;
    window.t_end = now;

    for (const std::string& name : registry_.counter_names()) {
      const Counter* c = registry_.find_counter(name);
      if (c == nullptr) continue;
      const std::uint64_t value = c->value();
      auto [it, fresh] = prev_counters_.try_emplace(name, 0);
      TelemetryWindow::CounterSample sample;
      sample.value = value;
      if (value < it->second) {
        sample.reset = true;  // counter restarted mid-window
        sample.delta = value;
      } else {
        sample.delta = value - it->second;
      }
      (void)fresh;
      it->second = value;
      window.counters.emplace(name, sample);
    }

    for (const std::string& name : registry_.histogram_names()) {
      const Log2Histogram* h = registry_.find_histogram(name);
      if (h == nullptr) continue;
      const HistogramSnapshot cur = h->snapshot();
      auto [it, fresh] = prev_histograms_.try_emplace(name);
      window.histograms.emplace(name,
                                HistogramSnapshot::delta(cur, it->second));
      (void)fresh;
      it->second = cur;
    }

    windows_.push_back(window);
    while (windows_.size() > options_.window_depth) windows_.pop_front();
    ++ticks_;
    last_tick_t_ = now;
    if (options_.collect_jsonl) append_jsonl(window);
    // Copy the listener list so the callbacks run without the hub lock —
    // reading listeners_ here also races with add_tick_listener otherwise.
    listeners = listeners_;
  }
  if (auto* tr = tracer())
    tr->instant(Cat::kApp, "telemetry.tick", 0, now, "seq", window.seq);
  for (const TickListener& listener : listeners) listener(window);
}

std::uint64_t TelemetryHub::ticks() const {
  util::MutexLock lock(mutex_);
  return ticks_;
}

std::vector<TelemetryWindow> TelemetryHub::windows() const {
  util::MutexLock lock(mutex_);
  return {windows_.begin(), windows_.end()};
}

TelemetryWindow TelemetryHub::last_window() const {
  util::MutexLock lock(mutex_);
  return windows_.empty() ? TelemetryWindow{} : windows_.back();
}

HistogramSnapshot TelemetryHub::merged(const std::string& histogram,
                                       std::size_t n) const {
  util::MutexLock lock(mutex_);
  HistogramSnapshot out;
  if (windows_.empty() || n == 0) return out;
  const std::size_t take = std::min(n, windows_.size());
  for (std::size_t i = windows_.size() - take; i < windows_.size(); ++i) {
    auto it = windows_[i].histograms.find(histogram);
    if (it != windows_[i].histograms.end()) out.merge(it->second);
  }
  return out;
}

void TelemetryHub::add_tick_listener(TickListener listener) {
  util::MutexLock lock(mutex_);
  listeners_.push_back(std::move(listener));
}

std::string window_json(const TelemetryWindow& w, const std::string& labels) {
  char buf[96];
  std::string out;
  std::snprintf(buf, sizeof buf, "{\"seq\":%llu,\"t\":%.9g",
                static_cast<unsigned long long>(w.seq), w.t_end);
  out += buf;
  if (!labels.empty()) {
    out += ",\"labels\":\"";
    append_escaped(out, labels);
    out.push_back('"');
  }
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : w.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, name);
    std::snprintf(buf, sizeof buf, "\":{\"v\":%llu,\"d\":%llu",
                  static_cast<unsigned long long>(c.value),
                  static_cast<unsigned long long>(c.delta));
    out += buf;
    if (c.reset) out += ",\"reset\":true";
    out.push_back('}');
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : w.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    append_escaped(out, name);
    std::snprintf(buf, sizeof buf, "\":{\"n\":%llu",
                  static_cast<unsigned long long>(h.total));
    out += buf;
    if (h.total > 0) {
      std::snprintf(buf, sizeof buf, ",\"mean\":%.9g,\"max\":%.9g", h.mean(),
                    h.max);
      out += buf;
      std::snprintf(buf, sizeof buf, ",\"p50\":%.9g,\"p90\":%.9g",
                    h.quantile(0.5), h.quantile(0.9));
      out += buf;
      std::snprintf(buf, sizeof buf, ",\"p99\":%.9g,\"p999\":%.9g",
                    h.quantile(0.99), h.quantile(0.999));
      out += buf;
      std::snprintf(buf, sizeof buf, ",\"uf\":%llu,\"of\":%llu",
                    static_cast<unsigned long long>(h.underflow),
                    static_cast<unsigned long long>(h.overflow));
      out += buf;
    }
    out.push_back('}');
  }
  out += "}}";
  return out;
}

void TelemetryHub::append_jsonl(const TelemetryWindow& w) {
  jsonl_ += window_json(w, options_.labels);
  jsonl_.push_back('\n');
}

std::string TelemetryHub::jsonl() const {
  util::MutexLock lock(mutex_);
  return jsonl_;
}

std::string TelemetryHub::prometheus_text() const {
  return registry_.to_prometheus();
}

void TelemetryHub::wall_loop(double period_s) {
  const auto period = std::chrono::duration<double>(period_s);
  util::MutexLock lock(wall_mutex_);
  while (true) {
    // Desugared timed predicate wait: sleep until the next tick deadline or
    // until stop is requested, whichever comes first.
    const auto deadline = std::chrono::steady_clock::now() + period;
    while (!wall_stop_) {
      if (wall_cv_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;
    }
    if (wall_stop_) return;
    lock.unlock();  // tick() takes mutex_; never hold wall_mutex_ across it
    tick(wall_seconds());
    lock.lock();
  }
}

void TelemetryHub::start_wall_ticks(double period_s) {
  stop_wall_ticks();
  {
    util::MutexLock lock(wall_mutex_);
    wall_stop_ = false;
  }
  wall_thread_ = std::thread([this, period_s] { wall_loop(period_s); });
}

void TelemetryHub::stop_wall_ticks() {
  {
    util::MutexLock lock(wall_mutex_);
    wall_stop_ = true;
  }
  wall_cv_.notify_all();
  if (wall_thread_.joinable()) wall_thread_.join();
}

}  // namespace rdmc::obs
