// TelemetryHub: windowed time-series over a MetricsRegistry.
//
// The registry is cumulative — one number per counter, one distribution
// per histogram, for the whole run. The hub turns that into a live
// time-series: every tick it snapshots all registered counters and
// histograms, differences them against the previous tick, and keeps the
// per-window deltas (counter delta-rates, per-window histogram quantiles)
// in a fixed-depth rolling window ring. Consumers:
//
//   * JSONL export — one deterministic line per tick, accumulated in
//     memory and written by the bench (`--telemetry out.jsonl`). Under a
//     virtual-time tick source the bytes are identical for any --jobs N.
//   * Prometheus text exposition — the cumulative registry state in the
//     standard scrape format, for the future service daemon.
//   * Tick listeners — the SLO tracker and anything else that wants the
//     freshly rotated window (invoked after the window is committed,
//     outside the hub lock).
//
// Tick sources. The hub itself never decides when "now" is:
//   * sim fabrics — harness::TelemetryTicker schedules a self-rescheduling
//     event on the virtual clock, so ticks land at exact deterministic
//     virtual instants and the exported JSONL is byte-stable;
//   * mem/tcp fabrics — start_wall_ticks() runs a background thread that
//     ticks on the host clock (inherently non-deterministic; the JSONL is
//     still valid, just not byte-comparable across runs).
//
// Thread-safety: tick() and every accessor lock the hub; counters are
// atomics and histograms lock internally, so a wall-clock tick thread can
// snapshot while fabric completion threads record.
//
// Lock hierarchy (DESIGN.md §11): `mutex_` (hub state) and `wall_mutex_`
// (wall-ticker control) are never held together — the wall thread releases
// wall_mutex_ before calling tick(), and tick() releases mutex_ before
// invoking listeners. Histogram locks nest strictly inside mutex_ (the
// snapshot loop in tick()); nothing is acquired while a histogram lock is
// held.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace rdmc::obs {

struct TelemetryOptions {
  /// Rolling windows kept (oldest evicted). SLO burn-rate windows must
  /// fit inside this depth.
  std::size_t window_depth = 64;
  /// Free-form labels stamped on every JSONL line (e.g. "cell=3,loss=1%").
  std::string labels;
  /// Accumulate the JSONL export in memory (off for long-running daemons
  /// that only scrape the prometheus endpoint).
  bool collect_jsonl = true;
};

/// One closed telemetry window: everything that changed between two ticks.
struct TelemetryWindow {
  std::uint64_t seq = 0;       // tick ordinal, 0-based
  double t_start = 0.0;        // previous tick's timestamp (0 for first)
  double t_end = 0.0;          // this tick's timestamp

  struct CounterSample {
    std::uint64_t value = 0;   // cumulative at t_end
    std::uint64_t delta = 0;   // increase within the window
    bool reset = false;        // value shrank (delta restarts from value)
  };
  std::map<std::string, CounterSample> counters;
  /// Per-window histogram deltas (samples recorded within the window).
  std::map<std::string, HistogramSnapshot> histograms;
};

/// One window as a JSON object — the exact JSONL line shape (no trailing
/// newline). Shared by the hub's export and the flight recorder's
/// incident "window context" embedding.
std::string window_json(const TelemetryWindow& w,
                        const std::string& labels = "");

class TelemetryHub {
 public:
  using TickListener = std::function<void(const TelemetryWindow&)>;

  explicit TelemetryHub(MetricsRegistry& registry,
                        TelemetryOptions options = {});
  ~TelemetryHub();

  TelemetryHub(const TelemetryHub&) = delete;
  TelemetryHub& operator=(const TelemetryHub&) = delete;

  /// Close the current window at timestamp `now` (virtual or wall seconds,
  /// the tick source's clock) and notify listeners. Listeners run after the
  /// window is committed, with no hub lock held.
  void tick(double now) RDMC_EXCLUDES(mutex_);

  std::uint64_t ticks() const;
  /// Rolling windows, oldest first (copies; the ring keeps rotating).
  std::vector<TelemetryWindow> windows() const;
  /// The most recently closed window (empty default if never ticked).
  TelemetryWindow last_window() const;

  /// Merged histogram delta over the newest min(n, depth) windows —
  /// the "p99 over window W" input for SLO evaluation.
  HistogramSnapshot merged(const std::string& histogram,
                           std::size_t n) const;

  /// Listeners run on every tick, after the window is committed, outside
  /// the hub lock, on the ticking thread. Register before ticking starts.
  void add_tick_listener(TickListener listener);

  /// Accumulated JSONL export (one line per tick). Deterministic given a
  /// deterministic tick source.
  std::string jsonl() const;

  /// Cumulative registry state in prometheus text exposition format.
  std::string prometheus_text() const;

  /// Wall-clock tick source for the threaded fabrics: a background thread
  /// calling tick(wall_seconds()) every `period_s`. stop_wall_ticks() (or
  /// destruction) joins it.
  void start_wall_ticks(double period_s);
  void stop_wall_ticks();

 private:
  void append_jsonl(const TelemetryWindow& w) RDMC_REQUIRES(mutex_);
  void wall_loop(double period_s) RDMC_EXCLUDES(mutex_, wall_mutex_);

  MetricsRegistry& registry_;
  TelemetryOptions options_;

  mutable util::Mutex mutex_;
  std::deque<TelemetryWindow> windows_ RDMC_GUARDED_BY(mutex_);
  std::map<std::string, std::uint64_t> prev_counters_ RDMC_GUARDED_BY(mutex_);
  std::map<std::string, HistogramSnapshot> prev_histograms_
      RDMC_GUARDED_BY(mutex_);
  std::vector<TickListener> listeners_ RDMC_GUARDED_BY(mutex_);
  std::string jsonl_ RDMC_GUARDED_BY(mutex_);
  std::uint64_t ticks_ RDMC_GUARDED_BY(mutex_) = 0;
  double last_tick_t_ RDMC_GUARDED_BY(mutex_) = 0.0;

  /// Wall-ticker control. Never held together with mutex_ (see the lock
  /// hierarchy note above).
  util::Mutex wall_mutex_;
  util::CondVar wall_cv_;
  /// Started/joined only by the controlling thread (start/stop/destructor),
  /// which the TelemetryHub API requires to be a single thread.
  std::thread wall_thread_;
  bool wall_stop_ RDMC_GUARDED_BY(wall_mutex_) = false;
};

}  // namespace rdmc::obs
