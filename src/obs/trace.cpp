#include "obs/trace.hpp"

#include <chrono>

namespace rdmc::obs {

const char* cat_name(Cat cat) {
  switch (cat) {
    case Cat::kCore: return "core";
    case Cat::kFabric: return "fabric";
    case Cat::kSim: return "sim";
    case Cat::kRecovery: return "recovery";
    case Cat::kApp: return "app";
  }
  return "?";
}

thread_local TraceRecorder* TraceRecorder::tls_override_ = nullptr;

TraceRecorder& TraceRecorder::process_instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder& TraceRecorder::instance() {
  TraceRecorder* local = tls_override_;
  return local != nullptr ? *local : process_instance();
}

TraceRecorder::ThreadShard::ThreadShard() {
  TraceRecorder& process = process_instance();
  if (!process.enabled()) return;  // untraced runs: stay zero-overhead
  local_.reset(new TraceRecorder());
  Options options;
  options.capacity = process.capacity();
  local_->enable(options);
  prev_ = tls_override_;
  tls_override_ = local_.get();
}

TraceRecorder::ThreadShard::~ThreadShard() {
  if (local_) tls_override_ = prev_;
}

std::vector<TraceEvent> TraceRecorder::ThreadShard::take() {
  if (!local_) return {};
  std::vector<TraceEvent> out = local_->snapshot();
  local_->clear();
  return out;
}

std::size_t TraceRecorder::capacity() const {
  util::MutexLock lock(mutex_);
  return capacity_;
}

void TraceRecorder::absorb(const std::vector<TraceEvent>& events) {
  for (const TraceEvent& e : events) record(e);
}

void TraceRecorder::enable(Options options) {
  util::MutexLock lock(mutex_);
  capacity_ = options.capacity > 0 ? options.capacity : 1;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  recorded_ = 0;
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_release);
}

void TraceRecorder::clear() {
  util::MutexLock lock(mutex_);
  ring_.clear();
  head_ = 0;
  recorded_ = 0;
}

void TraceRecorder::record(const TraceEvent& e) {
  if (!enabled()) return;
  util::MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: [head_, end) then [0, head_).
  for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  return out;
}

std::uint64_t TraceRecorder::recorded() const {
  util::MutexLock lock(mutex_);
  return recorded_;
}

std::uint64_t TraceRecorder::dropped() const {
  util::MutexLock lock(mutex_);
  return recorded_ - ring_.size();
}

void TraceRecorder::begin(Cat cat, const char* name, std::uint32_t node,
                          std::uint64_t id, double ts, const char* keys,
                          std::uint64_t a0, std::uint64_t a1,
                          std::uint64_t a2, std::uint64_t a3) {
  record(TraceEvent{ts, name, keys, Phase::kBegin, cat, node, id,
                    {a0, a1, a2, a3}, 0.0});
}

void TraceRecorder::end(Cat cat, const char* name, std::uint32_t node,
                        std::uint64_t id, double ts, const char* keys,
                        std::uint64_t a0, std::uint64_t a1, std::uint64_t a2,
                        std::uint64_t a3) {
  record(TraceEvent{ts, name, keys, Phase::kEnd, cat, node, id,
                    {a0, a1, a2, a3}, 0.0});
}

void TraceRecorder::instant(Cat cat, const char* name, std::uint32_t node,
                            double ts, const char* keys, std::uint64_t a0,
                            std::uint64_t a1, std::uint64_t a2,
                            std::uint64_t a3) {
  record(TraceEvent{ts, name, keys, Phase::kInstant, cat, node, 0,
                    {a0, a1, a2, a3}, 0.0});
}

void TraceRecorder::counter(Cat cat, const char* name, std::uint32_t node,
                            double ts, double value) {
  record(TraceEvent{ts, name, nullptr, Phase::kCounter, cat, node, 0,
                    {0, 0, 0, 0}, value});
}

double wall_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return std::chrono::duration<double>(clock::now() - origin).count();
}

}  // namespace rdmc::obs
