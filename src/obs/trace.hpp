// Unified trace recorder: low-overhead structured events from every layer.
//
// One process-wide ring buffer of timestamped events with span support.
// Hook points in the core engine, all three fabrics, the simulator's flow
// network and the recovery driver emit here when tracing is enabled; the
// recorder is off by default and a disabled hook costs one relaxed atomic
// load. Events carry the timestamp their emitter lives in — virtual time on
// SimFabric (which makes traces bit-identical across same-seed runs), host
// wall time on MemFabric/TcpFabric.
//
// The buffer is a fixed-capacity ring that overwrites the oldest events
// (dropped() reports how many), so a 512 MB transfer or a 500-seed chaos
// campaign cannot grow it without bound — the failure mode the old
// Group::trace_ vector had.
//
// Consumers: obs::to_chrome_json (ui.perfetto.dev timelines) and
// obs::analyze_multicast (exact critical-path stall attribution).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rdmc::obs {

/// Event phase, mirroring the Chrome trace_event phases we export to:
/// begin/end delimit an async span (correlated by `id`), instants mark a
/// point, counters carry a sampled value.
enum class Phase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };

/// Layer the event came from; becomes the Perfetto process row.
enum class Cat : std::uint8_t { kCore, kFabric, kSim, kRecovery, kApp };

const char* cat_name(Cat cat);

struct TraceEvent {
  double ts = 0.0;            // seconds (virtual or wall, emitter's clock)
  const char* name = "";      // static string literal
  const char* keys = nullptr; // comma-separated arg names for a[], or null
  Phase phase = Phase::kInstant;
  Cat cat = Cat::kCore;
  std::uint32_t node = 0;     // track (thread row) within the layer
  std::uint64_t id = 0;       // span correlation id
  std::uint64_t a[4] = {0, 0, 0, 0};  // args, named by `keys`
  double value = 0.0;         // counter phase only
};

class TraceRecorder {
 public:
  struct Options {
    /// Ring capacity in events (64 B each). 2^20 holds a full traced
    /// fig8-512 run; chaos campaigns keep the most recent window.
    std::size_t capacity = std::size_t{1} << 20;
  };

  /// The calling thread's recorder: the innermost live ThreadShard's
  /// private ring if one is installed, the process-wide singleton
  /// otherwise. Hooks always go through here, so redirecting a worker
  /// thread costs one thread-local load on the hot path.
  static TraceRecorder& instance();

  /// Enable recording (clears any previous events).
  void enable(Options options);
  void enable() { enable(Options{}); }
  void disable();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void clear();

  void record(const TraceEvent& e);

  /// Events in record order (oldest surviving first). Safe while enabled.
  std::vector<TraceEvent> snapshot() const;

  /// Total events recorded since enable()/clear().
  std::uint64_t recorded() const;
  /// Events overwritten by ring wrap-around.
  std::uint64_t dropped() const;
  /// Ring capacity set by the last enable() (0 while never enabled).
  std::size_t capacity() const;

  /// Replay `events` into this recorder in order, as if record() had been
  /// called for each. Used to merge per-thread shards back deterministically.
  void absorb(const std::vector<TraceEvent>& events);

  /// RAII redirection of the calling thread's TraceRecorder::instance() to
  /// a private ring. A parallel sweep wraps each work item in a shard, so
  /// concurrent simulations never interleave events in the shared ring;
  /// after the item completes, take() hands back its events and the caller
  /// absorb()s them into the process recorder in input order — making the
  /// merged trace identical to a serial run (as long as no single item
  /// overflows the shard ring).
  ///
  /// The shard only arms itself when the process recorder is enabled (its
  /// capacity is inherited), so untraced runs stay zero-overhead. Shards
  /// nest (innermost wins) and must be destroyed on the thread that made
  /// them.
  class ThreadShard {
   public:
    ThreadShard();
    ~ThreadShard();
    ThreadShard(const ThreadShard&) = delete;
    ThreadShard& operator=(const ThreadShard&) = delete;

    /// Events recorded through this shard so far, oldest first; clears the
    /// shard ring.
    std::vector<TraceEvent> take();

   private:
    std::unique_ptr<TraceRecorder> local_;  // null when recording is off
    TraceRecorder* prev_ = nullptr;
  };

  // -- Convenience emitters (no-ops while disabled) ------------------------

  void begin(Cat cat, const char* name, std::uint32_t node, std::uint64_t id,
             double ts, const char* keys = nullptr, std::uint64_t a0 = 0,
             std::uint64_t a1 = 0, std::uint64_t a2 = 0,
             std::uint64_t a3 = 0);
  void end(Cat cat, const char* name, std::uint32_t node, std::uint64_t id,
           double ts, const char* keys = nullptr, std::uint64_t a0 = 0,
           std::uint64_t a1 = 0, std::uint64_t a2 = 0, std::uint64_t a3 = 0);
  void instant(Cat cat, const char* name, std::uint32_t node, double ts,
               const char* keys = nullptr, std::uint64_t a0 = 0,
               std::uint64_t a1 = 0, std::uint64_t a2 = 0,
               std::uint64_t a3 = 0);
  void counter(Cat cat, const char* name, std::uint32_t node, double ts,
               double value);

 private:
  TraceRecorder() = default;

  static TraceRecorder& process_instance();
  static thread_local TraceRecorder* tls_override_;

  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> ring_ RDMC_GUARDED_BY(mutex_);
  std::size_t capacity_ RDMC_GUARDED_BY(mutex_) = 0;
  std::size_t head_ RDMC_GUARDED_BY(mutex_) = 0;  // next write position
  std::uint64_t recorded_ RDMC_GUARDED_BY(mutex_) = 0;
};

/// The recorder if tracing is on, nullptr otherwise. The usual hook shape:
///   if (auto* tr = obs::tracer()) tr->instant(...);
inline TraceRecorder* tracer() {
  TraceRecorder& r = TraceRecorder::instance();
  return r.enabled() ? &r : nullptr;
}

/// Monotonic host seconds (for fabrics that live in real time).
double wall_seconds();

}  // namespace rdmc::obs
