#include "obs/trace_export.hpp"

#include <cstdio>
#include <set>
#include <utility>

namespace rdmc::obs {

namespace {

void append_escaped(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }  // control characters are dropped (never appear in our literals)
  }
}

void append_f(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

/// Comma-separated `keys` plus values from a[] -> {"k0":v0,...}.
void append_args(std::string& out, const TraceEvent& e) {
  out += "\"args\":{";
  const char* k = e.keys;
  std::size_t i = 0;
  bool first = true;
  while (k != nullptr && *k != '\0' && i < 4) {
    const char* start = k;
    while (*k != '\0' && *k != ',') ++k;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(start, static_cast<std::size_t>(k - start));
    out += "\":";
    append_u64(out, e.a[i]);
    ++i;
    if (*k == ',') ++k;
  }
  out.push_back('}');
}

int pid_of(Cat cat) { return static_cast<int>(cat) + 1; }

}  // namespace

std::string to_chrome_json(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 128 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // Metadata: name each layer's process row and each node's thread row.
  std::set<Cat> cats;
  std::set<std::pair<Cat, std::uint32_t>> tracks;
  for (const TraceEvent& e : events) {
    cats.insert(e.cat);
    tracks.insert({e.cat, e.node});
  }
  bool first = true;
  auto sep = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  for (Cat cat : cats) {
    sep();
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_u64(out, static_cast<std::uint64_t>(pid_of(cat)));
    out += ",\"tid\":0,\"args\":{\"name\":\"";
    append_escaped(out, cat_name(cat));
    out += "\"}}";
  }
  for (const auto& [cat, node] : tracks) {
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    append_u64(out, static_cast<std::uint64_t>(pid_of(cat)));
    out += ",\"tid\":";
    append_u64(out, node);
    out += ",\"args\":{\"name\":\"node ";
    append_u64(out, node);
    out += "\"}}";
  }

  for (const TraceEvent& e : events) {
    sep();
    out += "{\"name\":\"";
    append_escaped(out, e.name);
    out += "\",\"cat\":\"";
    append_escaped(out, cat_name(e.cat));
    out += "\",\"ph\":\"";
    switch (e.phase) {
      case Phase::kBegin: out += "b"; break;
      case Phase::kEnd: out += "e"; break;
      case Phase::kInstant: out += "i"; break;
      case Phase::kCounter: out += "C"; break;
    }
    out += "\",\"pid\":";
    append_u64(out, static_cast<std::uint64_t>(pid_of(e.cat)));
    out += ",\"tid\":";
    append_u64(out, e.node);
    out += ",\"ts\":";
    // Seconds -> microseconds; 0.1 ns print resolution keeps distinct
    // virtual instants distinct while staying byte-deterministic.
    append_f(out, "%.4f", e.ts * 1e6);
    if (e.phase == Phase::kBegin || e.phase == Phase::kEnd) {
      out += ",\"id\":\"0x";
      char buf[24];
      std::snprintf(buf, sizeof buf, "%llx",
                    static_cast<unsigned long long>(e.id));
      out += buf;
      out += "\"";
    }
    if (e.phase == Phase::kInstant) out += ",\"s\":\"t\"";
    out.push_back(',');
    if (e.phase == Phase::kCounter) {
      out += "\"args\":{\"value\":";
      append_f(out, "%.9g", e.value);
      out += "}";
    } else {
      append_args(out, e);
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

bool write_chrome_json(const std::string& path,
                       const std::vector<TraceEvent>& events) {
  const std::string json = to_chrome_json(events);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = (std::fclose(f) == 0) && written == json.size();
  return ok;
}

}  // namespace rdmc::obs
