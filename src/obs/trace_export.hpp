// Chrome trace_event ("Trace Event Format") JSON export.
//
// The emitted file loads directly in ui.perfetto.dev (and legacy
// chrome://tracing): each obs::Cat becomes a named process row, each node a
// thread row inside it; begin/end pairs render as async spans correlated by
// id, instants as marks, counters as counter tracks. Timestamps convert
// from seconds to the format's microseconds.
//
// Output is byte-deterministic for a given event sequence (fixed field
// order, fixed float formatting), which the determinism tests rely on.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rdmc::obs {

/// Serialize events to a Chrome trace_event JSON document.
std::string to_chrome_json(const std::vector<TraceEvent>& events);

/// Write to_chrome_json(events) to `path`. Returns false on I/O failure.
bool write_chrome_json(const std::string& path,
                       const std::vector<TraceEvent>& events);

}  // namespace rdmc::obs
