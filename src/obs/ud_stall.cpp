#include "obs/ud_stall.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

namespace rdmc::obs {

namespace {

constexpr std::uint32_t kImmRetx = 0x80000000u;

// Slice classes, in overlap priority order (higher wins).
enum Class : int { kTransfer = 0, kRetransmit = 1, kRepair = 2 };

struct Segment {
  double t0 = 0.0;
  double t1 = 0.0;
  Class cls = kTransfer;
};

bool is(const TraceEvent& e, const char* name) {
  return std::strcmp(e.name, name) == 0;
}

}  // namespace

UdMulticastAnalysis analyze_ud_multicast(
    const std::vector<TraceEvent>& events,
    const std::vector<std::uint32_t>& members) {
  UdMulticastAnalysis out;
  if (members.size() < 2) {
    out.warnings.push_back("need a root and at least one receiver");
    return out;
  }

  bool have_start = false;
  for (const TraceEvent& e : events) {
    if (e.phase == Phase::kInstant && is(e, "ud.msgstart")) {
      out.msg_start = e.ts;
      have_start = true;
      break;
    }
  }
  if (!have_start) {
    out.warnings.push_back("no ud.msgstart instant in trace");
    return out;
  }

  for (std::size_t r = 1; r < members.size(); ++r) {
    const std::uint32_t node = members[r];
    UdStallBreakdown b;
    b.node = node;

    bool delivered = false;
    double deliver_ts = 0.0;
    for (const TraceEvent& e : events) {
      if (e.phase == Phase::kInstant && e.node == node &&
          is(e, "ud.deliver")) {
        deliver_ts = e.ts;
        delivered = true;
        break;
      }
    }
    if (!delivered) {
      out.warnings.push_back("no ud.deliver instant for node " +
                             std::to_string(node));
      out.receivers.push_back(b);
      continue;
    }
    b.latency_s = deliver_ts - out.msg_start;

    // Wire spans addressed to this receiver ("udxfer", a0 = dst) and the
    // receiver's own repair span, matched begin->end by span id.
    std::vector<Segment> segs;
    std::unordered_map<std::uint64_t, Segment> open;
    for (const TraceEvent& e : events) {
      if (e.cat == Cat::kFabric && is(e, "udxfer")) {
        if (e.phase == Phase::kBegin && e.a[0] == node) {
          Segment s;
          s.t0 = e.ts;
          s.cls = (e.a[2] & kImmRetx) ? kRetransmit : kTransfer;
          open[e.id] = s;
        } else if (e.phase == Phase::kEnd) {
          auto it = open.find(e.id);
          if (it == open.end()) continue;
          it->second.t1 = e.ts;
          segs.push_back(it->second);
          open.erase(it);
        }
      } else if (e.cat == Cat::kApp && e.node == node && is(e, "ud.repair")) {
        if (e.phase == Phase::kBegin) {
          open[~e.id] = Segment{e.ts, e.ts, kRepair};
        } else if (e.phase == Phase::kEnd) {
          auto it = open.find(~e.id);
          if (it == open.end()) continue;
          it->second.t1 = e.ts;
          segs.push_back(it->second);
          open.erase(it);
        }
      }
    }
    if (!open.empty()) {
      out.warnings.push_back("unmatched span begin(s) for node " +
                             std::to_string(node));
    }

    // Clip to the delivery interval; count before clipping drops them.
    std::vector<Segment> clipped;
    for (Segment s : segs) {
      if (s.cls != kRepair) {
        ++b.datagrams;
        if (s.cls == kRetransmit) ++b.retx_datagrams;
      }
      s.t0 = std::max(s.t0, out.msg_start);
      s.t1 = std::min(s.t1, deliver_ts);
      if (s.t1 > s.t0) clipped.push_back(s);
    }

    // Boundary sweep over the elementary slices of [msg_start, deliver].
    std::vector<double> cuts;
    cuts.push_back(out.msg_start);
    cuts.push_back(deliver_ts);
    for (const Segment& s : clipped) {
      cuts.push_back(s.t0);
      cuts.push_back(s.t1);
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    const std::size_t n = cuts.size() ? cuts.size() - 1 : 0;
    std::vector<int> cls(n, -1);  // -1 = idle
    for (const Segment& s : clipped) {
      const auto lo = std::lower_bound(cuts.begin(), cuts.end(), s.t0);
      const auto hi = std::lower_bound(cuts.begin(), cuts.end(), s.t1);
      for (auto it = lo; it != hi; ++it) {
        const std::size_t i = static_cast<std::size_t>(it - cuts.begin());
        cls[i] = std::max(cls[i], static_cast<int>(s.cls));
      }
    }

    // Idle slices take the class of the next busy slice (a gap before a
    // retransmit or repair is loss-induced stall); idle before ordinary
    // transfers and trailing idle are schedule wait.
    int next_busy = -1;
    for (std::size_t i = n; i-- > 0;) {
      const double dt = cuts[i + 1] - cuts[i];
      int c = cls[i];
      if (c < 0) {
        c = (next_busy == kRetransmit || next_busy == kRepair) ? next_busy
                                                               : -1;
      } else {
        next_busy = c;
      }
      switch (c) {
        case kTransfer:
          b.transfer_s += dt;
          break;
        case kRetransmit:
          b.retransmit_s += dt;
          break;
        case kRepair:
          b.repair_s += dt;
          break;
        default:
          b.wait_s += dt;
          break;
      }
    }

    out.receivers.push_back(b);
  }
  return out;
}

}  // namespace rdmc::obs
