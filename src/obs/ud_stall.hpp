// Stall analyzer for unreliable-datagram multicast sessions.
//
// The RC analyzer (obs/stall.hpp) walks a block dependency chain, which
// only exists when transfers are ordered and lossless. A UD session has
// neither property — datagrams are dropped, duplicated and reordered, and
// repair traffic (retransmits, erasure decode) overlaps the original
// rotation — so this analyzer tiles each receiver's delivery interval
// directly from the wire spans instead of chasing causality.
//
// For one receiver, the interval [ud.msgstart, ud.deliver] is cut at every
// span boundary and each elementary slice is classified:
//   * transfer   — some first-transmission datagram addressed to this
//                  receiver was on the wire ("udxfer" span, retx bit clear);
//   * retransmit — a repair datagram was on the wire (retx bit set in the
//                  immediate); wins over transfer when both overlap;
//   * repair     — the receiver was reconstructing missing blocks from
//                  parity ("ud.repair" span); wins over both;
//   * wait       — nothing addressed to this receiver was in flight and the
//                  next activity is a first transmission (ordinary schedule
//                  gaps), or nothing follows at all.
// An idle slice that precedes retransmit or repair activity is charged to
// that class — the receiver was stalled *because* loss forced a repair
// round-trip, so the NACK pacing time belongs to the repair, not to the
// schedule. The slices tile the interval exactly: per-class sums add up to
// the measured delivery latency by construction.
//
// Requires a fabric that emits "udxfer" wire spans (SimFabric). The session
// emits ud.msgstart / ud.deliver / ud.repair on every fabric.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rdmc::obs {

struct UdStallBreakdown {
  std::uint32_t node = 0;    // receiver (fabric NodeId)
  double latency_s = 0.0;    // ud.msgstart -> this node's ud.deliver
  double transfer_s = 0.0;
  double wait_s = 0.0;
  double retransmit_s = 0.0;
  double repair_s = 0.0;
  std::size_t datagrams = 0;       // wire spans addressed to this node
  std::size_t retx_datagrams = 0;  // of which carried the retx flag
  double sum() const {
    return transfer_s + wait_s + retransmit_s + repair_s;
  }
};

struct UdMulticastAnalysis {
  double msg_start = 0.0;  // root's pump-start instant
  std::vector<UdStallBreakdown> receivers;
  std::vector<std::string> warnings;  // missing/unmatched trace events
  bool ok() const { return warnings.empty(); }
};

/// Attribute delivery latency for every non-root member. `members` are
/// fabric node ids with `members[0]` the root; `events` is a TraceRecorder
/// snapshot covering the whole session.
UdMulticastAnalysis analyze_ud_multicast(
    const std::vector<TraceEvent>& events,
    const std::vector<std::uint32_t>& members);

}  // namespace rdmc::obs
