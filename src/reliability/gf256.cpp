#include "reliability/gf256.hpp"

namespace rdmc::reliability::gf256 {

namespace {

struct Tables {
  std::uint8_t exp[512];
  std::uint8_t log[256];
  std::uint8_t mul[256 * 256];

  Tables() {
    // Generator 2 is primitive for 0x11D.
    std::uint16_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<std::uint8_t>(x);
      log[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= 0x11D;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // never consulted for zero operands
    for (int a = 0; a < 256; ++a) {
      for (int b = 0; b < 256; ++b) {
        mul[(a << 8) | b] =
            (a == 0 || b == 0) ? 0 : exp[log[a] + log[b]];
      }
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  return tables().mul[(static_cast<std::size_t>(a) << 8) | b];
}

std::uint8_t inv(std::uint8_t a) {
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

void muladd(std::uint8_t* y, const std::uint8_t* x, std::uint8_t c,
            std::size_t n) {
  if (c == 0) return;
  const std::uint8_t* row = &tables().mul[static_cast<std::size_t>(c) << 8];
  for (std::size_t i = 0; i < n; ++i) y[i] ^= row[x[i]];
}

}  // namespace rdmc::reliability::gf256
