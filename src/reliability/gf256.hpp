// GF(2^8) arithmetic for the Reed-Solomon reliability policy.
//
// The field is GF(256) with the usual AES-adjacent reduction polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11D). Multiplication goes through a
// precomputed 64 KB full product table so the per-byte coding loop is one
// load and one xor — plenty for repairing multicast losses, where the work
// is proportional to *lost* bytes, not transferred bytes.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rdmc::reliability::gf256 {

std::uint8_t mul(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse; a must be non-zero.
std::uint8_t inv(std::uint8_t a);

/// y[i] ^= c * x[i] for i in [0, n) — the coding inner loop.
void muladd(std::uint8_t* y, const std::uint8_t* x, std::uint8_t c,
            std::size_t n);

}  // namespace rdmc::reliability::gf256
