#include "reliability/policy.hpp"

#include <algorithm>
#include <cassert>

#include "reliability/rs_code.hpp"

namespace rdmc::reliability {

std::string_view policy_name(Policy policy) {
  switch (policy) {
    case Policy::kNone:
      return "none";
    case Policy::kSelectiveRepeat:
      return "selective-repeat";
    case Policy::kErasure:
      return "erasure";
  }
  return "?";
}

std::optional<Policy> parse_policy(std::string_view name) {
  if (name == "none") return Policy::kNone;
  if (name == "selective-repeat" || name == "sr")
    return Policy::kSelectiveRepeat;
  if (name == "erasure" || name == "rs") return Policy::kErasure;
  return std::nullopt;
}

namespace {

/// Shared base for the two uncoded policies: wire blocks are exactly the
/// data blocks.
class UncodedPolicy : public ReliabilityPolicy {
 public:
  std::size_t wire_blocks(std::size_t data_blocks) const override {
    return data_blocks;
  }
  std::size_t data_block_of(std::size_t w,
                            std::size_t /*data_blocks*/) const override {
    return w;
  }
  std::size_t parity_ordinal_of(std::size_t /*w*/,
                                std::size_t /*data_blocks*/) const override {
    return SIZE_MAX;
  }
  bool complete(const std::vector<bool>& have,
                std::size_t data_blocks) const override {
    for (std::size_t b = 0; b < data_blocks; ++b) {
      if (!have[b]) return false;
    }
    return true;
  }
};

class NonePolicy final : public UncodedPolicy {
 public:
  Policy kind() const override { return Policy::kNone; }
  std::vector<std::uint32_t> nack_set(const std::vector<bool>&, std::size_t,
                                      std::size_t) const override {
    return {};  // break-on-loss semantics minus the break: losses stay lost
  }
};

class SelectiveRepeatPolicy final : public UncodedPolicy {
 public:
  Policy kind() const override { return Policy::kSelectiveRepeat; }
  std::vector<std::uint32_t> nack_set(const std::vector<bool>& have,
                                      std::size_t data_blocks,
                                      std::size_t limit) const override {
    std::vector<std::uint32_t> missing;
    for (std::size_t b = 0; b < data_blocks && missing.size() < limit; ++b) {
      if (!have[b]) missing.push_back(static_cast<std::uint32_t>(b));
    }
    return missing;
  }
};

/// Stripe layout: stripe s occupies wire blocks [s*(k+m), s*(k+m)+d+m)
/// where d = min(k, data_blocks - s*k) — d data slots then m parity slots.
/// A short final stripe is padded with implicit zero symbols, which count
/// as held for decodability (k - d free symbols), so it only needs d of
/// its d + m real symbols.
class ErasurePolicy final : public ReliabilityPolicy {
 public:
  ErasurePolicy(std::size_t k, std::size_t m) : code_(k, m) {}

  Policy kind() const override { return Policy::kErasure; }

  std::size_t k() const { return code_.k(); }
  std::size_t m() const { return code_.m(); }

  std::size_t num_stripes(std::size_t data_blocks) const {
    return (data_blocks + k() - 1) / k();
  }
  std::size_t stripe_data(std::size_t stripe, std::size_t data_blocks) const {
    return std::min(k(), data_blocks - stripe * k());
  }

  std::size_t wire_blocks(std::size_t data_blocks) const override {
    return data_blocks + num_stripes(data_blocks) * m();
  }

  std::size_t data_block_of(std::size_t w,
                            std::size_t data_blocks) const override {
    const std::size_t span = k() + m();
    const std::size_t stripe = w / span;
    const std::size_t slot = w % span;
    if (slot >= stripe_data(stripe, data_blocks)) return SIZE_MAX;
    return stripe * k() + slot;
  }

  std::size_t parity_ordinal_of(std::size_t w,
                                std::size_t data_blocks) const override {
    const std::size_t span = k() + m();
    const std::size_t stripe = w / span;
    const std::size_t slot = w % span;
    const std::size_t d = stripe_data(stripe, data_blocks);
    if (slot < d) return SIZE_MAX;
    return stripe * m() + (slot - d);
  }

  bool complete(const std::vector<bool>& have,
                std::size_t data_blocks) const override {
    const std::size_t span = k() + m();
    for (std::size_t s = 0; s < num_stripes(data_blocks); ++s) {
      const std::size_t d = stripe_data(s, data_blocks);
      std::size_t held = 0;
      for (std::size_t slot = 0; slot < d + m(); ++slot) {
        if (have[s * span + slot]) ++held;
      }
      if (held < d) return false;
    }
    return true;
  }

  std::vector<std::uint32_t> nack_set(const std::vector<bool>& have,
                                      std::size_t data_blocks,
                                      std::size_t limit) const override {
    // Only undecodable stripes need anything; request their missing data
    // blocks directly (parity already on the wire did not save them).
    std::vector<std::uint32_t> missing;
    const std::size_t span = k() + m();
    for (std::size_t s = 0;
         s < num_stripes(data_blocks) && missing.size() < limit; ++s) {
      const std::size_t d = stripe_data(s, data_blocks);
      std::size_t held = 0;
      for (std::size_t slot = 0; slot < d + m(); ++slot) {
        if (have[s * span + slot]) ++held;
      }
      if (held >= d) continue;
      for (std::size_t slot = 0; slot < d && missing.size() < limit;
           ++slot) {
        if (!have[s * span + slot]) {
          missing.push_back(static_cast<std::uint32_t>(s * span + slot));
        }
      }
    }
    return missing;
  }

  std::uint64_t decode_cost_bytes(const std::vector<bool>& have,
                                  std::size_t data_blocks,
                                  std::size_t block_size) const override {
    // Reconstructing one symbol is ~k muladd passes over block_size bytes.
    const std::size_t span = k() + m();
    std::uint64_t cost = 0;
    for (std::size_t s = 0; s < num_stripes(data_blocks); ++s) {
      const std::size_t d = stripe_data(s, data_blocks);
      for (std::size_t slot = 0; slot < d; ++slot) {
        if (!have[s * span + slot]) {
          cost += static_cast<std::uint64_t>(k()) * block_size;
        }
      }
    }
    return cost;
  }

  bool repair(const std::vector<bool>& have, std::size_t data_blocks,
              std::size_t block_size, std::byte* data, std::size_t size,
              const std::vector<std::vector<std::byte>>& parity)
      const override {
    const std::size_t span = k() + m();
    // The final data block may be shorter than block_size; coding treats
    // every symbol as block_size bytes with a zero tail, so reconstruct
    // short blocks via a scratch symbol.
    std::vector<std::byte> scratch;
    for (std::size_t s = 0; s < num_stripes(data_blocks); ++s) {
      const std::size_t d = stripe_data(s, data_blocks);
      bool all = true;
      for (std::size_t slot = 0; slot < d; ++slot) {
        if (!have[s * span + slot]) all = false;
      }
      if (all) continue;

      std::vector<std::byte*> sym(k(), nullptr);
      std::vector<bool> have_sym(k(), true);  // pads beyond d stay "held"
      std::vector<const std::byte*> par(m(), nullptr);
      std::vector<bool> have_par(m(), false);
      std::vector<std::pair<std::size_t, std::size_t>> short_fixups;
      for (std::size_t slot = 0; slot < d; ++slot) {
        const std::size_t block = s * k() + slot;
        const std::size_t off = block * block_size;
        const std::size_t len = std::min(block_size, size - off);
        have_sym[slot] = have[s * span + slot];
        if (len == block_size) {
          sym[slot] = data + off;
        } else if (!have_sym[slot]) {
          // Short missing block: decode into scratch, copy the real bytes.
          scratch.assign(block_size, std::byte{0});
          sym[slot] = scratch.data();
          short_fixups.emplace_back(slot, off);
        } else {
          // Short held block: present it zero-padded via scratch too.
          scratch.assign(block_size, std::byte{0});
          std::copy(data + off, data + off + len, scratch.begin());
          sym[slot] = scratch.data();
        }
      }
      for (std::size_t j = 0; j < m(); ++j) {
        const std::size_t ordinal = s * m() + j;
        if (have[s * span + d + j] && ordinal < parity.size() &&
            !parity[ordinal].empty()) {
          par[j] = parity[ordinal].data();
          have_par[j] = true;
        }
      }
      if (!code_.decode(sym, have_sym, par, have_par, block_size))
        return false;
      for (const auto& [slot, off] : short_fixups) {
        const std::size_t len = std::min(block_size, size - off);
        std::copy(sym[slot], sym[slot] + len, data + off);
      }
    }
    return true;
  }

 private:
  RsCode code_;
};

}  // namespace

std::unique_ptr<ReliabilityPolicy> make_policy(Policy policy,
                                               std::size_t rs_k,
                                               std::size_t rs_m) {
  switch (policy) {
    case Policy::kNone:
      return std::make_unique<NonePolicy>();
    case Policy::kSelectiveRepeat:
      return std::make_unique<SelectiveRepeatPolicy>();
    case Policy::kErasure:
      return std::make_unique<ErasurePolicy>(rs_k, rs_m);
  }
  return nullptr;
}

}  // namespace rdmc::reliability
