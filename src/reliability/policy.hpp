// Software-defined reliability policies for UD multicast (SDR-RDMA style).
//
// RC transports make loss a membership event: one dropped packet breaks the
// QP and triggers group recovery — the right call inside a datacenter where
// loss means a dying component, and exactly the wrong call on lossy/WAN
// paths where sub-percent random loss is weather, not failure. The UD
// service type (fabric::QueuePair::post_send_ud) never breaks on loss;
// these policies put reliability back in software, on top of the same
// block schedules src/sched already provides:
//
//   * kNone            — raw schedule over UD; losses are never repaired
//                        (the strawman that motivates everything else);
//   * kSelectiveRepeat — receivers NACK missing blocks when probed and the
//                        root retransmits exactly those (bounded per-round
//                        windows), ARQ style;
//   * kErasure         — the root folds m Reed-Solomon parity blocks per k
//                        data blocks into the wire rotation; any k of each
//                        stripe's k+m symbols recover it, so most losses
//                        are repaired with zero extra round trips. NACK
//                        repair remains as a backstop for storms that
//                        exceed the parity budget.
//
// A policy defines the *wire-block* universe the schedule rotates over
// (data blocks, plus parity for kErasure), when a receiver's holdings
// suffice to reconstruct the message, what to NACK, and how to repair.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

namespace rdmc::reliability {

enum class Policy { kNone, kSelectiveRepeat, kErasure };

std::string_view policy_name(Policy policy);
std::optional<Policy> parse_policy(std::string_view name);

class ReliabilityPolicy {
 public:
  virtual ~ReliabilityPolicy() = default;

  virtual Policy kind() const = 0;
  std::string_view name() const { return policy_name(kind()); }

  /// Size of the wire rotation for a message of `data_blocks` blocks.
  /// The schedule runs over wire blocks, so parity rides the same binomial
  /// pipeline / chain / tree as the data.
  virtual std::size_t wire_blocks(std::size_t data_blocks) const = 0;

  /// Data block carried by wire block `w`, or SIZE_MAX when `w` carries
  /// repair information (parity).
  virtual std::size_t data_block_of(std::size_t w,
                                    std::size_t data_blocks) const = 0;

  /// Dense parity index (stripe * m + j) of wire block `w`, or SIZE_MAX
  /// when `w` is a data block.
  virtual std::size_t parity_ordinal_of(std::size_t w,
                                        std::size_t data_blocks) const = 0;

  /// True when a receiver holding `have` (wire-block bitmap) can
  /// reconstruct every data block.
  virtual bool complete(const std::vector<bool>& have,
                        std::size_t data_blocks) const = 0;

  /// Wire blocks worth NACKing, most useful first, capped at `limit`.
  /// kNone returns nothing: its losses are permanent by design.
  virtual std::vector<std::uint32_t> nack_set(const std::vector<bool>& have,
                                              std::size_t data_blocks,
                                              std::size_t limit) const = 0;

  /// Modelled decode work (bytes touched) to reconstruct the message from
  /// `have` — charged to the receiver's virtual CPU in simulation. Zero
  /// for non-coded policies.
  virtual std::uint64_t decode_cost_bytes(const std::vector<bool>& have,
                                          std::size_t data_blocks,
                                          std::size_t block_size) const {
    (void)have;
    (void)data_blocks;
    (void)block_size;
    return 0;
  }

  /// Reconstruct the missing data blocks in place (real-buffer mode).
  /// `data` is the message buffer, `parity` the receiver's parity store
  /// indexed by dense parity ordinal (empty vector = never received).
  /// Precondition: complete(have) — returns false if reconstruction is
  /// impossible anyway.
  virtual bool repair(const std::vector<bool>& have, std::size_t data_blocks,
                      std::size_t block_size, std::byte* data,
                      std::size_t size,
                      const std::vector<std::vector<std::byte>>& parity)
      const {
    (void)have;
    (void)data_blocks;
    (void)block_size;
    (void)data;
    (void)size;
    (void)parity;
    return true;
  }
};

/// `rs_k`/`rs_m` are the erasure stripe geometry (ignored by the others).
std::unique_ptr<ReliabilityPolicy> make_policy(Policy policy,
                                               std::size_t rs_k = 8,
                                               std::size_t rs_m = 2);

}  // namespace rdmc::reliability
