#include "reliability/rs_code.hpp"

#include <cassert>
#include <cstring>

#include "reliability/gf256.hpp"

namespace rdmc::reliability {

RsCode::RsCode(std::size_t k, std::size_t m) : k_(k), m_(m) {
  assert(k >= 1 && m >= 1 && k + m <= 256);
  cauchy_.resize(m * k);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      // x_i = k + i, y_j = j: disjoint sets, so x_i ^ y_j is never zero
      // (addition in GF(2^8) is xor).
      const std::uint8_t x = static_cast<std::uint8_t>(k + i);
      const std::uint8_t y = static_cast<std::uint8_t>(j);
      cauchy_[i * k + j] = gf256::inv(x ^ y);
    }
  }
}

void RsCode::encode(const std::vector<const std::byte*>& data,
                    const std::vector<std::byte*>& parity,
                    std::size_t symbol_bytes) const {
  assert(data.size() == k_ && parity.size() == m_);
  for (std::size_t i = 0; i < m_; ++i) {
    std::memset(parity[i], 0, symbol_bytes);
    for (std::size_t j = 0; j < k_; ++j) {
      if (!data[j]) continue;  // zero pad symbol contributes nothing
      gf256::muladd(reinterpret_cast<std::uint8_t*>(parity[i]),
                    reinterpret_cast<const std::uint8_t*>(data[j]),
                    cauchy_[i * k_ + j], symbol_bytes);
    }
  }
}

bool RsCode::decode(const std::vector<std::byte*>& data,
                    const std::vector<bool>& have_data,
                    const std::vector<const std::byte*>& parity,
                    const std::vector<bool>& have_parity,
                    std::size_t symbol_bytes) const {
  assert(data.size() == k_ && have_data.size() == k_);
  assert(parity.size() == m_ && have_parity.size() == m_);

  // Pick k available symbols, data rows first (identity rows keep the
  // system sparse and the common all-data case trivial).
  struct Row {
    bool is_parity;
    std::size_t index;  // data index or parity index
  };
  std::vector<Row> rows;
  rows.reserve(k_);
  for (std::size_t j = 0; j < k_ && rows.size() < k_; ++j) {
    if (have_data[j]) rows.push_back({false, j});
  }
  for (std::size_t i = 0; i < m_ && rows.size() < k_; ++i) {
    if (have_parity[i]) rows.push_back({true, i});
  }
  if (rows.size() < k_) return false;

  // Generator submatrix A (k x k): row t is e_{index} for a data row, the
  // Cauchy row for a parity row. Invert via Gauss-Jordan over GF(256).
  std::vector<std::uint8_t> a(k_ * k_, 0);
  std::vector<std::uint8_t> ainv(k_ * k_, 0);
  for (std::size_t t = 0; t < k_; ++t) {
    if (rows[t].is_parity) {
      std::memcpy(&a[t * k_], &cauchy_[rows[t].index * k_], k_);
    } else {
      a[t * k_ + rows[t].index] = 1;
    }
    ainv[t * k_ + t] = 1;
  }
  for (std::size_t col = 0; col < k_; ++col) {
    std::size_t pivot = col;
    while (pivot < k_ && a[pivot * k_ + col] == 0) ++pivot;
    if (pivot == k_) return false;  // cannot happen for a Cauchy generator
    if (pivot != col) {
      for (std::size_t j = 0; j < k_; ++j) {
        std::swap(a[pivot * k_ + j], a[col * k_ + j]);
        std::swap(ainv[pivot * k_ + j], ainv[col * k_ + j]);
      }
    }
    const std::uint8_t piv_inv = gf256::inv(a[col * k_ + col]);
    for (std::size_t j = 0; j < k_; ++j) {
      a[col * k_ + j] = gf256::mul(a[col * k_ + j], piv_inv);
      ainv[col * k_ + j] = gf256::mul(ainv[col * k_ + j], piv_inv);
    }
    for (std::size_t r = 0; r < k_; ++r) {
      if (r == col) continue;
      const std::uint8_t f = a[r * k_ + col];
      if (f == 0) continue;
      for (std::size_t j = 0; j < k_; ++j) {
        a[r * k_ + j] ^= gf256::mul(f, a[col * k_ + j]);
        ainv[r * k_ + j] ^= gf256::mul(f, ainv[col * k_ + j]);
      }
    }
  }

  // d_i = sum_t Ainv[i][t] * y_t, only for the missing data symbols.
  for (std::size_t i = 0; i < k_; ++i) {
    if (have_data[i] || !data[i]) continue;
    std::memset(data[i], 0, symbol_bytes);
    for (std::size_t t = 0; t < k_; ++t) {
      const std::uint8_t c = ainv[i * k_ + t];
      if (c == 0) continue;
      const std::byte* y = rows[t].is_parity
                               ? parity[rows[t].index]
                               : data[rows[t].index];
      if (!y) continue;  // zero pad symbol
      gf256::muladd(reinterpret_cast<std::uint8_t*>(data[i]),
                    reinterpret_cast<const std::uint8_t*>(y), c,
                    symbol_bytes);
    }
  }
  return true;
}

}  // namespace rdmc::reliability
