// Systematic Reed-Solomon code over GF(256), Cauchy construction.
//
// Encodes k data symbols (blocks) into m parity symbols such that *any* k
// of the k+m symbols reconstruct the data. The generator is the identity
// stacked on a Cauchy matrix C[i][j] = 1/(x_i + y_j) with x_i = k + i and
// y_j = j, whose every square submatrix is invertible — the textbook
// guarantee that an arbitrary loss pattern of up to m symbols per stripe is
// repairable. Requires k + m <= 256 so the x/y evaluation points stay
// distinct in the field.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rdmc::reliability {

class RsCode {
 public:
  RsCode(std::size_t k, std::size_t m);

  std::size_t k() const { return k_; }
  std::size_t m() const { return m_; }

  /// Compute the m parity symbols from the k data symbols. A null data
  /// pointer is a zero symbol (short final stripes pad with zeros).
  /// Every symbol is `symbol_bytes` long; parity pointers must be valid.
  void encode(const std::vector<const std::byte*>& data,
              const std::vector<std::byte*>& parity,
              std::size_t symbol_bytes) const;

  /// Reconstruct the missing data symbols in place. `data[i]` /
  /// `parity[j]` point at symbol storage; `have_data` / `have_parity` mark
  /// which symbols actually arrived. Symbols marked missing are written
  /// (their prior contents ignored); available symbols are read only.
  /// Returns false when fewer than k symbols are available.
  bool decode(const std::vector<std::byte*>& data,
              const std::vector<bool>& have_data,
              const std::vector<const std::byte*>& parity,
              const std::vector<bool>& have_parity,
              std::size_t symbol_bytes) const;

 private:
  std::size_t k_;
  std::size_t m_;
  /// Cauchy coefficients, row-major m x k.
  std::vector<std::uint8_t> cauchy_;
};

}  // namespace rdmc::reliability
