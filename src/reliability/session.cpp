#include "reliability/session.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>
#include <unordered_map>

#include "obs/trace.hpp"
#include "reliability/rs_code.hpp"
#include "util/logging.hpp"

namespace rdmc::reliability {

namespace {

// -- OOB control wire format (tiny, little-endian) --------------------------

enum class Msg : std::uint8_t {
  kMsgStart = 0,
  kReady = 1,
  kProbe = 2,
  kStatus = 3,
  kComplete = 4,
};

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(std::span<const std::byte> in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(
             in[off + i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(std::span<const std::byte> in, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(
             in[off + i]))
         << (8 * i);
  return v;
}

}  // namespace

// -- Per-rank engine state --------------------------------------------------

struct UdMulticastSession::Node {
  std::size_t rank = 0;
  fabric::NodeId id = 0;
  std::unique_ptr<sched::Schedule> schedule;

  struct Link {
    std::size_t peer_rank = 0;
    fabric::QueuePair* qp = nullptr;
    bool repair = false;  // root<->member repair lane (channel + 1)
    /// Wire blocks queued for sending, availability-gated FIFO.
    std::deque<std::uint32_t> ready;
    /// Relay links: wire block already queued here (never re-relay).
    std::vector<bool> queued;
    std::size_t inflight = 0;
    /// Receive landing zones, one per posted UD recv (real mode).
    std::vector<std::vector<std::byte>> scratch;
  };
  std::vector<Link> links;
  std::unordered_map<std::uint64_t, std::size_t> link_by_qp;
  /// Relay links that carry each wire block, from the schedule.
  std::vector<std::vector<std::uint32_t>> relay_links_for;

  std::vector<bool> have;
  std::size_t have_count = 0;
  bool complete = false;

  // Non-root, real mode: reconstruction buffers.
  std::vector<std::byte> buffer;
  std::vector<std::vector<std::byte>> parity;  // dense parity ordinal
};

/// Root-side per-member repair bookkeeping.
struct UdMulticastSession::RootState {
  struct Member {
    std::size_t round = 0;
    bool done = false;
    std::uint64_t last_have_count = 0;
    std::size_t stagnant_rounds = 0;
    /// Probe round a wire block was last retransmitted in (0 = never).
    std::vector<std::size_t> last_retx_round;
    std::size_t repair_link = SIZE_MAX;  // index into the root's links
  };
  std::vector<Member> members;  // index = rank (0 unused)
  bool probing = false;
};

UdMulticastSession::UdMulticastSession(fabric::Fabric& fabric,
                                       std::vector<fabric::NodeId> members,
                                       SessionOptions options)
    : fabric_(fabric),
      members_(std::move(members)),
      options_(std::move(options)),
      root_(std::make_unique<RootState>()) {
  assert(members_.size() >= 2);
  policy_ = make_policy(options_.policy, options_.rs_k, options_.rs_m);
  // rdmc-lint: allow(wall-clock) documented default for threaded fabrics; SimFabric callers pass the virtual clock
  if (!options_.clock) options_.clock = [] { return obs::wall_seconds(); };
  results_.resize(members_.size());
  if (options_.metrics != nullptr) {
    metric_datagrams_ = &options_.metrics->counter("ud.datagrams");
    metric_retx_ = &options_.metrics->counter("ud.retx_datagrams");
    metric_probes_ = &options_.metrics->counter("ud.probe_rounds");
    metric_latency_ = &options_.metrics->histogram("ud.delivery_latency_s");
  }
}

UdMulticastSession::~UdMulticastSession() {
  // Detach our callbacks before members_ state dies under them.
  for (fabric::NodeId id : members_) {
    fabric_.endpoint(id).set_completion_handler(nullptr);
    fabric_.endpoint(id).set_oob_handler(nullptr);
  }
}

double UdMulticastSession::now() const { return options_.clock(); }

fabric::MemoryView UdMulticastSession::wire_view(const Node& n,
                                                 std::size_t w) const {
  const std::size_t db = policy_->data_block_of(w, data_blocks_);
  if (db != SIZE_MAX) {
    const std::size_t off = db * options_.block_size;
    const std::size_t len = std::min(options_.block_size, size_ - off);
    if (phantom_) return {nullptr, len};
    const std::byte* src =
        n.rank == 0 ? data_ + off : n.buffer.data() + off;
    return {const_cast<std::byte*>(src), len};
  }
  const std::size_t ord = policy_->parity_ordinal_of(w, data_blocks_);
  if (phantom_) return {nullptr, options_.block_size};
  const std::vector<std::byte>& p =
      n.rank == 0 ? root_parity_[ord] : n.parity[ord];
  return {const_cast<std::byte*>(p.data()), options_.block_size};
}

bool UdMulticastSession::send(const std::byte* data, std::size_t size) {
  util::MutexLock lock(mutex_);
  if (size == 0 || data_blocks_ != 0) return false;  // one message/session
  data_ = data;
  size_ = size;
  phantom_ = data == nullptr;
  data_blocks_ = (size + options_.block_size - 1) / options_.block_size;
  wire_blocks_ = policy_->wire_blocks(data_blocks_);
  if (wire_blocks_ > kImmBlockMask) return false;  // immediate encoding cap
  stats_.wire_blocks = wire_blocks_;
  stats_.parity_blocks = wire_blocks_ - data_blocks_;

  // Root-side parity encode (erasure, real mode).
  if (!phantom_ && stats_.parity_blocks > 0) {
    root_parity_.resize(stats_.parity_blocks);
    std::vector<std::byte> padded;  // zero-padded short final block
    for (std::size_t w = 0; w < wire_blocks_; ++w) {
      const std::size_t ord = policy_->parity_ordinal_of(w, data_blocks_);
      if (ord == SIZE_MAX) continue;
      root_parity_[ord].resize(options_.block_size);
    }
    // Encode stripe by stripe via the policy's repair-complement: we reuse
    // RsCode directly through make_policy's erasure geometry by recomputing
    // coefficients here — simplest is to lean on RsCode again.
    RsCode code(options_.rs_k, options_.rs_m);
    const std::size_t k = options_.rs_k;
    const std::size_t m = options_.rs_m;
    const std::size_t stripes = (data_blocks_ + k - 1) / k;
    for (std::size_t s = 0; s < stripes; ++s) {
      std::vector<const std::byte*> sym(k, nullptr);
      std::vector<std::byte*> par(m, nullptr);
      for (std::size_t j = 0; j < k; ++j) {
        const std::size_t block = s * k + j;
        if (block >= data_blocks_) break;  // pad symbols stay null (zero)
        const std::size_t off = block * options_.block_size;
        const std::size_t len = std::min(options_.block_size, size_ - off);
        if (len == options_.block_size) {
          sym[j] = data_ + off;
        } else {
          padded.assign(options_.block_size, std::byte{0});
          std::copy(data_ + off, data_ + off + len, padded.begin());
          sym[j] = padded.data();
        }
      }
      for (std::size_t j = 0; j < m; ++j)
        par[j] = root_parity_[s * m + j].data();
      code.encode(sym, par, options_.block_size);
    }
  }

  // Build every rank's engine, connect QPs, post receives — all on this
  // thread so fabric connect() is never raced from completion handlers.
  nodes_.clear();
  for (std::size_t rank = 0; rank < members_.size(); ++rank)
    setup_node(rank);

  root_->members.resize(members_.size());
  for (std::size_t r = 1; r < members_.size(); ++r) {
    root_->members[r].last_retx_round.assign(wire_blocks_, 0);
    // Locate the root's repair link to this member.
    Node& rn = *nodes_[0];
    for (std::size_t l = 0; l < rn.links.size(); ++l) {
      if (rn.links[l].repair && rn.links[l].peer_rank == r)
        root_->members[r].repair_link = l;
    }
    assert(root_->members[r].repair_link != SIZE_MAX);
  }

  // Install handlers last: state above is complete before any event fires.
  for (std::size_t rank = 0; rank < members_.size(); ++rank) {
    fabric::Endpoint& ep = fabric_.endpoint(members_[rank]);
    ep.set_completion_handler(
        [this, rank](const fabric::Completion& c) { on_completion(rank, c); });
    ep.set_oob_handler(
        [this, rank](fabric::NodeId from, std::span<const std::byte> p) {
          on_oob(rank, from, p);
        });
  }

  // Announce geometry; the root pumps once every member replied kReady.
  std::vector<std::byte> msg;
  msg.push_back(static_cast<std::byte>(Msg::kMsgStart));
  put_u64(msg, size_);
  put_u32(msg, static_cast<std::uint32_t>(options_.block_size));
  put_u32(msg, static_cast<std::uint32_t>(data_blocks_));
  put_u32(msg, static_cast<std::uint32_t>(wire_blocks_));
  lock.unlock();
  for (std::size_t r = 1; r < members_.size(); ++r)
    fabric_.endpoint(members_[0]).send_oob(members_[r], msg);
  return true;
}

void UdMulticastSession::setup_node(std::size_t rank) {
  auto n = std::make_unique<Node>();
  n->rank = rank;
  n->id = members_[rank];
  n->schedule =
      sched::make_schedule(options_.algorithm, members_.size(), rank);
  n->have.assign(wire_blocks_, rank == 0);
  n->have_count = rank == 0 ? wire_blocks_ : 0;
  if (!phantom_ && rank != 0) {
    n->buffer.resize(size_);
    n->parity.resize(stats_.parity_blocks);
  }

  // Relay links: every peer this rank ever exchanges blocks with.
  std::vector<std::size_t> link_of_rank(members_.size(), SIZE_MAX);
  auto link_to = [&](std::size_t peer_rank) -> std::size_t {
    if (link_of_rank[peer_rank] == SIZE_MAX) {
      link_of_rank[peer_rank] = n->links.size();
      Node::Link link;
      link.peer_rank = peer_rank;
      link.queued.assign(wire_blocks_, false);
      n->links.push_back(std::move(link));
    }
    return link_of_rank[peer_rank];
  };

  n->relay_links_for.resize(wire_blocks_);
  const std::size_t steps = n->schedule->num_steps(wire_blocks_);
  for (std::size_t step = 0; step < steps; ++step) {
    for (const sched::Transfer& t :
         n->schedule->sends_at(wire_blocks_, step)) {
      const std::size_t l = link_to(t.peer);
      n->relay_links_for[t.block].push_back(static_cast<std::uint32_t>(l));
    }
    for (const sched::Transfer& t : n->schedule->recvs_at(wire_blocks_, step))
      link_to(t.peer);
  }
  // Repair lane: root to every member on channel + 1.
  if (rank == 0) {
    for (std::size_t r = 1; r < members_.size(); ++r) {
      Node::Link link;
      link.peer_rank = r;
      link.repair = true;
      n->links.push_back(std::move(link));
    }
  } else {
    Node::Link link;
    link.peer_rank = 0;
    link.repair = true;
    n->links.push_back(std::move(link));
  }

  for (Node::Link& link : n->links) {
    const std::uint32_t channel =
        options_.channel + (link.repair ? 1u : 0u);
    link.qp = fabric_.connect(n->id, members_[link.peer_rank], channel);
    n->link_by_qp[link.qp->id()] =
        static_cast<std::size_t>(&link - n->links.data());
  }
  nodes_.push_back(std::move(n));
  Node& node = *nodes_.back();
  for (std::size_t l = 0; l < node.links.size(); ++l) post_recvs(node, l);
}

void UdMulticastSession::post_recvs(Node& n, std::size_t link_idx) {
  Node::Link& link = n.links[link_idx];
  if (!phantom_) {
    link.scratch.assign(options_.recv_depth,
                        std::vector<std::byte>(options_.block_size));
  }
  for (std::size_t slot = 0; slot < options_.recv_depth; ++slot) {
    fabric::MemoryView buf{
        phantom_ ? nullptr : link.scratch[slot].data(),
        options_.block_size};
    const std::uint64_t wr =
        (static_cast<std::uint64_t>(link_idx) << 32) | slot;
    link.qp->post_recv_ud(buf, wr);
  }
}

void UdMulticastSession::pump_link(Node& n, std::size_t link_idx) {
  Node::Link& link = n.links[link_idx];
  while (link.inflight < options_.send_inflight && !link.ready.empty()) {
    const std::uint32_t w = link.ready.front();
    link.ready.pop_front();
    const std::uint32_t imm = w | (link.repair ? kImmRetx : 0u);
    const fabric::PostResult r =
        link.qp->post_send_ud(wire_view(n, w), link_idx, imm);
    if (r != fabric::PostResult::kOk) continue;  // severed lane: give up
    link.inflight++;
    if (link.repair) {
      stats_.retx_datagrams++;
      if (metric_retx_ != nullptr) metric_retx_->add();
    } else {
      stats_.datagrams_sent++;
      if (metric_datagrams_ != nullptr) metric_datagrams_->add();
    }
  }
}

void UdMulticastSession::block_available(Node& n, std::size_t w) {
  for (std::uint32_t l : n.relay_links_for[w]) {
    Node::Link& link = n.links[l];
    if (link.queued[w]) continue;
    link.queued[w] = true;
    link.ready.push_back(static_cast<std::uint32_t>(w));
    pump_link(n, l);
  }
}

void UdMulticastSession::on_completion(std::size_t rank,
                                       const fabric::Completion& c) {
  util::MutexLock lock(mutex_);
  if (rank >= nodes_.size() || !nodes_[rank]) return;
  Node& n = *nodes_[rank];
  auto it = n.link_by_qp.find(c.qp);
  if (it == n.link_by_qp.end()) return;

  if (c.opcode == fabric::WcOpcode::kSendUd) {
    Node::Link& link = n.links[it->second];
    if (link.inflight > 0) link.inflight--;
    pump_link(n, it->second);
    // Root idle => begin source-driven NACK probing.
    if (rank == 0 && pumping_) {
      bool idle = true;
      for (const Node::Link& l : n.links)
        if (l.inflight > 0 || !l.ready.empty()) idle = false;
      if (idle && !root_->probing) {
        root_->probing = true;
        lock.unlock();
        for (std::size_t r = 1; r < members_.size(); ++r) root_probe(r);
      }
    }
    return;
  }

  if (c.opcode != fabric::WcOpcode::kRecvUd) return;
  const std::size_t link_idx = it->second;
  Node::Link& link = n.links[link_idx];
  const std::size_t slot = c.wr_id & 0xFFFFFFFFull;
  if (c.status != fabric::WcStatus::kSuccess) return;  // flushed: teardown

  const std::size_t w = c.immediate & kImmBlockMask;
  const bool retx = (c.immediate & kImmRetx) != 0;
  bool fresh = false;
  if (w < wire_blocks_ && !n.have[w]) {
    fresh = true;
    n.have[w] = true;
    n.have_count++;
    if (!phantom_) {
      const std::size_t db = policy_->data_block_of(w, data_blocks_);
      const std::vector<std::byte>& src = link.scratch[slot];
      if (db != SIZE_MAX) {
        const std::size_t off = db * options_.block_size;
        std::copy(src.begin(), src.begin() + c.byte_len, n.buffer.begin() + off);
      } else {
        const std::size_t ord = policy_->parity_ordinal_of(w, data_blocks_);
        n.parity[ord].assign(src.begin(), src.begin() + c.byte_len);
      }
    }
    if (retx) results_[rank].retx_received++;
  }
  // Hand the landing zone back to the fabric before anything else can
  // arrive into this slot.
  fabric::MemoryView buf{phantom_ ? nullptr : link.scratch[slot].data(),
                         options_.block_size};
  link.qp->post_recv_ud(buf, c.wr_id);

  if (fresh) {
    block_available(n, w);
    member_check_complete(n);
  }
}

void UdMulticastSession::member_check_complete(Node& n) {
  // Called with mutex_ held.
  if (n.rank == 0 || n.complete) return;
  if (!policy_->complete(n.have, data_blocks_)) return;
  n.complete = true;

  const std::uint64_t cost =
      policy_->decode_cost_bytes(n.have, data_blocks_, options_.block_size);
  stats_.decode_bytes += cost;
  double deliver_ts = now();
  if (cost > 0) {
    const double t0 = deliver_ts;
    if (!phantom_) {
      policy_->repair(n.have, data_blocks_, options_.block_size,
                      n.buffer.data(), size_, n.parity);
    }
    if (options_.charge_cpu) {
      deliver_ts = options_.charge_cpu(
          n.id, static_cast<double>(cost) / options_.decode_Bps);
    } else {
      deliver_ts = now();
    }
    if (auto* tr = obs::tracer()) {
      tr->begin(obs::Cat::kApp, "ud.repair", n.id, n.id, t0, "bytes", cost);
      tr->end(obs::Cat::kApp, "ud.repair", n.id, n.id, deliver_ts, "bytes",
              cost);
    }
  }
  if (auto* tr = obs::tracer())
    tr->instant(obs::Cat::kApp, "ud.deliver", n.id, deliver_ts, "rank",
                n.rank);
  results_[n.rank].deliver_ts = deliver_ts;
  if (metric_latency_ != nullptr)
    metric_latency_->add(deliver_ts - stats_.msg_start_ts);
  finish_member(n.rank, /*failed=*/false);

  // Tell the root (protocol-complete even though state is shared here).
  std::vector<std::byte> msg;
  msg.push_back(static_cast<std::byte>(Msg::kComplete));
  fabric_.endpoint(n.id).send_oob(members_[0], msg);
}

void UdMulticastSession::finish_member(std::size_t rank, bool failed) {
  // Called with mutex_ held.
  MemberResult& res = results_[rank];
  if (res.complete || res.failed) return;
  res.complete = !failed;
  res.failed = failed;
  if (rank < root_->members.size()) root_->members[rank].done = true;
  finished_members_++;
  if (finished_members_ == members_.size() - 1) {
    done_ = true;
    stats_.last_deliver_ts = 0.0;
    for (std::size_t r = 1; r < members_.size(); ++r) {
      stats_.last_deliver_ts =
          std::max(stats_.last_deliver_ts, results_[r].deliver_ts);
    }
    done_cv_.notify_all();
  }
}

void UdMulticastSession::root_probe(std::size_t member_rank) {
  std::vector<std::byte> msg;
  {
    util::MutexLock lock(mutex_);
    RootState::Member& rm = root_->members[member_rank];
    if (rm.done || done_) return;
    if (rm.round >= options_.max_rounds) {
      RDMC_LOG_WARN("reliability", "giving up on member %zu after %zu rounds",
                    member_rank, rm.round);
      finish_member(member_rank, /*failed=*/true);
      return;
    }
    rm.round++;
    stats_.probe_rounds++;
    if (metric_probes_ != nullptr) metric_probes_->add();
    msg.push_back(static_cast<std::byte>(Msg::kProbe));
    put_u32(msg, static_cast<std::uint32_t>(rm.round));
  }
  fabric_.endpoint(members_[0]).send_oob(members_[member_rank], msg);
}

void UdMulticastSession::root_on_status(
    std::size_t member_rank, const std::vector<std::uint32_t>& missing,
    std::uint64_t have_count) {
  util::MutexLock lock(mutex_);
  RootState::Member& rm = root_->members[member_rank];
  if (rm.done || done_) return;

  if (have_count > rm.last_have_count) {
    rm.last_have_count = have_count;
    rm.stagnant_rounds = 0;
  } else {
    rm.stagnant_rounds++;
  }
  // kNone never repairs: once relays drain, a lossy member is permanently
  // stuck — declare it failed instead of probing forever.
  if (policy_->kind() == Policy::kNone &&
      rm.stagnant_rounds >= options_.giveup_rounds) {
    finish_member(member_rank, /*failed=*/true);
    return;
  }

  Node& rn = *nodes_[0];
  const std::size_t link_idx = rm.repair_link;
  std::size_t queued = 0;
  for (std::uint32_t w : missing) {
    if (w >= wire_blocks_) continue;
    const std::size_t last = rm.last_retx_round[w];
    if (last != 0 && rm.round - last < options_.retx_holdoff) continue;
    rm.last_retx_round[w] = rm.round;
    rn.links[link_idx].ready.push_back(w);
    queued++;
  }
  if (queued > 0) pump_link(rn, link_idx);
  lock.unlock();
  root_probe(member_rank);  // next round, paced by the OOB round trip
}

void UdMulticastSession::on_oob(std::size_t rank, fabric::NodeId from,
                                std::span<const std::byte> payload) {
  if (payload.empty()) return;
  const Msg type = static_cast<Msg>(std::to_integer<std::uint8_t>(payload[0]));
  std::size_t from_rank = SIZE_MAX;
  for (std::size_t r = 0; r < members_.size(); ++r)
    if (members_[r] == from) from_rank = r;
  if (from_rank == SIZE_MAX) return;

  switch (type) {
    case Msg::kMsgStart: {
      // Geometry was prearranged on the driver thread; acknowledge.
      std::vector<std::byte> msg;
      msg.push_back(static_cast<std::byte>(Msg::kReady));
      fabric_.endpoint(members_[rank]).send_oob(members_[0], msg);
      return;
    }
    case Msg::kReady: {
      {
        util::MutexLock lock(mutex_);
        ready_count_++;
        if (ready_count_ == members_.size() - 1 && !pumping_) {
          pumping_ = true;
          stats_.msg_start_ts = now();
          if (auto* tr = obs::tracer()) {
            tr->instant(obs::Cat::kApp, "ud.msgstart", members_[0],
                        stats_.msg_start_ts, "bytes,blocks", size_,
                        wire_blocks_);
          }
          Node& rn = *nodes_[0];
          for (std::size_t w = 0; w < wire_blocks_; ++w)
            block_available(rn, w);
        }
      }
      return;
    }
    case Msg::kProbe: {
      if (payload.size() < 5) return;
      const std::uint32_t round = get_u32(payload, 1);
      std::vector<std::byte> msg;
      {
        util::MutexLock lock(mutex_);
        Node& n = *nodes_[rank];
        if (n.complete || results_[rank].failed) {
          msg.push_back(static_cast<std::byte>(Msg::kComplete));
        } else {
          const std::vector<std::uint32_t> missing = policy_->nack_set(
              n.have, data_blocks_, options_.nack_window);
          msg.push_back(static_cast<std::byte>(Msg::kStatus));
          put_u32(msg, round);
          put_u64(msg, n.have_count);
          put_u32(msg, static_cast<std::uint32_t>(missing.size()));
          for (std::uint32_t w : missing) put_u32(msg, w);
          results_[rank].status_reports++;
          if (auto* tr = obs::tracer()) {
            tr->instant(obs::Cat::kApp, "ud.nack", n.id, now(),
                        "round,missing", round, missing.size());
          }
        }
      }
      fabric_.endpoint(members_[rank]).send_oob(members_[0], msg);
      return;
    }
    case Msg::kStatus: {
      if (payload.size() < 17) return;
      const std::uint64_t have_count = get_u64(payload, 5);
      const std::uint32_t count = get_u32(payload, 13);
      std::vector<std::uint32_t> missing;
      missing.reserve(count);
      for (std::uint32_t i = 0;
           i < count && 17 + 4 * (i + 1) <= payload.size(); ++i) {
        missing.push_back(get_u32(payload, 17 + 4 * i));
      }
      root_on_status(from_rank, missing, have_count);
      return;
    }
    case Msg::kComplete: {
      util::MutexLock lock(mutex_);
      if (from_rank < root_->members.size())
        root_->members[from_rank].done = true;
      return;
    }
  }
}

bool UdMulticastSession::done() const {
  util::MutexLock lock(mutex_);
  return done_;
}

bool UdMulticastSession::all_complete() const {
  util::MutexLock lock(mutex_);
  if (!done_) return false;
  for (std::size_t r = 1; r < members_.size(); ++r)
    if (!results_[r].complete) return false;
  return true;
}

void UdMulticastSession::wait_done() {
  util::MutexLock lock(mutex_);
  while (!done_) done_cv_.wait(lock);
}

std::span<const std::byte> UdMulticastSession::member_data(
    std::size_t rank) const {
  util::MutexLock lock(mutex_);
  if (rank == 0 || rank >= nodes_.size() || phantom_) return {};
  return {nodes_[rank]->buffer.data(), nodes_[rank]->buffer.size()};
}

}  // namespace rdmc::reliability
