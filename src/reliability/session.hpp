// UdMulticastSession: multicast one object over unreliable datagrams with
// a software reliability policy.
//
// The session drives every member of the group in one process (exactly how
// the benches drive MemFabric/SimFabric), as a pure event-driven state
// machine: fabric completions and OOB control messages in, verb posts out,
// so identical code runs on the threaded fabrics and the virtual-time
// simulator.
//
// Data path. The policy defines a wire-block rotation (data blocks, plus
// Reed-Solomon parity for the erasure policy) and an existing schedule
// from src/sched maps that rotation onto point-to-point transfers. Unlike
// the RC engine, transfers ride post_send_ud: no ready-for-block credits,
// no break-on-loss — a relay simply sends a scheduled block the moment it
// holds it (out-of-order relay; RC's per-QP FIFO gating deliberately does
// not apply, because a dropped datagram must never stall the blocks queued
// behind it). Each datagram's immediate carries the wire-block index in
// bits 0..23 and a retransmission flag in bit 31.
//
// Control path (reliable OOB mesh):
//   kMsgStart  root -> all     geometry announcement
//   kReady     member -> root  receives posted; root pumps only after all
//   kProbe     root -> member  "what are you missing?" (source-driven NACK)
//   kStatus    member -> root  missing wire blocks, capped per round
//   kComplete  member -> root  message reconstructed (after decode)
//
// Repair. The root retransmits NACKed blocks over dedicated repair QPs
// (root <-> each member on channel base+1) with the retx immediate flag,
// so repairs bypass the relay tree and trace spans can attribute
// retransmit time separately. A per-(member, block) holdoff keeps a block
// from being retransmitted again until `retx_holdoff` probe rounds have
// passed — NACKs race in-flight repairs, and the holdoff absorbs exactly
// that race. Probe rounds are paced by the OOB round-trip; there are no
// timers, so the same logic terminates under virtual and wall clocks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fabric/fabric.hpp"
#include "obs/metrics.hpp"
#include "reliability/policy.hpp"
#include "sched/schedule.hpp"
#include "util/thread_annotations.hpp"

namespace rdmc::reliability {

struct SessionOptions {
  sched::Algorithm algorithm = sched::Algorithm::kBinomialPipeline;
  Policy policy = Policy::kSelectiveRepeat;
  std::size_t block_size = 64 * 1024;
  /// Erasure stripe geometry: k data + m parity symbols.
  std::size_t rs_k = 8;
  std::size_t rs_m = 2;
  /// Max wire blocks reported per kStatus and retransmitted per round.
  std::size_t nack_window = 1024;
  /// UD receives kept posted per incoming queue pair.
  std::size_t recv_depth = 64;
  /// Concurrent unacknowledged datagrams per outgoing queue pair (paces
  /// the threaded fabrics so receivers can re-post receives).
  std::size_t send_inflight = 32;
  /// A NACKed block is not retransmitted again for this many probe rounds
  /// (absorbs the NACK-vs-in-flight-repair race).
  std::size_t retx_holdoff = 2;
  /// kNone gives up on a member after this many probe rounds without
  /// progress; repair policies keep probing until max_rounds.
  std::size_t giveup_rounds = 5;
  std::size_t max_rounds = 10000;
  /// Fabric channel for the relay tree; repair QPs use channel + 1.
  std::uint32_t channel = 0;
  /// Clock used for trace timestamps and latency stats. Defaults to host
  /// wall time; pass the simulator's now() under SimFabric.
  std::function<double()> clock;
  /// Virtual-CPU charge hook for decode work: (node, seconds) -> time the
  /// work completes. Defaults to executing in-line (threaded fabrics).
  std::function<double(fabric::NodeId, double)> charge_cpu;
  /// Modelled erasure decode rate for the charge hook, bytes/second.
  double decode_Bps = 1.0e9;
  /// Optional live metrics sink (a labeled obs::MetricsScope, e.g.
  /// registry.scope("policy=sr,cell=3")). The session bumps datagram /
  /// retransmit / probe counters as it posts and records per-member
  /// delivery latency into "ud.delivery_latency_s" at delivery time, so
  /// telemetry windows and SLO trackers see the session live rather than
  /// via SessionStats after the fact. Lookups happen once at
  /// construction; the hot path touches cached references only. Must
  /// outlive the session.
  obs::MetricsScope* metrics = nullptr;
};

struct MemberResult {
  bool complete = false;
  bool failed = false;  // gave up (kNone with losses, or max_rounds)
  double deliver_ts = 0.0;
  std::uint64_t retx_received = 0;
  std::uint64_t status_reports = 0;
};

struct SessionStats {
  std::uint64_t wire_blocks = 0;       // rotation size (data + parity)
  std::uint64_t parity_blocks = 0;     // parity portion of the rotation
  std::uint64_t datagrams_sent = 0;    // relay-tree datagrams posted
  std::uint64_t retx_datagrams = 0;    // repair datagrams posted
  std::uint64_t probe_rounds = 0;
  std::uint64_t decode_bytes = 0;      // modelled reconstruction work
  double msg_start_ts = 0.0;           // pump start (after all kReady)
  double last_deliver_ts = 0.0;        // slowest member's delivery
};

class UdMulticastSession {
 public:
  /// `members[0]` is the root. The fabric must host every member.
  UdMulticastSession(fabric::Fabric& fabric, std::vector<fabric::NodeId> members,
                     SessionOptions options);
  ~UdMulticastSession();

  UdMulticastSession(const UdMulticastSession&) = delete;
  UdMulticastSession& operator=(const UdMulticastSession&) = delete;

  /// Multicast [data, data+size) from the root. Null data runs in phantom
  /// mode (no payload bytes move; availability and timing are exact).
  /// One message per session. Returns false on bad arguments.
  bool send(const std::byte* data, std::size_t size);

  /// All members have either completed or been given up on.
  bool done() const;
  /// Every member completed (no give-ups).
  bool all_complete() const;
  /// Block until done() — threaded fabrics only (under SimFabric, run the
  /// simulator instead; events drive the session to completion).
  void wait_done();

  /// Quiescent-read accessors: valid once done() returned true (or under
  /// SimFabric after the simulator drained). Returning a reference to
  /// guarded state without the lock is deliberate — copies per poll would
  /// be waste, and a post-done reader races nothing; hence the analysis
  /// opt-out.
  const SessionStats& stats() const RDMC_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }
  const std::vector<MemberResult>& results() const
      RDMC_NO_THREAD_SAFETY_ANALYSIS {
    return results_;
  }

  /// Reconstructed message at a non-root member (real mode only).
  std::span<const std::byte> member_data(std::size_t rank) const;

 private:
  struct Node;
  struct RootState;

  static constexpr std::uint32_t kImmBlockMask = 0x00FFFFFFu;
  static constexpr std::uint32_t kImmRetx = 0x80000000u;

  double now() const;
  // Lock-held helpers: callers are send() and the completion/OOB handlers,
  // which each take mutex_ themselves.
  void setup_node(std::size_t rank) RDMC_REQUIRES(mutex_);
  void post_recvs(Node& n, std::size_t link) RDMC_REQUIRES(mutex_);
  void pump_link(Node& n, std::size_t link) RDMC_REQUIRES(mutex_);
  void block_available(Node& n, std::size_t wire_block)
      RDMC_REQUIRES(mutex_);
  void on_completion(std::size_t rank, const fabric::Completion& c);
  void on_oob(std::size_t rank, fabric::NodeId from,
              std::span<const std::byte> payload);
  void root_probe(std::size_t member_rank);
  void root_on_status(std::size_t member_rank,
                      const std::vector<std::uint32_t>& missing,
                      std::uint64_t have_count);
  void member_check_complete(Node& n) RDMC_REQUIRES(mutex_);
  void finish_member(std::size_t member_rank, bool failed)
      RDMC_REQUIRES(mutex_);
  fabric::MemoryView wire_view(const Node& n, std::size_t wire_block) const
      RDMC_REQUIRES(mutex_);

  fabric::Fabric& fabric_;
  std::vector<fabric::NodeId> members_;
  SessionOptions options_;
  std::unique_ptr<ReliabilityPolicy> policy_;

  mutable util::Mutex mutex_;
  util::CondVar done_cv_;

  // Message geometry (fixed at send()).
  const std::byte* data_ RDMC_GUARDED_BY(mutex_) = nullptr;  // null = phantom
  std::size_t size_ RDMC_GUARDED_BY(mutex_) = 0;
  std::size_t data_blocks_ RDMC_GUARDED_BY(mutex_) = 0;
  std::size_t wire_blocks_ RDMC_GUARDED_BY(mutex_) = 0;
  bool phantom_ RDMC_GUARDED_BY(mutex_) = true;
  /// Root-side parity symbols, dense ordinal -> block_size bytes.
  std::vector<std::vector<std::byte>> root_parity_ RDMC_GUARDED_BY(mutex_);

  std::vector<std::unique_ptr<Node>> nodes_ RDMC_GUARDED_BY(mutex_);
  std::unique_ptr<RootState> root_ RDMC_GUARDED_BY(mutex_);
  std::vector<MemberResult> results_ RDMC_GUARDED_BY(mutex_);  // by rank
  std::size_t ready_count_ RDMC_GUARDED_BY(mutex_) = 0;
  std::size_t finished_members_ RDMC_GUARDED_BY(mutex_) = 0;
  bool pumping_ RDMC_GUARDED_BY(mutex_) = false;
  bool done_ RDMC_GUARDED_BY(mutex_) = false;
  SessionStats stats_ RDMC_GUARDED_BY(mutex_);

  // Cached metric handles (null when options_.metrics is unset).
  obs::Counter* metric_datagrams_ = nullptr;
  obs::Counter* metric_retx_ = nullptr;
  obs::Counter* metric_probes_ = nullptr;
  obs::Log2Histogram* metric_latency_ = nullptr;
};

}  // namespace rdmc::reliability
