#include "sched/binomial_pipeline.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/bitops.hpp"
#include "util/thread_annotations.hpp"

namespace rdmc::sched {

BinomialPipelineSchedule::BinomialPipelineSchedule(std::size_t num_nodes,
                                                   std::size_t rank)
    : Schedule(num_nodes, rank) {
  assert(num_nodes >= 1 && rank < num_nodes);
  if (num_nodes > 1) {
    dim_ = util::ceil_log2(num_nodes);
    num_vertices_ = 1u << dim_;
    pow2_ = util::is_pow2(num_nodes);
  }
}

std::uint32_t BinomialPipelineSchedule::node_of(std::uint32_t vertex) const {
  if (vertex < num_nodes_) return vertex;
  // Absent vertices live in [n, 2^l); their host drops the top bit. Because
  // n > 2^(l-1), the host index is always a real node below 2^(l-1).
  return vertex - (num_vertices_ >> 1);
}

std::vector<std::uint32_t> BinomialPipelineSchedule::my_vertices() const {
  std::vector<std::uint32_t> vs{static_cast<std::uint32_t>(rank_)};
  const std::uint32_t shadow =
      static_cast<std::uint32_t>(rank_) + (num_vertices_ >> 1);
  if (shadow >= num_nodes_ && shadow < num_vertices_) vs.push_back(shadow);
  return vs;
}

std::optional<BinomialPipelineSchedule::VertexSend>
BinomialPipelineSchedule::vertex_send(std::uint32_t vertex,
                                      std::size_t num_blocks,
                                      std::size_t step) const {
  if (num_blocks == 0 || num_nodes_ <= 1 || step >= num_steps(num_blocks))
    return std::nullopt;
  const std::uint32_t d = static_cast<std::uint32_t>(step % dim_);
  const std::uint32_t partner = vertex ^ (1u << d);
  const std::uint32_t sigma = util::rotr_bits(vertex, d, dim_);
  if (sigma == 0) {
    // The sender: a fresh block each of the first k steps, then the last.
    return VertexSend{partner, std::min(step, num_blocks - 1)};
  }
  if (sigma == 1) return std::nullopt;  // partner is the sender
  const auto r = static_cast<std::size_t>(util::trailing_zeros(sigma));
  // Send the highest-numbered block this vertex holds: block j - l + r.
  if (step + r < dim_) return std::nullopt;  // nothing received yet
  const std::size_t block = step + r - dim_;
  return VertexSend{partner, std::min(block, num_blocks - 1)};
}

// ---------------------------------------------------------------------------
// Pruned plan for non-power-of-two groups.
// ---------------------------------------------------------------------------

namespace {
util::Mutex g_plan_mutex;
std::map<std::pair<std::size_t, std::size_t>,
         std::shared_ptr<const BinomialPipelineSchedule::Plan>>
    g_plan_cache RDMC_GUARDED_BY(g_plan_mutex);
}  // namespace

std::shared_ptr<const BinomialPipelineSchedule::Plan>
BinomialPipelineSchedule::plan_for(std::size_t num_blocks) const {
  if (cached_plan_ && cached_k_ == num_blocks) return cached_plan_;
  const auto key = std::make_pair(num_nodes_, num_blocks);
  {
    util::MutexLock lock(g_plan_mutex);
    auto it = g_plan_cache.find(key);
    if (it != g_plan_cache.end()) {
      cached_plan_ = it->second;
      cached_k_ = num_blocks;
      return cached_plan_;
    }
  }

  // Simulate the virtual hypercube once at host granularity, keeping only
  // the first delivery of each block to each host.
  auto plan = std::make_shared<Plan>();
  plan->sends.resize(num_nodes_);
  plan->recvs.resize(num_nodes_);
  std::vector<std::vector<bool>> have(
      num_nodes_, std::vector<bool>(num_blocks, false));
  have[0].assign(num_blocks, true);

  struct Pending {
    std::uint32_t src_host, dst_host, block, src_vertex;
  };
  const std::size_t steps = num_steps(num_blocks);
  std::vector<Pending> pending;
  for (std::size_t j = 0; j < steps; ++j) {
    pending.clear();
    for (std::uint32_t v = 0; v < num_vertices_; ++v) {
      const auto send = vertex_send(v, num_blocks, j);
      if (!send) continue;
      const std::uint32_t a = node_of(v);
      const std::uint32_t b = node_of(send->target_vertex);
      if (a == b) continue;  // intra-host vertex exchange
      if (have[b][send->block]) continue;  // host already has it: prune
      pending.push_back(
          {a, b, static_cast<std::uint32_t>(send->block), v});
    }
    // Same-step duplicates to one host: keep the lowest source vertex.
    for (const Pending& p : pending) {
      if (have[p.dst_host][p.block]) continue;
      have[p.dst_host][p.block] = true;
      const auto step32 = static_cast<std::uint32_t>(j);
      plan->sends[p.src_host].push_back({step32, p.dst_host, p.block});
      plan->recvs[p.dst_host].push_back({step32, p.src_host, p.block});
    }
  }
#ifndef NDEBUG
  for (std::size_t h = 0; h < num_nodes_; ++h)
    for (std::size_t b = 0; b < num_blocks; ++b)
      assert(have[h][b] && "pruned plan left a host incomplete");
#endif

  util::MutexLock lock(g_plan_mutex);
  auto [it, inserted] = g_plan_cache.emplace(key, std::move(plan));
  // Bound the cache: distinct (n, k) pairs are few in practice, but guard
  // against pathological churn.
  if (g_plan_cache.size() > 256) g_plan_cache.erase(g_plan_cache.begin());
  cached_plan_ = it->second;
  cached_k_ = num_blocks;
  return cached_plan_;
}

// ---------------------------------------------------------------------------
// Schedule interface.
// ---------------------------------------------------------------------------

std::vector<Transfer> BinomialPipelineSchedule::sends_at(
    std::size_t num_blocks, std::size_t step) const {
  std::vector<Transfer> out;
  if (num_blocks == 0 || num_nodes_ <= 1 || step >= num_steps(num_blocks))
    return out;
  if (pow2_) {
    if (auto send = vertex_send(static_cast<std::uint32_t>(rank_),
                                num_blocks, step)) {
      out.push_back(Transfer{node_of(send->target_vertex), send->block});
    }
    return out;
  }
  const auto plan = plan_for(num_blocks);
  const auto& entries = plan->sends[rank_];
  const auto lo = std::lower_bound(
      entries.begin(), entries.end(), step,
      [](const Plan::Entry& e, std::size_t s) { return e.step < s; });
  for (auto it = lo; it != entries.end() && it->step == step; ++it)
    out.push_back(Transfer{it->peer, it->block});
  return out;
}

std::vector<Transfer> BinomialPipelineSchedule::recvs_at(
    std::size_t num_blocks, std::size_t step) const {
  std::vector<Transfer> out;
  if (num_blocks == 0 || num_nodes_ <= 1 || step >= num_steps(num_blocks))
    return out;
  if (pow2_) {
    const std::uint32_t d = static_cast<std::uint32_t>(step % dim_);
    const auto v = static_cast<std::uint32_t>(rank_);
    const std::uint32_t partner = v ^ (1u << d);
    if (auto send = vertex_send(partner, num_blocks, step)) {
      assert(send->target_vertex == v);
      out.push_back(Transfer{node_of(partner), send->block});
    }
    return out;
  }
  const auto plan = plan_for(num_blocks);
  const auto& entries = plan->recvs[rank_];
  const auto lo = std::lower_bound(
      entries.begin(), entries.end(), step,
      [](const Plan::Entry& e, std::size_t s) { return e.step < s; });
  for (auto it = lo; it != entries.end() && it->step == step; ++it)
    out.push_back(Transfer{it->peer, it->block});
  return out;
}

}  // namespace rdmc::sched
