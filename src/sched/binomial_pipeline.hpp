// Binomial pipeline (paper §4.3-4.4, after Ganesan & Seshadri [ICDCS'05]).
//
// A virtual hypercube of dimension l is overlaid on the group; at step j
// every node exchanges a block with its neighbour along direction j % l.
// The sender injects a new block each of the first k steps (then repeats
// the last block); every other node sends the highest-numbered block it
// holds. All nodes finish within l + k - 1 steps, and in steady state every
// node sends and receives simultaneously — full bidirectional NIC
// utilisation, the paper's headline property.
//
// Closed-form send rule (§4.4): with sigma = right circular shift on l-bit
// ids and r = trailing zeros, at step j node i sends to i XOR 2^(j%l):
//     block min(j, k-1)        if sigma(i, j%l) == 0        (the sender)
//     nothing                  if sigma(i, j%l) == 1        (sender's peer)
//     block min(j-l+r, k-1)    if j-l+r >= 0, r = tr_ze(sigma(i, j%l))
//     nothing                  otherwise.
//
// Arbitrary group sizes (the paper omits them "for brevity"): we embed the
// n nodes in the 2^l-vertex hypercube, l = ceil(log2 n), and *alias* each
// absent vertex v >= n to real node v - 2^(l-1). An aliased node executes
// the duties of both of its vertices (intra-node exchanges become no-ops);
// since an aliased vertex's virtual block set is always a subset of its
// host's, causality is preserved, and hypercube completeness guarantees
// every real node still receives every block.
//
// Left at that, hosts with a shadow vertex would carry double send duty on
// every step and bottleneck the pipeline. So for non-powers of two the
// schedule is *pruned* at the host level: simulating the virtual hypercube
// once (cached per (n, k) process-wide), every delivery of a block to a
// host that already holds it is dropped. Each host then receives each
// block exactly once, total traffic is exactly (n-1)*k block transfers,
// and the residual per-step imbalance is absorbed by the pipeline's slack.
// The cost matches the paper's remark that the final receipt spreads over
// at most two extra asynchronous steps; the property suite
// (tests/test_schedules.cpp) verifies completeness, causality, exactly-
// once delivery and the step bound for every n in [2, 64].
#pragma once

#include <memory>
#include <optional>

#include "sched/schedule.hpp"

namespace rdmc::sched {

class BinomialPipelineSchedule final : public Schedule {
 public:
  BinomialPipelineSchedule(std::size_t num_nodes, std::size_t rank);

  std::vector<Transfer> sends_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::vector<Transfer> recvs_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::size_t num_steps(std::size_t num_blocks) const override {
    return num_nodes_ > 1 ? dim_ + num_blocks - 1 : 0;
  }
  std::string_view name() const override { return "binomial_pipeline"; }

  std::size_t hypercube_dim() const { return dim_; }

  /// Pruned host-level plan for a non-power-of-two group (shared,
  /// immutable, cached per (n, k) process-wide).
  struct Plan {
    struct Entry {
      std::uint32_t step;
      std::uint32_t peer;
      std::uint32_t block;
    };
    /// Per host, ordered by (step, source-vertex) — both endpoints of a
    /// pair emit transfers in the same order.
    std::vector<std::vector<Entry>> sends;
    std::vector<std::vector<Entry>> recvs;
  };

 private:
  struct VertexSend {
    std::uint32_t target_vertex;
    std::size_t block;
  };

  /// The §4.4 closed-form rule on the full 2^l-vertex hypercube.
  std::optional<VertexSend> vertex_send(std::uint32_t vertex,
                                        std::size_t num_blocks,
                                        std::size_t step) const;

  /// Real node hosting a (possibly absent) vertex.
  std::uint32_t node_of(std::uint32_t vertex) const;

  /// The one or two vertices this node hosts.
  std::vector<std::uint32_t> my_vertices() const;

  /// Fetch (building and caching if needed) the pruned plan for k blocks.
  std::shared_ptr<const Plan> plan_for(std::size_t num_blocks) const;

  std::uint32_t dim_ = 0;           // l
  std::uint32_t num_vertices_ = 1;  // 2^l
  bool pow2_ = true;
  /// Last plan this instance used (one message size in flight per group).
  mutable std::shared_ptr<const Plan> cached_plan_;
  mutable std::size_t cached_k_ = 0;
};

}  // namespace rdmc::sched
