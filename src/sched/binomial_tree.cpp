#include "sched/binomial_tree.hpp"

#include "util/bitops.hpp"

namespace rdmc::sched {

BinomialTreeSchedule::BinomialTreeSchedule(std::size_t num_nodes,
                                           std::size_t rank)
    : Schedule(num_nodes, rank),
      rounds_(num_nodes > 1 ? util::ceil_log2(num_nodes) : 0) {}

std::vector<Transfer> BinomialTreeSchedule::sends_at(
    std::size_t num_blocks, std::size_t step) const {
  if (num_blocks == 0 || step >= num_steps(num_blocks)) return {};
  const std::size_t round = step / num_blocks;
  const std::size_t block = step % num_blocks;
  const std::size_t stride = std::size_t{1} << round;
  if (rank_ >= stride) return {};  // doesn't hold the message yet
  const std::size_t target = rank_ + stride;
  if (target >= num_nodes_) return {};
  return {Transfer{static_cast<std::uint32_t>(target), block}};
}

std::vector<Transfer> BinomialTreeSchedule::recvs_at(
    std::size_t num_blocks, std::size_t step) const {
  if (num_blocks == 0 || rank_ == 0 || step >= num_steps(num_blocks))
    return {};
  const std::size_t round = step / num_blocks;
  const std::size_t block = step % num_blocks;
  // Node i joins the tree in round floor(log2 i), fed by i - 2^round.
  if (round != util::floor_log2(rank_)) return {};
  const std::size_t source = rank_ - (std::size_t{1} << round);
  return {Transfer{static_cast<std::uint32_t>(source), block}};
}

}  // namespace rdmc::sched
