// Binomial tree multicast (paper §4.3, Fig 3 left): whole-message relays.
//
// In round j every node that already holds the message sends it to a node
// that does not: node i (i < 2^j) sends to i + 2^j. Latency is
// ceil(log2 n) whole-message transfer times — better than sequential, but
// inner transfers cannot start until outer ones finish, which is why the
// paper pipelines blocks instead for large messages.
//
// Step numbering: round j occupies global steps j*k .. (j+1)*k-1 (the k
// blocks of the message sent back-to-back to the same target).
#pragma once

#include "sched/schedule.hpp"

namespace rdmc::sched {

class BinomialTreeSchedule final : public Schedule {
 public:
  BinomialTreeSchedule(std::size_t num_nodes, std::size_t rank);

  std::vector<Transfer> sends_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::vector<Transfer> recvs_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::size_t num_steps(std::size_t num_blocks) const override {
    return rounds_ * num_blocks;
  }
  std::string_view name() const override { return "binomial_tree"; }

 private:
  std::size_t rounds_;  // ceil(log2 n)
};

}  // namespace rdmc::sched
