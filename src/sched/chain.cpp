#include "sched/chain.hpp"

namespace rdmc::sched {

std::vector<Transfer> ChainSchedule::sends_at(std::size_t num_blocks,
                                              std::size_t step) const {
  if (num_blocks == 0 || rank_ + 1 >= num_nodes_) return {};  // tail relays nothing
  // Node i sends block (step - i) to node i+1 when 0 <= step - i < k.
  if (step < rank_) return {};
  const std::size_t block = step - rank_;
  if (block >= num_blocks) return {};
  return {Transfer{static_cast<std::uint32_t>(rank_ + 1), block}};
}

std::vector<Transfer> ChainSchedule::recvs_at(std::size_t num_blocks,
                                              std::size_t step) const {
  if (num_blocks == 0 || rank_ == 0) return {};
  // Node i receives block (step - (i - 1)) from node i-1.
  if (step + 1 < rank_) return {};
  const std::size_t block = step + 1 - rank_;
  if (block >= num_blocks) return {};
  return {Transfer{static_cast<std::uint32_t>(rank_ - 1), block}};
}

}  // namespace rdmc::sched
