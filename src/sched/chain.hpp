// Chain send (paper §4.3): a bucket brigade in the style of chain
// replication [van Renesse & Schneider, OSDI'04]. Node i relays every block
// to node i+1 as soon as it arrives. Inner nodes use their full
// bidirectional bandwidth, but node i sits idle for the first i-1 steps, so
// worst-case latency is high — the behaviour Fig 4 contrasts with the
// binomial pipeline.
//
// Step numbering: node i receives block b at step b + i - 1 and forwards it
// at step b + i; total steps = (n - 1) + (k - 1) + ... = n + k - 2.
#pragma once

#include "sched/schedule.hpp"

namespace rdmc::sched {

class ChainSchedule final : public Schedule {
 public:
  ChainSchedule(std::size_t num_nodes, std::size_t rank)
      : Schedule(num_nodes, rank) {}

  std::vector<Transfer> sends_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::vector<Transfer> recvs_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::size_t num_steps(std::size_t num_blocks) const override {
    return num_nodes_ + num_blocks - 2;
  }
  std::string_view name() const override { return "chain"; }
};

}  // namespace rdmc::sched
