#include "sched/hybrid.hpp"

#include <algorithm>
#include <cassert>
#include <map>

namespace rdmc::sched {

HybridSchedule::HybridSchedule(std::size_t num_nodes, std::size_t rank,
                               std::vector<std::uint32_t> rack_of)
    : Schedule(num_nodes, rank), rack_of_(std::move(rack_of)) {
  assert(rack_of_.size() == num_nodes);

  // Leader of a rack = its lowest group rank. Order racks so the sender's
  // rack comes first, then by leader rank: that makes the sender the root
  // of the inter-rack pipeline.
  std::map<std::uint32_t, std::uint32_t> leader_of_rack;
  for (std::uint32_t r = 0; r < num_nodes; ++r) {
    auto [it, inserted] = leader_of_rack.try_emplace(rack_of_[r], r);
    if (!inserted) it->second = std::min(it->second, r);
  }
  for (const auto& [rack, leader] : leader_of_rack)
    leaders_.push_back(leader);
  std::sort(leaders_.begin(), leaders_.end());
  assert(leaders_.front() == 0 && "sender must lead its own rack");

  const std::uint32_t my_rack = rack_of_[rank];
  for (std::uint32_t r = 0; r < num_nodes; ++r)
    if (rack_of_[r] == my_rack) rack_members_.push_back(r);
  // Leader first (it is the intra-rack root).
  std::sort(rack_members_.begin(), rack_members_.end());

  const bool leader = rack_members_.front() == rank;
  if (leader && leaders_.size() > 1) {
    const auto inter_rank = static_cast<std::size_t>(
        std::find(leaders_.begin(), leaders_.end(),
                  static_cast<std::uint32_t>(rank)) -
        leaders_.begin());
    inter_ = std::make_unique<BinomialPipelineSchedule>(leaders_.size(),
                                                        inter_rank);
  }
  if (rack_members_.size() > 1) {
    const auto intra_rank = static_cast<std::size_t>(
        std::find(rack_members_.begin(), rack_members_.end(),
                  static_cast<std::uint32_t>(rank)) -
        rack_members_.begin());
    intra_ = std::make_unique<BinomialPipelineSchedule>(rack_members_.size(),
                                                        intra_rank);
  }
}

std::vector<Transfer> HybridSchedule::sends_at(std::size_t num_blocks,
                                               std::size_t step) const {
  std::vector<Transfer> out;
  if (inter_) {
    for (const Transfer& t : inter_->sends_at(num_blocks, step))
      out.push_back(Transfer{leaders_[t.peer], t.block});
  }
  if (intra_ && step >= kIntraOffset) {
    for (const Transfer& t : intra_->sends_at(num_blocks, step - kIntraOffset))
      out.push_back(Transfer{rack_members_[t.peer], t.block});
  }
  return out;
}

std::vector<Transfer> HybridSchedule::recvs_at(std::size_t num_blocks,
                                               std::size_t step) const {
  std::vector<Transfer> out;
  if (inter_) {
    for (const Transfer& t : inter_->recvs_at(num_blocks, step))
      out.push_back(Transfer{leaders_[t.peer], t.block});
  }
  if (intra_ && step >= kIntraOffset) {
    for (const Transfer& t : intra_->recvs_at(num_blocks, step - kIntraOffset))
      out.push_back(Transfer{rack_members_[t.peer], t.block});
  }
  return out;
}

std::size_t HybridSchedule::num_steps(std::size_t num_blocks) const {
  std::size_t steps = 0;
  // Every node bounds by the global maximum so all members agree.
  const std::size_t inter_steps =
      leaders_.size() > 1
          ? BinomialPipelineSchedule(leaders_.size(), 0).num_steps(num_blocks)
          : 0;
  steps = std::max(steps, inter_steps);
  // Largest rack bounds the intra level.
  std::map<std::uint32_t, std::size_t> rack_size;
  for (auto rk : rack_of_) ++rack_size[rk];
  std::size_t max_rack = 1;
  for (const auto& [rk, sz] : rack_size) max_rack = std::max(max_rack, sz);
  if (max_rack > 1) {
    steps = std::max(
        steps, kIntraOffset +
                   BinomialPipelineSchedule(max_rack, 0).num_steps(num_blocks));
  }
  return steps;
}

}  // namespace rdmc::sched
