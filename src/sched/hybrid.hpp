// Hybrid two-level binomial pipeline (paper §4.3 "Hybrid Algorithms").
//
// For datacenters with full bisection bandwidth inside a rack but an
// oversubscribed top-of-rack (TOR) uplink, the paper proposes running two
// binomial pipeline instances: one among rack leaders (crossing the TOR
// once per block per rack instead of many times), then one inside each rack
// rooted at its leader. We overlay both levels: the intra-rack schedule is
// offset by one step, and the engine's has-the-block gating (a send stays
// pending until its block arrives, §4.3) pipelines the levels naturally.
//
// Ranks are group-relative with rank 0 the sender; the sender is by
// construction the leader of its own rack (leaders are each rack's
// lowest-ranked member).
#pragma once

#include <memory>

#include "sched/binomial_pipeline.hpp"
#include "sched/schedule.hpp"

namespace rdmc::sched {

class HybridSchedule final : public Schedule {
 public:
  /// `rack_of[r]` gives the rack index of group rank r. rack_of[0]'s rack
  /// leader is rank 0 automatically.
  HybridSchedule(std::size_t num_nodes, std::size_t rank,
                 std::vector<std::uint32_t> rack_of);

  std::vector<Transfer> sends_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::vector<Transfer> recvs_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::size_t num_steps(std::size_t num_blocks) const override;
  std::string_view name() const override { return "hybrid"; }

  bool is_leader() const { return inter_ != nullptr; }

 private:
  /// Intra-rack steps are offset so a leader can start relaying into its
  /// rack right after its first inter-rack receive.
  static constexpr std::size_t kIntraOffset = 1;

  std::vector<std::uint32_t> rack_of_;
  /// Group ranks of the rack leaders, sender's rack first.
  std::vector<std::uint32_t> leaders_;
  /// Group ranks of this node's rack members, leader first.
  std::vector<std::uint32_t> rack_members_;
  /// Inter-rack pipeline (leaders only; nullptr otherwise).
  std::unique_ptr<BinomialPipelineSchedule> inter_;
  /// Intra-rack pipeline (nullptr for single-member racks).
  std::unique_ptr<BinomialPipelineSchedule> intra_;
};

}  // namespace rdmc::sched
