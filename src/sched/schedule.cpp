#include "sched/schedule.hpp"

#include "sched/binomial_pipeline.hpp"
#include "sched/binomial_tree.hpp"
#include "sched/chain.hpp"
#include "sched/sequential.hpp"

namespace rdmc::sched {

std::string_view algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSequential: return "sequential";
    case Algorithm::kChain: return "chain";
    case Algorithm::kBinomialTree: return "binomial_tree";
    case Algorithm::kBinomialPipeline: return "binomial_pipeline";
  }
  return "?";
}

std::unique_ptr<Schedule> make_schedule(Algorithm algorithm,
                                        std::size_t num_nodes,
                                        std::size_t rank) {
  switch (algorithm) {
    case Algorithm::kSequential:
      return std::make_unique<SequentialSchedule>(num_nodes, rank);
    case Algorithm::kChain:
      return std::make_unique<ChainSchedule>(num_nodes, rank);
    case Algorithm::kBinomialTree:
      return std::make_unique<BinomialTreeSchedule>(num_nodes, rank);
    case Algorithm::kBinomialPipeline:
      return std::make_unique<BinomialPipelineSchedule>(num_nodes, rank);
  }
  return nullptr;
}

}  // namespace rdmc::sched
