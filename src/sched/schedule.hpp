// Block-transfer schedules (paper §4.3).
//
// A schedule maps a multicast of k blocks among n nodes onto a deterministic
// sequence of point-to-point block transfers, indexed by *asynchronous step
// number*. Steps do not imply lock-step execution: the RDMC engine (src/core)
// only uses them to derive, for every ordered node pair, the FIFO order of
// block transfers on that pair's queue pair — the decoupled asynchronous
// execution the paper describes in §4.3 ("Binomial Pipeline") and §4.4.
//
// Implemented algorithms, in the paper's order of increasing effectiveness:
//   * SequentialSchedule   — root unicasts the whole message to each
//                            receiver in turn (the datacenter status quo);
//   * ChainSchedule        — bucket brigade, blocks relayed down a line
//                            (chain replication, van Renesse & Schneider);
//   * BinomialTreeSchedule — whole-message relays along a binomial tree;
//   * BinomialPipelineSchedule — Ganesan-Seshadri hypercube block pipeline,
//                            extended to arbitrary n (see the .cpp);
//   * HybridSchedule       — two-level binomial pipeline for oversubscribed
//                            TOR topologies (rack leaders first, §4.3).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace rdmc::sched {

/// One block movement: for sends_at(), `peer` is the target; for
/// recvs_at(), `peer` is the source. `block` indexes into the message.
struct Transfer {
  std::uint32_t peer = 0;
  std::size_t block = 0;

  bool operator==(const Transfer&) const = default;
};

/// A schedule instance is bound to (group size, this node's rank); the
/// number of blocks varies per message and is passed per query, so one
/// instance serves every message a group carries (groups are reused, §3).
/// Rank 0 is always the root/sender.
class Schedule {
 public:
  Schedule(std::size_t num_nodes, std::size_t rank)
      : num_nodes_(num_nodes), rank_(rank) {}
  virtual ~Schedule() = default;

  /// Blocks this node sends at `step` (usually 0 or 1 of them; up to 2 for
  /// aliased vertices in non-power-of-two binomial pipelines).
  virtual std::vector<Transfer> sends_at(std::size_t num_blocks,
                                         std::size_t step) const = 0;

  /// Blocks this node receives at `step`.
  virtual std::vector<Transfer> recvs_at(std::size_t num_blocks,
                                         std::size_t step) const = 0;

  /// Upper bound on step numbers: all queries with step >= num_steps()
  /// return empty. For the binomial pipeline this is l + k - 1 (§4.4).
  virtual std::size_t num_steps(std::size_t num_blocks) const = 0;

  virtual std::string_view name() const = 0;

  std::size_t num_nodes() const { return num_nodes_; }
  std::size_t rank() const { return rank_; }

 protected:
  std::size_t num_nodes_;
  std::size_t rank_;
};

enum class Algorithm {
  kSequential,
  kChain,
  kBinomialTree,
  kBinomialPipeline,
};

std::string_view algorithm_name(Algorithm algorithm);

/// Factory for the single-level algorithms.
std::unique_ptr<Schedule> make_schedule(Algorithm algorithm,
                                        std::size_t num_nodes,
                                        std::size_t rank);

}  // namespace rdmc::sched
