#include "sched/schedule_audit.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "util/bitops.hpp"

namespace rdmc::sched {

namespace {
struct QueuedTransfer {
  std::size_t block;
  std::size_t scheduled_step;
};
}  // namespace

AuditResult audit_schedule(const ScheduleFactory& make,
                           std::size_t num_nodes, std::size_t num_blocks) {
  AuditResult result;
  result.completion_step.assign(num_nodes, 0);
  if (num_nodes == 0 || num_blocks == 0) {
    result.complete = num_nodes <= 1;
    return result;
  }

  std::vector<std::unique_ptr<Schedule>> schedules;
  schedules.reserve(num_nodes);
  for (std::size_t r = 0; r < num_nodes; ++r) schedules.push_back(make(r));

  const std::size_t bound = schedules[0]->num_steps(num_blocks);

  // Block possession and receive-step bookkeeping. The sender (rank 0)
  // holds everything from the start.
  std::vector<std::vector<bool>> have(num_nodes,
                                      std::vector<bool>(num_blocks, false));
  std::vector<std::vector<std::size_t>> recv_step(
      num_nodes, std::vector<std::size_t>(num_blocks, 0));
  have[0].assign(num_blocks, true);
  std::vector<std::size_t> have_count(num_nodes, 0);
  have_count[0] = num_blocks;

  // Per directed pair: FIFO of scheduled-but-unsent transfers.
  std::map<std::pair<std::size_t, std::size_t>, std::deque<QueuedTransfer>>
      pair_queues;
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> pair_uses;

  const std::size_t dim = num_nodes > 1 ? util::ceil_log2(num_nodes) : 0;
  double slack_sum = 0.0;
  std::size_t slack_steps = 0;

  // Hybrid deferrals can push work past the nominal bound; cap generously.
  const std::size_t hard_stop = bound * 4 + 16;
  for (std::size_t step = 0; step < hard_stop; ++step) {
    bool anything_pending = false;

    if (step < bound) {
      // --- Consistency: send and receive schedules must mirror. ---
      std::set<std::tuple<std::size_t, std::size_t, std::size_t>> send_set;
      std::set<std::tuple<std::size_t, std::size_t, std::size_t>> recv_set;
      for (std::size_t i = 0; i < num_nodes; ++i) {
        for (const Transfer& t : schedules[i]->sends_at(num_blocks, step)) {
          send_set.emplace(i, t.peer, t.block);
          pair_queues[{i, t.peer}].push_back({t.block, step});
        }
        for (const Transfer& t : schedules[i]->recvs_at(num_blocks, step))
          recv_set.emplace(t.peer, i, t.block);
      }
      if (send_set != recv_set) result.consistent = false;
    }

    // --- Execute: each directed pair moves at most one block per step,
    // head-of-line, gated on the sender holding the block. ---
    struct Delivery {
      std::size_t node;
      std::size_t block;
    };
    std::vector<Delivery> deliveries;
    double step_slack = 0.0;
    std::size_t step_senders = 0;
    for (auto& [pair, queue] : pair_queues) {
      const auto [src, dst] = pair;
      // Drain every transfer that is due (scheduled at or before this
      // step) and whose block is locally available; FIFO head-of-line
      // otherwise. Two same-step transfers on one pair (aliased-vertex
      // double duty) both go out this step, exactly as the engine posts
      // them back-to-back.
      while (!queue.empty() && queue.front().scheduled_step <= step) {
        const QueuedTransfer head = queue.front();
        if (!have[src][head.block]) {
          anything_pending = true;
          break;  // engine defers this send until the block arrives
        }
        queue.pop_front();
        if (step > head.scheduled_step) ++result.deferred_sends;
        ++result.total_transfers;
        ++pair_uses[pair];
        deliveries.push_back({dst, head.block});
        result.steps_used = step + 1;
        if (src != 0) {
          step_slack +=
              static_cast<double>(step) -
              static_cast<double>(recv_step[src][head.block]);
          ++step_senders;
        }
      }
      if (!queue.empty()) anything_pending = true;
    }
    // Steady steps of the pipeline: l .. l+k-2 (paper §4.4).
    if (step_senders > 0 && step >= dim && step + 1 < bound) {
      slack_sum += step_slack / static_cast<double>(step_senders);
      ++slack_steps;
    }

    // Deliveries land at the end of the step (usable from step+1).
    for (const Delivery& d : deliveries) {
      if (have[d.node][d.block]) {
        ++result.duplicate_deliveries;
      } else {
        have[d.node][d.block] = true;
        recv_step[d.node][d.block] = step;
        if (++have_count[d.node] == num_blocks)
          result.completion_step[d.node] = step + 1;
      }
    }

    if (!anything_pending && step >= bound) break;
  }

  result.complete = std::all_of(have_count.begin(), have_count.end(),
                                [&](std::size_t c) { return c == num_blocks; });
  result.within_bound = result.steps_used <= bound;
  result.avg_steady_slack =
      slack_steps > 0 ? slack_sum / static_cast<double>(slack_steps) : 0.0;
  for (const auto& [pair, uses] : pair_uses)
    result.max_pair_uses = std::max(result.max_pair_uses, uses);
  return result;
}

AuditResult audit_algorithm(Algorithm algorithm, std::size_t num_nodes,
                            std::size_t num_blocks) {
  return audit_schedule(
      [&](std::size_t rank) {
        return make_schedule(algorithm, num_nodes, rank);
      },
      num_nodes, num_blocks);
}

}  // namespace rdmc::sched
