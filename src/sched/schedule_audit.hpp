// Lock-step auditor for block-transfer schedules.
//
// Executes a schedule under unit-time steps and checks the invariants the
// RDMC engine depends on:
//   * consistency — every send (i -> p, block, step) appears in p's receive
//     schedule for the same step, and vice versa;
//   * causality   — no node transmits a block before holding it. Sends that
//     are scheduled early are *deferred* exactly like the engine defers
//     them (per-pair FIFO, availability-gated); `deferred_sends` counts
//     them (0 for the four base algorithms, nonzero only for hybrid);
//   * completeness — every node holds every block at the end;
//   * step bound  — transfers stop by num_steps().
//
// It also measures the §4.5 quantities: per-node completion step (skew),
// per-link traversal counts (the 1/l property of item 2), and the average
// slack of item 3, which test_schedules.cpp compares against the paper's
// closed form 2(1 - (l-1)/(n-2)).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sched/schedule.hpp"

namespace rdmc::sched {

struct AuditResult {
  bool consistent = true;    // send/recv schedules agree
  bool complete = false;     // all nodes got all blocks
  bool within_bound = true;  // finished by num_steps()
  std::size_t steps_used = 0;
  std::size_t total_transfers = 0;
  std::size_t duplicate_deliveries = 0;
  std::size_t deferred_sends = 0;
  /// completion_step[node]: first step after which the node has all blocks
  /// (0 for the sender).
  std::vector<std::size_t> completion_step;
  /// Average over steady steps of mean slack among that step's senders
  /// (paper §4.5 item 3); NaN if there are no steady steps.
  double avg_steady_slack = 0.0;
  /// Maximum number of steps any directed pair was used for (item 2: a
  /// given link is traversed on ~1/l of the steps).
  std::size_t max_pair_uses = 0;
};

using ScheduleFactory =
    std::function<std::unique_ptr<Schedule>(std::size_t rank)>;

AuditResult audit_schedule(const ScheduleFactory& make,
                           std::size_t num_nodes, std::size_t num_blocks);

/// Convenience for the built-in algorithms.
AuditResult audit_algorithm(Algorithm algorithm, std::size_t num_nodes,
                            std::size_t num_blocks);

}  // namespace rdmc::sched
