#include "sched/sequential.hpp"

namespace rdmc::sched {

std::vector<Transfer> SequentialSchedule::sends_at(std::size_t num_blocks,
                                                   std::size_t step) const {
  if (rank_ != 0 || num_blocks == 0 || step >= num_steps(num_blocks))
    return {};
  const std::uint32_t receiver =
      static_cast<std::uint32_t>(1 + step / num_blocks);
  return {Transfer{receiver, step % num_blocks}};
}

std::vector<Transfer> SequentialSchedule::recvs_at(std::size_t num_blocks,
                                                   std::size_t step) const {
  if (rank_ == 0 || num_blocks == 0 || step >= num_steps(num_blocks))
    return {};
  const std::size_t begin = (rank_ - 1) * num_blocks;
  if (step < begin || step >= begin + num_blocks) return {};
  return {Transfer{0, step - begin}};
}

}  // namespace rdmc::sched
