// Sequential send (paper §4.3): the root transmits the entire message to
// each recipient in turn — the pattern common in today's datacenters and
// the baseline RDMC is measured against in Figs 4, 8 and 9.
//
// Step numbering: receiver r (1-based order) gets blocks at steps
// (r-1)*k .. r*k-1. The root's NIC carries (n-1)*B bytes total while every
// receiver only downloads B — the hot spot the paper calls out.
#pragma once

#include "sched/schedule.hpp"

namespace rdmc::sched {

class SequentialSchedule final : public Schedule {
 public:
  SequentialSchedule(std::size_t num_nodes, std::size_t rank)
      : Schedule(num_nodes, rank) {}

  std::vector<Transfer> sends_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::vector<Transfer> recvs_at(std::size_t num_blocks,
                                 std::size_t step) const override;
  std::size_t num_steps(std::size_t num_blocks) const override {
    return (num_nodes_ - 1) * num_blocks;
  }
  std::string_view name() const override { return "sequential"; }
};

}  // namespace rdmc::sched
