#include "sim/cluster_profiles.hpp"

namespace rdmc::sim {

ClusterProfile fractus_profile(std::size_t num_nodes) {
  ClusterProfile p;
  p.name = "fractus";
  p.topology.num_nodes = num_nodes;
  p.topology.nic_gbps = 100.0;
  p.topology.nodes_per_rack = 0;  // full bisection, one hop
  p.topology.base_latency_s = 1.5e-6;
  p.costs = SoftwareCosts{};
  p.preemption.probability = 2e-4;  // rare jitter on a dedicated cluster
  p.preemption.mean_duration_s = 60e-6;
  return p;
}

ClusterProfile sierra_profile(std::size_t num_nodes) {
  ClusterProfile p;
  p.name = "sierra";
  p.topology.num_nodes = num_nodes;
  p.topology.nic_gbps = 40.0;  // 4x QDR
  p.topology.nodes_per_rack = 0;  // federated fat tree ~ full bisection
  p.topology.base_latency_s = 2.5e-6;  // two-stage fabric
  p.costs = SoftwareCosts{};
  p.costs.post_send_s = 1.0e-6;  // older Xeons
  p.costs.handle_completion_s = 1.2e-6;
  p.preemption.probability = 1.5e-3;  // busy batch system
  p.preemption.mean_duration_s = 80e-6;
  return p;
}

ClusterProfile stampede_profile(std::size_t num_nodes) {
  ClusterProfile p;
  p.name = "stampede";
  p.topology.num_nodes = num_nodes;
  p.topology.nic_gbps = 40.0;  // measured unicast ceiling (paper §5.1)
  p.topology.nodes_per_rack = 0;
  p.topology.base_latency_s = 2.0e-6;
  p.costs = SoftwareCosts{};
  p.preemption.probability = 1e-3;
  p.preemption.mean_duration_s = 100e-6;
  return p;
}

ClusterProfile apt_profile(std::size_t num_nodes) {
  ClusterProfile p;
  p.name = "apt";
  p.topology.num_nodes = num_nodes;
  p.topology.nic_gbps = 56.0;  // FDR CX3
  p.topology.nodes_per_rack = 16;
  // The paper reports ~16 Gb/s per link when the TOR is heavily loaded.
  // With 16 nodes/rack sharing one uplink, a 256 Gb/s uplink yields exactly
  // that per-link floor under all-to-all pressure.
  p.topology.rack_uplink_gbps = 256.0;
  p.topology.base_latency_s = 2.0e-6;
  p.topology.inter_rack_extra_latency_s = 2.0e-6;
  p.costs = SoftwareCosts{};
  p.preemption.probability = 1e-3;
  p.preemption.mean_duration_s = 100e-6;
  return p;
}

ClusterProfile racked_profile(std::size_t num_nodes,
                              std::size_t nodes_per_rack,
                              double oversubscription,
                              double nic_gbps) {
  ClusterProfile p = apt_profile(num_nodes);
  p.name = "racked";
  p.topology.nic_gbps = nic_gbps;
  p.topology.nodes_per_rack = nodes_per_rack;
  p.topology.rack_uplink_gbps =
      nic_gbps * static_cast<double>(nodes_per_rack) / oversubscription;
  return p;
}

ClusterProfile wan_profile(std::size_t num_regions,
                           std::size_t nodes_per_region,
                           double inter_region_rtt_ms,
                           double inter_region_gbps, double nic_gbps) {
  ClusterProfile p;
  p.name = "wan";
  p.topology.num_nodes = num_regions * nodes_per_region;
  p.topology.nic_gbps = nic_gbps;
  p.topology.nodes_per_rack = nodes_per_region;
  // Each site's egress is the long-haul pipe, far below the aggregate of
  // its local NICs.
  p.topology.rack_uplink_gbps = inter_region_gbps;
  p.topology.base_latency_s = 2.0e-6;  // intra-site is datacenter-grade
  p.topology.inter_rack_extra_latency_s = inter_region_rtt_ms * 1e-3 / 2.0;
  p.costs = SoftwareCosts{};
  p.preemption.probability = 1e-3;
  p.preemption.mean_duration_s = 100e-6;
  return p;
}

ClusterProfile planetary_profile(std::size_t nodes_per_region) {
  // One-way extras derived from typical public-cloud inter-region RTTs.
  // Regions: 0 us-east, 1 us-west, 2 eu-west, 3 ap-northeast, 4 sa-east.
  struct Pair {
    std::size_t a, b;
    double rtt_ms;
  };
  static constexpr Pair kRtts[] = {
      {0, 1, 60.0},  {0, 2, 75.0},  {0, 3, 170.0}, {0, 4, 115.0},
      {1, 2, 135.0}, {1, 3, 100.0}, {1, 4, 175.0}, {2, 3, 220.0},
      {2, 4, 185.0}, {3, 4, 255.0},
  };
  ClusterProfile p = wan_profile(5, nodes_per_region,
                                 /*inter_region_rtt_ms=*/150.0,
                                 /*inter_region_gbps=*/10.0);
  p.name = "planetary";
  for (const Pair& r : kRtts) {
    p.topology.rack_latency_overrides.push_back(
        {r.a, r.b, r.rtt_ms * 1e-3 / 2.0});
  }
  return p;
}

}  // namespace rdmc::sim
