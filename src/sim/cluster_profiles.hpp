// Presets describing the four clusters in the paper's evaluation (§5.1).
//
//   Fractus    16 nodes, 100 Gb/s Mellanox, full bisection, one hop.
//   Sierra     1,944 nodes, 4x QDR QLogic at 40 Gb/s, fat tree
//              (modelled full-bisection; the paper reports limited
//              degradation with scale, which our delay injection covers).
//   Stampede-1 6,400 nodes, FDR 56 Gb/s NICs with ~40 Gb/s measured unicast
//              (we use the measured rate, as the paper's Table 1 does).
//   Apt        192 nodes, FDR 56 Gb/s NICs, *oversubscribed* TOR that
//              degrades to ~16 Gb/s per link when loaded (Fig 10b).
#pragma once

#include <string>

#include "sim/delay_model.hpp"
#include "sim/topology.hpp"

namespace rdmc::sim {

struct ClusterProfile {
  std::string name;
  TopologyConfig topology;
  SoftwareCosts costs;
  /// Background preemption process active in all experiments on this
  /// cluster (batch-scheduled machines show more jitter).
  PreemptionModel preemption;
};

/// 16-node, 100 Gb/s, full-bisection cluster (most figures).
ClusterProfile fractus_profile(std::size_t num_nodes = 16);

/// Large batch cluster, 40 Gb/s line rate (Fig 8 scalability).
ClusterProfile sierra_profile(std::size_t num_nodes = 512);

/// 40 Gb/s effective unicast (Table 1 / Fig 5 breakdowns).
ClusterProfile stampede_profile(std::size_t num_nodes = 16);

/// Oversubscribed TOR: 16 nodes/rack at 56 Gb/s NICs with a shared uplink
/// that limits sustained inter-rack traffic to ~16 Gb/s per link (Fig 10b).
ClusterProfile apt_profile(std::size_t num_nodes = 64);

/// Apt-style racked profile with explicit geometry: `oversubscription` is
/// the ratio of aggregate intra-rack NIC bandwidth to uplink capacity
/// (1.0 = non-blocking, apt's stock geometry is 16*56/256 = 3.5). The
/// hierarchical water-fill solver targets exactly this shape — tests and
/// benches use it to sweep rack size and uplink pressure independently.
ClusterProfile racked_profile(std::size_t num_nodes,
                              std::size_t nodes_per_rack,
                              double oversubscription,
                              double nic_gbps = 56.0);

/// WAN profile: `num_regions` sites (modelled as racks), each holding
/// `nodes_per_region` nodes on fast local NICs, joined by long-haul links
/// with `inter_region_rtt_ms` round-trip time and `inter_region_gbps`
/// per-site egress capacity. RC-style break-on-loss is a poor fit here —
/// this is the home turf of the UD service type + software reliability
/// (SDR-RDMA's motivating deployment).
ClusterProfile wan_profile(std::size_t num_regions = 4,
                           std::size_t nodes_per_region = 4,
                           double inter_region_rtt_ms = 30.0,
                           double inter_region_gbps = 10.0,
                           double nic_gbps = 100.0);

/// Planetary preset: five geographic regions (us-east, us-west, eu-west,
/// ap-northeast, sa-east) with realistic per-pair RTTs (60–255 ms) encoded
/// as rack-pair latency overrides. The stress case for loss x RTT sweeps.
ClusterProfile planetary_profile(std::size_t nodes_per_region = 4);

}  // namespace rdmc::sim
