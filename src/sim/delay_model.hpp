// Software-side delay modelling: per-operation CPU overheads plus injected
// scheduling delays (OS preemptions).
//
// The paper attributes RDMC's residual overhead (~1%, Table 1) to software
// posting/relay costs, and shows (Fig 5) an ~100 us anomaly caused by an OS
// preemption on a relayer. DelayModel reproduces both: deterministic
// per-operation costs from the cluster profile, and a random preemption
// process (probability per op, exponential duration) for robustness
// experiments (§4.5 item 1).
#pragma once

#include <cstdint>

#include "util/random.hpp"

namespace rdmc::sim {

/// Deterministic per-operation software costs (seconds). Values are
/// calibrated per cluster profile; zeros model full NIC offload
/// (CORE-Direct, §2 / Fig 12).
struct SoftwareCosts {
  /// CPU time to post one send work request.
  double post_send_s = 0.7e-6;
  /// CPU time to post one receive work request.
  double post_recv_s = 0.5e-6;
  /// CPU time to handle one completion (schedule lookup + bookkeeping).
  double handle_completion_s = 0.8e-6;
  /// Extra latency from completion generation to handler when the
  /// completion thread is in interrupt mode rather than polling.
  double interrupt_wakeup_s = 6.0e-6;
  /// memcpy rate for the first-block copy (§4.2), bytes/sec.
  double copy_rate_Bps = 12e9;
  /// malloc + callback cost for allocating the receive area on the
  /// critical path (§4.6 Memory management).
  double alloc_message_s = 15e-6;
};

/// Random OS scheduling-delay injection (per node).
struct PreemptionModel {
  /// Probability that any given software action suffers a preemption.
  double probability = 0.0;
  /// Mean preemption duration (exponential), seconds.
  double mean_duration_s = 100e-6;

  /// Sample the delay contributed by one software action.
  double sample(util::Rng& rng) const {
    if (probability <= 0.0 || !rng.bernoulli(probability)) return 0.0;
    return rng.exponential(mean_duration_s);
  }
};

}  // namespace rdmc::sim
