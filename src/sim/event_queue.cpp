#include "sim/event_queue.hpp"

#include <cassert>

namespace rdmc::sim {

EventId EventQueue::schedule(SimTime when, std::function<void()> fn) {
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;
  const EventId id = make_id(slot, s.generation);
  heap_.push(Entry{when, next_seq_++, id});
  ++live_count_;
  return id;
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn = nullptr;  // free the closure immediately
  s.live = false;
  ++s.generation;  // invalidate the id (and any stale heap entry)
  s.next_free = free_head_;
  free_head_ = slot;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t slot = slot_of(id);
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  if (!s.live || s.generation != generation_of(id)) return false;
  release_slot(slot);
  --live_count_;
  return true;
}

void EventQueue::drop_stale() {
  // Heap entries for cancelled events are abandoned in place; their slot
  // generation no longer matches, so they are skimmed off here.
  while (!heap_.empty() && !entry_live(heap_.top())) heap_.pop();
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->drop_stale();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  const std::uint32_t slot = slot_of(top.id);
  Fired fired{top.time, std::move(slots_[slot].fn)};
  release_slot(slot);
  --live_count_;
  return fired;
}

}  // namespace rdmc::sim
