#include "sim/event_queue.hpp"

#include <cassert>

namespace rdmc::sim {

EventId EventQueue::schedule(SimTime when, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(fn));
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled() {
  while (!heap_.empty()) {
    auto c = cancelled_.find(heap_.top().id);
    if (c == cancelled_.end()) return;
    cancelled_.erase(c);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  return live_count_ == 0;
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->drop_cancelled();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  assert(!heap_.empty());
  const Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  assert(it != callbacks_.end());
  Fired fired{top.time, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace rdmc::sim
