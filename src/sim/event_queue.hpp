// Virtual-time event queue for the discrete-event engine.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in a deterministic order and every simulation is exactly reproducible.
//
// Callbacks live in a generation-stamped free-list slab indexed by the low
// half of the EventId; the high half carries the slot's generation so a
// recycled slot never honours a stale handle. Scheduling and cancelling an
// event therefore cost no hashing and (amortised) no allocation — the heap
// holds plain 24-byte entries and cancellation is O(1) plus lazy heap
// cleanup. This queue is the innermost loop of every simulated experiment
// (hundreds of thousands of events per Fig 8 point), which is why it gets
// the slab treatment instead of the obvious unordered_map.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rdmc::sim {

/// Simulated time in seconds.
using SimTime = double;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `when`. Returns a handle usable with
  /// cancel(). `when` must be >= the time of the last popped event.
  EventId schedule(SimTime when, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op (returns false).
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime next_time() const;

  /// Pop and return the earliest event. Requires !empty().
  struct Fired {
    SimTime time;
    std::function<void()> fn;
  };
  Fired pop();

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Slot {
    std::function<void()> fn;
    std::uint32_t generation = 1;  // bumped on release; never matches stale ids
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static EventId make_id(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  bool entry_live(const Entry& e) const {
    const std::uint32_t s = slot_of(e.id);
    return slots_[s].live && slots_[s].generation == generation_of(e.id);
  }
  void release_slot(std::uint32_t slot);
  void drop_stale();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace rdmc::sim
