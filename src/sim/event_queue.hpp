// Virtual-time event queue for the discrete-event engine.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in a deterministic order and every simulation is exactly reproducible.
// Cancellation is supported via EventId tombstones (lazy deletion).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rdmc::sim {

/// Simulated time in seconds.
using SimTime = double;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `when`. Returns a handle usable with
  /// cancel(). `when` must be >= the time of the last popped event.
  EventId schedule(SimTime when, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-fired or invalid id is a
  /// harmless no-op (returns false).
  bool cancel(EventId id);

  bool empty() const;
  std::size_t size() const { return live_count_; }

  /// Time of the earliest pending event. Requires !empty().
  SimTime next_time() const;

  /// Pop and return the earliest event. Requires !empty().
  struct Fired {
    SimTime time;
    std::function<void()> fn;
  };
  Fired pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventId id;
    // Heap entries carry an index into callbacks_ rather than the closure
    // itself so that cancellation can release the closure immediately.
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_map<EventId, std::function<void()>> callbacks_;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace rdmc::sim
