#include "sim/flow_network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace rdmc::sim {


FlowNetwork::FlowNetwork(Simulator& sim, Topology& topology)
    : sim_(sim), topology_(topology), topo_version_(topology.version()) {
  const auto n = static_cast<std::uint32_t>(topology.num_nodes());
  const auto racks = static_cast<std::uint32_t>(topology.num_racks());
  tx_.resize(n);
  rx_.resize(n);
  rack_up_.resize(racks);
  rack_down_.resize(racks);
  // Disjoint tie-break id ranges per resource class, so simultaneous-freeze
  // ordering can never depend on an accidental cross-class collision.
  for (std::uint32_t i = 0; i < n; ++i) {
    tx_[i].kind = Resource::Kind::kTx;
    tx_[i].index = i;
    tx_[i].id = i;
    tx_[i].cap = topology.node_tx_Bps(i);
    rx_[i].kind = Resource::Kind::kRx;
    rx_[i].index = i;
    rx_[i].id = n + i;
    rx_[i].cap = topology.node_rx_Bps(i);
  }
  for (std::uint32_t r = 0; r < racks; ++r) {
    rack_up_[r].kind = Resource::Kind::kRackUp;
    rack_up_[r].index = r;
    rack_up_[r].id = 2 * n + r;
    rack_up_[r].cap = topology.rack_uplink_Bps();
    rack_down_[r].kind = Resource::Kind::kRackDown;
    rack_down_[r].index = r;
    rack_down_[r].id = 2 * n + racks + r;
    rack_down_[r].cap = topology.rack_uplink_Bps();
  }
  pair_id_base_ = 2 * n + 2 * racks;
}

// ------------------------------------------------------------- flow slab --

std::uint32_t FlowNetwork::alloc_slot() {
  if (free_head_ != kNone) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    return slot;
  }
  slab_.emplace_back();
  rate_.push_back(0.0);
  visit_epoch_.push_back(0);
  freeze_epoch_.push_back(0);
  fresh_epoch_.push_back(0);
  bn_applied_.push_back(nullptr);
  rates_scratch_.push_back(0.0);
  bottleneck_scratch_.push_back(nullptr);
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void FlowNetwork::free_slot(std::uint32_t slot) {
  Flow& f = slab_[slot];
  f.id = kInvalidFlow;
  if (++f.generation == 0) f.generation = 1;  // keep ids nonzero
  f.on_complete = nullptr;
  f.placed = false;
  f.res_count = 0;
  rate_[slot] = 0.0;
  f.next_free = free_head_;
  free_head_ = slot;
}

std::uint32_t FlowNetwork::slot_of(FlowId id) const {
  const auto slot = static_cast<std::uint32_t>(id);
  if (slot >= slab_.size() || slab_[slot].id != id) return kNone;
  return slot;
}

void FlowNetwork::remove_flow(std::uint32_t slot) {
  Flow& f = slab_[slot];
  if (f.placed) {
    for (std::uint32_t i = 0; i < f.res_count; ++i) {
      Resource* r = f.res[i];
      dirty_seeds_.push_back(r);
      // Swap-remove from the member list, fixing the moved flow's position.
      const std::uint32_t p = f.pos_in_res[i];
      assert(r->members[p] == slot);
      r->members[p] = r->members.back();
      r->members.pop_back();
      if (p < static_cast<std::uint32_t>(r->members.size())) {
        Flow& moved = slab_[r->members[p]];
        for (std::uint32_t j = 0; j < moved.res_count; ++j) {
          if (moved.res[j] == r) {
            moved.pos_in_res[j] = p;
            break;
          }
        }
      }
    }
  } else {
    // Started and removed within one instant: never wired into resources.
    pending_new_.erase(
        std::find(pending_new_.begin(), pending_new_.end(), slot));
  }
  if (f.heap_pos != kNone) heap_remove(slot);
  if (bn_applied_[slot] != nullptr) {
    --bn_applied_[slot]->bn_count;
    bn_applied_[slot] = nullptr;
  }
  --active_count_;
  free_slot(slot);
}

// ------------------------------------------------ membership & components --

void FlowNetwork::build_membership(std::uint32_t slot) {
  Flow& f = slab_[slot];
  assert(!f.placed);
  auto touch = [&](Resource& r) {
    f.res[f.res_count] = &r;
    f.pos_in_res[f.res_count] = static_cast<std::uint32_t>(r.members.size());
    ++f.res_count;
    r.members.push_back(slot);
    dirty_seeds_.push_back(&r);
  };
  touch(tx_[f.src]);
  touch(rx_[f.dst]);
  if (topology_.num_racks() > 1 && topology_.rack_uplink_Bps() > 0.0 &&
      !topology_.same_rack(f.src, f.dst)) {
    touch(rack_up_[topology_.rack_of(f.src)]);
    touch(rack_down_[topology_.rack_of(f.dst)]);
  }
  if (topology_.has_pair_caps()) {
    if (topology_.pair_cap_Bps(f.src, f.dst)) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(f.src) << 32) | f.dst;
      auto [it, inserted] = pair_res_.try_emplace(key);
      Resource& r = it->second;
      if (inserted) {
        r.kind = Resource::Kind::kPair;
        r.index = pair_seq_;
        r.id = pair_id_base_ + pair_seq_;
        r.pair_key = key;
        r.cap = resource_capacity(r);
        ++pair_seq_;
      }
      touch(r);
    }
  }
  f.placed = true;
  f.last_update = sim_.now();
}

void FlowNetwork::rebuild_all_membership() {
  // Topology capacities changed under us (set_pair_cap / set_node_nic after
  // flows were established): the cached membership may now be wrong — e.g. a
  // pair cap appeared on a path an existing flow uses. Rewire everything and
  // recompute all rates once; this is the cold path. Memoized fills keyed on
  // the old capacities are stale too.
  memo_clear();
  auto reset = [&](Resource& r) {
    r.members.clear();
    r.cap = resource_capacity(r);
  };
  for (auto& r : tx_) reset(r);
  for (auto& r : rx_) reset(r);
  for (auto& r : rack_up_) reset(r);
  for (auto& r : rack_down_) reset(r);
  // rdmc-lint: allow(unordered-iter) per-entry reset; order-independent
  for (auto& [key, r] : pair_res_) reset(r);
  for (std::uint32_t slot = 0; slot < slab_.size(); ++slot) {
    Flow& f = slab_[slot];
    if (f.id == kInvalidFlow || !f.placed) continue;
    // Charge progress at the old rate first: build_membership stamps
    // last_update = now, which would otherwise swallow the elapsed window.
    settle(slot);
    f.placed = false;
    f.res_count = 0;
    build_membership(slot);
  }
  recompute_all_ = true;
}

void FlowNetwork::settle(std::uint32_t slot) {
  Flow& flow = slab_[slot];
  const SimTime now = sim_.now();
  if (now <= flow.last_update) return;
  flow.remaining -= rate_[slot] * (now - flow.last_update);
  if (flow.remaining < 0.0) flow.remaining = 0.0;
  flow.last_update = now;
}

// ------------------------------------------------------------- public API --

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, double bytes,
                               std::function<void(SimTime)> on_complete) {
  assert(src < topology_.num_nodes() && dst < topology_.num_nodes());
  assert(src != dst);
  const double size = std::max(bytes, 1.0);
  const std::uint32_t slot = alloc_slot();
  Flow& f = slab_[slot];
  const FlowId id = (static_cast<FlowId>(f.generation) << 32) | slot;
  f.src = src;
  f.dst = dst;
  f.total = size;
  f.remaining = size;
  rate_[slot] = 0.0;
  f.last_update = sim_.now();
  f.id = id;
  f.seq = next_seq_++;
  f.on_complete = std::move(on_complete);
  assert(f.heap_pos == kNone && f.res_count == 0 && !f.placed);
  ++active_count_;
  pending_new_.push_back(slot);
  ++counters_.flow_starts;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kSim, "flow", src, f.seq, sim_.now(),
              "dst,bytes", dst, static_cast<std::uint64_t>(size));
  mark_dirty();
  return id;
}

void FlowNetwork::abort_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNone) return;
  ++counters_.flow_aborts;
  if (auto* tr = obs::tracer())
    tr->end(obs::Cat::kSim, "flow", slab_[slot].src, slab_[slot].seq,
            sim_.now(), "aborted", 1);
  remove_flow(slot);
  mark_dirty();
}

double FlowNetwork::flow_rate(FlowId id) const {
  const_cast<FlowNetwork*>(this)->flush_dirty();
  const std::uint32_t slot = slot_of(id);
  return slot == kNone ? 0.0 : rate_[slot];
}

// ------------------------------------------------------------ reallocation --

void FlowNetwork::mark_dirty() {
  if (dirty_) return;
  dirty_ = true;
  // Coalesce: many flows start/finish at one virtual instant (lock-step
  // schedule boundaries); one rate recomputation covers them all.
  dirty_event_ = sim_.at(sim_.now(), [this] {
    dirty_ = false;
    dirty_event_ = kInvalidEvent;
    reallocate_dirty();
  });
}

void FlowNetwork::flush_dirty() {
  if (!dirty_) return;
  dirty_ = false;
  if (dirty_event_ != kInvalidEvent) {
    sim_.cancel(dirty_event_);
    dirty_event_ = kInvalidEvent;
  }
  reallocate_dirty();
}

double FlowNetwork::resource_capacity(const Resource& r) const {
  switch (r.kind) {
    case Resource::Kind::kTx:
      return topology_.node_tx_Bps(r.index);
    case Resource::Kind::kRx:
      return topology_.node_rx_Bps(r.index);
    case Resource::Kind::kRackUp:
    case Resource::Kind::kRackDown:
      return topology_.rack_uplink_Bps();
    case Resource::Kind::kPair: {
      const auto cap = topology_.pair_cap_Bps(
          static_cast<NodeId>(r.pair_key >> 32),
          static_cast<NodeId>(r.pair_key & 0xFFFFFFFFu));
      // The cap can vanish mid-run (clear_pair_cap when a transient
      // degradation recovers); the stale resource stays in pair_res_ with
      // no members after the rebuild, so report it unconstrained.
      return cap ? *cap : 1e18;
    }
  }
  return 0.0;
}

void FlowNetwork::gather_all_active(std::vector<std::uint32_t>& flows,
                                    std::vector<Resource*>& resources) {
  for (std::uint32_t slot = 0; slot < slab_.size(); ++slot)
    if (slab_[slot].id != kInvalidFlow) flows.push_back(slot);
  auto add = [&](Resource& r) {
    if (!r.members.empty()) resources.push_back(&r);
  };
  for (auto& r : tx_) add(r);
  for (auto& r : rx_) add(r);
  for (auto& r : rack_up_) add(r);
  for (auto& r : rack_down_) add(r);
  // rdmc-lint: allow(unordered-iter) collection order cannot change the max-min fixpoint (the allocation is unique); kept unsorted to preserve golden bench bytes
  for (auto& [key, r] : pair_res_) add(r);
}

void FlowNetwork::apply_rates(const std::vector<std::uint32_t>& flows) {
  for (const std::uint32_t slot : flows) {
    Flow& f = slab_[slot];
    const double new_rate = rates_scratch_[slot];
    Resource* nb = bottleneck_scratch_[slot];
    if (bn_applied_[slot] != nb) {
      if (bn_applied_[slot] != nullptr) --bn_applied_[slot]->bn_count;
      ++nb->bn_count;
      bn_applied_[slot] = nb;
    }
    if (f.heap_pos != kNone && new_rate == rate_[slot]) {
      // Rate unchanged: (last_update, remaining, rate) stays consistent and
      // the projected completion is bit-identical — skip the heap traffic.
      continue;
    }
    settle(slot);
    rate_[slot] = new_rate;
    assert(new_rate > 0.0 && "every flow crosses a finite resource");
    f.proj_done = f.last_update + f.remaining / new_rate;
    if (f.heap_pos == kNone)
      heap_push(slot);
    else
      heap_update(slot);
  }
}

void FlowNetwork::split_components(std::uint64_t mark,
                                   std::uint64_t fresh_token) {
  // BFS over the bipartite flow/resource graph restricted to the in-set
  // members (visit epoch == mark; mark 0 means every member is in-set).
  // Components land in split_flows_/split_res_ in discovery order — seeded
  // from comp_flows_ in order, expanding resource member lists in order —
  // which is the canonical order the memo fingerprints and the fills use.
  // freeze_epoch_ / Resource::split_epoch carry the BFS stamps; both are
  // compared by equality against strictly increasing epochs, so the fills'
  // later stamps can never collide.
  split_flows_.clear();
  split_res_.clear();
  comps_.clear();
  const std::uint64_t stoken = ++epoch_;
  for (const std::uint32_t seed : comp_flows_) {
    if (freeze_epoch_[seed] == stoken) continue;
    CompSpan comp;
    comp.flow_off = static_cast<std::uint32_t>(split_flows_.size());
    comp.res_off = static_cast<std::uint32_t>(split_res_.size());
    comp.stamp = stoken;
    const auto ci = static_cast<std::uint32_t>(comps_.size());
    bool dirty = false;
    freeze_epoch_[seed] = stoken;
    split_flows_.push_back(seed);
    for (std::size_t qi = comp.flow_off; qi < split_flows_.size(); ++qi) {
      const std::uint32_t slot = split_flows_[qi];
      if (fresh_epoch_[slot] == fresh_token) dirty = true;
      const Flow& f = slab_[slot];
      for (std::uint32_t j = 0; j < f.res_count; ++j) {
        Resource* r = f.res[j];
        if (mark != 0 && r->visit_epoch != mark) continue;
        if (r->split_epoch == stoken) continue;
        r->split_epoch = stoken;
        r->comp_id = ci;  // validated against comp.stamp, not comp.fill
        split_res_.push_back(r);
        for (const std::uint32_t m : r->members) {
          if (mark != 0 && visit_epoch_[m] != mark) continue;  // boundary
          if (freeze_epoch_[m] == stoken) continue;
          freeze_epoch_[m] = stoken;
          split_flows_.push_back(m);
        }
      }
    }
    comp.flow_cnt =
        static_cast<std::uint32_t>(split_flows_.size()) - comp.flow_off;
    comp.res_cnt =
        static_cast<std::uint32_t>(split_res_.size()) - comp.res_off;
    comp.dirty = dirty;
    comps_.push_back(comp);
  }
}

void FlowNetwork::validate_boundary(const CompSpan& comp, std::uint64_t mark,
                                    std::uint64_t fresh_token) {
  // The combined allocation (fresh rates for local flows, old rates for
  // everyone else) is THE max-min allocation iff it is feasible and every
  // flow has a bottleneck: a saturated resource where its rate is maximal.
  // Local flows got theirs from the fill; flows whose resources were all
  // untouched kept theirs. That leaves the boundary flows sharing a
  // resource with the just-filled component. A boundary flow h on resource
  // r must join the local set when:
  //   * some local flow froze at r at level lambda but h.rate > lambda — h
  //     is hogging a resource the local flow is entitled to grow into;
  //   * h's own stored bottleneck is r, but r is no longer saturated (h
  //     could grow) or h is no longer maximal there (h lost its bottleneck).
  // A boundary flow whose bottleneck lies outside the component is
  // untouched by construction. Components that did not gain a flow this
  // round are skipped entirely: their local rates did not change, their
  // boundary flows' rates cannot have changed either (a flow local to one
  // component is never boundary to another — sharing a resource would merge
  // the components), so every verdict from the round they were filled
  // still stands.
  //
  // The per-member conditions only reference per-resource aggregates that
  // fill_prepare (boundary side) and the fill (local side) maintained, so
  // each resource is gated in O(1) first: if no boundary rate exceeds the
  // local freeze level and no boundary flow can have lost its bottleneck
  // here, no member of r can trigger and the member scan is skipped. In
  // steady state (all rates equal, everything saturated) every gate fails
  // and validation costs O(resources), not O(membership).
  Resource* const* res = split_res_.data() + comp.res_off;
  for (std::uint32_t ri = 0; ri < comp.res_cnt; ++ri) {
    Resource* r = res[ri];
    if (r->bmem_cnt == 0) continue;  // purely local: nothing to expand
    const double usage = r->usage_b + r->usage_local;
    const bool saturated = usage >= r->cap * (1.0 - kExpandTol);
    const double max_rate = std::max(r->max_b, r->max_local);
    // Every local flow bottlenecked at r froze exactly at its saturation
    // level, so the old max-over-scratch scan reduces to sat_lambda.
    const double lambda_local =
        r->sat_fill == comp.fill ? r->sat_lambda : -1.0;
    // Condition 1 needs a boundary rate strictly above lambda_local;
    // condition 2 needs a boundary flow bottlenecked at r (bn_count
    // over-approximates: it counts local flows' previous bottlenecks too)
    // that is either unsaturated here or below the member maximum.
    const bool may_hog = lambda_local >= 0.0 && r->max_b > lambda_local;
    const bool may_lose_bn =
        r->bn_count > 0 &&
        (!saturated || r->min_b < max_rate * (1.0 - kExpandTol));
    if (!may_hog && !may_lose_bn) continue;
    const std::uint32_t* bmem = boundary_arena_.data() + r->bmem_off;
    for (std::uint32_t i = 0; i < r->bmem_cnt; ++i) {
      const std::uint32_t slot = bmem[i];
      // May already have joined the local set via an earlier resource in
      // this pass.
      if (visit_epoch_[slot] == mark) continue;
      const double hr = rate_[slot];
      bool expand = false;
      if (lambda_local >= 0.0 && hr > lambda_local + kExpandTol * hr) {
        expand = true;
      } else if (bn_applied_[slot] == r &&
                 (!saturated || hr < max_rate * (1.0 - kExpandTol))) {
        expand = true;
      }
      if (expand) {
        visit_epoch_[slot] = mark;
        fresh_epoch_[slot] = fresh_token;
        comp_flows_.push_back(slot);
      }
    }
  }
}

void FlowNetwork::reallocate_dirty() {
  if (topology_.version() != topo_version_) {
    topo_version_ = topology_.version();
    rebuild_all_membership();
  }
  for (const std::uint32_t slot : pending_new_) build_membership(slot);
  pending_new_.clear();

  comp_flows_.clear();
  comp_resources_.clear();

  if (recompute_all_) {
    // Topology capacities changed: every cached rate and bottleneck may be
    // stale. Refill everything from scratch (the cold path).
    recompute_all_ = false;
    dirty_seeds_.clear();
    gather_all_active(comp_flows_, comp_resources_);
    if (!comp_flows_.empty()) {
      ++counters_.reallocations;
      ++counters_.full_recomputes;
      counters_.flows_touched += comp_flows_.size();
      const std::uint64_t fresh = ++epoch_;
      for (const std::uint32_t slot : comp_flows_)
        fresh_epoch_[slot] = fresh;
      split_components(0, fresh);
      fill_dirty_components(0);
      apply_rates(comp_flows_);
    }
  } else {
    // Local set: the flows actually on a changed resource. Everyone else
    // starts out as a fixed-rate boundary.
    const std::uint64_t mark = ++epoch_;
    std::uint64_t fresh = ++epoch_;
    for (Resource* seed : dirty_seeds_) {
      for (const std::uint32_t slot : seed->members) {
        if (visit_epoch_[slot] == mark) continue;
        visit_epoch_[slot] = mark;
        fresh_epoch_[slot] = fresh;
        comp_flows_.push_back(slot);
      }
    }
    dirty_seeds_.clear();
    if (comp_flows_.empty()) {
      schedule_next_completion();
      return;
    }

    bool converged = false;
    bool split_clean = false;  // comps_ holds true connected components
    std::size_t wired = 0;
    std::size_t fresh_begin = 0;
    for (int iter = 0; iter < kMaxExpandRounds; ++iter) {
      // Pull the resources of newly added local flows into the fill set.
      for (; wired < comp_flows_.size(); ++wired) {
        Flow& f = slab_[comp_flows_[wired]];
        for (std::uint32_t j = 0; j < f.res_count; ++j) {
          Resource* r = f.res[j];
          if (r->visit_epoch == mark) continue;
          r->visit_epoch = mark;
          comp_resources_.push_back(r);
        }
      }
      // Split into connected components; refill (and later revalidate)
      // only the components that gained a flow this round — everyone
      // else's scratch rates, aggregates and verdicts stand. Small
      // first-round sets skip the BFS and fill as one pseudo-component:
      // a single bottleneck elimination over a disconnected span is still
      // exact (each component freezes at its own saturations; the shared
      // rising level only interleaves them), and none of the split's
      // payoffs (dirty skip, hierarchical solve, parallel dispatch)
      // engage at this size. Expansion rounds merge the fresh flows into
      // the components they touch (merge_expansion) instead of re-running
      // the global BFS; components that gained no flow keep their
      // round-one rates untouched either way.
      if (iter == 0 && comp_flows_.size() < kSplitMinFlows) {
        split_flows_.assign(comp_flows_.begin(), comp_flows_.end());
        split_res_.assign(comp_resources_.begin(), comp_resources_.end());
        comps_.clear();
        CompSpan comp;
        comp.flow_cnt = static_cast<std::uint32_t>(split_flows_.size());
        comp.res_cnt = static_cast<std::uint32_t>(split_res_.size());
        comp.dirty = true;  // every executed round added a flow
        comps_.push_back(comp);
      } else if (!split_clean) {
        // First real split: round 0 at size, or the round after a pseudo-
        // split (whose single span may hold several true components — a
        // merge would keep them joint and refill the lot every round).
        split_components(mark, fresh);
        split_clean = true;
      } else {
        // Unions of true components are true components, so once split,
        // expansion rounds just merge the fresh flows in.
        merge_expansion(mark, fresh_begin);
      }
      fill_dirty_components(mark);
      const std::size_t before = comp_flows_.size();
      const std::uint64_t next_fresh = ++epoch_;
      for (const CompSpan& comp : comps_)
        if (comp.dirty && !comp.dead) validate_boundary(comp, mark, next_fresh);
      if (comp_flows_.size() == before) {
        converged = true;
        break;
      }
      ++counters_.expand_rounds;
      fresh = next_fresh;
      fresh_begin = before;
    }

    if (converged) {
      ++counters_.reallocations;
      counters_.flows_touched += comp_flows_.size();
      apply_rates(comp_flows_);
    } else {
      // Expansion kept growing: give up on locality and recompute the whole
      // affected connected component (worklist BFS over the bipartite
      // flow/resource graph; components not reached keep their rates —
      // max-min allocations are independent across components).
      const std::uint64_t visit = ++epoch_;
      for (Resource* r : comp_resources_) r->visit_epoch = visit;
      comp_flows_.clear();
      for (std::size_t i = 0; i < comp_resources_.size(); ++i) {
        Resource* r = comp_resources_[i];
        for (const std::uint32_t slot : r->members) {
          if (visit_epoch_[slot] == visit) continue;
          visit_epoch_[slot] = visit;
          comp_flows_.push_back(slot);
          Flow& f = slab_[slot];
          for (std::uint32_t j = 0; j < f.res_count; ++j) {
            Resource* r2 = f.res[j];
            if (r2->visit_epoch == visit) continue;
            r2->visit_epoch = visit;
            comp_resources_.push_back(r2);
          }
        }
      }
      ++counters_.reallocations;
      counters_.flows_touched += comp_flows_.size();
      const std::uint64_t fresh2 = ++epoch_;
      for (const std::uint32_t slot : comp_flows_)
        fresh_epoch_[slot] = fresh2;
      split_components(0, fresh2);
      fill_dirty_components(0);
      apply_rates(comp_flows_);
    }
  }

  if (cross_check_) {
    ++counters_.cross_checks;
    if (!rates_match_full_recompute(1e-9)) {
      std::fprintf(stderr,
                   "FlowNetwork: incremental reallocation diverged from "
                   "full water-filling (t=%.9f, %zu active flows)\n",
                   sim_.now(), active_flows());
      std::abort();
    }
  }
  schedule_next_completion();
}

// ---------------------------------------------------- exact bottleneck fill --

std::uint64_t FlowNetwork::fill_prepare(CompSpan& comp,
                                        std::uint64_t local_mark,
                                        std::uint32_t ci) {
  const std::uint64_t fill = ++epoch_;
  comp.fill = fill;
  comp.has_pair = false;
  comp.has_coupling = false;
  Resource* const* res = split_res_.data() + comp.res_off;
  std::uint32_t ordinal = 0;
  // One pass over each member list: split it into local/boundary arena
  // slices, subtract boundary rates from capacity, and collect the
  // boundary-side validation aggregates. With local_mark 0 every member is
  // local and the boundary side stays empty.
  for (std::uint32_t ri = 0; ri < comp.res_cnt; ++ri) {
    Resource* r = res[ri];
    assert(!r->members.empty());
    if (r->kind == Resource::Kind::kPair)
      comp.has_pair = true;
    else if (r->kind == Resource::Kind::kRackUp ||
             r->kind == Resource::Kind::kRackDown)
      comp.has_coupling = true;
    double rem = r->cap;
    double usage_b = 0.0, max_b = 0.0;
    double min_b = std::numeric_limits<double>::infinity();
    r->lmem_off = static_cast<std::uint32_t>(local_arena_.size());
    r->bmem_off = static_cast<std::uint32_t>(boundary_arena_.size());
    if (local_mark != 0) {
      for (const std::uint32_t slot : r->members) {
        if (visit_epoch_[slot] == local_mark) {
          local_arena_.push_back(slot);
        } else {
          const double hr = rate_[slot];
          rem -= hr;
          usage_b += hr;
          if (hr > max_b) max_b = hr;
          if (hr < min_b) min_b = hr;
          boundary_arena_.push_back(slot);
        }
      }
    } else {
      local_arena_.insert(local_arena_.end(), r->members.begin(),
                          r->members.end());
    }
    r->lmem_cnt =
        static_cast<std::uint32_t>(local_arena_.size()) - r->lmem_off;
    r->bmem_cnt =
        static_cast<std::uint32_t>(boundary_arena_.size()) - r->bmem_off;
    if (rem < 0.0) rem = 0.0;
    assert(r->lmem_cnt > 0 && "every local resource carries a local flow");
    r->rem = rem;
    r->last_lambda = 0.0;
    r->live = r->lmem_cnt;
    r->fill_epoch = fill;
    r->comp_index = ordinal++;
    r->comp_id = ci;
    r->usage_b = usage_b;
    r->max_b = max_b;
    r->min_b = min_b;
    r->usage_local = 0.0;
    r->max_local = 0.0;
  }
  return fill;
}

void FlowNetwork::res_heap_sift_up(std::vector<Resource*>& heap,
                                   std::uint32_t pos) {
  Resource* r = heap[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!res_heap_less(r, heap[parent])) break;
    heap[pos] = heap[parent];
    heap[pos]->fill_pos = pos;
    pos = parent;
  }
  heap[pos] = r;
  r->fill_pos = pos;
}

void FlowNetwork::res_heap_sift_down(std::vector<Resource*>& heap,
                                     std::uint32_t pos) {
  const auto size = static_cast<std::uint32_t>(heap.size());
  Resource* r = heap[pos];
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size && res_heap_less(heap[child + 1], heap[child]))
      ++child;
    if (!res_heap_less(heap[child], r)) break;
    heap[pos] = heap[child];
    heap[pos]->fill_pos = pos;
    pos = child;
  }
  heap[pos] = r;
  r->fill_pos = pos;
}

void FlowNetwork::res_heap_remove(std::vector<Resource*>& heap, Resource* r) {
  const std::uint32_t pos = r->fill_pos;
  Resource* last = heap.back();
  heap.pop_back();
  r->fill_pos = kNone;
  if (last != r) {
    heap[pos] = last;
    last->fill_pos = pos;
    res_heap_sift_down(heap, pos);
    res_heap_sift_up(heap, last->fill_pos);
  }
}

std::uint64_t FlowNetwork::fill_exact(const CompSpan& comp,
                                      std::vector<Resource*>& heap) const {
  // --- Max-min fairness by exact bottleneck elimination. Every resource
  // sits in an indexed min-heap keyed by its estimated exhaust level
  // lambda + rem/live (ties by component ordinal, so the fill is a pure
  // function of the component shape). Each round pops the true minimum —
  // the next resource to saturate — freezes its remaining participating
  // flows at the fair share, and updates each neighbouring resource's
  // residual capacity/degree and heap position in place. Unlike the
  // progressive lazy-heap filling (water_fill_progressive below, kept as
  // the oracle), no stale entries exist: the number of pops equals the
  // number of saturating resources, so a fill is O((F + R) log R).
  //
  // Boundary flows were already subtracted from capacity by fill_prepare
  // and the local arena slices hold exactly the local members, so no
  // boundary member is even visited. All mutable state is the component's
  // own (its resources, its flows' slot-indexed scratch) plus the caller's
  // heap — concurrent fills of distinct components never touch the same
  // word, which is what set_fill_jobs relies on.
  Resource* const* res = split_res_.data() + comp.res_off;
  const std::uint64_t fill = comp.fill;
  heap.clear();
  for (std::uint32_t ri = 0; ri < comp.res_cnt; ++ri) {
    Resource* r = res[ri];
    // last_lambda + rem/live, not rem/live: a peeled piece arrives with
    // resources already refreshed to the peel levels, whose exhaust
    // estimate continues from last_lambda. Fresh prepares have
    // last_lambda == 0 and 0.0 + x is bitwise x for x >= 0, so unsplit
    // fills are unchanged.
    r->fill_key = r->last_lambda + r->rem / r->live;
    r->fill_pos = ri;
    heap.push_back(r);
  }
  if (heap.size() > 1) {
    for (auto i = static_cast<std::int64_t>(heap.size() / 2) - 1; i >= 0; --i)
      res_heap_sift_down(heap, static_cast<std::uint32_t>(i));
  }

  double lambda = 0.0;
  const auto refresh = [&lambda](Resource* r) {
    r->rem -= (lambda - r->last_lambda) * r->live;
    if (r->rem < 0.0) r->rem = 0.0;
    r->last_lambda = lambda;
  };

  std::uint64_t pops = 0;
  std::size_t unfrozen = comp.flow_cnt;
  while (unfrozen > 0 && !heap.empty()) {
    ++pops;
    Resource* r = heap.front();
    res_heap_remove(heap, r);
    assert(r->live > 0);
    // The stored key IS the exhaust level: every sift already computed it
    // as last_lambda + rem/live right after a refresh, so adopting it here
    // (instead of re-deriving it through a refresh at the current global
    // level) makes each pop's arithmetic a function of the popped
    // resource's own state alone. That locality is what lets a peeled
    // piece reproduce the flat fill bit-for-bit: the piece fill never
    // sees the other pieces' lambda history.
    lambda = r->fill_key;
    r->rem = 0.0;
    r->last_lambda = lambda;
    r->sat_lambda = lambda;
    r->sat_fill = fill;
    // Freeze every remaining participating flow crossing this resource.
    const std::uint32_t* fmem = local_arena_.data() + r->lmem_off;
    for (std::uint32_t m = 0; m < r->lmem_cnt; ++m) {
      const std::uint32_t slot = fmem[m];
      if (freeze_epoch_[slot] == fill) continue;
      freeze_epoch_[slot] = fill;
      rates_scratch_[slot] = lambda;
      bottleneck_scratch_[slot] = r;
      --unfrozen;
      const Flow& af = slab_[slot];
      for (std::uint32_t i = 0; i < af.res_count; ++i) {
        Resource* r2 = af.res[i];
        assert(r2->fill_epoch == fill);
        refresh(r2);
        assert(r2->live > 0);
        --r2->live;
        r2->usage_local += lambda;
        r2->max_local = lambda;  // freeze levels are non-decreasing
        if (r2 == r) continue;
        if (r2->live == 0) {
          // Drained: all its participants froze elsewhere. Out of the
          // heap — it can never pop. On *coupled* components the
          // saturation marks must additionally be canonical — a function
          // of the final rates, not of elimination order: on an exact
          // level tie a resource can drain here (its last member frozen
          // by the tied peer) under one pop order and saturate under
          // another, and the hierarchical solver routinely takes the
          // other order; a mark the two solvers disagree on makes
          // validate_boundary skip expansions after a hier fill and
          // diverge on a later realloc. So an exhausted resource is
          // marked whether it popped or drained, at the level of its
          // highest member rate (== the pop level when it did pop);
          // max_local is final here because this freeze was its last.
          // Uncoupled components are exact-only territory — the pop
          // order is deterministic and self-consistent there, and
          // marking every drained-at-cap NIC of a jittered pipeline
          // floods may_hog with near-tie expansions (2x wall at the
          // 16384-node Fig 8 point), so they keep pop-only marks.
          res_heap_remove(heap, r2);
          if (comp.has_coupling && r2->usage_b + r2->usage_local >=
                                       r2->cap * (1.0 - kExpandTol)) {
            r2->sat_lambda = r2->max_local;
            r2->sat_fill = fill;
          }
        } else {
          r2->fill_key = lambda + r2->rem / r2->live;
          const std::uint32_t pos = r2->fill_pos;
          res_heap_sift_down(heap, pos);
          res_heap_sift_up(heap, r2->fill_pos);
        }
      }
    }
    assert(r->live == 0);
  }
  assert(unfrozen == 0 && "every flow crosses a finite resource");
  return pops;
}

// ------------------------------------------------- saturation-cut peeling --

std::size_t FlowNetwork::peel_and_split(std::uint32_t ci, std::uint64_t mark) {
  // Schedule-aware splitting (DESIGN.md §"Saturation-cut splitting"). A
  // *cut* is a live resource whose exhaust level lastl + rem/live is below
  // every other exhaust level within graph distance two by the relative
  // kCutMargin. The flat fill provably pops a cut before any resource that
  // could interact with it (everything freezing its members, and everything
  // refreshing the resources its members cross, lies within distance two
  // and carries a strictly higher key), so freezing a cut's members here —
  // with the pop's exact arithmetic — commutes with the rest of the fill
  // bit-for-bit. The margin also forces cuts >= distance three apart, so
  // the cuts of one round never interact with each other, and iterating
  // rounds only raises every later refresh level. What survives splits
  // into independent pieces that fill (and memoize) separately.
  //
  // peel appends pieces to comps_ (possibly reallocating), so the
  // component is addressed by index throughout. The parent's
  // split_flows_/split_res_ spans are only permuted in place — pieces are
  // sub-slices — so the span arrays never grow here.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::uint32_t nf = comps_[ci].flow_cnt;
  const std::uint32_t nr = comps_[ci].res_cnt;
  const std::uint32_t foff = comps_[ci].flow_off;
  const std::uint32_t roff = comps_[ci].res_off;
  const std::uint32_t* flows = split_flows_.data() + foff;
  Resource* const* res = split_res_.data() + roff;

  // --- Cut detection over the live sub-graph (pure: no mutation). Three
  // passes: per-flow two lowest adjacent keys with the owner of the
  // lowest; per-resource distance-1 minimum plus the two lowest per-flow
  // minima with distinct owners (so a resource can exclude contributions
  // whose minimum it is itself); per-resource distance-2 guard. A flow
  // sharing a resource r with owner != r fails r's guard through the
  // distance-1 minimum, which is what makes the two-owner trick sound.
  const auto detect = [&]() {
    const std::uint64_t fill = comps_[ci].fill;
    cut_key_.assign(nr, kInf);
    for (std::uint32_t ri = 0; ri < nr; ++ri) {
      const Resource* r = res[ri];
      if (r->live > 0)
        cut_key_[ri] = r->last_lambda + r->rem / r->live;
    }
    cut_s1_.assign(nf, kInf);
    cut_s2_.assign(nf, kInf);
    cut_o1_.assign(nf, kNone);
    for (std::uint32_t fi = 0; fi < nf; ++fi) {
      const std::uint32_t slot = flows[fi];
      if (freeze_epoch_[slot] == fill) continue;  // frozen by earlier round
      const Flow& f = slab_[slot];
      double s1 = kInf, s2 = kInf;
      std::uint32_t o1 = kNone;
      for (std::uint32_t j = 0; j < f.res_count; ++j) {
        const std::uint32_t ord = f.res[j]->comp_index;
        const double k = cut_key_[ord];
        if (k < s1) {
          s2 = s1;
          s1 = k;
          o1 = ord;
        } else if (k < s2) {
          s2 = k;
        }
      }
      cut_s1_[fi] = s1;
      cut_s2_[fi] = s2;
      cut_o1_[fi] = o1;
    }
    cut_nb1_.assign(nr, kInf);
    cut_e1_.assign(nr, kInf);
    cut_e2_.assign(nr, kInf);
    cut_eo1_.assign(nr, kNone);
    for (std::uint32_t fi = 0; fi < nf; ++fi) {
      if (cut_o1_[fi] == kNone) continue;  // frozen
      const Flow& f = slab_[flows[fi]];
      const double s1 = cut_s1_[fi], s2 = cut_s2_[fi];
      const std::uint32_t o1 = cut_o1_[fi];
      for (std::uint32_t j = 0; j < f.res_count; ++j) {
        const std::uint32_t ord = f.res[j]->comp_index;
        const double nb = o1 == ord ? s2 : s1;
        if (nb < cut_nb1_[ord]) cut_nb1_[ord] = nb;
        // Two lowest s1 contributions with distinct owners.
        if (o1 == cut_eo1_[ord]) {
          if (s1 < cut_e1_[ord]) cut_e1_[ord] = s1;
        } else if (s1 < cut_e1_[ord]) {
          cut_e2_[ord] = cut_e1_[ord];
          cut_e1_[ord] = s1;
          cut_eo1_[ord] = o1;
        } else if (s1 < cut_e2_[ord]) {
          cut_e2_[ord] = s1;
        }
      }
    }
    cut_list_.clear();
    for (std::uint32_t ri = 0; ri < nr; ++ri) {
      const Resource* r = res[ri];
      if (r->live == 0) continue;
      double guard = cut_nb1_[ri];
      const std::uint32_t* lm = local_arena_.data() + r->lmem_off;
      for (std::uint32_t m = 0; m < r->lmem_cnt; ++m) {
        const std::uint32_t slot = lm[m];
        if (freeze_epoch_[slot] == fill) continue;
        const Flow& f = slab_[slot];
        for (std::uint32_t j = 0; j < f.res_count; ++j) {
          const std::uint32_t o2 = f.res[j]->comp_index;
          if (o2 == ri) continue;
          const double d2 = cut_eo1_[o2] == ri ? cut_e2_[o2] : cut_e1_[o2];
          if (d2 < guard) guard = d2;
        }
      }
      if (guard < kInf && cut_key_[ri] < guard * (1.0 - kCutMargin))
        cut_list_.push_back(ri);
    }
  };

  detect();
  if (cut_list_.empty()) return 0;

  if (cross_check_ && !comps_[ci].prepared) {
    // Byte-equality oracle: run the flat fill over the unsplit component
    // and record its verdicts; the epilogue of fill_dirty_components
    // compares them bitwise against the peel + piece results. Then restore
    // the prepared state by re-running the (deterministic) prepare — a
    // fresh fill epoch invalidates the oracle's freeze and saturation
    // marks. Peeled pieces that re-peel skip this: their parent's oracle
    // already covers every flow, and a piece's refreshed state cannot be
    // rebuilt by fill_prepare.
    fill_exact(comps_[ci], res_heap_);
    for (std::uint32_t fi = 0; fi < nf; ++fi) {
      const std::uint32_t slot = flows[fi];
      oracle_slots_.push_back(slot);
      oracle_rates_.push_back(rates_scratch_[slot]);
      oracle_bns_.push_back(bottleneck_scratch_[slot]);
    }
    fill_prepare(comps_[ci], mark, ci);
    detect();
    assert(!cut_list_.empty() && "prepare is deterministic");
  }

  // --- Peel rounds: freeze each cut exactly as the flat fill's pop would,
  // then re-detect on the refreshed remainder until no cut survives. Cuts
  // within one round are >= distance three apart, so their freeze cascades
  // touch disjoint resources; they are still applied in (key, ordinal)
  // order — the flat fill's pop order — for determinism by construction.
  const std::uint64_t fill = comps_[ci].fill;
  std::uint64_t total_cuts = 0;
  while (!cut_list_.empty()) {
    total_cuts += cut_list_.size();
    std::sort(cut_list_.begin(), cut_list_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                if (cut_key_[a] != cut_key_[b])
                  return cut_key_[a] < cut_key_[b];
                return a < b;
              });
    for (const std::uint32_t ord : cut_list_) {
      Resource* r = res[ord];
      const double lambda = cut_key_[ord];
      r->rem = 0.0;
      r->last_lambda = lambda;
      r->sat_lambda = lambda;
      r->sat_fill = fill;
      const std::uint32_t* fmem = local_arena_.data() + r->lmem_off;
      for (std::uint32_t m = 0; m < r->lmem_cnt; ++m) {
        const std::uint32_t slot = fmem[m];
        if (freeze_epoch_[slot] == fill) continue;
        freeze_epoch_[slot] = fill;
        rates_scratch_[slot] = lambda;
        bottleneck_scratch_[slot] = r;
        const Flow& af = slab_[slot];
        for (std::uint32_t i = 0; i < af.res_count; ++i) {
          Resource* r2 = af.res[i];
          assert(r2->fill_epoch == fill);
          r2->rem -= (lambda - r2->last_lambda) * r2->live;
          if (r2->rem < 0.0) r2->rem = 0.0;
          r2->last_lambda = lambda;
          assert(r2->live > 0);
          --r2->live;
          r2->usage_local += lambda;
          r2->max_local = lambda;  // freeze levels are non-decreasing
          // Drained neighbours (live == 0) join the residue unmarked —
          // uncoupled components keep pop-only saturation marks, same as
          // the flat fill.
        }
      }
      assert(r->live == 0);
    }
    detect();
  }

  // --- Piece assignment: BFS over the surviving live flows/resources.
  // Every live resource still has a live member and vice versa, so the
  // BFS partitions exactly the unfrozen remainder.
  if (piece_flow_stamp_.size() < slab_.size()) {
    piece_flow_stamp_.resize(slab_.size(), 0);
    piece_of_slot_.resize(slab_.size(), 0);
  }
  const std::uint64_t btoken = ++epoch_;
  piece_of_res_.assign(nr, kNone);
  std::uint32_t npieces = 0;
  for (std::uint32_t fi = 0; fi < nf; ++fi) {
    const std::uint32_t seed = flows[fi];
    if (freeze_epoch_[seed] == fill) continue;
    if (piece_flow_stamp_[seed] == btoken) continue;
    const std::uint32_t pid = npieces++;
    piece_flow_stamp_[seed] = btoken;
    piece_of_slot_[seed] = pid;
    part_flows_.clear();
    part_flows_.push_back(seed);
    for (std::size_t qi = 0; qi < part_flows_.size(); ++qi) {
      const Flow& f = slab_[part_flows_[qi]];
      for (std::uint32_t j = 0; j < f.res_count; ++j) {
        Resource* r = f.res[j];
        const std::uint32_t ord = r->comp_index;
        if (piece_of_res_[ord] != kNone) continue;
        piece_of_res_[ord] = pid;
        const std::uint32_t* lm = local_arena_.data() + r->lmem_off;
        for (std::uint32_t m = 0; m < r->lmem_cnt; ++m) {
          const std::uint32_t s2 = lm[m];
          if (freeze_epoch_[s2] == fill) continue;
          if (piece_flow_stamp_[s2] == btoken) continue;
          piece_flow_stamp_[s2] = btoken;
          piece_of_slot_[s2] = pid;
          part_flows_.push_back(s2);
        }
      }
    }
  }

  // --- Stable partition of the parent spans: residue (frozen flows /
  // exhausted resources) first, then the pieces in id order. Stability
  // keeps relative order, so within a piece the ordinal ordering — the
  // heap tie-break — is order-isomorphic to the parent's, and a piece fill
  // resolves exact-level ties identically to the flat fill.
  std::vector<std::uint32_t> fcur(npieces + 2, 0);
  for (std::uint32_t fi = 0; fi < nf; ++fi) {
    const std::uint32_t slot = flows[fi];
    const std::uint32_t b =
        freeze_epoch_[slot] == fill ? 0 : piece_of_slot_[slot] + 1;
    ++fcur[b + 1];
  }
  std::partial_sum(fcur.begin(), fcur.end(), fcur.begin());
  std::vector<std::uint32_t> fout(fcur.begin(), fcur.end() - 1);
  part_flows_.resize(nf);
  for (std::uint32_t fi = 0; fi < nf; ++fi) {
    const std::uint32_t slot = flows[fi];
    const std::uint32_t b =
        freeze_epoch_[slot] == fill ? 0 : piece_of_slot_[slot] + 1;
    part_flows_[fout[b]++] = slot;
  }
  std::copy(part_flows_.begin(), part_flows_.end(),
            split_flows_.begin() + foff);

  std::vector<std::uint32_t> rcur(npieces + 2, 0);
  for (std::uint32_t ri = 0; ri < nr; ++ri) {
    const std::uint32_t b =
        piece_of_res_[ri] == kNone ? 0 : piece_of_res_[ri] + 1;
    ++rcur[b + 1];
  }
  std::partial_sum(rcur.begin(), rcur.end(), rcur.begin());
  std::vector<std::uint32_t> rout(rcur.begin(), rcur.end() - 1);
  part_res_.resize(nr);
  std::vector<std::uint8_t> piece_pair(npieces, 0);
  for (std::uint32_t ri = 0; ri < nr; ++ri) {
    Resource* r = res[ri];
    const std::uint32_t b =
        piece_of_res_[ri] == kNone ? 0 : piece_of_res_[ri] + 1;
    if (b > 0 && r->kind == Resource::Kind::kPair) piece_pair[b - 1] = 1;
    part_res_[rout[b]++] = ri;
  }
  const std::uint32_t first_piece_ci =
      static_cast<std::uint32_t>(comps_.size());
  for (std::uint32_t i = 0; i < nr; ++i) {
    Resource* r = res[part_res_[i]];
    // Renumber ordinals relative to the sub-span the resource lands in
    // (residue or piece) and point comp_id at its new component.
    std::uint32_t b = 0;
    for (std::uint32_t p = 0; p <= npieces; ++p)
      if (i < rcur[p + 1]) {
        b = p;
        break;
      }
    r->comp_index = i - rcur[b];
    r->comp_id = b == 0 ? ci : first_piece_ci + (b - 1);
  }
  // part_res_ holds span positions; materialise the permuted pointer order
  // through a temporary (the positions index the *old* order).
  {
    std::vector<Resource*> tmp(nr);
    for (std::uint32_t i = 0; i < nr; ++i) tmp[i] = res[part_res_[i]];
    std::copy(tmp.begin(), tmp.end(), split_res_.begin() + roff);
  }

  const std::uint32_t nfrozen = fcur[1];
  const std::uint32_t nfin = rcur[1];
  comps_[ci].flow_cnt = nfrozen;
  comps_[ci].res_cnt = nfin;
  comps_[ci].solved = true;  // rates final; still boundary-validated
  for (std::uint32_t p = 0; p < npieces; ++p) {
    CompSpan pc;
    pc.flow_off = foff + fcur[p + 1];
    pc.flow_cnt = fcur[p + 2] - fcur[p + 1];
    pc.res_off = roff + rcur[p + 1];
    pc.res_cnt = rcur[p + 2] - rcur[p + 1];
    pc.fill = fill;
    pc.stamp = comps_[ci].stamp;  // span resources keep the parent's token
    pc.dirty = true;
    pc.prepared = true;  // shares the parent's prepared/refreshed state
    pc.has_pair = piece_pair[p] != 0;
    pc.has_coupling = false;  // cut-eligible parents are uncoupled
    assert(pc.flow_cnt > 0 && pc.res_cnt > 0);
    comps_.push_back(pc);
  }
  counters_.split_cuts += total_cuts;
  counters_.split_pieces += npieces;
  counters_.filling_rounds += total_cuts;  // each cut is one pop
  return npieces;
}

// ------------------------------------------- expansion-round merging --

void FlowNetwork::merge_expansion(std::uint64_t mark, std::size_t fresh_begin) {
  // Round >= 2 of the expansion loop: instead of re-running the global
  // component BFS, union the freshly expanded flows with the components
  // their resources already belong to. A component span is a BFS closure
  // and a resource first seen this round can only carry fresh in-set
  // members (an old in-set member would have pulled it into a span
  // already), so the merged component is exactly: the absorbed spans +
  // the fresh flows + their brand-new resources — no old member list is
  // walked. Untouched components keep their spans, rates and verdicts.
  (void)mark;
  const std::size_t nfresh = comp_flows_.size() - fresh_begin;
  assert(nfresh > 0);
  for (CompSpan& c : comps_) c.dirty = false;

  // Union-find over {fresh flows} ∪ {touched components} ∪ {new
  // resources}; unions point at the smaller id so a class root is always
  // its first fresh flow — deterministic class order.
  std::vector<std::uint32_t> ufp(nfresh);
  std::iota(ufp.begin(), ufp.end(), 0u);
  const auto uf_find = [&ufp](std::uint32_t x) {
    while (ufp[x] != x) {
      ufp[x] = ufp[ufp[x]];
      x = ufp[x];
    }
    return x;
  };
  const auto uf_union = [&](std::uint32_t a, std::uint32_t b) {
    a = uf_find(a);
    b = uf_find(b);
    if (a == b) return;
    if (a < b)
      ufp[b] = a;
    else
      ufp[a] = b;
  };
  // A peeled component leaves a residue whose frozen flows still cross the
  // pieces' resources, so residue and piece spans are only closed as a
  // group. The whole peel tree shares one fill epoch (pieces inherit the
  // parent's), so absorption is by *fill group*: touching any member pulls
  // in every live component with the same fill.
  std::vector<std::uint32_t> group_head(comps_.size(), kNone);
  {
    std::unordered_map<std::uint64_t, std::uint32_t> fill_head;
    fill_head.reserve(comps_.size());
    for (std::uint32_t cid = 0; cid < comps_.size(); ++cid) {
      if (comps_[cid].dead) continue;
      // fill == 0: built by a split this realloc but never refilled (no
      // fresh flow yet) — not part of any peel tree, its own group.
      group_head[cid] =
          comps_[cid].fill == 0
              ? cid
              : fill_head.try_emplace(comps_[cid].fill, cid).first->second;
    }
  }
  std::vector<std::uint32_t> comp_node(comps_.size(), kNone);  // by head
  const std::uint64_t mtoken = ++epoch_;
  std::vector<Resource*> new_res;          // first-touch order
  std::vector<std::uint32_t> new_res_node;
  for (std::size_t i = 0; i < nfresh; ++i) {
    const Flow& f = slab_[comp_flows_[fresh_begin + i]];
    const auto fnode = static_cast<std::uint32_t>(i);
    for (std::uint32_t j = 0; j < f.res_count; ++j) {
      Resource* r = f.res[j];
      const std::uint32_t cid = r->comp_id;
      if (cid < comps_.size() && !comps_[cid].dead &&
          comps_[cid].stamp != 0 && comps_[cid].stamp == r->split_epoch) {
        const std::uint32_t head = group_head[cid];
        if (comp_node[head] == kNone) {
          comp_node[head] = static_cast<std::uint32_t>(ufp.size());
          ufp.push_back(comp_node[head]);
        }
        uf_union(fnode, comp_node[head]);
      } else if (r->split_epoch == mtoken) {
        uf_union(fnode, r->fill_pos);  // new resource seen this round
      } else {
        r->split_epoch = mtoken;
        const auto node = static_cast<std::uint32_t>(ufp.size());
        ufp.push_back(node);
        r->fill_pos = node;  // scratch: reassigned by the next heap build
        new_res.push_back(r);
        new_res_node.push_back(node);
        uf_union(fnode, node);
      }
    }
  }

  // Group members per class, then materialise each merged component at the
  // span tails: absorbed spans (component-index order), fresh flows, new
  // resources. The absorbed components are tombstoned in place.
  struct Merged {
    std::vector<std::uint32_t> comps;
    std::vector<std::uint32_t> fresh;
    std::vector<Resource*> nres;
  };
  std::vector<Merged> merged;
  std::vector<std::uint32_t> class_of(ufp.size(), kNone);
  for (std::size_t i = 0; i < nfresh; ++i) {
    const std::uint32_t root = uf_find(static_cast<std::uint32_t>(i));
    if (class_of[root] == kNone) {
      class_of[root] = static_cast<std::uint32_t>(merged.size());
      merged.emplace_back();
    }
    merged[class_of[root]].fresh.push_back(comp_flows_[fresh_begin + i]);
  }
  std::size_t add_flows = nfresh, add_res = new_res.size();
  for (std::uint32_t cid = 0; cid < comp_node.size(); ++cid) {
    // Group membership: every comp rides with its head's union class.
    const std::uint32_t head = group_head[cid];
    if (head == kNone || comp_node[head] == kNone) continue;
    merged[class_of[uf_find(comp_node[head])]].comps.push_back(cid);
    add_flows += comps_[cid].flow_cnt;
    add_res += comps_[cid].res_cnt;
  }
  for (std::size_t k = 0; k < new_res.size(); ++k)
    merged[class_of[uf_find(new_res_node[k])]].nres.push_back(new_res[k]);

  // Reserve up front: the absorbed-span copies below read from the same
  // vectors they append to.
  split_flows_.reserve(split_flows_.size() + add_flows);
  split_res_.reserve(split_res_.size() + add_res);
  for (const Merged& m : merged) {
    CompSpan nc;
    nc.flow_off = static_cast<std::uint32_t>(split_flows_.size());
    nc.res_off = static_cast<std::uint32_t>(split_res_.size());
    const auto nci = static_cast<std::uint32_t>(comps_.size());
    for (const std::uint32_t cid : m.comps) {
      CompSpan& old = comps_[cid];
      for (std::uint32_t k = 0; k < old.flow_cnt; ++k)
        split_flows_.push_back(split_flows_[old.flow_off + k]);
      for (std::uint32_t k = 0; k < old.res_cnt; ++k) {
        Resource* r = split_res_[old.res_off + k];
        r->comp_id = nci;
        r->split_epoch = mtoken;  // re-stamp: membership moved here
        split_res_.push_back(r);
      }
      old.dead = true;
    }
    for (const std::uint32_t slot : m.fresh) split_flows_.push_back(slot);
    for (Resource* r : m.nres) {
      r->comp_id = nci;  // split_epoch is already mtoken
      split_res_.push_back(r);
    }
    nc.flow_cnt =
        static_cast<std::uint32_t>(split_flows_.size()) - nc.flow_off;
    nc.res_cnt = static_cast<std::uint32_t>(split_res_.size()) - nc.res_off;
    nc.stamp = mtoken;
    nc.dirty = true;
    comps_.push_back(nc);
  }
}

// ---------------------------------------------------- hierarchical solver --


bool FlowNetwork::fill_hierarchical(const CompSpan& comp,
                                    std::size_t island_jobs,
                                    std::uint64_t* pops, std::uint64_t* iters,
                                    std::uint64_t* par_rounds) const {
  // Decompose an oversubscribed-TOR component along its structure: interior
  // NIC resources (kTx/kRx) form per-rack *islands* coupled only through
  // the kRackUp/kRackDown fabric resources. Each island is solved
  // independently by a *capped* bottleneck elimination — a member flow is
  // additionally bounded by the levels the rest of the network granted it
  // in the previous iteration — and each coupling resource recomputes its
  // single-resource fair share over its capped members; the loop repeats
  // until every advertised level is stable. This is the classic
  // bottleneck-ordering fixed point (Bertsekas–Gallager style): after k
  // iterations the k lowest global bottleneck levels are final, so the
  // iteration count is bounded by the number of distinct levels, a handful
  // in practice. DESIGN.md §"Hierarchical water-fill" has the argument and
  // the fallback conditions.
  //
  // Everything here is derived from the component *shape* (ordinals,
  // span/discovery order) — never from absolute ids — so a memoized
  // hierarchical fill replays bit-for-bit on an isomorphic component.
  // Failure (no decomposable structure, unexpected shape, non-convergence)
  // returns false with the prepared resource state untouched; the caller
  // falls back to the flat exact fill.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::uint32_t* flows = split_flows_.data() + comp.flow_off;
  Resource* const* res = split_res_.data() + comp.res_off;
  const std::uint32_t nf = comp.flow_cnt;
  const std::uint32_t nr = comp.res_cnt;

  const auto is_coupling = [](const Resource* r) {
    return r->kind == Resource::Kind::kRackUp ||
           r->kind == Resource::Kind::kRackDown;
  };

  // --- Islands: union-find over interior ordinals. A flow crossing no
  // coupling resource welds its interiors together (an intra-rack flow's tx
  // and rx); a fabric-crossing flow does not — it participates in each
  // touched island as a capped member.
  std::vector<std::uint32_t> uf(nr);
  for (std::uint32_t i = 0; i < nr; ++i) uf[i] = i;
  const auto find = [&uf](std::uint32_t x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  for (std::uint32_t i = 0; i < nf; ++i) {
    const Flow& f = slab_[flows[i]];
    bool crosses = false;
    for (std::uint32_t j = 0; j < f.res_count; ++j)
      if (is_coupling(f.res[j])) {
        crosses = true;
        break;
      }
    if (crosses) continue;
    std::uint32_t root = kNone;
    for (std::uint32_t j = 0; j < f.res_count; ++j) {
      const std::uint32_t o = find(f.res[j]->comp_index);
      if (root == kNone)
        root = o;
      else if (o != root)
        uf[o] = root;
    }
  }
  // Island numbering in first-occurrence (ordinal) order — shape-canonical.
  std::vector<std::uint32_t> island_of(nr, kNone);
  std::vector<std::uint32_t> island_id(nr, kNone);
  std::uint32_t nisl = 0;
  for (std::uint32_t i = 0; i < nr; ++i) {
    if (is_coupling(res[i])) continue;
    assert(res[i]->kind == Resource::Kind::kTx ||
           res[i]->kind == Resource::Kind::kRx);
    const std::uint32_t root = find(i);
    if (island_id[root] == kNone) island_id[root] = nisl++;
    island_of[i] = island_id[root];
  }
  if (nisl < 2) return false;  // one island + couplings: nothing to gain

  // --- Per-flow incidence: up to two interior sides (tx rack, rx rack; an
  // intra-rack flow has one welded side) and up to two coupling resources.
  struct Side {
    std::uint32_t isl = 0;
    std::uint32_t ires[2] = {0, 0};
    std::uint32_t mpos = 0;  // position in the island member arena
    std::uint8_t cnt = 0;
  };
  struct HFlow {
    Side side[2];
    std::uint32_t cpl[2] = {0, 0};
    std::uint8_t nsides = 0;
    std::uint8_t ncpl = 0;
  };
  std::vector<HFlow> hf(nf);
  for (std::uint32_t i = 0; i < nf; ++i) {
    const Flow& f = slab_[flows[i]];
    HFlow& h = hf[i];
    for (std::uint32_t j = 0; j < f.res_count; ++j) {
      const std::uint32_t ord = f.res[j]->comp_index;
      if (is_coupling(f.res[j])) {
        if (h.ncpl == 2) return false;
        h.cpl[h.ncpl++] = ord;
        continue;
      }
      const std::uint32_t isl = island_of[ord];
      std::uint8_t s = 0;
      for (; s < h.nsides; ++s)
        if (h.side[s].isl == isl) break;
      if (s == h.nsides) {
        if (h.nsides == 2) return false;  // unexpected shape
        h.side[s].isl = isl;
        ++h.nsides;
      }
      if (h.side[s].cnt == 2) return false;
      h.side[s].ires[h.side[s].cnt++] = ord;
    }
    if (h.nsides == 0) return false;
  }

  // --- Island member arena (flow-span order within each island) and
  // per-interior-resource member-position lists, both shape-canonical.
  std::vector<std::uint32_t> ioff(nisl + 1, 0);
  for (std::uint32_t i = 0; i < nf; ++i)
    for (std::uint8_t s = 0; s < hf[i].nsides; ++s)
      ++ioff[hf[i].side[s].isl + 1];
  std::partial_sum(ioff.begin(), ioff.end(), ioff.begin());
  const std::uint32_t nmem = ioff[nisl];
  std::vector<std::uint32_t> mem_flow(nmem);
  std::vector<std::uint8_t> mem_side(nmem);
  {
    std::vector<std::uint32_t> cur(ioff.begin(), ioff.end() - 1);
    for (std::uint32_t i = 0; i < nf; ++i)
      for (std::uint8_t s = 0; s < hf[i].nsides; ++s) {
        const std::uint32_t p = cur[hf[i].side[s].isl]++;
        mem_flow[p] = i;
        mem_side[p] = s;
        hf[i].side[s].mpos = p;
      }
  }
  std::vector<std::uint32_t> roff(nr + 1, 0);
  for (std::uint32_t p = 0; p < nmem; ++p) {
    const Side& sd = hf[mem_flow[p]].side[mem_side[p]];
    for (std::uint8_t c = 0; c < sd.cnt; ++c) ++roff[sd.ires[c] + 1];
  }
  std::partial_sum(roff.begin(), roff.end(), roff.begin());
  std::vector<std::uint32_t> rmem(roff[nr]);
  {
    std::vector<std::uint32_t> cur(roff.begin(), roff.end() - 1);
    for (std::uint32_t p = 0; p < nmem; ++p) {
      const Side& sd = hf[mem_flow[p]].side[mem_side[p]];
      for (std::uint8_t c = 0; c < sd.cnt; ++c) rmem[cur[sd.ires[c]]++] = p;
    }
  }
  // Per-island interior resource lists, ordinal order.
  std::vector<std::uint32_t> irl_off(nisl + 1, 0);
  for (std::uint32_t i = 0; i < nr; ++i)
    if (island_of[i] != kNone) ++irl_off[island_of[i] + 1];
  std::partial_sum(irl_off.begin(), irl_off.end(), irl_off.begin());
  std::vector<std::uint32_t> irl(irl_off[nisl]);
  {
    std::vector<std::uint32_t> cur(irl_off.begin(), irl_off.end() - 1);
    for (std::uint32_t i = 0; i < nr; ++i)
      if (island_of[i] != kNone) irl[cur[island_of[i]]++] = i;
  }
  // Coupling ordinals and slot -> span-index map for their member lists.
  std::vector<std::uint32_t> couplings;
  for (std::uint32_t i = 0; i < nr; ++i)
    if (is_coupling(res[i])) couplings.push_back(i);
  std::vector<std::uint32_t> idx_of_slot(slab_.size(), kNone);
  for (std::uint32_t i = 0; i < nf; ++i) idx_of_slot[flows[i]] = i;

  // --- Iteration state. Resource scratch is indexed by ordinal; islands
  // are resource-disjoint, so the arrays are shared across island solves.
  std::vector<double> lvl(nmem, kInf), prev_lvl(nmem, kInf);
  std::vector<double> cap(nmem);
  std::vector<std::uint32_t> bnm(nmem, kNone);  // freezing ordinal / kNone
  std::vector<std::uint8_t> frozen(nmem, 0);
  // Per-island-resource saturation level this iteration (inf: the resource
  // ended the island solve with capacity to spare).
  std::vector<double> rlam(nr, kInf);
  std::vector<double> lam(nr, kInf), lam_new(nr, kInf);
  std::vector<std::uint8_t> lam_sat(nr, 0);
  std::vector<double> rem(nr), lastl(nr), hkey(nr);
  std::vector<std::uint32_t> live(nr), hpos(nr, kNone);
  std::vector<std::pair<double, std::uint32_t>> ccaps;

  // --- One island's capped bottleneck elimination. Reads prev_lvl/lam/cap
  // (frozen for the duration of a Jacobi round) and writes only
  // island-disjoint slices: ordinal-indexed scratch (rem/live/lastl/rlam/
  // hkey/hpos) of its own interiors and member-position-indexed state
  // (frozen/lvl/bnm) of its own member range. The heap and freeze order
  // live entirely in the caller-provided hvec/order, so island solves of
  // one round run concurrently and bit-identically in any interleaving.
  // Returns false on the degenerate nothing-binds shape.
  const auto solve_island = [&](std::uint32_t isl,
                                std::vector<std::uint32_t>& hvec,
                                std::vector<std::uint32_t>& order,
                                std::uint64_t& pop_out) -> bool {
    const auto hless = [&hkey](std::uint32_t a, std::uint32_t b) {
      if (hkey[a] != hkey[b]) return hkey[a] < hkey[b];
      return a < b;
    };
    const auto hsift_up = [&](std::uint32_t pos) {
      const std::uint32_t v = hvec[pos];
      while (pos > 0) {
        const std::uint32_t parent = (pos - 1) / 2;
        if (!hless(v, hvec[parent])) break;
        hvec[pos] = hvec[parent];
        hpos[hvec[pos]] = pos;
        pos = parent;
      }
      hvec[pos] = v;
      hpos[v] = pos;
    };
    const auto hsift_down = [&](std::uint32_t pos) {
      const auto size = static_cast<std::uint32_t>(hvec.size());
      const std::uint32_t v = hvec[pos];
      while (true) {
        std::uint32_t child = 2 * pos + 1;
        if (child >= size) break;
        if (child + 1 < size && hless(hvec[child + 1], hvec[child])) ++child;
        if (!hless(hvec[child], v)) break;
        hvec[pos] = hvec[child];
        hpos[hvec[pos]] = pos;
        pos = child;
      }
      hvec[pos] = v;
      hpos[v] = pos;
    };
    const auto hremove = [&](std::uint32_t ord) {
      const std::uint32_t pos = hpos[ord];
      const std::uint32_t last = hvec.back();
      hvec.pop_back();
      hpos[ord] = kNone;
      if (last != ord) {
        hvec[pos] = last;
        hpos[last] = pos;
        hsift_down(pos);
        hsift_up(hpos[last]);
      }
    };
    double lambda = 0.0;
    const auto refresh = [&](std::uint32_t ord) {
      rem[ord] -= (lambda - lastl[ord]) * live[ord];
      if (rem[ord] < 0.0) rem[ord] = 0.0;
      lastl[ord] = lambda;
    };
    // Detach a freezing member from its island resources: capacity
    // consumed, degree down, heap key up (skip: the resource doing the
    // freezing).
    const auto detach = [&](std::uint32_t p, std::uint32_t skip) {
      const Side& sd = hf[mem_flow[p]].side[mem_side[p]];
      for (std::uint8_t c = 0; c < sd.cnt; ++c) {
        const std::uint32_t o = sd.ires[c];
        if (o == skip) continue;
        refresh(o);
        assert(live[o] > 0);
        --live[o];
        if (live[o] == 0) {
          hremove(o);
        } else {
          hkey[o] = lambda + rem[o] / live[o];
          hsift_down(hpos[o]);
          hsift_up(hpos[o]);
        }
      }
    };

    hvec.clear();
    for (std::uint32_t k = irl_off[isl]; k < irl_off[isl + 1]; ++k) {
      const std::uint32_t ord = irl[k];
      rem[ord] = res[ord]->rem;
      live[ord] = res[ord]->live;
      lastl[ord] = 0.0;
      rlam[ord] = kInf;
      hkey[ord] = rem[ord] / live[ord];
      hpos[ord] = static_cast<std::uint32_t>(hvec.size());
      hvec.push_back(ord);
    }
    if (hvec.size() > 1)
      for (auto i = static_cast<std::int64_t>(hvec.size() / 2) - 1; i >= 0;
           --i)
        hsift_down(static_cast<std::uint32_t>(i));
    const std::uint32_t mbeg = ioff[isl], mend = ioff[isl + 1];
    order.resize(mend - mbeg);
    std::iota(order.begin(), order.end(), mbeg);
    std::sort(order.begin(), order.end(),
              [&cap](std::uint32_t a, std::uint32_t b) {
                if (cap[a] != cap[b]) return cap[a] < cap[b];
                return a < b;
              });
    for (std::uint32_t p = mbeg; p < mend; ++p) frozen[p] = 0;
    std::uint32_t unf = mend - mbeg;
    std::size_t ci = 0;
    while (unf > 0) {
      while (ci < order.size() && frozen[order[ci]]) ++ci;
      const double cnext = ci < order.size() ? cap[order[ci]] : kInf;
      if (hvec.empty()) {
        if (cnext == kInf) return false;  // degenerate: nothing binds
      }
      if (hvec.empty() || cnext <= hkey[hvec.front()]) {
        // External constraint binds first: freeze at the cap.
        const std::uint32_t p = order[ci++];
        lambda = cnext;
        frozen[p] = 1;
        lvl[p] = cnext;
        bnm[p] = kNone;
        --unf;
        detach(p, kNone);
      } else {
        // This island resource saturates next: freeze its remaining
        // members at the fair share.
        ++pop_out;
        const std::uint32_t ord = hvec.front();
        hremove(ord);
        refresh(ord);
        assert(live[ord] > 0);
        lambda += rem[ord] / live[ord];
        rem[ord] = 0.0;
        lastl[ord] = lambda;
        rlam[ord] = lambda;
        for (std::uint32_t k = roff[ord]; k < roff[ord + 1]; ++k) {
          const std::uint32_t p = rmem[k];
          if (frozen[p]) continue;
          frozen[p] = 1;
          lvl[p] = lambda;
          bnm[p] = ord;
          --unf;
          detach(p, ord);
        }
        live[ord] = 0;
      }
    }
    // Advertised level = the constraint THIS island imposes on the
    // member: the lowest saturation level among its interior resources,
    // inf when none saturated. A cap-frozen member must never advertise
    // the cap itself — that echoes the *other* side's stale value back
    // at it, and two cap-frozen sides of one flow then mirror each
    // other's levels in a permanent two-cycle instead of converging.
    // (The saturation levels are still computed under the caps: a
    // capped member only consumes its cap here, which is exactly its
    // consumption at the fixed point.)
    for (std::uint32_t p = mbeg; p < mend; ++p) {
      if (bnm[p] != kNone) continue;  // frozen by a saturation: exact
      const Side& sd = hf[mem_flow[p]].side[mem_side[p]];
      double best = kInf;
      std::uint32_t bord = kNone;
      for (std::uint8_t c = 0; c < sd.cnt; ++c)
        if (rlam[sd.ires[c]] < best) {
          best = rlam[sd.ires[c]];
          bord = sd.ires[c];
        }
      lvl[p] = best;
      bnm[p] = bord;
    }
    return true;
  };

  std::uint64_t pop_count = 0;
  std::uint64_t par_eligible = 0;
  bool converged = false;
  std::size_t it = 0;
  // Per-island pop counts / failure flags and per-worker heap scratch for
  // the parallel island dispatch; merged in island order after each round
  // so the totals are byte-identical for any job count.
  std::vector<std::uint64_t> isl_pops(nisl, 0);
  std::vector<std::uint8_t> isl_fail(nisl, 0);
  const bool par_rounds_eligible =
      nisl >= 2 && nmem >= kIslandParMinMembers;
  const std::size_t isl_jobs =
      par_rounds_eligible ? std::min(island_jobs, std::size_t{nisl}) : 1;
  std::vector<std::vector<std::uint32_t>> whvec(std::max<std::size_t>(
      isl_jobs, 1));
  std::vector<std::vector<std::uint32_t>> worder(whvec.size());
  for (auto& v : whvec) v.reserve(nr);

  for (; it < kHierMaxIters; ++it) {
    // Caps from the previous iteration's advertised levels (Jacobi across
    // islands, so island solves are order-independent).
    for (std::uint32_t p = 0; p < nmem; ++p) {
      const HFlow& h = hf[mem_flow[p]];
      double c = kInf;
      for (std::uint8_t s = 0; s < h.nsides; ++s) {
        if (h.side[s].mpos == p) continue;
        c = std::min(c, prev_lvl[h.side[s].mpos]);
      }
      for (std::uint8_t k = 0; k < h.ncpl; ++k)
        c = std::min(c, lam[h.cpl[k]]);
      cap[p] = c;
    }
    // Island solves: capped bottleneck elimination per island, dispatched
    // across workers when the round is big enough. The eligibility (and
    // the counter) depend only on the component shape, never on the
    // actual job count.
    if (par_rounds_eligible) ++par_eligible;
    std::fill(isl_pops.begin(), isl_pops.end(), 0);
    std::fill(isl_fail.begin(), isl_fail.end(), 0);
    if (isl_jobs > 1) {
      util::parallel_for_workers(
          nisl, isl_jobs, [&](std::size_t w, std::size_t isl) {
            if (!solve_island(static_cast<std::uint32_t>(isl), whvec[w],
                              worder[w], isl_pops[isl]))
              isl_fail[isl] = 1;
          });
    } else {
      for (std::uint32_t isl = 0; isl < nisl; ++isl)
        if (!solve_island(isl, whvec[0], worder[0], isl_pops[isl]))
          isl_fail[isl] = 1;
    }
    for (std::uint32_t isl = 0; isl < nisl; ++isl) {
      if (isl_fail[isl]) return false;
      pop_count += isl_pops[isl];
    }
    // Coupling fair shares over members capped by their fresh island levels
    // and the other coupling's previous share (the exact water level of a
    // single resource with per-member caps).
    for (const std::uint32_t ord : couplings) {
      const Resource* r = res[ord];
      const std::uint32_t* lm = local_arena_.data() + r->lmem_off;
      ccaps.clear();
      for (std::uint32_t k = 0; k < r->lmem_cnt; ++k) {
        const std::uint32_t i = idx_of_slot[lm[k]];
        assert(i != kNone);
        const HFlow& h = hf[i];
        double c = kInf;
        for (std::uint8_t s = 0; s < h.nsides; ++s)
          c = std::min(c, lvl[h.side[s].mpos]);
        for (std::uint8_t q = 0; q < h.ncpl; ++q)
          if (h.cpl[q] != ord) c = std::min(c, lam[h.cpl[q]]);
        ccaps.emplace_back(c, k);
      }
      std::sort(ccaps.begin(), ccaps.end());
      double C = r->rem;
      auto lv = static_cast<std::uint32_t>(ccaps.size());
      double l = kInf;
      bool sat = false;
      for (const auto& [c, k] : ccaps) {
        (void)k;
        if (C < 0.0) C = 0.0;
        if (c * lv >= C) {
          l = C / lv;
          sat = true;
          break;
        }
        C -= c;
        --lv;
      }
      lam_new[ord] = l;
      lam_sat[ord] = sat ? 1 : 0;

    }
    // Stability of the full advertised state (levels and coupling shares);
    // a stable state is a fixed point: re-running the deterministic
    // iteration reproduces it, so stop.
    bool stable = it > 0;
    if (stable) {
      // Careful with infinities: inf == inf is stable (first test), but an
      // inf <-> finite flip must NOT pass the relative test (inf > inf and
      // NaN > x both evaluate false).
      for (std::uint32_t p = 0; p < nmem && stable; ++p) {
        const double a = prev_lvl[p], b = lvl[p];
        if (a == b) continue;  // covers inf == inf
        if (!std::isfinite(a) || !std::isfinite(b) ||
            std::abs(a - b) > kHierTol * std::max(std::abs(a), std::abs(b)))
          stable = false;
      }
      for (const std::uint32_t ord : couplings) {
        const double a = lam[ord], b = lam_new[ord];
        if (a == b) continue;
        if (!std::isfinite(a) || !std::isfinite(b) ||
            std::abs(a - b) > kHierTol * std::max(std::abs(a), std::abs(b))) {
          stable = false;
          break;
        }
      }
    }
    prev_lvl = lvl;
    for (const std::uint32_t ord : couplings) lam[ord] = lam_new[ord];
    if (stable) {
      ++it;
      converged = true;
      break;
    }
  }
  if (!converged) return false;

  // --- Finalize: each flow's rate is the lowest *justified* level among
  // its constraints — a side frozen by an island saturation, or a saturated
  // coupling share. (A cap-frozen side mirrors one of those through the cap
  // chain; at the fixed point the values agree to within the stability
  // tolerance, and picking the justified one keeps every flow bottlenecked
  // at a saturated resource, which validate_boundary relies on.) Candidate
  // order is the flow's construction order — shape-canonical — so ties
  // resolve identically on isomorphic components.
  for (std::uint32_t i = 0; i < nf; ++i) {
    const HFlow& h = hf[i];
    double best = kInf;
    std::uint32_t bord = kNone;
    for (std::uint8_t s = 0; s < h.nsides; ++s) {
      const std::uint32_t p = h.side[s].mpos;
      if (bnm[p] != kNone && lvl[p] < best) {
        best = lvl[p];
        bord = bnm[p];
      }
    }
    for (std::uint8_t q = 0; q < h.ncpl; ++q) {
      const std::uint32_t ord = h.cpl[q];
      if (lam_sat[ord] && lam[ord] < best) {
        best = lam[ord];
        bord = ord;
      }
    }
    if (bord == kNone || !(best > 0.0) || !std::isfinite(best))
      return false;  // cannot justify: let the flat fill decide
    rates_scratch_[flows[i]] = best;
    bottleneck_scratch_[flows[i]] = res[bord];
  }
  // Validation aggregates, same contract as fill_exact: local usage/max per
  // resource, and the canonical usage-derived saturation mark. Marking only
  // the resources some flow was *attributed* to is not enough: on a level
  // tie the attribution is order-dependent, but an exhausted resource that
  // went unmarked makes validate_boundary skip expansions it needs (its
  // lambda_local reads as -1), and rates then diverge on a later realloc.
  for (std::uint32_t ri = 0; ri < nr; ++ri) {
    Resource* r = res[ri];
    const std::uint32_t* lm = local_arena_.data() + r->lmem_off;
    double usage = 0.0, mx = 0.0;
    for (std::uint32_t k = 0; k < r->lmem_cnt; ++k) {
      const double v = rates_scratch_[lm[k]];
      usage += v;
      if (v > mx) mx = v;
    }
    r->usage_local = usage;
    r->max_local = mx;
    if (r->usage_b + usage >= r->cap * (1.0 - kExpandTol)) {
      r->sat_lambda = mx;
      r->sat_fill = comp.fill;
    } else if (r->sat_fill == comp.fill) {
      r->sat_fill = 0;
    }
  }
  *pops = pop_count;
  *iters = it;
  *par_rounds = par_eligible;
  return true;
}

// ------------------------------------------------------- fill memoization --

std::uint64_t FlowNetwork::memo_fingerprint(
    const CompSpan& comp, std::vector<std::uint64_t>& key) const {
  // Canonical component *shape* in discovery order: resources as (kind,
  // unfrozen degree, residual-capacity bits), flows as the component
  // ordinals of the resources they cross. No absolute node or resource ids
  // — a translated copy of the shape (the same pipeline step on a different
  // set of node pairs) produces the same key, which is where all the hits
  // in a steady-state schedule come from. Residual capacities are compared
  // as raw bit patterns — a hit must reproduce a fresh fill bit-for-bit,
  // so "close" capacities must not collide.
  const std::uint32_t* flows = split_flows_.data() + comp.flow_off;
  Resource* const* res = split_res_.data() + comp.res_off;
  key.clear();
  key.reserve(2 + (comp.prepared ? 5 : 2) * comp.res_cnt +
              4 * comp.flow_cnt);
  key.push_back(topo_version_);
  key.push_back((static_cast<std::uint64_t>(comp.res_cnt) << 32) |
                comp.flow_cnt | (comp.prepared ? 1ull << 63 : 0));
  for (std::uint32_t i = 0; i < comp.res_cnt; ++i) {
    const Resource* r = res[i];
    key.push_back((static_cast<std::uint64_t>(r->kind) << 32) | r->live);
    key.push_back(std::bit_cast<std::uint64_t>(r->rem));
    if (comp.prepared) {
      // Peeled pieces carry refreshed per-resource state a fresh prepare
      // never has; the fill reads last_lambda and validate_boundary reads
      // the accumulated local aggregates, so two pieces may only share an
      // entry when those match bit-for-bit too.
      key.push_back(std::bit_cast<std::uint64_t>(r->last_lambda));
      key.push_back(std::bit_cast<std::uint64_t>(r->usage_local));
      key.push_back(std::bit_cast<std::uint64_t>(r->max_local));
    }
  }
  for (std::uint32_t i = 0; i < comp.flow_cnt; ++i) {
    const Flow& f = slab_[flows[i]];
    std::uint64_t word = f.res_count;
    for (std::uint32_t j = 0; j < f.res_count; ++j) {
      // Ordinals fit in far fewer bits than 12 only for small components;
      // spill to an extra word when packing would overflow.
      const std::uint32_t ord = f.res[j]->comp_index;
      if (word >> 52 || ord >> 12) {
        key.push_back(word);
        word = ord;
      } else {
        word = (word << 12) | ord;
      }
    }
    key.push_back(word);
  }
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const std::uint64_t w : key) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

FlowNetwork::MemoEntry* FlowNetwork::memo_find(
    std::uint64_t hash, const std::vector<std::uint64_t>& key) {
  const auto it = memo_index_.find(hash);
  if (it == memo_index_.end()) return nullptr;
  MemoEntry& e = memo_entries_[it->second];
  return e.key == key ? &e : nullptr;
}

void FlowNetwork::memo_store(std::uint64_t hash,
                             std::vector<std::uint64_t>&& key,
                             const CompSpan& comp) {
  std::uint32_t idx;
  MemoEntry* e;
  if (memo_entries_.size() < kMemoCapacity) {
    idx = static_cast<std::uint32_t>(memo_entries_.size());
    e = &memo_entries_.emplace_back();
  } else {
    // Round-robin ring: deterministic FIFO replacement with no per-hit
    // bookkeeping. Steady-state schedules cycle through a bounded set of
    // component shapes, so recency information buys nothing here while an
    // LRU scan costs O(capacity) per store.
    idx = static_cast<std::uint32_t>(memo_cursor_);
    memo_cursor_ = (memo_cursor_ + 1) % kMemoCapacity;
    e = &memo_entries_[idx];
    memo_index_.erase(e->hash);
  }
  const std::uint32_t* flows = split_flows_.data() + comp.flow_off;
  Resource* const* res = split_res_.data() + comp.res_off;
  e->key = std::move(key);
  e->hash = hash;
  e->hier = comp.hier;
  e->rates.resize(comp.flow_cnt);
  e->bottlenecks.resize(comp.flow_cnt);
  for (std::uint32_t i = 0; i < comp.flow_cnt; ++i) {
    const std::uint32_t slot = flows[i];
    e->rates[i] = rates_scratch_[slot];
    e->bottlenecks[i] = bottleneck_scratch_[slot]->comp_index;
  }
  e->res_aggregates.resize(3 * comp.res_cnt);
  for (std::uint32_t i = 0; i < comp.res_cnt; ++i) {
    const Resource* r = res[i];
    e->res_aggregates[3 * i] = r->usage_local;
    e->res_aggregates[3 * i + 1] = r->max_local;
    // sat_fill == comp.fill: saturated during this fill.
    e->res_aggregates[3 * i + 2] =
        r->sat_fill == comp.fill
            ? r->sat_lambda
            : std::numeric_limits<double>::quiet_NaN();
  }
  memo_index_[hash] = idx;  // collisions: newest entry wins the slot
}

void FlowNetwork::memo_clear() {
  memo_entries_.clear();
  memo_index_.clear();
  memo_cursor_ = 0;
}

void FlowNetwork::memo_update_probation() {
  // Workloads whose component shapes or boundary residuals churn every
  // reallocation never repeat a fingerprint; fingerprinting them is pure
  // overhead. After a deterministic probation period with almost no hits,
  // switch the memo off for the rest of the run (set_memoize(true) re-arms
  // it and starts a fresh probation window).
  const std::uint64_t window_misses = counters_.memo_misses - memo_miss_mark_;
  const std::uint64_t window_hits = counters_.memo_hits - memo_hit_mark_;
  if (window_misses >= kMemoProbation &&
      window_hits * kMemoMinHitRatio < window_misses) {
    memo_auto_off_ = true;
    memo_clear();
  }
}

void FlowNetwork::fill_dirty_components(std::uint64_t mark) {
  // Five phases. (1) Serial: prepare each dirty component, peel saturation
  // cuts off the big uncoupled ones (appending the surviving pieces to
  // comps_ — the loop bound re-reads comps_.size() so pieces are visited,
  // and possibly re-peeled, in the same pass), and sort everything into
  // memo-probe candidates vs direct misses. (2) Parallel: fingerprint the
  // probe candidates — pure reads of disjoint components into per-probe
  // key slots. (3) Serial: probe the memo in component order, replay hits,
  // queue misses. (4) Parallel: fill the misses — each fill reads/writes
  // only its own resources and flow slots; workers reuse a private heap
  // across the misses they claim. (5) Serial epilogue: merge counters and
  // stores in component order (byte-identical for any job count) and
  // compare the peel oracle, if armed, bit-for-bit.
  local_arena_.clear();
  boundary_arena_.clear();
  miss_comps_.clear();
  miss_keys_.clear();
  miss_hashes_.clear();
  probe_comps_.clear();
  const bool memo_on = memoize_ && !memo_auto_off_;
  for (std::uint32_t ci = 0; ci < comps_.size(); ++ci) {
    // Index access throughout: peel_and_split appends to comps_.
    if (!comps_[ci].dirty || comps_[ci].dead) continue;
    ++counters_.component_fills;
    counters_.max_component =
        std::max<std::uint64_t>(counters_.max_component, comps_[ci].flow_cnt);
    // Peeled pieces arrive prepared: their resources carry the refreshed
    // (rem, live, last_lambda) state the cut freezes left, which a
    // re-prepare would destroy.
    if (!comps_[ci].prepared) fill_prepare(comps_[ci], mark, ci);
    comps_[ci].hier = false;
    if (!comps_[ci].has_coupling && comps_[ci].flow_cnt >= cut_min_flows_) {
      peel_and_split(ci, mark);
      // Peel applied: the residue's rates froze during the peel and the
      // pieces queued behind it; nothing left to fill under this index.
      if (comps_[ci].solved) continue;
    }
    CompSpan& comp = comps_[ci];
    if (!memo_on || comp.flow_cnt < memo_min_flows_) {
      miss_comps_.push_back(ci);
      miss_hashes_.push_back(0);
      miss_keys_.emplace_back();  // empty key: not memo-eligible, no store
      continue;
    }
    probe_comps_.push_back(ci);
  }

  // Phase 2: fingerprints. Each probe writes its own key slot and only
  // reads its component, so the hash work parallelises; probing the table
  // itself stays serial below.
  const std::size_t nprobe = probe_comps_.size();
  probe_hashes_.assign(nprobe, 0);
  probe_keys_.resize(nprobe);
  std::size_t probe_flows = 0;
  for (std::size_t pi = 0; pi < nprobe; ++pi)
    probe_flows += comps_[probe_comps_[pi]].flow_cnt;
  if (fill_jobs_ > 1 && nprobe > 1 && probe_flows >= kParallelMinFlows) {
    util::parallel_for(nprobe, fill_jobs_, [&](std::size_t pi) {
      probe_hashes_[pi] =
          memo_fingerprint(comps_[probe_comps_[pi]], probe_keys_[pi]);
    });
  } else {
    for (std::size_t pi = 0; pi < nprobe; ++pi)
      probe_hashes_[pi] =
          memo_fingerprint(comps_[probe_comps_[pi]], probe_keys_[pi]);
  }

  // Phase 3: serial memo probe in component order.
  for (std::size_t pi = 0; pi < nprobe; ++pi) {
    const std::uint32_t ci = probe_comps_[pi];
    CompSpan& comp = comps_[ci];
    const std::uint64_t hash = probe_hashes_[pi];
    if (MemoEntry* e = memo_find(hash, probe_keys_[pi])) {
      ++counters_.memo_hits;
      const std::uint32_t* flows = split_flows_.data() + comp.flow_off;
      Resource* const* res = split_res_.data() + comp.res_off;
      if (cross_check_) {
        // Replay the fill with the solver that produced the entry
        // (uncounted: validation, not production work) and demand the
        // cached vector bit-for-bit — any divergence means the fingerprint
        // missed state the fill depends on. The replay leaves rates,
        // bottlenecks and aggregates exactly as the hit would.
        bool ok = true;
        if (e->hier) {
          std::uint64_t p = 0, q = 0, pr = 0;
          ok = fill_hierarchical(comp, 1, &p, &q, &pr);
        } else {
          fill_exact(comp, res_heap_);
        }
        for (std::uint32_t i = 0; ok && i < comp.flow_cnt; ++i) {
          const std::uint32_t slot = flows[i];
          if (rates_scratch_[slot] != e->rates[i] ||
              bottleneck_scratch_[slot] != res[e->bottlenecks[i]])
            ok = false;
        }
        if (!ok) {
          std::fprintf(stderr,
                       "FlowNetwork: memoized fill diverged from fresh fill "
                       "(t=%.9f, comp=%u flows)\n",
                       sim_.now(), comp.flow_cnt);
          std::abort();
        }
        continue;
      }
      for (std::uint32_t i = 0; i < comp.flow_cnt; ++i) {
        const std::uint32_t slot = flows[i];
        rates_scratch_[slot] = e->rates[i];
        bottleneck_scratch_[slot] = res[e->bottlenecks[i]];
      }
      // Replay the local-side validation aggregates so validate_boundary
      // sees exactly the state a fresh fill would have left.
      for (std::uint32_t i = 0; i < comp.res_cnt; ++i) {
        Resource* r = res[i];
        r->usage_local = e->res_aggregates[3 * i];
        r->max_local = e->res_aggregates[3 * i + 1];
        const double lamv = e->res_aggregates[3 * i + 2];
        if (!std::isnan(lamv)) {
          r->sat_lambda = lamv;
          r->sat_fill = comp.fill;
        }
        // NaN: drained unsaturated; sat_fill keeps an older epoch and can
        // never equal the strictly increasing current fill.
      }
      continue;
    }
    ++counters_.memo_misses;
    miss_comps_.push_back(ci);
    miss_hashes_.push_back(hash);
    miss_keys_.push_back(std::move(probe_keys_[pi]));
  }

  const std::size_t nmiss = miss_comps_.size();
  if (nmiss == 0) {
    memo_update_probation();
    peel_oracle_compare();
    return;
  }
  miss_pops_.assign(nmiss, 0);
  miss_iters_.assign(nmiss, 0);
  miss_par_.assign(nmiss, 0);
  miss_fb_.assign(nmiss, 0);
  const auto run_one = [this](std::size_t mi, std::vector<Resource*>& heap,
                              std::size_t island_jobs) {
    CompSpan& comp = comps_[miss_comps_[mi]];
    if (hierarchical_ && comp.has_coupling && !comp.has_pair &&
        comp.flow_cnt >= hier_min_flows_) {
      std::uint64_t pops = 0, its = 0, par = 0;
      if (fill_hierarchical(comp, island_jobs, &pops, &its, &par)) {
        comp.hier = true;
        miss_pops_[mi] = pops;
        miss_iters_[mi] = its;
        miss_par_[mi] = par;
        return;
      }
      miss_fb_[mi] = 1;
    }
    miss_pops_[mi] = fill_exact(comp, heap);
  };
  std::size_t total_flows = 0;
  for (std::size_t mi = 0; mi < nmiss; ++mi)
    total_flows += comps_[miss_comps_[mi]].flow_cnt;
  if (fill_jobs_ > 1 && nmiss > 1 && total_flows >= kParallelMinFlows) {
    // Component-level parallelism claims the workers; rack islands inside
    // each component solve serially (island_jobs 1) rather than spawning a
    // nested pool.
    worker_heaps_.resize(fill_jobs_);
    util::parallel_for_workers(
        nmiss, fill_jobs_, [&](std::size_t w, std::size_t mi) {
          run_one(mi, worker_heaps_[w], 1);
        });
  } else {
    for (std::size_t mi = 0; mi < nmiss; ++mi)
      run_one(mi, res_heap_, fill_jobs_);
  }
  for (std::size_t mi = 0; mi < nmiss; ++mi) {
    const CompSpan& comp = comps_[miss_comps_[mi]];
    counters_.filling_rounds += miss_pops_[mi];
    if (comp.hier) {
      ++counters_.hier_fills;
      counters_.hier_rounds += miss_iters_[mi];
      counters_.island_par_rounds += miss_par_[mi];
    } else if (miss_fb_[mi]) {
      ++counters_.hier_fallbacks;
    }
    if (!miss_keys_[mi].empty())
      memo_store(miss_hashes_[mi], std::move(miss_keys_[mi]), comp);
  }
  memo_update_probation();
  peel_oracle_compare();
}

void FlowNetwork::peel_oracle_compare() {
  // Under set_cross_check, peel_and_split ran the flat fill over each
  // to-be-split component before peeling and parked its verdicts; by now
  // the peel + piece fills (or memo replays, themselves bit-checked above)
  // have rewritten every one of those flows' scratch slots. The split
  // claims byte equality, so compare rates AND bottleneck identity
  // bitwise.
  if (oracle_slots_.empty()) return;
  for (std::size_t i = 0; i < oracle_slots_.size(); ++i) {
    const std::uint32_t slot = oracle_slots_[i];
    if (rates_scratch_[slot] != oracle_rates_[i] ||
        bottleneck_scratch_[slot] != oracle_bns_[i]) {
      std::fprintf(stderr,
                   "FlowNetwork: saturation-cut split diverged from flat "
                   "fill (t=%.9f, slot=%u, %.17g vs %.17g)\n",
                   sim_.now(), slot, rates_scratch_[slot], oracle_rates_[i]);
      std::abort();
    }
  }
  oracle_slots_.clear();
  oracle_rates_.clear();
  oracle_bns_.clear();
}

// --------------------------------------------------- progressive oracle --

void FlowNetwork::water_fill_progressive(
    const std::vector<std::uint32_t>& comp_flows,
    const std::vector<Resource*>& comp_resources, std::uint64_t local_mark) {
  // The original progressive lazy-heap water filling, kept verbatim as the
  // independent oracle for set_cross_check and the property tests. The fill
  // level lambda rises; a resource r exhausts at lambda_r = lambda +
  // rem/live. A min-heap orders resources by estimated exhaust level; stale
  // entries (whose live count dropped since insertion) are re-pushed on
  // pop. Every flow crossing an exhausting resource freezes at rate lambda.
  // Rates land in rates_scratch_ and the freeze resource in
  // bottleneck_scratch_, both indexed by flow slot.
  if (rates_scratch_.size() < slab_.size()) {
    rates_scratch_.resize(slab_.size());
    bottleneck_scratch_.resize(slab_.size());
  }
  const std::uint64_t fill = ++epoch_;

  const auto entry_later = [](const FillEntry& a, const FillEntry& b) {
    if (a.lambda_est != b.lambda_est) return a.lambda_est > b.lambda_est;
    return a.id > b.id;
  };
  fill_heap_.clear();
  for (Resource* r : comp_resources) {
    assert(!r->members.empty());
    double rem = r->cap;
    std::uint32_t live;
    if (local_mark != 0) {
      live = 0;
      for (const std::uint32_t slot : r->members) {
        if (visit_epoch_[slot] == local_mark)
          ++live;
        else
          rem -= rate_[slot];
      }
      if (rem < 0.0) rem = 0.0;
      assert(live > 0 && "every local resource carries a local flow");
    } else {
      live = static_cast<std::uint32_t>(r->members.size());
    }
    r->rem = rem;
    r->last_lambda = 0.0;
    r->live = live;
    r->fill_epoch = fill;
    fill_heap_.push_back({rem / live, r->id, r});
  }
  std::make_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);

  double lambda = 0.0;
  const auto refresh = [&lambda](Resource* r) {
    r->rem -= (lambda - r->last_lambda) * r->live;
    if (r->rem < 0.0) r->rem = 0.0;
    r->last_lambda = lambda;
  };

  std::size_t unfrozen = comp_flows.size();
  while (unfrozen > 0 && !fill_heap_.empty()) {
    std::pop_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
    const FillEntry top = fill_heap_.back();
    fill_heap_.pop_back();
    Resource* r = top.resource;
    if (r->live == 0) continue;  // fully drained by earlier freezes
    refresh(r);
    const double exhaust = lambda + r->rem / r->live;
    if (exhaust > top.lambda_est * (1.0 + 1e-9)) {
      // Stale: live dropped since this entry was pushed.
      fill_heap_.push_back({exhaust, r->id, r});
      std::push_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
      continue;
    }
    lambda = exhaust;
    r->rem = 0.0;
    r->last_lambda = lambda;
    // Freeze every remaining participating flow crossing this resource.
    for (const std::uint32_t slot : r->members) {
      if (local_mark != 0 && visit_epoch_[slot] != local_mark) continue;
      if (freeze_epoch_[slot] == fill) continue;
      freeze_epoch_[slot] = fill;
      rates_scratch_[slot] = lambda;
      bottleneck_scratch_[slot] = r;
      --unfrozen;
      const Flow& af = slab_[slot];
      for (std::uint32_t i = 0; i < af.res_count; ++i) {
        Resource* r2 = af.res[i];
        assert(r2->fill_epoch == fill);
        refresh(r2);
        assert(r2->live > 0);
        --r2->live;
        if (r2 != r && r2->live > 0) {
          fill_heap_.push_back({lambda + r2->rem / r2->live, r2->id, r2});
          std::push_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
        }
      }
    }
    assert(r->live == 0);
  }
  assert(unfrozen == 0 && "every flow crosses a finite resource");
}

bool FlowNetwork::rates_match_full_recompute(double rel_tol,
                                             bool use_exact_fill) {
  flush_dirty();
  std::vector<std::uint32_t> all_flows;
  std::vector<Resource*> all_resources;
  gather_all_active(all_flows, all_resources);
  if (use_exact_fill) {
    // Drive the production fill over one synthetic whole-network component.
    // Round-scoped state (split arrays, arenas, comps_) is safe to clobber:
    // this runs between reallocations.
    split_flows_.assign(all_flows.begin(), all_flows.end());
    split_res_.assign(all_resources.begin(), all_resources.end());
    comps_.clear();
    CompSpan comp;
    comp.flow_cnt = static_cast<std::uint32_t>(all_flows.size());
    comp.res_cnt = static_cast<std::uint32_t>(all_resources.size());
    local_arena_.clear();
    boundary_arena_.clear();
    fill_prepare(comp, 0, 0);  // ci 0: comps_ is empty, never revalidated
    fill_exact(comp, res_heap_);  // rounds deliberately uncounted
  } else {
    water_fill_progressive(all_flows, all_resources);
  }
  for (const std::uint32_t slot : all_flows) {
    const double incremental = rate_[slot];
    const double full = rates_scratch_[slot];
    const double denom = std::max(std::abs(incremental), std::abs(full));
    if (denom > 0.0 && std::abs(incremental - full) > rel_tol * denom)
      return false;
  }
  return true;
}

// ------------------------------------------------------ completion tracking --

bool FlowNetwork::heap_less(std::uint32_t a, std::uint32_t b) const {
  const Flow& fa = slab_[a];
  const Flow& fb = slab_[b];
  if (fa.proj_done != fb.proj_done) return fa.proj_done < fb.proj_done;
  return fa.seq < fb.seq;
}

void FlowNetwork::heap_sift_up(std::uint32_t pos) {
  const std::uint32_t slot = completion_heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!heap_less(slot, completion_heap_[parent])) break;
    completion_heap_[pos] = completion_heap_[parent];
    slab_[completion_heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  completion_heap_[pos] = slot;
  slab_[slot].heap_pos = pos;
}

void FlowNetwork::heap_sift_down(std::uint32_t pos) {
  const auto size = static_cast<std::uint32_t>(completion_heap_.size());
  const std::uint32_t slot = completion_heap_[pos];
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        heap_less(completion_heap_[child + 1], completion_heap_[child]))
      ++child;
    if (!heap_less(completion_heap_[child], slot)) break;
    completion_heap_[pos] = completion_heap_[child];
    slab_[completion_heap_[pos]].heap_pos = pos;
    pos = child;
  }
  completion_heap_[pos] = slot;
  slab_[slot].heap_pos = pos;
}

void FlowNetwork::heap_push(std::uint32_t slot) {
  completion_heap_.push_back(slot);
  slab_[slot].heap_pos =
      static_cast<std::uint32_t>(completion_heap_.size() - 1);
  heap_sift_up(slab_[slot].heap_pos);
}

void FlowNetwork::heap_update(std::uint32_t slot) {
  const std::uint32_t pos = slab_[slot].heap_pos;
  heap_sift_down(pos);
  heap_sift_up(slab_[slot].heap_pos);
}

void FlowNetwork::heap_remove(std::uint32_t slot) {
  const std::uint32_t pos = slab_[slot].heap_pos;
  const std::uint32_t last = completion_heap_.back();
  completion_heap_.pop_back();
  slab_[slot].heap_pos = kNone;
  if (last != slot) {
    completion_heap_[pos] = last;
    slab_[last].heap_pos = pos;
    heap_sift_down(pos);
    heap_sift_up(slab_[last].heap_pos);
  }
}

void FlowNetwork::schedule_next_completion() {
  if (completion_heap_.empty()) {
    if (pending_event_ != kInvalidEvent) {
      sim_.cancel(pending_event_);
      pending_event_ = kInvalidEvent;
    }
    return;
  }
  const SimTime when =
      std::max(slab_[completion_heap_.front()].proj_done, sim_.now());
  assert(std::isfinite(when) && "active flow with no allocated rate");
  if (pending_event_ != kInvalidEvent) {
    if (pending_time_ == when) return;  // already scheduled at this instant
    sim_.cancel(pending_event_);
  }
  pending_time_ = when;
  pending_event_ = sim_.at(when, [this] { on_next_completion(); });
}

void FlowNetwork::on_next_completion() {
  pending_event_ = kInvalidEvent;
  const SimTime now = sim_.now();
  // Collect every flow projected to finish at this instant (common in
  // symmetric schedules where all pairs complete simultaneously).
  std::vector<std::function<void(SimTime)>> done;
  while (!completion_heap_.empty() &&
         slab_[completion_heap_.front()].proj_done <= now) {
    const std::uint32_t slot = completion_heap_.front();
    Flow& f = slab_[slot];
    bytes_completed_ += f.total;
    ++counters_.flow_completions;
    if (auto* tr = obs::tracer())
      tr->end(obs::Cat::kSim, "flow", f.src, f.seq, now, "aborted", 0);
    done.push_back(std::move(f.on_complete));
    remove_flow(slot);
  }
  if (done.empty()) {
    // A reallocation moved the head's projection after this event was
    // scheduled; just re-arm for the new head.
    schedule_next_completion();
    return;
  }
  mark_dirty();
  for (auto& cb : done) {
    if (cb) cb(now);
  }
}

}  // namespace rdmc::sim
