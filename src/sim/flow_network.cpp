#include "sim/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <limits>

namespace rdmc::sim {

namespace {
/// Flows whose residue drops below this many bytes are considered done
/// (guards against floating-point drift in long simulations).
constexpr double kByteEpsilon = 1e-3;
}  // namespace

FlowNetwork::FlowNetwork(Simulator& sim, Topology& topology)
    : sim_(sim), topology_(topology) {
  const std::size_t n = topology.num_nodes();
  tx_.resize(n);
  rx_.resize(n);
  rack_up_.resize(topology.num_racks());
  rack_down_.resize(topology.num_racks());
}

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, double bytes,
                               std::function<void(SimTime)> on_complete) {
  assert(src < topology_.num_nodes() && dst < topology_.num_nodes());
  assert(src != dst);
  advance_to_now();
  const FlowId id = next_id_++;
  const double size = std::max(bytes, 1.0);
  flows_.emplace(id, Flow{src, dst, size, size, 0.0, std::move(on_complete)});
  mark_dirty();
  return id;
}

void FlowNetwork::abort_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  advance_to_now();
  flows_.erase(it);
  mark_dirty();
}

double FlowNetwork::flow_rate(FlowId id) const {
  const_cast<FlowNetwork*>(this)->flush_dirty();
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::advance_to_now() {
  const SimTime now = sim_.now();
  const double elapsed = now - last_advance_;
  last_advance_ = now;
  if (elapsed <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    flow.remaining -= flow.rate * elapsed;
    if (flow.remaining < 0.0) flow.remaining = 0.0;
  }
}

void FlowNetwork::mark_dirty() {
  if (dirty_) return;
  dirty_ = true;
  // Coalesce: many flows start/finish at one virtual instant (lock-step
  // schedule boundaries); one rate recomputation covers them all.
  dirty_event_ = sim_.at(sim_.now(), [this] {
    dirty_ = false;
    dirty_event_ = kInvalidEvent;
    reallocate();
  });
}

void FlowNetwork::flush_dirty() {
  if (!dirty_) return;
  dirty_ = false;
  if (dirty_event_ != kInvalidEvent) {
    sim_.cancel(dirty_event_);
    dirty_event_ = kInvalidEvent;
  }
  reallocate();
}

void FlowNetwork::reallocate() {
  // --- Max-min fairness by lazy-heap water filling. The global fill level
  // lambda rises; a resource r exhausts at lambda_r = lambda + rem/live.
  // A min-heap orders resources by estimated exhaust level; stale entries
  // (whose live count dropped since insertion) are re-pushed on pop. Every
  // flow crossing an exhausting resource freezes at rate lambda. This is
  // O(F log F) per reallocation versus the naive O(F^2) scan rounds.
  ++epoch_;
  const std::size_t n = topology_.num_nodes();
  const bool multi_rack =
      topology_.num_racks() > 1 && topology_.rack_uplink_Bps() > 0.0;
  const bool pair_caps = topology_.has_pair_caps();

  active_.clear();
  touched_.clear();
  auto touch = [&](Resource& r, double capacity, std::uint32_t id,
                   std::uint32_t flow_index) {
    if (r.epoch != epoch_) {
      r.epoch = epoch_;
      r.cap = capacity;
      r.rem = capacity;
      r.last_lambda = 0.0;
      r.live = 0;
      r.id = id;
      r.flow_idx.clear();
      touched_.push_back(&r);
    }
    ++r.live;
    r.flow_idx.push_back(flow_index);
  };

  pair_res_.clear();
  for (auto& [id, flow] : flows_) {
    const auto fi = static_cast<std::uint32_t>(active_.size());
    ActiveFlow af;
    af.flow = &flow;
    touch(tx_[flow.src], topology_.node_tx_Bps(flow.src), flow.src, fi);
    af.resources[af.count++] = &tx_[flow.src];
    touch(rx_[flow.dst], topology_.node_rx_Bps(flow.dst),
          static_cast<std::uint32_t>(n) + flow.dst, fi);
    af.resources[af.count++] = &rx_[flow.dst];
    if (multi_rack && !topology_.same_rack(flow.src, flow.dst)) {
      const auto up = static_cast<std::uint32_t>(
          topology_.rack_of(flow.src));
      const auto down = static_cast<std::uint32_t>(
          topology_.rack_of(flow.dst));
      touch(rack_up_[up], topology_.rack_uplink_Bps(),
            static_cast<std::uint32_t>(2 * n) + up, fi);
      af.resources[af.count++] = &rack_up_[up];
      touch(rack_down_[down], topology_.rack_uplink_Bps(),
            static_cast<std::uint32_t>(2 * n) +
                static_cast<std::uint32_t>(topology_.num_racks()) + down,
            fi);
      af.resources[af.count++] = &rack_down_[down];
    }
    if (pair_caps) {
      if (auto cap = topology_.pair_cap_Bps(flow.src, flow.dst)) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(flow.src) << 32) | flow.dst;
        auto [it, inserted] = pair_res_.try_emplace(key);
        Resource& r = it->second;
        if (inserted) r.epoch = 0;  // force re-init in touch
        touch(r, *cap,
              static_cast<std::uint32_t>(3 * n) +
                  static_cast<std::uint32_t>(pair_res_.size()),
              fi);
        af.resources[af.count++] = &r;
      }
    }
    flow.rate = 0.0;
    af.frozen = false;
    active_.push_back(af);
  }
  if (active_.empty()) {
    schedule_next_completion();
    return;
  }
  ++reallocations_;

  // Heap of (estimated exhaust level, stable id, resource).
  struct HeapEntry {
    double lambda_est;
    std::uint32_t id;
    Resource* resource;
    bool operator>(const HeapEntry& o) const {
      if (lambda_est != o.lambda_est) return lambda_est > o.lambda_est;
      return id > o.id;
    }
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (Resource* r : touched_)
    heap.push({r->rem / r->live, r->id, r});

  double lambda = 0.0;
  auto refresh = [&lambda](Resource* r) {
    r->rem -= (lambda - r->last_lambda) * r->live;
    if (r->rem < 0.0) r->rem = 0.0;
    r->last_lambda = lambda;
  };

  std::size_t unfrozen = active_.size();
  while (unfrozen > 0 && !heap.empty()) {
    ++filling_rounds_;
    const HeapEntry top = heap.top();
    heap.pop();
    Resource* r = top.resource;
    if (r->live == 0) continue;  // fully drained by earlier freezes
    refresh(r);
    const double exhaust = lambda + r->rem / r->live;
    if (exhaust > top.lambda_est * (1.0 + 1e-9)) {
      heap.push({exhaust, r->id, r});  // stale: live dropped since push
      continue;
    }
    lambda = exhaust;
    r->rem = 0.0;
    r->last_lambda = lambda;
    // Freeze every remaining flow crossing this resource at rate lambda.
    for (std::uint32_t fi : r->flow_idx) {
      ActiveFlow& af = active_[fi];
      if (af.frozen) continue;
      af.frozen = true;
      af.flow->rate = lambda;
      --unfrozen;
      for (std::uint32_t i = 0; i < af.count; ++i) {
        Resource* r2 = af.resources[i];
        refresh(r2);
        assert(r2->live > 0);
        --r2->live;
        if (r2 != r && r2->live > 0)
          heap.push({lambda + r2->rem / r2->live, r2->id, r2});
      }
    }
    assert(r->live == 0);
  }
  assert(unfrozen == 0 && "every flow crosses a finite resource");
  schedule_next_completion();
}

void FlowNetwork::schedule_next_completion() {
  if (pending_event_ != kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = kInvalidEvent;
  }
  if (flows_.empty()) return;
  double horizon = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.rate <= 0.0) continue;
    horizon = std::min(horizon, flow.remaining / flow.rate);
  }
  assert(std::isfinite(horizon) && "active flow with no allocated rate");
  pending_event_ =
      sim_.after(std::max(horizon, 0.0), [this] { on_next_completion(); });
}

void FlowNetwork::on_next_completion() {
  pending_event_ = kInvalidEvent;
  advance_to_now();
  // Collect every flow that finished at this instant (common in symmetric
  // schedules where all pairs complete simultaneously).
  std::vector<std::pair<FlowId, std::function<void(SimTime)>>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kByteEpsilon) {
      bytes_completed_ += it->second.total;
      done.emplace_back(it->first, std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  mark_dirty();
  const SimTime now = sim_.now();
  for (auto& [id, cb] : done) {
    if (cb) cb(now);
  }
}

}  // namespace rdmc::sim
