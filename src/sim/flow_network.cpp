#include "sim/flow_network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/trace.hpp"

namespace rdmc::sim {

FlowNetwork::FlowNetwork(Simulator& sim, Topology& topology)
    : sim_(sim), topology_(topology), topo_version_(topology.version()) {
  const auto n = static_cast<std::uint32_t>(topology.num_nodes());
  const auto racks = static_cast<std::uint32_t>(topology.num_racks());
  tx_.resize(n);
  rx_.resize(n);
  rack_up_.resize(racks);
  rack_down_.resize(racks);
  // Disjoint tie-break id ranges per resource class, so simultaneous-freeze
  // ordering can never depend on an accidental cross-class collision.
  for (std::uint32_t i = 0; i < n; ++i) {
    tx_[i].kind = Resource::Kind::kTx;
    tx_[i].index = i;
    tx_[i].id = i;
    tx_[i].cap = topology.node_tx_Bps(i);
    rx_[i].kind = Resource::Kind::kRx;
    rx_[i].index = i;
    rx_[i].id = n + i;
    rx_[i].cap = topology.node_rx_Bps(i);
  }
  for (std::uint32_t r = 0; r < racks; ++r) {
    rack_up_[r].kind = Resource::Kind::kRackUp;
    rack_up_[r].index = r;
    rack_up_[r].id = 2 * n + r;
    rack_up_[r].cap = topology.rack_uplink_Bps();
    rack_down_[r].kind = Resource::Kind::kRackDown;
    rack_down_[r].index = r;
    rack_down_[r].id = 2 * n + racks + r;
    rack_down_[r].cap = topology.rack_uplink_Bps();
  }
  pair_id_base_ = 2 * n + 2 * racks;
}

// ------------------------------------------------------------- flow slab --

std::uint32_t FlowNetwork::alloc_slot() {
  if (free_head_ != kNone) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    return slot;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void FlowNetwork::free_slot(std::uint32_t slot) {
  Flow& f = slab_[slot];
  f.id = kInvalidFlow;
  f.on_complete = nullptr;
  f.placed = false;
  f.res_count = 0;
  f.rate = 0.0;
  f.bottleneck = nullptr;
  f.next_free = free_head_;
  free_head_ = slot;
}

void FlowNetwork::remove_flow(std::uint32_t slot) {
  Flow& f = slab_[slot];
  if (f.placed) {
    for (std::uint32_t i = 0; i < f.res_count; ++i) {
      Resource* r = f.res[i];
      dirty_seeds_.push_back(r);
      // Swap-remove from the member list, fixing the moved flow's position.
      const std::uint32_t p = f.pos_in_res[i];
      assert(r->members[p] == slot);
      r->members[p] = r->members.back();
      r->members.pop_back();
      if (p < static_cast<std::uint32_t>(r->members.size())) {
        Flow& moved = slab_[r->members[p]];
        for (std::uint32_t j = 0; j < moved.res_count; ++j) {
          if (moved.res[j] == r) {
            moved.pos_in_res[j] = p;
            break;
          }
        }
      }
    }
  } else {
    // Started and removed within one instant: never wired into resources.
    pending_new_.erase(
        std::find(pending_new_.begin(), pending_new_.end(), slot));
  }
  if (f.heap_pos != kNone) heap_remove(slot);
  id_to_slot_.erase(f.id);
  free_slot(slot);
}

// ------------------------------------------------ membership & components --

void FlowNetwork::build_membership(std::uint32_t slot) {
  Flow& f = slab_[slot];
  assert(!f.placed);
  auto touch = [&](Resource& r) {
    f.res[f.res_count] = &r;
    f.pos_in_res[f.res_count] = static_cast<std::uint32_t>(r.members.size());
    ++f.res_count;
    r.members.push_back(slot);
    dirty_seeds_.push_back(&r);
  };
  touch(tx_[f.src]);
  touch(rx_[f.dst]);
  if (topology_.num_racks() > 1 && topology_.rack_uplink_Bps() > 0.0 &&
      !topology_.same_rack(f.src, f.dst)) {
    touch(rack_up_[topology_.rack_of(f.src)]);
    touch(rack_down_[topology_.rack_of(f.dst)]);
  }
  if (topology_.has_pair_caps()) {
    if (topology_.pair_cap_Bps(f.src, f.dst)) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(f.src) << 32) | f.dst;
      auto [it, inserted] = pair_res_.try_emplace(key);
      Resource& r = it->second;
      if (inserted) {
        r.kind = Resource::Kind::kPair;
        r.index = pair_seq_;
        r.id = pair_id_base_ + pair_seq_;
        r.pair_key = key;
        r.cap = resource_capacity(r);
        ++pair_seq_;
      }
      touch(r);
    }
  }
  f.placed = true;
  f.last_update = sim_.now();
}

void FlowNetwork::rebuild_all_membership() {
  // Topology capacities changed under us (set_pair_cap / set_node_nic after
  // flows were established): the cached membership may now be wrong — e.g. a
  // pair cap appeared on a path an existing flow uses. Rewire everything and
  // recompute all rates once; this is the cold path.
  auto reset = [&](Resource& r) {
    r.members.clear();
    r.cap = resource_capacity(r);
  };
  for (auto& r : tx_) reset(r);
  for (auto& r : rx_) reset(r);
  for (auto& r : rack_up_) reset(r);
  for (auto& r : rack_down_) reset(r);
  for (auto& [key, r] : pair_res_) reset(r);
  for (std::uint32_t slot = 0; slot < slab_.size(); ++slot) {
    Flow& f = slab_[slot];
    if (f.id == kInvalidFlow || !f.placed) continue;
    // Charge progress at the old rate first: build_membership stamps
    // last_update = now, which would otherwise swallow the elapsed window.
    settle(f);
    f.placed = false;
    f.res_count = 0;
    build_membership(slot);
  }
  recompute_all_ = true;
}

void FlowNetwork::settle(Flow& flow) {
  const SimTime now = sim_.now();
  if (now <= flow.last_update) return;
  flow.remaining -= flow.rate * (now - flow.last_update);
  if (flow.remaining < 0.0) flow.remaining = 0.0;
  flow.last_update = now;
}

// ------------------------------------------------------------- public API --

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, double bytes,
                               std::function<void(SimTime)> on_complete) {
  assert(src < topology_.num_nodes() && dst < topology_.num_nodes());
  assert(src != dst);
  const FlowId id = next_id_++;
  const double size = std::max(bytes, 1.0);
  const std::uint32_t slot = alloc_slot();
  Flow& f = slab_[slot];
  f.src = src;
  f.dst = dst;
  f.total = size;
  f.remaining = size;
  f.rate = 0.0;
  f.last_update = sim_.now();
  f.id = id;
  f.on_complete = std::move(on_complete);
  assert(f.heap_pos == kNone && f.res_count == 0 && !f.placed);
  id_to_slot_.emplace(id, slot);
  pending_new_.push_back(slot);
  ++counters_.flow_starts;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kSim, "flow", src, id, sim_.now(),
              "dst,bytes", dst, static_cast<std::uint64_t>(size));
  mark_dirty();
  return id;
}

void FlowNetwork::abort_flow(FlowId id) {
  auto it = id_to_slot_.find(id);
  if (it == id_to_slot_.end()) return;
  ++counters_.flow_aborts;
  if (auto* tr = obs::tracer())
    tr->end(obs::Cat::kSim, "flow", slab_[it->second].src, id, sim_.now(),
            "aborted", 1);
  remove_flow(it->second);
  mark_dirty();
}

double FlowNetwork::flow_rate(FlowId id) const {
  const_cast<FlowNetwork*>(this)->flush_dirty();
  auto it = id_to_slot_.find(id);
  return it == id_to_slot_.end() ? 0.0 : slab_[it->second].rate;
}

// ------------------------------------------------------------ reallocation --

void FlowNetwork::mark_dirty() {
  if (dirty_) return;
  dirty_ = true;
  // Coalesce: many flows start/finish at one virtual instant (lock-step
  // schedule boundaries); one rate recomputation covers them all.
  dirty_event_ = sim_.at(sim_.now(), [this] {
    dirty_ = false;
    dirty_event_ = kInvalidEvent;
    reallocate_dirty();
  });
}

void FlowNetwork::flush_dirty() {
  if (!dirty_) return;
  dirty_ = false;
  if (dirty_event_ != kInvalidEvent) {
    sim_.cancel(dirty_event_);
    dirty_event_ = kInvalidEvent;
  }
  reallocate_dirty();
}

double FlowNetwork::resource_capacity(const Resource& r) const {
  switch (r.kind) {
    case Resource::Kind::kTx:
      return topology_.node_tx_Bps(r.index);
    case Resource::Kind::kRx:
      return topology_.node_rx_Bps(r.index);
    case Resource::Kind::kRackUp:
    case Resource::Kind::kRackDown:
      return topology_.rack_uplink_Bps();
    case Resource::Kind::kPair: {
      const auto cap = topology_.pair_cap_Bps(
          static_cast<NodeId>(r.pair_key >> 32),
          static_cast<NodeId>(r.pair_key & 0xFFFFFFFFu));
      // The cap can vanish mid-run (clear_pair_cap when a transient
      // degradation recovers); the stale resource stays in pair_res_ with
      // no members after the rebuild, so report it unconstrained.
      return cap ? *cap : 1e18;
    }
  }
  return 0.0;
}

void FlowNetwork::gather_all_active(std::vector<std::uint32_t>& flows,
                                    std::vector<Resource*>& resources) {
  for (std::uint32_t slot = 0; slot < slab_.size(); ++slot)
    if (slab_[slot].id != kInvalidFlow) flows.push_back(slot);
  auto add = [&](Resource& r) {
    if (!r.members.empty()) resources.push_back(&r);
  };
  for (auto& r : tx_) add(r);
  for (auto& r : rx_) add(r);
  for (auto& r : rack_up_) add(r);
  for (auto& r : rack_down_) add(r);
  for (auto& [key, r] : pair_res_) add(r);
}

void FlowNetwork::apply_rates(const std::vector<std::uint32_t>& flows) {
  for (const std::uint32_t slot : flows) {
    Flow& f = slab_[slot];
    const double new_rate = rates_scratch_[slot];
    f.bottleneck = bottleneck_scratch_[slot];
    if (f.heap_pos != kNone && new_rate == f.rate) {
      // Rate unchanged: (last_update, remaining, rate) stays consistent and
      // the projected completion is bit-identical — skip the heap traffic.
      continue;
    }
    settle(f);
    f.rate = new_rate;
    assert(f.rate > 0.0 && "every flow crosses a finite resource");
    f.proj_done = f.last_update + f.remaining / f.rate;
    if (f.heap_pos == kNone)
      heap_push(slot);
    else
      heap_update(slot);
  }
}

void FlowNetwork::validate_boundary(std::uint64_t mark) {
  // The combined allocation (fresh rates for local flows, old rates for
  // everyone else) is THE max-min allocation iff it is feasible and every
  // flow has a bottleneck: a saturated resource where its rate is maximal.
  // Local flows got theirs from the fill; flows whose resources were all
  // untouched kept theirs. That leaves the boundary flows sharing a
  // resource with the local set — exactly the members of comp_resources_.
  // A boundary flow h on resource r must join the local set when:
  //   * some local flow froze at r at level lambda but h.rate > lambda — h
  //     is hogging a resource the local flow is entitled to grow into;
  //   * h's own stored bottleneck is r, but r is no longer saturated (h
  //     could grow) or h is no longer maximal there (h lost its bottleneck).
  // A boundary flow whose bottleneck lies outside comp_resources_ is
  // untouched by construction, and its bottleneck is checked when that
  // resource's turn comes if it is inside.
  for (Resource* r : comp_resources_) {
    double usage = 0.0;
    double max_rate = 0.0;
    double lambda_local = -1.0;
    for (const std::uint32_t slot : r->members) {
      const Flow& h = slab_[slot];
      const bool local = h.visit_epoch == mark;
      const double rate = local ? rates_scratch_[slot] : h.rate;
      usage += rate;
      if (rate > max_rate) max_rate = rate;
      if (local && bottleneck_scratch_[slot] == r && rate > lambda_local)
        lambda_local = rate;
    }
    const bool saturated = usage >= r->cap * (1.0 - kExpandTol);
    for (const std::uint32_t slot : r->members) {
      Flow& h = slab_[slot];
      if (h.visit_epoch == mark) continue;
      bool expand = false;
      if (lambda_local >= 0.0 && h.rate > lambda_local + kExpandTol * h.rate) {
        expand = true;
      } else if (h.bottleneck == r &&
                 (!saturated || h.rate < max_rate * (1.0 - kExpandTol))) {
        expand = true;
      }
      if (expand) {
        h.visit_epoch = mark;
        comp_flows_.push_back(slot);
      }
    }
  }
}

void FlowNetwork::reallocate_dirty() {
  if (topology_.version() != topo_version_) {
    topo_version_ = topology_.version();
    rebuild_all_membership();
  }
  for (const std::uint32_t slot : pending_new_) build_membership(slot);
  pending_new_.clear();

  comp_flows_.clear();
  comp_resources_.clear();

  if (recompute_all_) {
    // Topology capacities changed: every cached rate and bottleneck may be
    // stale. Refill everything from scratch (the cold path).
    recompute_all_ = false;
    dirty_seeds_.clear();
    gather_all_active(comp_flows_, comp_resources_);
    if (!comp_flows_.empty()) {
      ++counters_.reallocations;
      ++counters_.full_recomputes;
      counters_.flows_touched += comp_flows_.size();
      counters_.max_component =
          std::max<std::uint64_t>(counters_.max_component, comp_flows_.size());
      water_fill(comp_flows_, comp_resources_, /*count=*/true);
      apply_rates(comp_flows_);
    }
  } else {
    // Local set: the flows actually on a changed resource. Everyone else
    // starts out as a fixed-rate boundary.
    const std::uint64_t mark = ++epoch_;
    for (Resource* seed : dirty_seeds_) {
      for (const std::uint32_t slot : seed->members) {
        Flow& f = slab_[slot];
        if (f.visit_epoch == mark) continue;
        f.visit_epoch = mark;
        comp_flows_.push_back(slot);
      }
    }
    dirty_seeds_.clear();
    if (comp_flows_.empty()) {
      schedule_next_completion();
      return;
    }

    bool converged = false;
    std::size_t wired = 0;
    for (int iter = 0; iter < kMaxExpandRounds; ++iter) {
      // Pull the resources of newly added local flows into the fill set.
      for (; wired < comp_flows_.size(); ++wired) {
        Flow& f = slab_[comp_flows_[wired]];
        for (std::uint32_t j = 0; j < f.res_count; ++j) {
          Resource* r = f.res[j];
          if (r->visit_epoch == mark) continue;
          r->visit_epoch = mark;
          comp_resources_.push_back(r);
        }
      }
      water_fill(comp_flows_, comp_resources_, /*count=*/true, mark);
      const std::size_t before = comp_flows_.size();
      validate_boundary(mark);
      if (comp_flows_.size() == before) {
        converged = true;
        break;
      }
      ++counters_.expand_rounds;
    }

    if (converged) {
      ++counters_.reallocations;
      counters_.flows_touched += comp_flows_.size();
      counters_.max_component =
          std::max<std::uint64_t>(counters_.max_component, comp_flows_.size());
      apply_rates(comp_flows_);
    } else {
      // Expansion kept growing: give up on locality and recompute the whole
      // affected connected component (worklist BFS over the bipartite
      // flow/resource graph; components not reached keep their rates —
      // max-min allocations are independent across components).
      const std::uint64_t visit = ++epoch_;
      for (Resource* r : comp_resources_) r->visit_epoch = visit;
      comp_flows_.clear();
      for (std::size_t i = 0; i < comp_resources_.size(); ++i) {
        Resource* r = comp_resources_[i];
        for (const std::uint32_t slot : r->members) {
          Flow& f = slab_[slot];
          if (f.visit_epoch == visit) continue;
          f.visit_epoch = visit;
          comp_flows_.push_back(slot);
          for (std::uint32_t j = 0; j < f.res_count; ++j) {
            Resource* r2 = f.res[j];
            if (r2->visit_epoch == visit) continue;
            r2->visit_epoch = visit;
            comp_resources_.push_back(r2);
          }
        }
      }
      ++counters_.reallocations;
      counters_.flows_touched += comp_flows_.size();
      counters_.max_component =
          std::max<std::uint64_t>(counters_.max_component, comp_flows_.size());
      water_fill(comp_flows_, comp_resources_, /*count=*/true);
      apply_rates(comp_flows_);
    }
  }

  if (cross_check_) {
    ++counters_.cross_checks;
    if (!rates_match_full_recompute(1e-9)) {
      std::fprintf(stderr,
                   "FlowNetwork: incremental reallocation diverged from "
                   "full water-filling (t=%.9f, %zu active flows)\n",
                   sim_.now(), active_flows());
      std::abort();
    }
  }
  schedule_next_completion();
}

void FlowNetwork::water_fill(const std::vector<std::uint32_t>& comp_flows,
                             const std::vector<Resource*>& comp_resources,
                             bool count, std::uint64_t local_mark) {
  // --- Max-min fairness by lazy-heap water filling. The fill level lambda
  // rises; a resource r exhausts at lambda_r = lambda + rem/live. A
  // min-heap orders resources by estimated exhaust level; stale entries
  // (whose live count dropped since insertion) are re-pushed on pop. Every
  // flow crossing an exhausting resource freezes at rate lambda. Rates
  // land in rates_scratch_ and the freeze resource (the flow's max-min
  // bottleneck) in bottleneck_scratch_, both indexed by flow slot; the
  // caller applies them.
  //
  // With a nonzero local_mark, only flows stamped with it are filled; the
  // other members of each resource are boundary flows held at their
  // current rates, which are subtracted from the resource's capacity up
  // front.
  if (rates_scratch_.size() < slab_.size()) {
    rates_scratch_.resize(slab_.size());
    bottleneck_scratch_.resize(slab_.size());
  }
  const std::uint64_t fill = ++epoch_;

  const auto entry_later = [](const FillEntry& a, const FillEntry& b) {
    if (a.lambda_est != b.lambda_est) return a.lambda_est > b.lambda_est;
    return a.id > b.id;
  };
  fill_heap_.clear();
  for (Resource* r : comp_resources) {
    assert(!r->members.empty());
    double rem = r->cap;
    std::uint32_t live;
    if (local_mark != 0) {
      live = 0;
      for (const std::uint32_t slot : r->members) {
        const Flow& h = slab_[slot];
        if (h.visit_epoch == local_mark)
          ++live;
        else
          rem -= h.rate;
      }
      if (rem < 0.0) rem = 0.0;
      assert(live > 0 && "every local resource carries a local flow");
    } else {
      live = static_cast<std::uint32_t>(r->members.size());
    }
    r->rem = rem;
    r->last_lambda = 0.0;
    r->live = live;
    r->fill_epoch = fill;
    fill_heap_.push_back({rem / live, r->id, r});
  }
  std::make_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);

  double lambda = 0.0;
  const auto refresh = [&lambda](Resource* r) {
    r->rem -= (lambda - r->last_lambda) * r->live;
    if (r->rem < 0.0) r->rem = 0.0;
    r->last_lambda = lambda;
  };

  std::size_t unfrozen = comp_flows.size();
  while (unfrozen > 0 && !fill_heap_.empty()) {
    if (count) ++counters_.filling_rounds;
    std::pop_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
    const FillEntry top = fill_heap_.back();
    fill_heap_.pop_back();
    Resource* r = top.resource;
    if (r->live == 0) continue;  // fully drained by earlier freezes
    refresh(r);
    const double exhaust = lambda + r->rem / r->live;
    if (exhaust > top.lambda_est * (1.0 + 1e-9)) {
      // Stale: live dropped since this entry was pushed.
      fill_heap_.push_back({exhaust, r->id, r});
      std::push_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
      continue;
    }
    lambda = exhaust;
    r->rem = 0.0;
    r->last_lambda = lambda;
    // Freeze every remaining participating flow crossing this resource.
    for (const std::uint32_t slot : r->members) {
      Flow& af = slab_[slot];
      if (local_mark != 0 && af.visit_epoch != local_mark) continue;
      if (af.freeze_epoch == fill) continue;
      af.freeze_epoch = fill;
      rates_scratch_[slot] = lambda;
      bottleneck_scratch_[slot] = r;
      --unfrozen;
      for (std::uint32_t i = 0; i < af.res_count; ++i) {
        Resource* r2 = af.res[i];
        assert(r2->fill_epoch == fill);
        refresh(r2);
        assert(r2->live > 0);
        --r2->live;
        if (r2 != r && r2->live > 0) {
          fill_heap_.push_back({lambda + r2->rem / r2->live, r2->id, r2});
          std::push_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
        }
      }
    }
    assert(r->live == 0);
  }
  assert(unfrozen == 0 && "every flow crosses a finite resource");
}

bool FlowNetwork::rates_match_full_recompute(double rel_tol) {
  flush_dirty();
  std::vector<std::uint32_t> all_flows;
  std::vector<Resource*> all_resources;
  gather_all_active(all_flows, all_resources);
  water_fill(all_flows, all_resources, /*count=*/false);
  for (const std::uint32_t slot : all_flows) {
    const double incremental = slab_[slot].rate;
    const double full = rates_scratch_[slot];
    const double denom = std::max(std::abs(incremental), std::abs(full));
    if (denom > 0.0 && std::abs(incremental - full) > rel_tol * denom)
      return false;
  }
  return true;
}

// ------------------------------------------------------ completion tracking --

bool FlowNetwork::heap_less(std::uint32_t a, std::uint32_t b) const {
  const Flow& fa = slab_[a];
  const Flow& fb = slab_[b];
  if (fa.proj_done != fb.proj_done) return fa.proj_done < fb.proj_done;
  return fa.id < fb.id;
}

void FlowNetwork::heap_sift_up(std::uint32_t pos) {
  const std::uint32_t slot = completion_heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!heap_less(slot, completion_heap_[parent])) break;
    completion_heap_[pos] = completion_heap_[parent];
    slab_[completion_heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  completion_heap_[pos] = slot;
  slab_[slot].heap_pos = pos;
}

void FlowNetwork::heap_sift_down(std::uint32_t pos) {
  const auto size = static_cast<std::uint32_t>(completion_heap_.size());
  const std::uint32_t slot = completion_heap_[pos];
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        heap_less(completion_heap_[child + 1], completion_heap_[child]))
      ++child;
    if (!heap_less(completion_heap_[child], slot)) break;
    completion_heap_[pos] = completion_heap_[child];
    slab_[completion_heap_[pos]].heap_pos = pos;
    pos = child;
  }
  completion_heap_[pos] = slot;
  slab_[slot].heap_pos = pos;
}

void FlowNetwork::heap_push(std::uint32_t slot) {
  completion_heap_.push_back(slot);
  slab_[slot].heap_pos = static_cast<std::uint32_t>(completion_heap_.size() - 1);
  heap_sift_up(slab_[slot].heap_pos);
}

void FlowNetwork::heap_update(std::uint32_t slot) {
  const std::uint32_t pos = slab_[slot].heap_pos;
  heap_sift_down(pos);
  heap_sift_up(slab_[slot].heap_pos);
}

void FlowNetwork::heap_remove(std::uint32_t slot) {
  const std::uint32_t pos = slab_[slot].heap_pos;
  const std::uint32_t last = completion_heap_.back();
  completion_heap_.pop_back();
  slab_[slot].heap_pos = kNone;
  if (last != slot) {
    completion_heap_[pos] = last;
    slab_[last].heap_pos = pos;
    heap_sift_down(pos);
    heap_sift_up(slab_[last].heap_pos);
  }
}

void FlowNetwork::schedule_next_completion() {
  if (completion_heap_.empty()) {
    if (pending_event_ != kInvalidEvent) {
      sim_.cancel(pending_event_);
      pending_event_ = kInvalidEvent;
    }
    return;
  }
  const SimTime when =
      std::max(slab_[completion_heap_.front()].proj_done, sim_.now());
  assert(std::isfinite(when) && "active flow with no allocated rate");
  if (pending_event_ != kInvalidEvent) {
    if (pending_time_ == when) return;  // already scheduled at this instant
    sim_.cancel(pending_event_);
  }
  pending_time_ = when;
  pending_event_ = sim_.at(when, [this] { on_next_completion(); });
}

void FlowNetwork::on_next_completion() {
  pending_event_ = kInvalidEvent;
  const SimTime now = sim_.now();
  // Collect every flow projected to finish at this instant (common in
  // symmetric schedules where all pairs complete simultaneously).
  std::vector<std::function<void(SimTime)>> done;
  while (!completion_heap_.empty() &&
         slab_[completion_heap_.front()].proj_done <= now) {
    const std::uint32_t slot = completion_heap_.front();
    Flow& f = slab_[slot];
    bytes_completed_ += f.total;
    ++counters_.flow_completions;
    if (auto* tr = obs::tracer())
      tr->end(obs::Cat::kSim, "flow", f.src, f.id, now, "aborted", 0);
    done.push_back(std::move(f.on_complete));
    remove_flow(slot);
  }
  if (done.empty()) {
    // A reallocation moved the head's projection after this event was
    // scheduled; just re-arm for the new head.
    schedule_next_completion();
    return;
  }
  mark_dirty();
  for (auto& cb : done) {
    if (cb) cb(now);
  }
}

}  // namespace rdmc::sim
