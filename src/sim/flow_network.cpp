#include "sim/flow_network.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "obs/trace.hpp"

namespace rdmc::sim {

FlowNetwork::FlowNetwork(Simulator& sim, Topology& topology)
    : sim_(sim), topology_(topology), topo_version_(topology.version()) {
  const auto n = static_cast<std::uint32_t>(topology.num_nodes());
  const auto racks = static_cast<std::uint32_t>(topology.num_racks());
  tx_.resize(n);
  rx_.resize(n);
  rack_up_.resize(racks);
  rack_down_.resize(racks);
  // Disjoint tie-break id ranges per resource class, so simultaneous-freeze
  // ordering can never depend on an accidental cross-class collision.
  for (std::uint32_t i = 0; i < n; ++i) {
    tx_[i].kind = Resource::Kind::kTx;
    tx_[i].index = i;
    tx_[i].id = i;
    tx_[i].cap = topology.node_tx_Bps(i);
    rx_[i].kind = Resource::Kind::kRx;
    rx_[i].index = i;
    rx_[i].id = n + i;
    rx_[i].cap = topology.node_rx_Bps(i);
  }
  for (std::uint32_t r = 0; r < racks; ++r) {
    rack_up_[r].kind = Resource::Kind::kRackUp;
    rack_up_[r].index = r;
    rack_up_[r].id = 2 * n + r;
    rack_up_[r].cap = topology.rack_uplink_Bps();
    rack_down_[r].kind = Resource::Kind::kRackDown;
    rack_down_[r].index = r;
    rack_down_[r].id = 2 * n + racks + r;
    rack_down_[r].cap = topology.rack_uplink_Bps();
  }
  pair_id_base_ = 2 * n + 2 * racks;
}

// ------------------------------------------------------------- flow slab --

std::uint32_t FlowNetwork::alloc_slot() {
  if (free_head_ != kNone) {
    const std::uint32_t slot = free_head_;
    free_head_ = slab_[slot].next_free;
    return slot;
  }
  slab_.emplace_back();
  rate_.push_back(0.0);
  visit_epoch_.push_back(0);
  freeze_epoch_.push_back(0);
  bn_applied_.push_back(nullptr);
  rates_scratch_.push_back(0.0);
  bottleneck_scratch_.push_back(nullptr);
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void FlowNetwork::free_slot(std::uint32_t slot) {
  Flow& f = slab_[slot];
  f.id = kInvalidFlow;
  if (++f.generation == 0) f.generation = 1;  // keep ids nonzero
  f.on_complete = nullptr;
  f.placed = false;
  f.res_count = 0;
  rate_[slot] = 0.0;
  f.next_free = free_head_;
  free_head_ = slot;
}

std::uint32_t FlowNetwork::slot_of(FlowId id) const {
  const auto slot = static_cast<std::uint32_t>(id);
  if (slot >= slab_.size() || slab_[slot].id != id) return kNone;
  return slot;
}

void FlowNetwork::remove_flow(std::uint32_t slot) {
  Flow& f = slab_[slot];
  if (f.placed) {
    for (std::uint32_t i = 0; i < f.res_count; ++i) {
      Resource* r = f.res[i];
      dirty_seeds_.push_back(r);
      // Swap-remove from the member list, fixing the moved flow's position.
      const std::uint32_t p = f.pos_in_res[i];
      assert(r->members[p] == slot);
      r->members[p] = r->members.back();
      r->members.pop_back();
      if (p < static_cast<std::uint32_t>(r->members.size())) {
        Flow& moved = slab_[r->members[p]];
        for (std::uint32_t j = 0; j < moved.res_count; ++j) {
          if (moved.res[j] == r) {
            moved.pos_in_res[j] = p;
            break;
          }
        }
      }
    }
  } else {
    // Started and removed within one instant: never wired into resources.
    pending_new_.erase(
        std::find(pending_new_.begin(), pending_new_.end(), slot));
  }
  if (f.heap_pos != kNone) heap_remove(slot);
  if (bn_applied_[slot] != nullptr) {
    --bn_applied_[slot]->bn_count;
    bn_applied_[slot] = nullptr;
  }
  --active_count_;
  free_slot(slot);
}

// ------------------------------------------------ membership & components --

void FlowNetwork::build_membership(std::uint32_t slot) {
  Flow& f = slab_[slot];
  assert(!f.placed);
  auto touch = [&](Resource& r) {
    f.res[f.res_count] = &r;
    f.pos_in_res[f.res_count] = static_cast<std::uint32_t>(r.members.size());
    ++f.res_count;
    r.members.push_back(slot);
    dirty_seeds_.push_back(&r);
  };
  touch(tx_[f.src]);
  touch(rx_[f.dst]);
  if (topology_.num_racks() > 1 && topology_.rack_uplink_Bps() > 0.0 &&
      !topology_.same_rack(f.src, f.dst)) {
    touch(rack_up_[topology_.rack_of(f.src)]);
    touch(rack_down_[topology_.rack_of(f.dst)]);
  }
  if (topology_.has_pair_caps()) {
    if (topology_.pair_cap_Bps(f.src, f.dst)) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(f.src) << 32) | f.dst;
      auto [it, inserted] = pair_res_.try_emplace(key);
      Resource& r = it->second;
      if (inserted) {
        r.kind = Resource::Kind::kPair;
        r.index = pair_seq_;
        r.id = pair_id_base_ + pair_seq_;
        r.pair_key = key;
        r.cap = resource_capacity(r);
        ++pair_seq_;
      }
      touch(r);
    }
  }
  f.placed = true;
  f.last_update = sim_.now();
}

void FlowNetwork::rebuild_all_membership() {
  // Topology capacities changed under us (set_pair_cap / set_node_nic after
  // flows were established): the cached membership may now be wrong — e.g. a
  // pair cap appeared on a path an existing flow uses. Rewire everything and
  // recompute all rates once; this is the cold path. Memoized fills keyed on
  // the old capacities are stale too.
  memo_clear();
  auto reset = [&](Resource& r) {
    r.members.clear();
    r.cap = resource_capacity(r);
  };
  for (auto& r : tx_) reset(r);
  for (auto& r : rx_) reset(r);
  for (auto& r : rack_up_) reset(r);
  for (auto& r : rack_down_) reset(r);
  for (auto& [key, r] : pair_res_) reset(r);
  for (std::uint32_t slot = 0; slot < slab_.size(); ++slot) {
    Flow& f = slab_[slot];
    if (f.id == kInvalidFlow || !f.placed) continue;
    // Charge progress at the old rate first: build_membership stamps
    // last_update = now, which would otherwise swallow the elapsed window.
    settle(slot);
    f.placed = false;
    f.res_count = 0;
    build_membership(slot);
  }
  recompute_all_ = true;
}

void FlowNetwork::settle(std::uint32_t slot) {
  Flow& flow = slab_[slot];
  const SimTime now = sim_.now();
  if (now <= flow.last_update) return;
  flow.remaining -= rate_[slot] * (now - flow.last_update);
  if (flow.remaining < 0.0) flow.remaining = 0.0;
  flow.last_update = now;
}

// ------------------------------------------------------------- public API --

FlowId FlowNetwork::start_flow(NodeId src, NodeId dst, double bytes,
                               std::function<void(SimTime)> on_complete) {
  assert(src < topology_.num_nodes() && dst < topology_.num_nodes());
  assert(src != dst);
  const double size = std::max(bytes, 1.0);
  const std::uint32_t slot = alloc_slot();
  Flow& f = slab_[slot];
  const FlowId id = (static_cast<FlowId>(f.generation) << 32) | slot;
  f.src = src;
  f.dst = dst;
  f.total = size;
  f.remaining = size;
  rate_[slot] = 0.0;
  f.last_update = sim_.now();
  f.id = id;
  f.seq = next_seq_++;
  f.on_complete = std::move(on_complete);
  assert(f.heap_pos == kNone && f.res_count == 0 && !f.placed);
  ++active_count_;
  pending_new_.push_back(slot);
  ++counters_.flow_starts;
  if (auto* tr = obs::tracer())
    tr->begin(obs::Cat::kSim, "flow", src, f.seq, sim_.now(),
              "dst,bytes", dst, static_cast<std::uint64_t>(size));
  mark_dirty();
  return id;
}

void FlowNetwork::abort_flow(FlowId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot == kNone) return;
  ++counters_.flow_aborts;
  if (auto* tr = obs::tracer())
    tr->end(obs::Cat::kSim, "flow", slab_[slot].src, slab_[slot].seq,
            sim_.now(), "aborted", 1);
  remove_flow(slot);
  mark_dirty();
}

double FlowNetwork::flow_rate(FlowId id) const {
  const_cast<FlowNetwork*>(this)->flush_dirty();
  const std::uint32_t slot = slot_of(id);
  return slot == kNone ? 0.0 : rate_[slot];
}

// ------------------------------------------------------------ reallocation --

void FlowNetwork::mark_dirty() {
  if (dirty_) return;
  dirty_ = true;
  // Coalesce: many flows start/finish at one virtual instant (lock-step
  // schedule boundaries); one rate recomputation covers them all.
  dirty_event_ = sim_.at(sim_.now(), [this] {
    dirty_ = false;
    dirty_event_ = kInvalidEvent;
    reallocate_dirty();
  });
}

void FlowNetwork::flush_dirty() {
  if (!dirty_) return;
  dirty_ = false;
  if (dirty_event_ != kInvalidEvent) {
    sim_.cancel(dirty_event_);
    dirty_event_ = kInvalidEvent;
  }
  reallocate_dirty();
}

double FlowNetwork::resource_capacity(const Resource& r) const {
  switch (r.kind) {
    case Resource::Kind::kTx:
      return topology_.node_tx_Bps(r.index);
    case Resource::Kind::kRx:
      return topology_.node_rx_Bps(r.index);
    case Resource::Kind::kRackUp:
    case Resource::Kind::kRackDown:
      return topology_.rack_uplink_Bps();
    case Resource::Kind::kPair: {
      const auto cap = topology_.pair_cap_Bps(
          static_cast<NodeId>(r.pair_key >> 32),
          static_cast<NodeId>(r.pair_key & 0xFFFFFFFFu));
      // The cap can vanish mid-run (clear_pair_cap when a transient
      // degradation recovers); the stale resource stays in pair_res_ with
      // no members after the rebuild, so report it unconstrained.
      return cap ? *cap : 1e18;
    }
  }
  return 0.0;
}

void FlowNetwork::gather_all_active(std::vector<std::uint32_t>& flows,
                                    std::vector<Resource*>& resources) {
  for (std::uint32_t slot = 0; slot < slab_.size(); ++slot)
    if (slab_[slot].id != kInvalidFlow) flows.push_back(slot);
  auto add = [&](Resource& r) {
    if (!r.members.empty()) resources.push_back(&r);
  };
  for (auto& r : tx_) add(r);
  for (auto& r : rx_) add(r);
  for (auto& r : rack_up_) add(r);
  for (auto& r : rack_down_) add(r);
  for (auto& [key, r] : pair_res_) add(r);
}

void FlowNetwork::apply_rates(const std::vector<std::uint32_t>& flows) {
  for (const std::uint32_t slot : flows) {
    Flow& f = slab_[slot];
    const double new_rate = rates_scratch_[slot];
    Resource* nb = bottleneck_scratch_[slot];
    if (bn_applied_[slot] != nb) {
      if (bn_applied_[slot] != nullptr) --bn_applied_[slot]->bn_count;
      ++nb->bn_count;
      bn_applied_[slot] = nb;
    }
    if (f.heap_pos != kNone && new_rate == rate_[slot]) {
      // Rate unchanged: (last_update, remaining, rate) stays consistent and
      // the projected completion is bit-identical — skip the heap traffic.
      continue;
    }
    settle(slot);
    rate_[slot] = new_rate;
    assert(new_rate > 0.0 && "every flow crosses a finite resource");
    f.proj_done = f.last_update + f.remaining / new_rate;
    if (f.heap_pos == kNone)
      heap_push(slot);
    else
      heap_update(slot);
  }
}

void FlowNetwork::validate_boundary(std::uint64_t mark, std::uint64_t fill) {
  // The combined allocation (fresh rates for local flows, old rates for
  // everyone else) is THE max-min allocation iff it is feasible and every
  // flow has a bottleneck: a saturated resource where its rate is maximal.
  // Local flows got theirs from the fill; flows whose resources were all
  // untouched kept theirs. That leaves the boundary flows sharing a
  // resource with the local set — exactly the members of comp_resources_.
  // A boundary flow h on resource r must join the local set when:
  //   * some local flow froze at r at level lambda but h.rate > lambda — h
  //     is hogging a resource the local flow is entitled to grow into;
  //   * h's own stored bottleneck is r, but r is no longer saturated (h
  //     could grow) or h is no longer maximal there (h lost its bottleneck).
  // A boundary flow whose bottleneck lies outside comp_resources_ is
  // untouched by construction, and its bottleneck is checked when that
  // resource's turn comes if it is inside.
  //
  // The per-member conditions only reference per-resource aggregates that
  // fill_prepare (boundary side) and fill_exact (local side) maintained, so
  // each resource is gated in O(1) first: if no boundary rate exceeds the
  // local freeze level and no boundary flow can have lost its bottleneck
  // here, no member of r can trigger and the member scan is skipped. In
  // steady state (all rates equal, everything saturated) every gate fails
  // and validation costs O(resources), not O(membership).
  for (Resource* r : comp_resources_) {
    if (r->bmem_cnt == 0) continue;  // purely local: nothing to expand
    const double usage = r->usage_b + r->usage_local;
    const bool saturated = usage >= r->cap * (1.0 - kExpandTol);
    const double max_rate = std::max(r->max_b, r->max_local);
    // Every local flow bottlenecked at r froze exactly at its saturation
    // level, so the old max-over-scratch scan reduces to sat_lambda.
    const double lambda_local = r->sat_fill == fill ? r->sat_lambda : -1.0;
    // Condition 1 needs a boundary rate strictly above lambda_local;
    // condition 2 needs a boundary flow bottlenecked at r (bn_count
    // over-approximates: it counts local flows' previous bottlenecks too)
    // that is either unsaturated here or below the member maximum.
    const bool may_hog = lambda_local >= 0.0 && r->max_b > lambda_local;
    const bool may_lose_bn =
        r->bn_count > 0 &&
        (!saturated || r->min_b < max_rate * (1.0 - kExpandTol));
    if (!may_hog && !may_lose_bn) continue;
    const std::uint32_t* bmem = boundary_arena_.data() + r->bmem_off;
    for (std::uint32_t i = 0; i < r->bmem_cnt; ++i) {
      const std::uint32_t slot = bmem[i];
      // May already have joined the local set via an earlier resource in
      // this pass.
      if (visit_epoch_[slot] == mark) continue;
      const double hr = rate_[slot];
      bool expand = false;
      if (lambda_local >= 0.0 && hr > lambda_local + kExpandTol * hr) {
        expand = true;
      } else if (bn_applied_[slot] == r &&
                 (!saturated || hr < max_rate * (1.0 - kExpandTol))) {
        expand = true;
      }
      if (expand) {
        visit_epoch_[slot] = mark;
        comp_flows_.push_back(slot);
      }
    }
  }
}

void FlowNetwork::reallocate_dirty() {
  if (topology_.version() != topo_version_) {
    topo_version_ = topology_.version();
    rebuild_all_membership();
  }
  for (const std::uint32_t slot : pending_new_) build_membership(slot);
  pending_new_.clear();

  comp_flows_.clear();
  comp_resources_.clear();

  if (recompute_all_) {
    // Topology capacities changed: every cached rate and bottleneck may be
    // stale. Refill everything from scratch (the cold path).
    recompute_all_ = false;
    dirty_seeds_.clear();
    gather_all_active(comp_flows_, comp_resources_);
    if (!comp_flows_.empty()) {
      ++counters_.reallocations;
      ++counters_.full_recomputes;
      counters_.flows_touched += comp_flows_.size();
      counters_.max_component =
          std::max<std::uint64_t>(counters_.max_component, comp_flows_.size());
      fill_with_memo(comp_flows_, comp_resources_, 0);
      apply_rates(comp_flows_);
    }
  } else {
    // Local set: the flows actually on a changed resource. Everyone else
    // starts out as a fixed-rate boundary.
    const std::uint64_t mark = ++epoch_;
    for (Resource* seed : dirty_seeds_) {
      for (const std::uint32_t slot : seed->members) {
        if (visit_epoch_[slot] == mark) continue;
        visit_epoch_[slot] = mark;
        comp_flows_.push_back(slot);
      }
    }
    dirty_seeds_.clear();
    if (comp_flows_.empty()) {
      schedule_next_completion();
      return;
    }

    bool converged = false;
    std::size_t wired = 0;
    for (int iter = 0; iter < kMaxExpandRounds; ++iter) {
      // Pull the resources of newly added local flows into the fill set.
      for (; wired < comp_flows_.size(); ++wired) {
        Flow& f = slab_[comp_flows_[wired]];
        for (std::uint32_t j = 0; j < f.res_count; ++j) {
          Resource* r = f.res[j];
          if (r->visit_epoch == mark) continue;
          r->visit_epoch = mark;
          comp_resources_.push_back(r);
        }
      }
      const std::uint64_t fill = fill_with_memo(comp_flows_, comp_resources_, mark);
      const std::size_t before = comp_flows_.size();
      validate_boundary(mark, fill);
      if (comp_flows_.size() == before) {
        converged = true;
        break;
      }
      ++counters_.expand_rounds;
    }

    if (converged) {
      ++counters_.reallocations;
      counters_.flows_touched += comp_flows_.size();
      counters_.max_component =
          std::max<std::uint64_t>(counters_.max_component, comp_flows_.size());
      apply_rates(comp_flows_);
    } else {
      // Expansion kept growing: give up on locality and recompute the whole
      // affected connected component (worklist BFS over the bipartite
      // flow/resource graph; components not reached keep their rates —
      // max-min allocations are independent across components).
      const std::uint64_t visit = ++epoch_;
      for (Resource* r : comp_resources_) r->visit_epoch = visit;
      comp_flows_.clear();
      for (std::size_t i = 0; i < comp_resources_.size(); ++i) {
        Resource* r = comp_resources_[i];
        for (const std::uint32_t slot : r->members) {
          if (visit_epoch_[slot] == visit) continue;
          visit_epoch_[slot] = visit;
          comp_flows_.push_back(slot);
          Flow& f = slab_[slot];
          for (std::uint32_t j = 0; j < f.res_count; ++j) {
            Resource* r2 = f.res[j];
            if (r2->visit_epoch == visit) continue;
            r2->visit_epoch = visit;
            comp_resources_.push_back(r2);
          }
        }
      }
      ++counters_.reallocations;
      counters_.flows_touched += comp_flows_.size();
      counters_.max_component =
          std::max<std::uint64_t>(counters_.max_component, comp_flows_.size());
      fill_with_memo(comp_flows_, comp_resources_, 0);
      apply_rates(comp_flows_);
    }
  }

  if (cross_check_) {
    ++counters_.cross_checks;
    if (!rates_match_full_recompute(1e-9)) {
      std::fprintf(stderr,
                   "FlowNetwork: incremental reallocation diverged from "
                   "full water-filling (t=%.9f, %zu active flows)\n",
                   sim_.now(), active_flows());
      std::abort();
    }
  }
  schedule_next_completion();
}

// ---------------------------------------------------- exact bottleneck fill --

std::uint64_t FlowNetwork::fill_prepare(
    const std::vector<std::uint32_t>& comp_flows,
    const std::vector<Resource*>& comp_resources, std::uint64_t local_mark) {
  const std::uint64_t fill = ++epoch_;
  std::uint32_t ordinal = 0;
  if (local_mark != 0) {
    // One pass over each member list: split it into local/boundary arena
    // slices, subtract boundary rates from capacity, and collect the
    // boundary-side validation aggregates.
    local_arena_.clear();
    boundary_arena_.clear();
    for (Resource* r : comp_resources) {
      assert(!r->members.empty());
      double rem = r->cap;
      double usage_b = 0.0, max_b = 0.0;
      double min_b = std::numeric_limits<double>::infinity();
      r->lmem_off = static_cast<std::uint32_t>(local_arena_.size());
      r->bmem_off = static_cast<std::uint32_t>(boundary_arena_.size());
      for (const std::uint32_t slot : r->members) {
        if (visit_epoch_[slot] == local_mark) {
          local_arena_.push_back(slot);
        } else {
          const double hr = rate_[slot];
          rem -= hr;
          usage_b += hr;
          if (hr > max_b) max_b = hr;
          if (hr < min_b) min_b = hr;
          boundary_arena_.push_back(slot);
        }
      }
      r->lmem_cnt =
          static_cast<std::uint32_t>(local_arena_.size()) - r->lmem_off;
      r->bmem_cnt =
          static_cast<std::uint32_t>(boundary_arena_.size()) - r->bmem_off;
      if (rem < 0.0) rem = 0.0;
      assert(r->lmem_cnt > 0 && "every local resource carries a local flow");
      r->rem = rem;
      r->last_lambda = 0.0;
      r->live = r->lmem_cnt;
      r->fill_epoch = fill;
      r->comp_index = ordinal++;
      r->usage_b = usage_b;
      r->max_b = max_b;
      r->min_b = min_b;
      r->usage_local = 0.0;
      r->max_local = 0.0;
    }
  } else {
    for (Resource* r : comp_resources) {
      assert(!r->members.empty());
      r->rem = r->cap;
      r->last_lambda = 0.0;
      r->live = static_cast<std::uint32_t>(r->members.size());
      r->fill_epoch = fill;
      r->comp_index = ordinal++;
      r->lmem_cnt = 0;  // fill_exact walks members directly
    }
  }
  (void)comp_flows;
  return fill;
}

void FlowNetwork::res_heap_sift_up(std::uint32_t pos) {
  Resource* r = res_heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!res_heap_less(r, res_heap_[parent])) break;
    res_heap_[pos] = res_heap_[parent];
    res_heap_[pos]->fill_pos = pos;
    pos = parent;
  }
  res_heap_[pos] = r;
  r->fill_pos = pos;
}

void FlowNetwork::res_heap_sift_down(std::uint32_t pos) {
  const auto size = static_cast<std::uint32_t>(res_heap_.size());
  Resource* r = res_heap_[pos];
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        res_heap_less(res_heap_[child + 1], res_heap_[child]))
      ++child;
    if (!res_heap_less(res_heap_[child], r)) break;
    res_heap_[pos] = res_heap_[child];
    res_heap_[pos]->fill_pos = pos;
    pos = child;
  }
  res_heap_[pos] = r;
  r->fill_pos = pos;
}

void FlowNetwork::res_heap_remove(Resource* r) {
  const std::uint32_t pos = r->fill_pos;
  Resource* last = res_heap_.back();
  res_heap_.pop_back();
  r->fill_pos = kNone;
  if (last != r) {
    res_heap_[pos] = last;
    last->fill_pos = pos;
    res_heap_sift_down(pos);
    res_heap_sift_up(last->fill_pos);
  }
}

void FlowNetwork::fill_exact(const std::vector<std::uint32_t>& comp_flows,
                             const std::vector<Resource*>& comp_resources,
                             bool count, std::uint64_t local_mark,
                             std::uint64_t fill) {
  // --- Max-min fairness by exact bottleneck elimination. Every resource
  // sits in an indexed min-heap keyed by its estimated exhaust level
  // lambda + rem/live (ties by id). Each round pops the true minimum — the
  // next resource to saturate — freezes its remaining participating flows
  // at the fair share, and updates each neighbouring resource's residual
  // capacity/degree and heap position in place. Unlike the progressive
  // lazy-heap filling (water_fill_progressive below, kept as the oracle),
  // no stale entries exist: the number of pops equals the number of
  // saturating resources, so a fill is O((F + R) log R).
  //
  // With a nonzero local_mark, only flows stamped with it are filled; the
  // other members of each resource are boundary flows held at their
  // current rates, already subtracted from capacity by fill_prepare.
  res_heap_.clear();
  for (Resource* r : comp_resources) {
    r->fill_key = r->rem / r->live;
    r->fill_pos = static_cast<std::uint32_t>(res_heap_.size());
    res_heap_.push_back(r);
  }
  if (res_heap_.size() > 1) {
    for (auto i = static_cast<std::int64_t>(res_heap_.size() / 2) - 1; i >= 0;
         --i)
      res_heap_sift_down(static_cast<std::uint32_t>(i));
  }

  double lambda = 0.0;
  const auto refresh = [&lambda](Resource* r) {
    r->rem -= (lambda - r->last_lambda) * r->live;
    if (r->rem < 0.0) r->rem = 0.0;
    r->last_lambda = lambda;
  };

  std::size_t unfrozen = comp_flows.size();
  while (unfrozen > 0 && !res_heap_.empty()) {
    if (count) ++counters_.filling_rounds;
    Resource* r = res_heap_.front();
    res_heap_remove(r);
    assert(r->live > 0);
    refresh(r);
    const double exhaust = lambda + r->rem / r->live;
    lambda = exhaust;
    r->rem = 0.0;
    r->last_lambda = lambda;
    r->sat_lambda = lambda;
    r->sat_fill = fill;
    // Freeze every remaining participating flow crossing this resource.
    // For a local fill the arena slice holds exactly the local members, so
    // no boundary member is even visited.
    const std::uint32_t* fmem = local_mark != 0
                                    ? local_arena_.data() + r->lmem_off
                                    : r->members.data();
    const std::uint32_t fcnt =
        local_mark != 0 ? r->lmem_cnt
                        : static_cast<std::uint32_t>(r->members.size());
    for (std::uint32_t m = 0; m < fcnt; ++m) {
      const std::uint32_t slot = fmem[m];
      if (freeze_epoch_[slot] == fill) continue;
      freeze_epoch_[slot] = fill;
      rates_scratch_[slot] = lambda;
      bottleneck_scratch_[slot] = r;
      --unfrozen;
      const Flow& af = slab_[slot];
      for (std::uint32_t i = 0; i < af.res_count; ++i) {
        Resource* r2 = af.res[i];
        assert(r2->fill_epoch == fill);
        refresh(r2);
        assert(r2->live > 0);
        --r2->live;
        r2->usage_local += lambda;
        r2->max_local = lambda;  // freeze levels are non-decreasing
        if (r2 == r) continue;
        if (r2->live == 0) {
          // Drained without saturating: all its participants froze
          // elsewhere. Out of the heap — it can never pop.
          res_heap_remove(r2);
        } else {
          r2->fill_key = lambda + r2->rem / r2->live;
          const std::uint32_t pos = r2->fill_pos;
          res_heap_sift_down(pos);
          res_heap_sift_up(r2->fill_pos);
        }
      }
    }
    assert(r->live == 0);
  }
  assert(unfrozen == 0 && "every flow crosses a finite resource");
}

// ------------------------------------------------------- fill memoization --

std::uint64_t FlowNetwork::memo_fingerprint(
    const std::vector<std::uint32_t>& comp_flows,
    const std::vector<Resource*>& comp_resources) {
  // Canonical component description in discovery order: the discovery walk
  // is deterministic, so a steady-state schedule re-creating the same
  // component produces the same word sequence. Residual capacities are
  // compared as raw bit patterns — a hit must reproduce a fresh fill
  // bit-for-bit, so "close" capacities must not collide.
  auto& key = memo_key_scratch_;
  key.clear();
  key.reserve(2 + 2 * comp_resources.size() + comp_flows.size());
  key.push_back(topo_version_);
  key.push_back((static_cast<std::uint64_t>(comp_resources.size()) << 32) |
                comp_flows.size());
  for (const Resource* r : comp_resources) {
    key.push_back((static_cast<std::uint64_t>(r->id) << 32) | r->live);
    key.push_back(std::bit_cast<std::uint64_t>(r->rem));
  }
  for (const std::uint32_t slot : comp_flows) {
    const Flow& f = slab_[slot];
    key.push_back((static_cast<std::uint64_t>(f.src) << 32) | f.dst);
  }
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  for (const std::uint64_t w : key) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return h;
}

FlowNetwork::MemoEntry* FlowNetwork::memo_find(std::uint64_t hash) {
  const auto it = memo_index_.find(hash);
  if (it == memo_index_.end()) return nullptr;
  MemoEntry& e = memo_entries_[it->second];
  return e.key == memo_key_scratch_ ? &e : nullptr;
}

void FlowNetwork::memo_store(std::uint64_t hash,
                             const std::vector<std::uint32_t>& comp_flows,
                             const std::vector<Resource*>& comp_resources) {
  std::uint32_t idx;
  MemoEntry* e;
  if (memo_entries_.size() < kMemoCapacity) {
    idx = static_cast<std::uint32_t>(memo_entries_.size());
    e = &memo_entries_.emplace_back();
  } else {
    // Round-robin ring: deterministic FIFO replacement with no per-hit
    // bookkeeping. Steady-state schedules cycle through a bounded set of
    // component shapes, so recency information buys nothing here while an
    // LRU scan costs O(capacity) per store.
    idx = static_cast<std::uint32_t>(memo_cursor_);
    memo_cursor_ = (memo_cursor_ + 1) % kMemoCapacity;
    e = &memo_entries_[idx];
    memo_index_.erase(e->hash);
  }
  e->key = memo_key_scratch_;
  e->hash = hash;
  e->rates.resize(comp_flows.size());
  e->bottlenecks.resize(comp_flows.size());
  for (std::size_t i = 0; i < comp_flows.size(); ++i) {
    const std::uint32_t slot = comp_flows[i];
    e->rates[i] = rates_scratch_[slot];
    e->bottlenecks[i] = bottleneck_scratch_[slot]->comp_index;
  }
  e->res_aggregates.resize(3 * comp_resources.size());
  for (std::size_t i = 0; i < comp_resources.size(); ++i) {
    const Resource* r = comp_resources[i];
    e->res_aggregates[3 * i] = r->usage_local;
    e->res_aggregates[3 * i + 1] = r->max_local;
    // sat_fill == fill_epoch: popped (saturated) during this fill.
    e->res_aggregates[3 * i + 2] =
        r->sat_fill == r->fill_epoch
            ? r->sat_lambda
            : std::numeric_limits<double>::quiet_NaN();
  }
  memo_index_[hash] = idx;  // collisions: newest entry wins the slot
}

void FlowNetwork::memo_clear() {
  memo_entries_.clear();
  memo_index_.clear();
  memo_cursor_ = 0;
}

std::uint64_t FlowNetwork::fill_with_memo(
    const std::vector<std::uint32_t>& comp_flows,
    const std::vector<Resource*>& comp_resources, std::uint64_t local_mark) {
  const std::uint64_t fill =
      fill_prepare(comp_flows, comp_resources, local_mark);
  if (!memoize_ || memo_auto_off_ || comp_flows.size() < memo_min_flows_) {
    fill_exact(comp_flows, comp_resources, /*count=*/true, local_mark, fill);
    return fill;
  }
  const std::uint64_t hash = memo_fingerprint(comp_flows, comp_resources);
  if (MemoEntry* e = memo_find(hash)) {
    ++counters_.memo_hits;
    if (cross_check_) {
      // Replay the fill (uncounted: it is validation, not production work)
      // and demand the cached vector bit-for-bit — any divergence means the
      // fingerprint missed state the fill depends on. The replay leaves
      // rates/bottlenecks/aggregates exactly as the hit would.
      fill_exact(comp_flows, comp_resources, /*count=*/false, local_mark,
                 fill);
      for (std::size_t i = 0; i < comp_flows.size(); ++i) {
        const std::uint32_t slot = comp_flows[i];
        if (rates_scratch_[slot] != e->rates[i] ||
            bottleneck_scratch_[slot] !=
                comp_resources[e->bottlenecks[i]]) {
          std::fprintf(stderr,
                       "FlowNetwork: memoized fill diverged from fresh fill "
                       "(t=%.9f, comp=%zu flows)\n",
                       sim_.now(), comp_flows.size());
          std::abort();
        }
      }
      return fill;
    }
    for (std::size_t i = 0; i < comp_flows.size(); ++i) {
      const std::uint32_t slot = comp_flows[i];
      rates_scratch_[slot] = e->rates[i];
      bottleneck_scratch_[slot] = comp_resources[e->bottlenecks[i]];
    }
    // Replay the local-side validation aggregates so validate_boundary sees
    // exactly the state a fresh fill would have left.
    for (std::size_t i = 0; i < comp_resources.size(); ++i) {
      Resource* r = comp_resources[i];
      r->usage_local = e->res_aggregates[3 * i];
      r->max_local = e->res_aggregates[3 * i + 1];
      const double lam = e->res_aggregates[3 * i + 2];
      if (!std::isnan(lam)) {
        r->sat_lambda = lam;
        r->sat_fill = fill;
      }
      // NaN: drained unsaturated; sat_fill keeps an older epoch and can
      // never equal the strictly increasing current fill.
    }
    return fill;
  }
  ++counters_.memo_misses;
  fill_exact(comp_flows, comp_resources, /*count=*/true, local_mark, fill);
  memo_store(hash, comp_flows, comp_resources);
  // Workloads whose boundary residuals churn every reallocation never
  // repeat a fingerprint; fingerprinting them is pure overhead. After a
  // deterministic probation period with almost no hits, switch the memo off
  // for the rest of the run (set_memoize(true) re-arms it and starts a
  // fresh probation window).
  const std::uint64_t window_misses = counters_.memo_misses - memo_miss_mark_;
  const std::uint64_t window_hits = counters_.memo_hits - memo_hit_mark_;
  if (window_misses >= kMemoProbation &&
      window_hits * kMemoMinHitRatio < window_misses) {
    memo_auto_off_ = true;
    memo_clear();
  }
  return fill;
}

// --------------------------------------------------- progressive oracle --

void FlowNetwork::water_fill_progressive(
    const std::vector<std::uint32_t>& comp_flows,
    const std::vector<Resource*>& comp_resources, std::uint64_t local_mark) {
  // The original progressive lazy-heap water filling, kept verbatim as the
  // independent oracle for set_cross_check and the property tests. The fill
  // level lambda rises; a resource r exhausts at lambda_r = lambda +
  // rem/live. A min-heap orders resources by estimated exhaust level; stale
  // entries (whose live count dropped since insertion) are re-pushed on
  // pop. Every flow crossing an exhausting resource freezes at rate lambda.
  // Rates land in rates_scratch_ and the freeze resource in
  // bottleneck_scratch_, both indexed by flow slot.
  if (rates_scratch_.size() < slab_.size()) {
    rates_scratch_.resize(slab_.size());
    bottleneck_scratch_.resize(slab_.size());
  }
  const std::uint64_t fill = ++epoch_;

  const auto entry_later = [](const FillEntry& a, const FillEntry& b) {
    if (a.lambda_est != b.lambda_est) return a.lambda_est > b.lambda_est;
    return a.id > b.id;
  };
  fill_heap_.clear();
  for (Resource* r : comp_resources) {
    assert(!r->members.empty());
    double rem = r->cap;
    std::uint32_t live;
    if (local_mark != 0) {
      live = 0;
      for (const std::uint32_t slot : r->members) {
        if (visit_epoch_[slot] == local_mark)
          ++live;
        else
          rem -= rate_[slot];
      }
      if (rem < 0.0) rem = 0.0;
      assert(live > 0 && "every local resource carries a local flow");
    } else {
      live = static_cast<std::uint32_t>(r->members.size());
    }
    r->rem = rem;
    r->last_lambda = 0.0;
    r->live = live;
    r->fill_epoch = fill;
    fill_heap_.push_back({rem / live, r->id, r});
  }
  std::make_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);

  double lambda = 0.0;
  const auto refresh = [&lambda](Resource* r) {
    r->rem -= (lambda - r->last_lambda) * r->live;
    if (r->rem < 0.0) r->rem = 0.0;
    r->last_lambda = lambda;
  };

  std::size_t unfrozen = comp_flows.size();
  while (unfrozen > 0 && !fill_heap_.empty()) {
    std::pop_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
    const FillEntry top = fill_heap_.back();
    fill_heap_.pop_back();
    Resource* r = top.resource;
    if (r->live == 0) continue;  // fully drained by earlier freezes
    refresh(r);
    const double exhaust = lambda + r->rem / r->live;
    if (exhaust > top.lambda_est * (1.0 + 1e-9)) {
      // Stale: live dropped since this entry was pushed.
      fill_heap_.push_back({exhaust, r->id, r});
      std::push_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
      continue;
    }
    lambda = exhaust;
    r->rem = 0.0;
    r->last_lambda = lambda;
    // Freeze every remaining participating flow crossing this resource.
    for (const std::uint32_t slot : r->members) {
      if (local_mark != 0 && visit_epoch_[slot] != local_mark) continue;
      if (freeze_epoch_[slot] == fill) continue;
      freeze_epoch_[slot] = fill;
      rates_scratch_[slot] = lambda;
      bottleneck_scratch_[slot] = r;
      --unfrozen;
      const Flow& af = slab_[slot];
      for (std::uint32_t i = 0; i < af.res_count; ++i) {
        Resource* r2 = af.res[i];
        assert(r2->fill_epoch == fill);
        refresh(r2);
        assert(r2->live > 0);
        --r2->live;
        if (r2 != r && r2->live > 0) {
          fill_heap_.push_back({lambda + r2->rem / r2->live, r2->id, r2});
          std::push_heap(fill_heap_.begin(), fill_heap_.end(), entry_later);
        }
      }
    }
    assert(r->live == 0);
  }
  assert(unfrozen == 0 && "every flow crosses a finite resource");
}

bool FlowNetwork::rates_match_full_recompute(double rel_tol,
                                             bool use_exact_fill) {
  flush_dirty();
  std::vector<std::uint32_t> all_flows;
  std::vector<Resource*> all_resources;
  gather_all_active(all_flows, all_resources);
  if (use_exact_fill) {
    const std::uint64_t fill = fill_prepare(all_flows, all_resources, 0);
    fill_exact(all_flows, all_resources, /*count=*/false, 0, fill);
  } else {
    water_fill_progressive(all_flows, all_resources);
  }
  for (const std::uint32_t slot : all_flows) {
    const double incremental = rate_[slot];
    const double full = rates_scratch_[slot];
    const double denom = std::max(std::abs(incremental), std::abs(full));
    if (denom > 0.0 && std::abs(incremental - full) > rel_tol * denom)
      return false;
  }
  return true;
}

// ------------------------------------------------------ completion tracking --

bool FlowNetwork::heap_less(std::uint32_t a, std::uint32_t b) const {
  const Flow& fa = slab_[a];
  const Flow& fb = slab_[b];
  if (fa.proj_done != fb.proj_done) return fa.proj_done < fb.proj_done;
  return fa.seq < fb.seq;
}

void FlowNetwork::heap_sift_up(std::uint32_t pos) {
  const std::uint32_t slot = completion_heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (!heap_less(slot, completion_heap_[parent])) break;
    completion_heap_[pos] = completion_heap_[parent];
    slab_[completion_heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  completion_heap_[pos] = slot;
  slab_[slot].heap_pos = pos;
}

void FlowNetwork::heap_sift_down(std::uint32_t pos) {
  const auto size = static_cast<std::uint32_t>(completion_heap_.size());
  const std::uint32_t slot = completion_heap_[pos];
  while (true) {
    std::uint32_t child = 2 * pos + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        heap_less(completion_heap_[child + 1], completion_heap_[child]))
      ++child;
    if (!heap_less(completion_heap_[child], slot)) break;
    completion_heap_[pos] = completion_heap_[child];
    slab_[completion_heap_[pos]].heap_pos = pos;
    pos = child;
  }
  completion_heap_[pos] = slot;
  slab_[slot].heap_pos = pos;
}

void FlowNetwork::heap_push(std::uint32_t slot) {
  completion_heap_.push_back(slot);
  slab_[slot].heap_pos = static_cast<std::uint32_t>(completion_heap_.size() - 1);
  heap_sift_up(slab_[slot].heap_pos);
}

void FlowNetwork::heap_update(std::uint32_t slot) {
  const std::uint32_t pos = slab_[slot].heap_pos;
  heap_sift_down(pos);
  heap_sift_up(slab_[slot].heap_pos);
}

void FlowNetwork::heap_remove(std::uint32_t slot) {
  const std::uint32_t pos = slab_[slot].heap_pos;
  const std::uint32_t last = completion_heap_.back();
  completion_heap_.pop_back();
  slab_[slot].heap_pos = kNone;
  if (last != slot) {
    completion_heap_[pos] = last;
    slab_[last].heap_pos = pos;
    heap_sift_down(pos);
    heap_sift_up(slab_[last].heap_pos);
  }
}

void FlowNetwork::schedule_next_completion() {
  if (completion_heap_.empty()) {
    if (pending_event_ != kInvalidEvent) {
      sim_.cancel(pending_event_);
      pending_event_ = kInvalidEvent;
    }
    return;
  }
  const SimTime when =
      std::max(slab_[completion_heap_.front()].proj_done, sim_.now());
  assert(std::isfinite(when) && "active flow with no allocated rate");
  if (pending_event_ != kInvalidEvent) {
    if (pending_time_ == when) return;  // already scheduled at this instant
    sim_.cancel(pending_event_);
  }
  pending_time_ = when;
  pending_event_ = sim_.at(when, [this] { on_next_completion(); });
}

void FlowNetwork::on_next_completion() {
  pending_event_ = kInvalidEvent;
  const SimTime now = sim_.now();
  // Collect every flow projected to finish at this instant (common in
  // symmetric schedules where all pairs complete simultaneously).
  std::vector<std::function<void(SimTime)>> done;
  while (!completion_heap_.empty() &&
         slab_[completion_heap_.front()].proj_done <= now) {
    const std::uint32_t slot = completion_heap_.front();
    Flow& f = slab_[slot];
    bytes_completed_ += f.total;
    ++counters_.flow_completions;
    if (auto* tr = obs::tracer())
      tr->end(obs::Cat::kSim, "flow", f.src, f.seq, now, "aborted", 0);
    done.push_back(std::move(f.on_complete));
    remove_flow(slot);
  }
  if (done.empty()) {
    // A reallocation moved the head's projection after this event was
    // scheduled; just re-arm for the new head.
    schedule_next_completion();
    return;
  }
  mark_dirty();
  for (auto& cb : done) {
    if (cb) cb(now);
  }
}

}  // namespace rdmc::sim
