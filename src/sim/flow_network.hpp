// Flow-level network model with max-min fair bandwidth sharing.
//
// Each in-flight unicast transfer is a fluid flow. Whenever the set of
// active flows changes, rates are re-allocated to the max-min fair
// allocation — the standard fluid approximation of the fair sharing that
// RDMA hardware (and DCQCN/TIMELY) provides, the property the paper leans
// on in §3 item 5 and exercises in Figs 9-10.
//
// Resources: per-node NIC tx and rx ports, per-rack uplink/downlink, and
// optional per-directed-pair caps (slow links, §4.5 item 2).
//
// Scaling design (the simulator is our hardware, so this is the hot loop):
//   * resource→flow membership is maintained persistently — a flow is wired
//     into its resources once at start and unwired at finish, instead of the
//     whole table being rebuilt on every reallocation;
//   * a flow-set change refills only the flows on the changed resources,
//     holding every neighbouring flow at its current rate. The max-min
//     allocation is the unique feasible allocation in which every flow has a
//     bottleneck (a saturated resource where its rate is maximal), so after
//     the local fill those conditions are checked on the boundary; a
//     neighbour that violates them joins the local set and the fill repeats.
//     In lock-step schedules the affected set is tiny even when the
//     connected component spans every active flow, turning O(F log F) per
//     change into O(k log k) for k ≈ the flows whose rates actually change.
//     If expansion fails to settle quickly the code falls back to a full
//     recomputation of the affected connected component;
//   * the affected set is split into its *connected components* (flows
//     linked through shared in-set resources) and every component is
//     prepared, memo-probed, filled and boundary-validated independently.
//     At a lock-step boundary the local set is a union of hundreds of
//     disjoint few-flow components — one per completing/starting transfer
//     pair — which the pre-split code filled as one giant joint heap fill.
//     Splitting makes the cost Σ O(k_i log k_i) instead of O(K log K),
//     lets an expansion round refill only the components that actually
//     grew (everyone else's scratch rates and aggregates stand), and makes
//     the fills *independent*: with set_fill_jobs(N > 1), missed component
//     fills of one round run on the shared util::parallel_for pool.
//     Components are dispatched and their results merged in canonical
//     component order and each worker fills into disjoint slot/resource
//     scratch, so counters, rates and traces are byte-identical for any N;
//   * each fill runs the *exact bottleneck-elimination* algorithm: every
//     resource sits in an indexed min-heap keyed by its saturation level
//     (residual capacity / unfrozen degree); the minimum pops, its flows
//     freeze at the fair share, and each neighbouring resource's residual
//     capacity and degree are decremented in place (one sift per incidence,
//     no stale entries). A fill costs O((F + R) log R) and the number of
//     heap pops equals the number of saturating resources;
//   * components spanning oversubscribed racks are solved *hierarchically*
//     (see DESIGN.md §"Hierarchical water-fill"): interior NIC resources
//     are grouped into islands (per-rack sub-problems) coupled only through
//     the kRackUp/kRackDown uplink resources; islands are solved
//     independently by a capped bottleneck elimination and a small fixed
//     point iterates the uplink fair shares until the advertised levels
//     stabilise. The flat exact fill remains both the fallback (pair caps,
//     non-convergence, small components) and — with the progressive oracle
//     behind set_cross_check — the correctness gate;
//   * steady-state fills are memoized at *shape level*: pipelined schedules
//     (binomial pipeline, chain) re-create isomorphic components over and
//     over as the block step advances across node pairs. Each prepared
//     component is fingerprinted by its canonical shape — resources as
//     (kind, unfrozen degree, residual-capacity bits) and flows as the
//     component-relative ordinals of the resources they cross, all in
//     discovery order, with no absolute node or resource ids (an earlier
//     fingerprint leaked absolute ids, so translated copies of one shape
//     never matched and the cache sat dead). Since the fill arithmetic is a
//     pure function of that shape (heap ties break on component ordinals,
//     not global ids), a hit replays the cached rate/bottleneck vector in
//     O(F) bit-for-bit; the cache is dropped on topology mutations, tiny
//     components bypass it, and a workload whose shapes never repeat
//     deterministically disables the cache after a probation window
//     (re-armed by set_memoize(true)) so it stops paying for
//     fingerprinting;
//   * the incidence-bound loops read hot per-flow state from dense
//     slot-indexed vectors, each fill splits every resource's member list
//     into local/boundary arenas once, and boundary validation runs off
//     per-resource aggregates maintained by the fill itself;
//   * flow progress uses virtual-work accounting; projected completion
//     times live in an indexed min-heap; FlowId encodes (generation, slab
//     slot) for O(1) id lookups;
//   * in assert-enabled builds (or via set_cross_check) every incremental
//     recomputation is validated against a from-scratch full water-filling
//     by the *old progressive* algorithm, which is kept, unoptimized, as
//     the independent oracle; memo hits are additionally replayed against a
//     fresh fill by the solver that produced them and must match
//     bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rdmc::sim {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  FlowNetwork(Simulator& sim, Topology& topology);

  /// Begin transferring `bytes` from src to dst. `on_complete` fires (in
  /// virtual time) when the last byte leaves the source; the caller adds
  /// propagation latency for receive-side events. Zero-byte flows are
  /// treated as one byte so every flow takes non-zero time.
  FlowId start_flow(NodeId src, NodeId dst, double bytes,
                    std::function<void(SimTime)> on_complete);

  /// Abort an in-flight flow (failure injection); its callback never fires.
  /// No-op for unknown/finished ids.
  void abort_flow(FlowId id);

  /// Apply a topology capacity mutation (set_pair_cap / set_node_nic) at
  /// the current virtual instant. Without this, a mid-run mutation only
  /// takes effect at the next flow start/finish — fine for degradations
  /// injected before the run, wrong for failure injection at time t.
  void topology_changed() { mark_dirty(); }

  std::size_t active_flows() const { return active_count_; }

  /// Current fair-share rate of a flow in bytes/sec (0 if unknown).
  double flow_rate(FlowId id) const;

  /// Total payload bytes fully delivered since construction.
  double bytes_completed() const { return bytes_completed_; }

  /// Profiling counters for perf tracking (BENCH_core.json).
  struct Counters {
    std::uint64_t reallocations = 0;   // rate recomputations (any scope)
    std::uint64_t filling_rounds = 0;  // bottleneck saturations (heap pops)
    std::uint64_t flows_touched = 0;   // sum of recomputed set sizes
    std::uint64_t max_component = 0;   // largest single component filled
    std::uint64_t expand_rounds = 0;   // local-set growth iterations
    std::uint64_t full_recomputes = 0; // fills that covered every flow
    std::uint64_t flow_starts = 0;
    std::uint64_t flow_completions = 0;
    std::uint64_t flow_aborts = 0;
    std::uint64_t cross_checks = 0;    // debug full-recompute validations
    std::uint64_t memo_hits = 0;       // fills answered from the cache
    std::uint64_t memo_misses = 0;     // memo-eligible fills computed fresh
    std::uint64_t component_fills = 0; // independent component fills/hits
    std::uint64_t hier_fills = 0;      // components solved hierarchically
    std::uint64_t hier_rounds = 0;     // uplink fixed-point iterations
    std::uint64_t hier_fallbacks = 0;  // hierarchical gave up -> flat fill
    std::uint64_t split_cuts = 0;      // saturation cuts peeled from fills
    std::uint64_t split_pieces = 0;    // sub-components created by peeling
    /// Hierarchical island rounds *eligible* for parallel dispatch (enough
    /// islands and members). Counts eligibility, not actual dispatch, so
    /// the value is identical for any set_fill_jobs value — the counters
    /// block is part of the byte-identical-output contract.
    std::uint64_t island_par_rounds = 0;
  };
  const Counters& counters() const { return counters_; }
  std::uint64_t reallocations() const { return counters_.reallocations; }
  std::uint64_t filling_rounds() const { return counters_.filling_rounds; }

  /// When enabled, every incremental recomputation is cross-checked against
  /// a from-scratch full water-filling by the progressive (oracle)
  /// algorithm, and every memo hit against a fresh fill by the solver that
  /// produced it; divergence aborts. Defaults to on in assert-enabled
  /// builds, off in NDEBUG builds.
  void set_cross_check(bool on) { cross_check_ = on; }

  /// Steady-state fill memoization (default on). Components smaller than
  /// `min_flows` bypass the cache — fingerprinting a two-flow fill costs
  /// more than filling it. set_memoize(true) also re-arms the deterministic
  /// auto-disable: the hit/miss marks reset so a fresh probation window
  /// starts (a workload whose shapes never repeat stops paying for them);
  /// set_memoize(false) leaves the probation state untouched.
  void set_memoize(bool on) {
    memoize_ = on;
    if (on) {
      memo_auto_off_ = false;
      memo_hit_mark_ = counters_.memo_hits;
      memo_miss_mark_ = counters_.memo_misses;
    }
  }
  void set_memo_min_flows(std::size_t min_flows) {
    memo_min_flows_ = min_flows;
  }

  /// Worker threads for component-parallel filling inside one reallocation
  /// (default 1 = inline). Results are byte-identical for any value: the
  /// components of a flow-set change are independent sub-problems writing
  /// disjoint scratch, dispatched and merged in canonical component order.
  void set_fill_jobs(std::size_t jobs) { fill_jobs_ = jobs ? jobs : 1; }
  std::size_t fill_jobs() const { return fill_jobs_; }

  /// Hierarchical (island/uplink fixed point) solving of rack-spanning
  /// components (default on; engages only for components that cross
  /// kRackUp/kRackDown resources, carry no pair caps, and have at least
  /// `set_hier_min_flows` flows).
  void set_hierarchical(bool on) { hierarchical_ = on; }
  void set_hier_min_flows(std::size_t min_flows) {
    hier_min_flows_ = min_flows;
  }

  /// Minimum component size for schedule-aware splitting: uncoupled
  /// components with at least this many flows are scanned for saturation
  /// cuts before filling, and peeled into independently solved pieces when
  /// cuts exist (see DESIGN.md §"Saturation-cut splitting"). The results
  /// are bit-identical to the flat fill for any value; tests lower it to
  /// exercise the split path on small components.
  void set_cut_min_flows(std::size_t min_flows) {
    cut_min_flows_ = min_flows;
  }

  /// Recompute every rate from scratch (ignoring the incremental state) and
  /// compare with the incrementally maintained rates. True when every flow
  /// matches within `rel_tol` relative tolerance. `use_exact_fill` selects
  /// the production bottleneck-elimination algorithm for the recompute;
  /// the default runs the independent progressive oracle.
  bool rates_match_full_recompute(double rel_tol = 1e-9,
                                  bool use_exact_fill = false);

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// One capacity constraint. Lives for the whole simulation; `members`
  /// is the persistently maintained set of active flows crossing it.
  /// `rem`/`last_lambda`/`live` are per-fill scratch implementing lazy
  /// water-level accounting: the capacity remaining at global fill level
  /// lambda is rem - (lambda - last_lambda) * live.
  struct Resource {
    enum class Kind : std::uint8_t { kTx, kRx, kRackUp, kRackDown, kPair };
    Kind kind = Kind::kTx;
    std::uint32_t index = 0;  // node, rack, or pair ordinal
    std::uint32_t id = 0;     // stable id; disjoint range per class
    std::uint64_t pair_key = 0;
    std::vector<std::uint32_t> members;  // slab indices of crossing flows

    double cap = 0.0;
    double rem = 0.0;
    double last_lambda = 0.0;
    std::uint32_t live = 0;
    std::uint64_t fill_epoch = 0;
    std::uint64_t visit_epoch = 0;
    std::uint64_t split_epoch = 0;  // component-split BFS stamp
    // Exact-fill scratch: indexed-heap position/key and the resource's
    // ordinal in the component being filled (heap tie-break and memo
    // bottleneck encoding — component-relative so isomorphic shapes fill
    // identically).
    std::uint32_t fill_pos = kNone;
    double fill_key = 0.0;
    std::uint32_t comp_index = 0;
    /// Index into comps_ of the component this resource was last prepared
    /// (or peeled/merged) into. Valid only when comps_[comp_id].fill ==
    /// fill_epoch — fill epochs are globally unique, so a stale id from an
    /// earlier reallocation can never validate. Lets expansion rounds merge
    /// grown components in place instead of re-running the global BFS.
    std::uint32_t comp_id = kNone;
    /// Active flows whose *applied* bottleneck is this resource — lets
    /// boundary validation skip resources nobody's rate depends on.
    std::uint32_t bn_count = 0;
    // Per-fill validation aggregates, maintained by fill_prepare (boundary
    // side) and the fills (local side) so validate_boundary no longer
    // needs a usage/max pass over every member list:
    //   usage_b / max_b / min_b — sum/max/min of boundary member rates;
    //   usage_local / max_local — sum/max of freshly filled local rates;
    //   sat_lambda (valid when sat_fill matches the fill epoch) — the level
    //     this resource saturated at, i.e. the rate of every local flow
    //     bottlenecked here.
    double usage_b = 0.0;
    double max_b = 0.0;
    double min_b = 0.0;
    double usage_local = 0.0;
    double max_local = 0.0;
    double sat_lambda = 0.0;
    std::uint64_t sat_fill = 0;
    // Slices of local_arena_/boundary_arena_ holding this resource's
    // members split by side, rebuilt by each fill_prepare.
    std::uint32_t lmem_off = 0, lmem_cnt = 0;
    std::uint32_t bmem_off = 0, bmem_cnt = 0;
  };

  /// Cold per-flow state. The fields the fill/validate inner loops read
  /// per *membership incidence* (current rate, visit/freeze epochs, applied
  /// bottleneck) live in dense slot-indexed vectors instead — one Flow is
  /// ~200 bytes with the std::function, so scanning a member list through
  /// the slab costs a cache miss per member, while the hot vectors pack 8
  /// slots per line.
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    double total = 0.0;
    double remaining = 0.0;  // bytes left as of last_update
    SimTime last_update = 0.0;
    SimTime proj_done = 0.0;  // last_update + remaining / rate
    FlowId id = kInvalidFlow;    // (generation << 32) | slot
    std::uint64_t seq = 0;       // start order: heap ties, trace span ids
    std::uint32_t generation = 1;
    std::function<void(SimTime)> on_complete;
    // Persistent membership: resources crossed, and this flow's position in
    // each resource's member list (for O(1) swap-removal).
    Resource* res[5] = {};
    std::uint32_t pos_in_res[5] = {};
    std::uint32_t res_count = 0;
    bool placed = false;  // membership built (happens at first flush)
    std::uint32_t heap_pos = kNone;  // completion-heap index
    std::uint32_t next_free = kNone;
  };

  /// One connected component of the set being refilled: contiguous slices
  /// of split_flows_/split_res_ in canonical (BFS-from-first-flow) order.
  struct CompSpan {
    std::uint32_t flow_off = 0, flow_cnt = 0;
    std::uint32_t res_off = 0, res_cnt = 0;
    std::uint64_t fill = 0;     // fill epoch assigned by fill_prepare
    /// Membership token: equals the split_epoch of every resource in the
    /// span, minted by split_components / merge_expansion (peel pieces
    /// inherit the parent's). A resource's comp_id is believed only when
    /// comps_[comp_id].stamp == r->split_epoch — epochs are globally
    /// unique, so stale ids from earlier rounds or reallocations never
    /// validate. 0 on the round-one pseudo-component, which no merge ever
    /// sees (the first expansion round re-splits it).
    std::uint64_t stamp = 0;
    bool dirty = false;         // gained a flow this round -> must refill
    bool has_pair = false;      // crosses a kPair resource
    bool has_coupling = false;  // crosses a kRackUp/kRackDown resource
    bool hier = false;          // solved by the hierarchical solver
    /// Already prepared: a peeled piece shares its parent's fill epoch and
    /// refreshed resource state, so fill_prepare must not run again.
    bool prepared = false;
    /// Rates final without a fill (the frozen residue of a peel): skipped
    /// by the fill phase but still boundary-validated.
    bool solved = false;
    /// Absorbed into a merged component by an expansion round; the span is
    /// stale and every phase skips it.
    bool dead = false;
  };

  // -- flow slab ----------------------------------------------------------
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Slot for a live id, kNone otherwise — O(1): the id names its slot and
  /// the generation check rejects stale/unknown ids.
  std::uint32_t slot_of(FlowId id) const;
  /// Unwire a flow from its resources (seeding the dirty set), drop it from
  /// the completion heap, and release its slot.
  void remove_flow(std::uint32_t slot);

  // -- membership & components -------------------------------------------
  void build_membership(std::uint32_t slot);
  void rebuild_all_membership();
  /// Charge elapsed virtual time against one flow's remaining bytes.
  void settle(std::uint32_t slot);

  // -- reallocation -------------------------------------------------------
  /// Flow-set changes within one virtual instant are coalesced into a
  /// single rate recomputation via a same-time event.
  void mark_dirty();
  void flush_dirty();
  /// Place pending flows, then recompute exactly the rates the flow-set
  /// change can affect (component split + per-component fill + boundary
  /// expansion, see file comment).
  void reallocate_dirty();
  /// Collect every active flow and every non-empty resource.
  void gather_all_active(std::vector<std::uint32_t>& flows,
                         std::vector<Resource*>& resources);
  /// Settle each flow, adopt its scratch rate/bottleneck, reproject its
  /// completion, and fix up the completion heap.
  void apply_rates(const std::vector<std::uint32_t>& flows);
  /// Split comp_flows_/comp_resources_ into connected components (flows
  /// linked through in-set resources; `mark` 0 means every member is
  /// in-set), writing canonical-order spans into comps_. A component is
  /// dirty when one of its flows carries `fresh_token` in fresh_epoch_.
  void split_components(std::uint64_t mark, std::uint64_t fresh_token);
  /// Expansion-round alternative to re-running split_components: the flows
  /// appended by validate_boundary since `fresh_begin` (the new local
  /// flows) are unioned with the existing components their resources
  /// belong to — components are BFS closures, so a merged component is the
  /// union of the absorbed spans, the fresh flows and their brand-new
  /// resources, with no traversal of old member lists. Absorbed components
  /// are marked dead, merged ones appended dirty; untouched components
  /// keep their spans, rates and verdicts.
  void merge_expansion(std::uint64_t mark, std::size_t fresh_begin);
  /// Prepare + memo probe + fill (possibly parallel across components) for
  /// every dirty component in comps_. Fills rates/bottlenecks scratch and
  /// the per-resource aggregates; updates fill/memo/hier counters.
  void fill_dirty_components(std::uint64_t mark);
  /// Check the max-min bottleneck conditions for boundary flows adjacent to
  /// one just-filled component (marked with `mark`); flows whose rates can
  /// no longer be justified are stamped (visit `mark`, fresh
  /// `fresh_token`) and appended to comp_flows_. Runs off the per-resource
  /// aggregates and the boundary arena the fill left behind: each resource
  /// is first gated in O(1) (can any boundary member possibly trigger?)
  /// and only gate failures scan their boundary members.
  void validate_boundary(const CompSpan& comp, std::uint64_t mark,
                         std::uint64_t fresh_token);

  /// Stamp the component with a fresh fill epoch, split each resource's
  /// member list into local/boundary arena slices, and compute residual
  /// capacity (boundary rates subtracted), unfrozen degree and the
  /// boundary-side validation aggregates. Fills the span's kind flags and
  /// returns the epoch. Appends to the round-scoped arenas (cleared by the
  /// caller once per round). `ci` is the component's index in comps_,
  /// recorded on each resource (Resource::comp_id) for expansion-round
  /// merging.
  std::uint64_t fill_prepare(CompSpan& comp, std::uint64_t local_mark,
                             std::uint32_t ci);
  /// Schedule-aware splitting of a prepared uncoupled component: detect
  /// saturation cuts — resources whose exhaust level is margin-strictly
  /// below every other exhaust level within graph distance two — freeze
  /// their flows exactly as the flat fill's pop would, and split the
  /// surviving graph into independent pieces appended to comps_ (sharing
  /// the parent's fill epoch and refreshed resource state). The parent
  /// span becomes the solved residue (frozen flows + exhausted resources),
  /// still boundary-validated. Returns the number of pieces created; 0
  /// means no cut was found and nothing was mutated. Bit-identical to
  /// fill_exact over the unsplit component (see DESIGN.md
  /// §"Saturation-cut splitting"); under cross_check_ the flat fill runs
  /// first and the epilogue of fill_dirty_components compares bitwise.
  std::size_t peel_and_split(std::uint32_t ci, std::uint64_t mark);

  /// Bitwise-compare the verdicts parked by peel_and_split's oracle run
  /// (cross-check builds only) against the peel + piece results; aborts on
  /// the first divergent flow. No-op when no oracle is armed.
  void peel_oracle_compare();
  /// Exact bottleneck elimination over a prepared component; writes
  /// per-slot rates into rates_scratch_ and freeze resources into
  /// bottleneck_scratch_. `heap` is caller-provided scratch so component
  /// fills can run concurrently. Returns the number of filling rounds
  /// (heap pops) — callers account them, serially.
  std::uint64_t fill_exact(const CompSpan& comp,
                           std::vector<Resource*>& heap) const;
  /// Hierarchical island/uplink solver over a prepared component (see
  /// DESIGN.md). Returns false (leaving scratch untouched) when it does
  /// not engage or the fixed point fails to stabilise — the caller falls
  /// back to fill_exact. On success writes the same outputs as fill_exact
  /// and reports pops/iterations/parallel-eligible island rounds through
  /// the out-params. `island_jobs` workers solve the per-rack islands of
  /// one Jacobi round concurrently (islands write disjoint ordinal- and
  /// member-sliced scratch; results are byte-identical for any value);
  /// callers already inside a parallel component dispatch pass 1.
  bool fill_hierarchical(const CompSpan& comp, std::size_t island_jobs,
                         std::uint64_t* pops, std::uint64_t* iters,
                         std::uint64_t* par_rounds) const;
  /// The pre-optimization progressive lazy-heap water filling, kept as the
  /// independent oracle behind set_cross_check / the property tests.
  void water_fill_progressive(const std::vector<std::uint32_t>& comp_flows,
                              const std::vector<Resource*>& comp_resources,
                              std::uint64_t local_mark = 0);
  double resource_capacity(const Resource& r) const;

  // -- exact-fill indexed resource heap -----------------------------------
  /// Ties break on the component-relative ordinal (not the global id) so
  /// the fill is a pure function of the component *shape* — the property
  /// the shape-level memo replays rely on.
  static bool res_heap_less(const Resource* a, const Resource* b) {
    if (a->fill_key != b->fill_key) return a->fill_key < b->fill_key;
    return a->comp_index < b->comp_index;
  }
  static void res_heap_sift_up(std::vector<Resource*>& heap,
                               std::uint32_t pos);
  static void res_heap_sift_down(std::vector<Resource*>& heap,
                                 std::uint32_t pos);
  static void res_heap_remove(std::vector<Resource*>& heap, Resource* r);

  // -- fill memoization ----------------------------------------------------
  struct MemoEntry {
    std::vector<std::uint64_t> key;
    std::vector<double> rates;               // comp flows, discovery order
    std::vector<std::uint32_t> bottlenecks;  // comp resource ordinals
    /// Validation aggregates per comp resource, replayed on a hit so
    /// validate_boundary sees exactly what a fresh fill would have left:
    /// (usage_local, max_local, sat_lambda); sat_lambda is NaN when the
    /// resource drained without saturating.
    std::vector<double> res_aggregates;
    std::uint64_t hash = 0;
    bool hier = false;  // produced by the hierarchical solver
  };
  /// Fingerprint the prepared component's canonical shape into `key`;
  /// returns its 64-bit hash. The key names no absolute node or resource
  /// ids — resources appear as (kind, degree, residual bits) in component
  /// order and flows as the ordinals of the resources they cross — so
  /// translated copies of one shape (the same pipeline step on different
  /// node pairs) produce the same key.
  std::uint64_t memo_fingerprint(const CompSpan& comp,
                                 std::vector<std::uint64_t>& key) const;
  MemoEntry* memo_find(std::uint64_t hash,
                       const std::vector<std::uint64_t>& key);
  void memo_store(std::uint64_t hash, std::vector<std::uint64_t>&& key,
                  const CompSpan& comp);
  void memo_clear();
  /// Apply the deterministic auto-off policy after a probation window of
  /// misses with almost no hits.
  void memo_update_probation();

  /// Progressive-oracle heap entry: (estimated exhaust level, stable id).
  struct FillEntry {
    double lambda_est;
    std::uint32_t id;
    Resource* resource;
  };

  // -- completion tracking ------------------------------------------------
  bool heap_less(std::uint32_t a, std::uint32_t b) const;
  void heap_sift_up(std::uint32_t pos);
  void heap_sift_down(std::uint32_t pos);
  void heap_push(std::uint32_t slot);
  void heap_update(std::uint32_t slot);
  void heap_remove(std::uint32_t slot);
  void schedule_next_completion();
  void on_next_completion();

  Simulator& sim_;
  Topology& topology_;

  std::vector<Flow> slab_;
  // Hot per-flow state in dense slot-indexed vectors (see Flow comment):
  // sized in lockstep with slab_ by alloc_slot.
  std::vector<double> rate_;              // current applied rate
  std::vector<std::uint64_t> visit_epoch_;
  mutable std::vector<std::uint64_t> freeze_epoch_;
  std::vector<std::uint64_t> fresh_epoch_;  // joined the set this round
  std::vector<Resource*> bn_applied_;     // applied max-min bottleneck
  std::uint32_t free_head_ = kNone;
  std::size_t active_count_ = 0;
  std::uint64_t next_seq_ = 1;

  std::vector<Resource> tx_, rx_, rack_up_, rack_down_;
  std::unordered_map<std::uint64_t, Resource> pair_res_;
  std::uint32_t pair_seq_ = 0;
  std::uint32_t pair_id_base_ = 0;

  std::vector<std::uint32_t> pending_new_;   // started, membership unbuilt
  std::vector<Resource*> dirty_seeds_;       // membership changed here
  bool dirty_ = false;
  EventId dirty_event_ = kInvalidEvent;
  bool recompute_all_ = false;
  std::uint64_t topo_version_ = 0;

  std::vector<std::uint32_t> completion_heap_;  // slab indices by proj_done
  EventId pending_event_ = kInvalidEvent;
  SimTime pending_time_ = 0.0;

  std::uint64_t epoch_ = 0;  // shared visit/fill epoch counter
  std::vector<std::uint32_t> comp_flows_;
  std::vector<Resource*> comp_resources_;
  mutable std::vector<double> rates_scratch_;
  mutable std::vector<Resource*> bottleneck_scratch_;
  std::vector<Resource*> res_heap_;      // serial-path fill scratch
  std::vector<FillEntry> fill_heap_;     // progressive oracle (lazy)
  // Component split output: flows/resources grouped per component in
  // canonical order, sliced by comps_.
  std::vector<std::uint32_t> split_flows_;
  std::vector<Resource*> split_res_;
  std::vector<CompSpan> comps_;
  // Round-scoped miss queue for the (possibly parallel) fill phase.
  std::vector<std::uint32_t> miss_comps_;       // indices into comps_
  std::vector<std::uint64_t> miss_pops_;        // per-miss filling rounds
  std::vector<std::uint64_t> miss_iters_;       // per-miss hier iterations
  std::vector<std::uint8_t> miss_fb_;           // per-miss hier fallback flag
  std::vector<std::uint64_t> miss_par_;         // per-miss eligible isl rounds
  std::vector<std::vector<std::uint64_t>> miss_keys_;  // per-miss memo keys
  std::vector<std::uint64_t> miss_hashes_;
  // Round-scoped memo probe queue: fingerprints of probe candidates are
  // computed (possibly in parallel — the fingerprint is a pure function of
  // the prepared component) before the serial probe/replay pass, so memo
  // hits never wait on worker handoff.
  std::vector<std::uint32_t> probe_comps_;      // indices into comps_
  std::vector<std::uint64_t> probe_hashes_;
  std::vector<std::vector<std::uint64_t>> probe_keys_;
  // Per-worker fill-heap scratch for the parallel miss dispatch (reused
  // across the items each worker claims instead of allocating per item).
  std::vector<std::vector<Resource*>> worker_heaps_;
  // Saturation-cut peel scratch (see peel_and_split). Indexed by
  // component-local flow index / resource ordinal; the slot-indexed pair
  // grows with the slab and is epoch-stamped.
  std::vector<double> cut_s1_, cut_s2_;         // per flow: two lowest keys
  std::vector<std::uint32_t> cut_o1_;           // per flow: owner of s1
  std::vector<double> cut_nb1_;                 // per res: distance-1 min
  std::vector<double> cut_e1_, cut_e2_;         // per res: two lowest s1
  std::vector<std::uint32_t> cut_eo1_;          //   contributions, distinct
  std::vector<double> cut_key_;                 // per res: exhaust level
  std::vector<std::uint32_t> cut_list_;         // cut ordinals this round
  std::vector<std::uint32_t> piece_of_res_;     // per res: piece id / kNone
  std::vector<std::uint64_t> piece_flow_stamp_;  // slot-indexed BFS stamp
  std::vector<std::uint32_t> piece_of_slot_;     // slot-indexed piece id
  std::vector<std::uint32_t> part_flows_;        // partition scratch
  std::vector<std::uint32_t> part_res_;  // permuted span positions
  // Byte-equality oracle under cross_check_: the flat fill of a component
  // about to be peeled, compared bitwise against the peel+piece results in
  // the round epilogue.
  std::vector<std::uint32_t> oracle_slots_;
  std::vector<double> oracle_rates_;
  std::vector<Resource*> oracle_bns_;
  // Per-fill member split (slices per resource via lmem_off/bmem_off):
  // the fill freeze loops walk exactly the local members and
  // validate_boundary exactly the boundary members, instead of filtering
  // full member lists by epoch on every visit.
  std::vector<std::uint32_t> local_arena_;
  std::vector<std::uint32_t> boundary_arena_;

  /// Ring of cached fills with a hash index. Replacement is round-robin
  /// (deterministic FIFO): a steady-state pipeline cycles through a small
  /// set of component shapes, so the working set is tiny and recency gives
  /// no extra signal worth the bookkeeping. When a workload keeps missing
  /// (shapes or boundary residuals never repeat), the cache
  /// deterministically disables itself — see memo_update_probation — so
  /// non-repeating runs stop paying the fingerprint.
  std::vector<MemoEntry> memo_entries_;
  std::unordered_map<std::uint64_t, std::uint32_t> memo_index_;
  std::size_t memo_cursor_ = 0;
  bool memoize_ = true;
  bool memo_auto_off_ = false;
  /// Counter values at the last (re-)arming: the auto-off policy judges the
  /// hit rate of the current probation window, not the process lifetime.
  std::uint64_t memo_hit_mark_ = 0;
  std::uint64_t memo_miss_mark_ = 0;
  std::size_t memo_min_flows_ = 8;
  static constexpr std::size_t kMemoCapacity = 1024;
  /// Auto-disable policy: after this many misses with a hit rate below
  /// 1/kMemoMinHitRatio, stop fingerprinting (re-armed by set_memoize).
  static constexpr std::uint64_t kMemoProbation = 4096;
  static constexpr std::uint64_t kMemoMinHitRatio = 16;

  std::size_t fill_jobs_ = 1;
  /// Parallel dispatch is worth a thread wake only for big rounds: misses
  /// totalling fewer local flows than this fill inline even when
  /// fill_jobs_ > 1 (identical results either way — the gate is
  /// deterministic).
  static constexpr std::size_t kParallelMinFlows = 512;
  /// Local sets smaller than this skip the component BFS and fill as one
  /// pseudo-component (the pre-split behaviour — a single bottleneck
  /// elimination handles a disconnected span correctly). Everything the
  /// split enables (dirty-component skip, hierarchical solve, parallel
  /// dispatch) only engages on large sets, so splitting tiny steady-state
  /// rounds is pure BFS overhead (~20% of fig8 wall when measured).
  static constexpr std::size_t kSplitMinFlows = 64;

  bool hierarchical_ = true;
  std::size_t hier_min_flows_ = 64;
  /// Saturation-cut splitting engages on uncoupled components at least
  /// this large; the cut-detection passes cost O(incidences) per fill, so
  /// small components (already cheap, and where cuts buy nothing) skip
  /// them. Tests lower it via set_cut_min_flows.
  static constexpr std::size_t kCutMinFlows = 512;
  std::size_t cut_min_flows_ = kCutMinFlows;
  /// A resource is a cut only when its exhaust level is below every other
  /// level within distance two by this *relative* margin. The margin is
  /// what makes the peel bit-identical to the flat fill: it dominates FP
  /// drift (~1e-14) by five orders, so exact-arithmetic strictness
  /// survives rounding, cuts sit >= distance 3 apart, and every refresh a
  /// piece fill performs happens at a level strictly above the peel's.
  static constexpr double kCutMargin = 1e-9;
  /// Island solves of one hierarchical round dispatch in parallel (and
  /// count as island_par_rounds) when the round has at least two islands
  /// and this many island members.
  static constexpr std::size_t kIslandParMinMembers = 512;
  /// Fixed-point bound: iterations to stabilise before falling back to the
  /// flat fill. The level count is bounded by the number of distinct
  /// bottleneck levels, a handful in practice.
  static constexpr std::size_t kHierMaxIters = 64;
  /// Advertised levels are declared stable at this relative tolerance —
  /// far below the 1e-9 correctness tolerance, just above FP noise.
  static constexpr double kHierTol = 1e-13;

  /// Local-set growth rounds before giving up and recomputing the whole
  /// affected connected component from scratch. The bound must cover the
  /// *decelerating* tail of real expansions: on the fig8 pipeline points the
  /// affected set grows fast for a few rounds and then creeps toward its
  /// fixed point by a handful of flows per round (e.g. 12, 58, 134, 205,
  /// 217, 220, ... +3), so a small cap truncates runs that were one or two
  /// rounds from converging and forces a full-component recompute of
  /// thousands of flows instead of a ~250-flow local refill. At 4096 nodes
  /// a cap of 6 sent every large expansion to the fallback (75% of all
  /// refilled flow work); 32 eliminates fallbacks entirely and roughly
  /// halves wall time. Correctness does not depend on where the cap lands:
  /// both the converged local set and the fallback recompute produce the
  /// unique max-min allocation of the affected components (validate_boundary
  /// re-checks every boundary resource each round), so the cap only trades
  /// work, not results.
  static constexpr int kMaxExpandRounds = 32;
  /// Relative tolerance for boundary-violation checks. Deliberately much
  /// tighter than the 1e-9 cross-check tolerance: any real rate change
  /// larger than this triggers a proper refill, so the error left behind by
  /// suppressed sub-tolerance changes stays far below what the cross-check
  /// (and the property tests) can see. FP noise sits near 1e-16, four
  /// orders below, so spurious expansions don't happen either.
  static constexpr double kExpandTol = 1e-12;

  double bytes_completed_ = 0.0;
  Counters counters_;
#ifdef NDEBUG
  bool cross_check_ = false;
#else
  bool cross_check_ = true;
#endif
};

}  // namespace rdmc::sim
