// Flow-level network model with max-min fair bandwidth sharing.
//
// Each in-flight unicast transfer is a fluid flow. Whenever the set of
// active flows changes, rates are re-allocated by progressive filling
// (water-filling): all flows grow at the same rate until a resource
// saturates, the flows crossing it freeze at their fair share, and the rest
// keep growing. This is the standard fluid approximation of the fair
// sharing that RDMA hardware (and DCQCN/TIMELY) provides — the property the
// paper leans on in §3 item 5 and exercises in Figs 9-10.
//
// Resources: per-node NIC tx and rx ports, per-rack uplink/downlink, and
// optional per-directed-pair caps (slow links, §4.5 item 2).
//
// Scaling design (the simulator is our hardware, so this is the hot loop):
//   * resource→flow membership is maintained persistently — a flow is wired
//     into its resources once at start and unwired at finish, instead of the
//     whole table being rebuilt on every reallocation;
//   * a flow-set change refills only the flows on the changed resources,
//     holding every neighbouring flow at its current rate. The max-min
//     allocation is the unique feasible allocation in which every flow has a
//     bottleneck (a saturated resource where its rate is maximal), so after
//     the local fill those conditions are checked on the boundary; a
//     neighbour that violates them joins the local set and the fill repeats.
//     In lock-step schedules the affected set is tiny even when the
//     connected component spans every active flow, turning O(F log F) per
//     change into O(k log k) for k ≈ the flows whose rates actually change.
//     If expansion fails to settle quickly the code falls back to a full
//     recomputation of the affected connected component;
//   * flow progress uses virtual-work accounting: each flow carries a
//     last-update timestamp and is only settled when its rate changes, so
//     there is no all-flows scan per event;
//   * projected completion times live in an indexed min-heap, replacing the
//     O(F) next-completion scan;
//   * in assert-enabled builds (or via set_cross_check) every incremental
//     recomputation is validated against a from-scratch full water-filling.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rdmc::sim {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  FlowNetwork(Simulator& sim, Topology& topology);

  /// Begin transferring `bytes` from src to dst. `on_complete` fires (in
  /// virtual time) when the last byte leaves the source; the caller adds
  /// propagation latency for receive-side events. Zero-byte flows are
  /// treated as one byte so every flow takes non-zero time.
  FlowId start_flow(NodeId src, NodeId dst, double bytes,
                    std::function<void(SimTime)> on_complete);

  /// Abort an in-flight flow (failure injection); its callback never fires.
  /// No-op for unknown/finished ids.
  void abort_flow(FlowId id);

  /// Apply a topology capacity mutation (set_pair_cap / set_node_nic) at
  /// the current virtual instant. Without this, a mid-run mutation only
  /// takes effect at the next flow start/finish — fine for degradations
  /// injected before the run, wrong for failure injection at time t.
  void topology_changed() { mark_dirty(); }

  std::size_t active_flows() const { return id_to_slot_.size(); }

  /// Current fair-share rate of a flow in bytes/sec (0 if unknown).
  double flow_rate(FlowId id) const;

  /// Total payload bytes fully delivered since construction.
  double bytes_completed() const { return bytes_completed_; }

  /// Profiling counters for perf tracking (BENCH_core.json).
  struct Counters {
    std::uint64_t reallocations = 0;   // rate recomputations (any scope)
    std::uint64_t filling_rounds = 0;  // water-filling heap pops
    std::uint64_t flows_touched = 0;   // sum of recomputed set sizes
    std::uint64_t max_component = 0;   // largest single recompute
    std::uint64_t expand_rounds = 0;   // local-set growth iterations
    std::uint64_t full_recomputes = 0; // fills that covered every flow
    std::uint64_t flow_starts = 0;
    std::uint64_t flow_completions = 0;
    std::uint64_t flow_aborts = 0;
    std::uint64_t cross_checks = 0;    // debug full-recompute validations
  };
  const Counters& counters() const { return counters_; }
  std::uint64_t reallocations() const { return counters_.reallocations; }
  std::uint64_t filling_rounds() const { return counters_.filling_rounds; }

  /// When enabled, every incremental recomputation is cross-checked against
  /// a from-scratch full water-filling and aborts on divergence. Defaults
  /// to on in assert-enabled builds, off in NDEBUG builds.
  void set_cross_check(bool on) { cross_check_ = on; }

  /// Recompute every rate from scratch (ignoring the incremental state) and
  /// compare with the incrementally maintained rates. True when every flow
  /// matches within `rel_tol` relative tolerance.
  bool rates_match_full_recompute(double rel_tol = 1e-9);

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// One capacity constraint. Lives for the whole simulation; `members`
  /// is the persistently maintained set of active flows crossing it.
  /// `rem`/`last_lambda`/`live` are per-water-filling scratch implementing
  /// lazy water-level accounting: the capacity remaining at global fill
  /// level lambda is rem - (lambda - last_lambda) * live.
  struct Resource {
    enum class Kind : std::uint8_t { kTx, kRx, kRackUp, kRackDown, kPair };
    Kind kind = Kind::kTx;
    std::uint32_t index = 0;  // node, rack, or pair ordinal
    std::uint32_t id = 0;     // heap tie-break; disjoint range per class
    std::uint64_t pair_key = 0;
    std::vector<std::uint32_t> members;  // slab indices of crossing flows

    double cap = 0.0;
    double rem = 0.0;
    double last_lambda = 0.0;
    std::uint32_t live = 0;
    std::uint64_t fill_epoch = 0;
    std::uint64_t visit_epoch = 0;
  };

  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    double total = 0.0;
    double remaining = 0.0;  // bytes left as of last_update
    double rate = 0.0;
    SimTime last_update = 0.0;
    SimTime proj_done = 0.0;  // last_update + remaining / rate
    FlowId id = kInvalidFlow;
    /// The saturated resource this flow was frozen at in the last fill that
    /// touched it — its max-min bottleneck. Lets the incremental pass decide
    /// in O(1) whether an untouched neighbour's rate is still justified.
    Resource* bottleneck = nullptr;
    std::function<void(SimTime)> on_complete;
    // Persistent membership: resources crossed, and this flow's position in
    // each resource's member list (for O(1) swap-removal).
    Resource* res[5] = {};
    std::uint32_t pos_in_res[5] = {};
    std::uint32_t res_count = 0;
    bool placed = false;  // membership built (happens at first flush)
    std::uint32_t heap_pos = kNone;  // completion-heap index
    std::uint32_t next_free = kNone;
    // Water-filling / component-BFS scratch (epoch-stamped).
    std::uint64_t freeze_epoch = 0;
    std::uint64_t visit_epoch = 0;
  };

  // -- flow slab ----------------------------------------------------------
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Unwire a flow from its resources (seeding the dirty set), drop it from
  /// the completion heap, and release its slot.
  void remove_flow(std::uint32_t slot);

  // -- membership & components -------------------------------------------
  void build_membership(std::uint32_t slot);
  void rebuild_all_membership();
  /// Charge elapsed virtual time against one flow's remaining bytes.
  void settle(Flow& flow);

  // -- reallocation -------------------------------------------------------
  /// Flow-set changes within one virtual instant are coalesced into a
  /// single rate recomputation via a same-time event.
  void mark_dirty();
  void flush_dirty();
  /// Place pending flows, then recompute exactly the rates the flow-set
  /// change can affect (local fill + boundary expansion, see file comment).
  void reallocate_dirty();
  /// Collect every active flow and every non-empty resource.
  void gather_all_active(std::vector<std::uint32_t>& flows,
                         std::vector<Resource*>& resources);
  /// Settle each flow, adopt its scratch rate/bottleneck, reproject its
  /// completion, and fix up the completion heap.
  void apply_rates(const std::vector<std::uint32_t>& flows);
  /// Check the max-min bottleneck conditions for boundary flows adjacent to
  /// the just-filled local set (marked with `mark`); flows whose rates can
  /// no longer be justified are stamped and appended to comp_flows_.
  void validate_boundary(std::uint64_t mark);
  /// Progressive filling over the given flows/resources; writes per-slot
  /// rates into rates_scratch_ and freeze resources into bottleneck_scratch_.
  /// Counts filling rounds only when `count`. When `local_mark` is nonzero,
  /// only flows stamped with it participate; other members are boundary
  /// flows whose current rates are subtracted from capacity up front.
  void water_fill(const std::vector<std::uint32_t>& comp_flows,
                  const std::vector<Resource*>& comp_resources, bool count,
                  std::uint64_t local_mark = 0);
  double resource_capacity(const Resource& r) const;

  /// Water-filling heap entry: (estimated exhaust level, stable id).
  struct FillEntry {
    double lambda_est;
    std::uint32_t id;
    Resource* resource;
  };

  // -- completion tracking ------------------------------------------------
  bool heap_less(std::uint32_t a, std::uint32_t b) const;
  void heap_sift_up(std::uint32_t pos);
  void heap_sift_down(std::uint32_t pos);
  void heap_push(std::uint32_t slot);
  void heap_update(std::uint32_t slot);
  void heap_remove(std::uint32_t slot);
  void schedule_next_completion();
  void on_next_completion();

  Simulator& sim_;
  Topology& topology_;

  std::vector<Flow> slab_;
  std::uint32_t free_head_ = kNone;
  std::unordered_map<FlowId, std::uint32_t> id_to_slot_;
  FlowId next_id_ = 1;

  std::vector<Resource> tx_, rx_, rack_up_, rack_down_;
  std::unordered_map<std::uint64_t, Resource> pair_res_;
  std::uint32_t pair_seq_ = 0;
  std::uint32_t pair_id_base_ = 0;

  std::vector<std::uint32_t> pending_new_;   // started, membership unbuilt
  std::vector<Resource*> dirty_seeds_;       // membership changed here
  bool dirty_ = false;
  EventId dirty_event_ = kInvalidEvent;
  bool recompute_all_ = false;
  std::uint64_t topo_version_ = 0;

  std::vector<std::uint32_t> completion_heap_;  // slab indices by proj_done
  EventId pending_event_ = kInvalidEvent;
  SimTime pending_time_ = 0.0;

  std::uint64_t epoch_ = 0;  // shared visit/fill epoch counter
  std::vector<std::uint32_t> comp_flows_;
  std::vector<Resource*> comp_resources_;
  std::vector<double> rates_scratch_;
  std::vector<Resource*> bottleneck_scratch_;
  std::vector<FillEntry> fill_heap_;

  /// Local-set growth rounds before giving up and recomputing the whole
  /// connected component from scratch.
  static constexpr int kMaxExpandRounds = 6;
  /// Relative tolerance for boundary-violation checks. Deliberately much
  /// tighter than the 1e-9 cross-check tolerance: any real rate change
  /// larger than this triggers a proper refill, so the error left behind by
  /// suppressed sub-tolerance changes stays far below what the cross-check
  /// (and the property tests) can see. FP noise sits near 1e-16, four
  /// orders below, so spurious expansions don't happen either.
  static constexpr double kExpandTol = 1e-12;

  double bytes_completed_ = 0.0;
  Counters counters_;
#ifdef NDEBUG
  bool cross_check_ = false;
#else
  bool cross_check_ = true;
#endif
};

}  // namespace rdmc::sim
