// Flow-level network model with max-min fair bandwidth sharing.
//
// Each in-flight unicast transfer is a fluid flow. Whenever the set of
// active flows changes, rates are re-allocated to the max-min fair
// allocation — the standard fluid approximation of the fair sharing that
// RDMA hardware (and DCQCN/TIMELY) provides, the property the paper leans
// on in §3 item 5 and exercises in Figs 9-10.
//
// Resources: per-node NIC tx and rx ports, per-rack uplink/downlink, and
// optional per-directed-pair caps (slow links, §4.5 item 2).
//
// Scaling design (the simulator is our hardware, so this is the hot loop):
//   * resource→flow membership is maintained persistently — a flow is wired
//     into its resources once at start and unwired at finish, instead of the
//     whole table being rebuilt on every reallocation;
//   * a flow-set change refills only the flows on the changed resources,
//     holding every neighbouring flow at its current rate. The max-min
//     allocation is the unique feasible allocation in which every flow has a
//     bottleneck (a saturated resource where its rate is maximal), so after
//     the local fill those conditions are checked on the boundary; a
//     neighbour that violates them joins the local set and the fill repeats.
//     In lock-step schedules the affected set is tiny even when the
//     connected component spans every active flow, turning O(F log F) per
//     change into O(k log k) for k ≈ the flows whose rates actually change.
//     If expansion fails to settle quickly the code falls back to a full
//     recomputation of the affected connected component;
//   * each fill runs the *exact bottleneck-elimination* algorithm: every
//     resource sits in an indexed min-heap keyed by its saturation level
//     (residual capacity / unfrozen degree); the minimum pops, its flows
//     freeze at the fair share, and each neighbouring resource's residual
//     capacity and degree are decremented in place (one sift per incidence,
//     no stale entries). A fill costs O((F + R) log R) and the number of
//     heap pops equals the number of saturating resources — not, as in the
//     earlier progressive lazy-heap filling, the number of membership
//     updates (which made fig10-class fills ~30x more expensive);
//   * steady-state fills are memoized: pipelined schedules (binomial
//     pipeline, chain) re-create the same component over and over, one
//     block step after another. Each fill's input is fingerprinted —
//     component flows as (src, dst) pairs, resources as (id, residual
//     capacity, unfrozen degree), all in discovery order, plus the topology
//     version — and the resulting rate/bottleneck vector is cached in a
//     hash-indexed exact-key ring. A hit replays the vector in O(F) and
//     skips the heap entirely; the cache is dropped on topology mutations
//     (including fault-injection degrades), tiny components bypass it, and
//     a workload whose fingerprints never repeat deterministically disables
//     the cache so it stops paying for fingerprinting;
//   * the incidence-bound loops (residual-capacity prepare, freeze
//     propagation, boundary validation) read current rate, visit/freeze
//     epoch and applied bottleneck from dense slot-indexed vectors rather
//     than the ~200-byte Flow records, each fill splits every resource's
//     member list into local/boundary arenas once so no loop re-filters by
//     epoch, and boundary validation runs off per-resource aggregates
//     (boundary usage/max/min, local usage/max, saturation level)
//     maintained by the fill itself — a resource whose aggregates prove no
//     boundary member can violate the bottleneck conditions is skipped in
//     O(1) without touching its members;
//   * flow progress uses virtual-work accounting: each flow carries a
//     last-update timestamp and is only settled when its rate changes, so
//     there is no all-flows scan per event;
//   * projected completion times live in an indexed min-heap, replacing the
//     O(F) next-completion scan; FlowId encodes (generation, slab slot), so
//     id→flow lookups (flow_rate, abort_flow) are O(1) bit math with a
//     liveness check instead of a hash probe;
//   * in assert-enabled builds (or via set_cross_check) every incremental
//     recomputation is validated against a from-scratch full water-filling
//     by the *old progressive* algorithm, which is kept, unoptimized, as
//     the independent oracle; memo hits are additionally replayed against a
//     fresh exact fill and must match bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rdmc::sim {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  FlowNetwork(Simulator& sim, Topology& topology);

  /// Begin transferring `bytes` from src to dst. `on_complete` fires (in
  /// virtual time) when the last byte leaves the source; the caller adds
  /// propagation latency for receive-side events. Zero-byte flows are
  /// treated as one byte so every flow takes non-zero time.
  FlowId start_flow(NodeId src, NodeId dst, double bytes,
                    std::function<void(SimTime)> on_complete);

  /// Abort an in-flight flow (failure injection); its callback never fires.
  /// No-op for unknown/finished ids.
  void abort_flow(FlowId id);

  /// Apply a topology capacity mutation (set_pair_cap / set_node_nic) at
  /// the current virtual instant. Without this, a mid-run mutation only
  /// takes effect at the next flow start/finish — fine for degradations
  /// injected before the run, wrong for failure injection at time t.
  void topology_changed() { mark_dirty(); }

  std::size_t active_flows() const { return active_count_; }

  /// Current fair-share rate of a flow in bytes/sec (0 if unknown).
  double flow_rate(FlowId id) const;

  /// Total payload bytes fully delivered since construction.
  double bytes_completed() const { return bytes_completed_; }

  /// Profiling counters for perf tracking (BENCH_core.json).
  struct Counters {
    std::uint64_t reallocations = 0;   // rate recomputations (any scope)
    std::uint64_t filling_rounds = 0;  // bottleneck saturations (heap pops)
    std::uint64_t flows_touched = 0;   // sum of recomputed set sizes
    std::uint64_t max_component = 0;   // largest single recompute
    std::uint64_t expand_rounds = 0;   // local-set growth iterations
    std::uint64_t full_recomputes = 0; // fills that covered every flow
    std::uint64_t flow_starts = 0;
    std::uint64_t flow_completions = 0;
    std::uint64_t flow_aborts = 0;
    std::uint64_t cross_checks = 0;    // debug full-recompute validations
    std::uint64_t memo_hits = 0;       // fills answered from the LRU
    std::uint64_t memo_misses = 0;     // memo-eligible fills computed fresh
  };
  const Counters& counters() const { return counters_; }
  std::uint64_t reallocations() const { return counters_.reallocations; }
  std::uint64_t filling_rounds() const { return counters_.filling_rounds; }

  /// When enabled, every incremental recomputation is cross-checked against
  /// a from-scratch full water-filling by the progressive (oracle)
  /// algorithm, and every memo hit against a fresh exact fill; divergence
  /// aborts. Defaults to on in assert-enabled builds, off in NDEBUG builds.
  void set_cross_check(bool on) { cross_check_ = on; }

  /// Steady-state fill memoization (default on). Components smaller than
  /// `min_flows` bypass the cache — fingerprinting a two-flow fill costs
  /// more than filling it. Also re-arms the deterministic auto-disable
  /// (a workload whose fingerprints never repeat stops paying for them).
  void set_memoize(bool on) {
    memoize_ = on;
    memo_auto_off_ = false;
    memo_hit_mark_ = counters_.memo_hits;
    memo_miss_mark_ = counters_.memo_misses;
  }
  void set_memo_min_flows(std::size_t min_flows) {
    memo_min_flows_ = min_flows;
  }

  /// Recompute every rate from scratch (ignoring the incremental state) and
  /// compare with the incrementally maintained rates. True when every flow
  /// matches within `rel_tol` relative tolerance. `use_exact_fill` selects
  /// the production bottleneck-elimination algorithm for the recompute;
  /// the default runs the independent progressive oracle.
  bool rates_match_full_recompute(double rel_tol = 1e-9,
                                  bool use_exact_fill = false);

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

 private:
  static constexpr std::uint32_t kNone = 0xFFFFFFFFu;

  /// One capacity constraint. Lives for the whole simulation; `members`
  /// is the persistently maintained set of active flows crossing it.
  /// `rem`/`last_lambda`/`live` are per-fill scratch implementing lazy
  /// water-level accounting: the capacity remaining at global fill level
  /// lambda is rem - (lambda - last_lambda) * live.
  struct Resource {
    enum class Kind : std::uint8_t { kTx, kRx, kRackUp, kRackDown, kPair };
    Kind kind = Kind::kTx;
    std::uint32_t index = 0;  // node, rack, or pair ordinal
    std::uint32_t id = 0;     // heap tie-break; disjoint range per class
    std::uint64_t pair_key = 0;
    std::vector<std::uint32_t> members;  // slab indices of crossing flows

    double cap = 0.0;
    double rem = 0.0;
    double last_lambda = 0.0;
    std::uint32_t live = 0;
    std::uint64_t fill_epoch = 0;
    std::uint64_t visit_epoch = 0;
    // Exact-fill scratch: indexed-heap position/key and the resource's
    // ordinal in the component being filled (memo bottleneck encoding).
    std::uint32_t fill_pos = kNone;
    double fill_key = 0.0;
    std::uint32_t comp_index = 0;
    /// Active flows whose *applied* bottleneck is this resource — lets
    /// boundary validation skip resources nobody's rate depends on.
    std::uint32_t bn_count = 0;
    // Per-fill validation aggregates, maintained by fill_prepare (boundary
    // side) and fill_exact (local side) so validate_boundary no longer
    // needs a usage/max pass over every member list:
    //   usage_b / max_b / min_b — sum/max/min of boundary member rates;
    //   usage_local / max_local — sum/max of freshly filled local rates;
    //   sat_lambda (valid when sat_fill matches the fill epoch) — the level
    //     this resource saturated at, i.e. the rate of every local flow
    //     bottlenecked here.
    double usage_b = 0.0;
    double max_b = 0.0;
    double min_b = 0.0;
    double usage_local = 0.0;
    double max_local = 0.0;
    double sat_lambda = 0.0;
    std::uint64_t sat_fill = 0;
    // Slices of local_arena_/boundary_arena_ holding this resource's
    // members split by side, rebuilt by each fill_prepare.
    std::uint32_t lmem_off = 0, lmem_cnt = 0;
    std::uint32_t bmem_off = 0, bmem_cnt = 0;
  };

  /// Cold per-flow state. The fields the fill/validate inner loops read
  /// per *membership incidence* (current rate, visit/freeze epochs, applied
  /// bottleneck) live in dense slot-indexed vectors instead — one Flow is
  /// ~200 bytes with the std::function, so scanning a member list through
  /// the slab costs a cache miss per member, while the hot vectors pack 8
  /// slots per line.
  struct Flow {
    NodeId src = 0;
    NodeId dst = 0;
    double total = 0.0;
    double remaining = 0.0;  // bytes left as of last_update
    SimTime last_update = 0.0;
    SimTime proj_done = 0.0;  // last_update + remaining / rate
    FlowId id = kInvalidFlow;    // (generation << 32) | slot
    std::uint64_t seq = 0;       // start order: heap ties, trace span ids
    std::uint32_t generation = 1;
    std::function<void(SimTime)> on_complete;
    // Persistent membership: resources crossed, and this flow's position in
    // each resource's member list (for O(1) swap-removal).
    Resource* res[5] = {};
    std::uint32_t pos_in_res[5] = {};
    std::uint32_t res_count = 0;
    bool placed = false;  // membership built (happens at first flush)
    std::uint32_t heap_pos = kNone;  // completion-heap index
    std::uint32_t next_free = kNone;
  };

  // -- flow slab ----------------------------------------------------------
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);
  /// Slot for a live id, kNone otherwise — O(1): the id names its slot and
  /// the generation check rejects stale/unknown ids.
  std::uint32_t slot_of(FlowId id) const;
  /// Unwire a flow from its resources (seeding the dirty set), drop it from
  /// the completion heap, and release its slot.
  void remove_flow(std::uint32_t slot);

  // -- membership & components -------------------------------------------
  void build_membership(std::uint32_t slot);
  void rebuild_all_membership();
  /// Charge elapsed virtual time against one flow's remaining bytes.
  void settle(std::uint32_t slot);

  // -- reallocation -------------------------------------------------------
  /// Flow-set changes within one virtual instant are coalesced into a
  /// single rate recomputation via a same-time event.
  void mark_dirty();
  void flush_dirty();
  /// Place pending flows, then recompute exactly the rates the flow-set
  /// change can affect (local fill + boundary expansion, see file comment).
  void reallocate_dirty();
  /// Collect every active flow and every non-empty resource.
  void gather_all_active(std::vector<std::uint32_t>& flows,
                         std::vector<Resource*>& resources);
  /// Settle each flow, adopt its scratch rate/bottleneck, reproject its
  /// completion, and fix up the completion heap.
  void apply_rates(const std::vector<std::uint32_t>& flows);
  /// Check the max-min bottleneck conditions for boundary flows adjacent to
  /// the just-filled local set (marked with `mark`, filled under epoch
  /// `fill`); flows whose rates can no longer be justified are stamped and
  /// appended to comp_flows_. Runs off the per-resource aggregates and the
  /// boundary arena the fill left behind: each resource is first gated in
  /// O(1) (can any boundary member possibly trigger?) and only gate
  /// failures scan their boundary members.
  void validate_boundary(std::uint64_t mark, std::uint64_t fill);

  /// Stamp the component with a fresh fill epoch and compute each
  /// resource's residual capacity (boundary rates subtracted when
  /// `local_mark` is nonzero) and unfrozen degree. Returns the epoch.
  std::uint64_t fill_prepare(const std::vector<std::uint32_t>& comp_flows,
                             const std::vector<Resource*>& comp_resources,
                             std::uint64_t local_mark);
  /// Exact bottleneck elimination over a prepared component; writes
  /// per-slot rates into rates_scratch_ and freeze resources into
  /// bottleneck_scratch_. Counts filling rounds only when `count`.
  void fill_exact(const std::vector<std::uint32_t>& comp_flows,
                  const std::vector<Resource*>& comp_resources, bool count,
                  std::uint64_t local_mark, std::uint64_t fill);
  /// fill_prepare + memo lookup + fill_exact on miss (production path).
  /// Returns the fill epoch (validate_boundary keys sat_lambda off it).
  std::uint64_t fill_with_memo(const std::vector<std::uint32_t>& comp_flows,
                               const std::vector<Resource*>& comp_resources,
                               std::uint64_t local_mark);
  /// The pre-optimization progressive lazy-heap water filling, kept as the
  /// independent oracle behind set_cross_check / the property tests.
  void water_fill_progressive(const std::vector<std::uint32_t>& comp_flows,
                              const std::vector<Resource*>& comp_resources,
                              std::uint64_t local_mark = 0);
  double resource_capacity(const Resource& r) const;

  // -- exact-fill indexed resource heap -----------------------------------
  bool res_heap_less(const Resource* a, const Resource* b) const {
    if (a->fill_key != b->fill_key) return a->fill_key < b->fill_key;
    return a->id < b->id;
  }
  void res_heap_sift_up(std::uint32_t pos);
  void res_heap_sift_down(std::uint32_t pos);
  void res_heap_remove(Resource* r);

  // -- fill memoization ----------------------------------------------------
  struct MemoEntry {
    std::vector<std::uint64_t> key;
    std::vector<double> rates;               // comp_flows discovery order
    std::vector<std::uint32_t> bottlenecks;  // comp_resources ordinals
    /// Validation aggregates per comp resource, replayed on a hit so
    /// validate_boundary sees exactly what a fresh fill would have left:
    /// (usage_local, max_local, sat_lambda); sat_lambda is NaN when the
    /// resource drained without saturating.
    std::vector<double> res_aggregates;
    std::uint64_t hash = 0;
  };
  /// Fingerprint the prepared component into memo_key_scratch_; returns its
  /// 64-bit hash.
  std::uint64_t memo_fingerprint(const std::vector<std::uint32_t>& comp_flows,
                                 const std::vector<Resource*>& comp_resources);
  MemoEntry* memo_find(std::uint64_t hash);
  void memo_store(std::uint64_t hash,
                  const std::vector<std::uint32_t>& comp_flows,
                  const std::vector<Resource*>& comp_resources);
  void memo_clear();

  /// Progressive-oracle heap entry: (estimated exhaust level, stable id).
  struct FillEntry {
    double lambda_est;
    std::uint32_t id;
    Resource* resource;
  };

  // -- completion tracking ------------------------------------------------
  bool heap_less(std::uint32_t a, std::uint32_t b) const;
  void heap_sift_up(std::uint32_t pos);
  void heap_sift_down(std::uint32_t pos);
  void heap_push(std::uint32_t slot);
  void heap_update(std::uint32_t slot);
  void heap_remove(std::uint32_t slot);
  void schedule_next_completion();
  void on_next_completion();

  Simulator& sim_;
  Topology& topology_;

  std::vector<Flow> slab_;
  // Hot per-flow state in dense slot-indexed vectors (see Flow comment):
  // sized in lockstep with slab_ by alloc_slot.
  std::vector<double> rate_;              // current applied rate
  std::vector<std::uint64_t> visit_epoch_;
  std::vector<std::uint64_t> freeze_epoch_;
  std::vector<Resource*> bn_applied_;     // applied max-min bottleneck
  std::uint32_t free_head_ = kNone;
  std::size_t active_count_ = 0;
  std::uint64_t next_seq_ = 1;

  std::vector<Resource> tx_, rx_, rack_up_, rack_down_;
  std::unordered_map<std::uint64_t, Resource> pair_res_;
  std::uint32_t pair_seq_ = 0;
  std::uint32_t pair_id_base_ = 0;

  std::vector<std::uint32_t> pending_new_;   // started, membership unbuilt
  std::vector<Resource*> dirty_seeds_;       // membership changed here
  bool dirty_ = false;
  EventId dirty_event_ = kInvalidEvent;
  bool recompute_all_ = false;
  std::uint64_t topo_version_ = 0;

  std::vector<std::uint32_t> completion_heap_;  // slab indices by proj_done
  EventId pending_event_ = kInvalidEvent;
  SimTime pending_time_ = 0.0;

  std::uint64_t epoch_ = 0;  // shared visit/fill epoch counter
  std::vector<std::uint32_t> comp_flows_;
  std::vector<Resource*> comp_resources_;
  std::vector<double> rates_scratch_;
  std::vector<Resource*> bottleneck_scratch_;
  std::vector<Resource*> res_heap_;      // exact fill, indexed by fill_pos
  std::vector<FillEntry> fill_heap_;     // progressive oracle (lazy)
  // Per-fill member split (slices per resource via lmem_off/bmem_off):
  // fill_exact's freeze loops walk exactly the local members and
  // validate_boundary exactly the boundary members, instead of filtering
  // full member lists by epoch on every visit.
  std::vector<std::uint32_t> local_arena_;
  std::vector<std::uint32_t> boundary_arena_;

  /// Ring of cached fills with a hash index. Replacement is round-robin
  /// (deterministic FIFO): a steady-state pipeline cycles through one
  /// component shape per chain/pipeline position, so the working set is
  /// ~the node count and recency gives no extra signal worth the
  /// bookkeeping. When a workload keeps missing (boundary rates never
  /// bit-repeat), the cache deterministically disables itself — see
  /// fill_with_memo — so non-repeating runs stop paying the fingerprint.
  std::vector<MemoEntry> memo_entries_;
  std::unordered_map<std::uint64_t, std::uint32_t> memo_index_;
  std::vector<std::uint64_t> memo_key_scratch_;
  std::size_t memo_cursor_ = 0;
  bool memoize_ = true;
  bool memo_auto_off_ = false;
  /// Counter values at the last (re-)arming: the auto-off policy judges the
  /// hit rate of the current probation window, not the process lifetime.
  std::uint64_t memo_hit_mark_ = 0;
  std::uint64_t memo_miss_mark_ = 0;
  std::size_t memo_min_flows_ = 8;
  static constexpr std::size_t kMemoCapacity = 1024;
  /// Auto-disable policy: after this many misses with a hit rate below
  /// 1/kMemoMinHitRatio, stop fingerprinting (re-armed by set_memoize).
  static constexpr std::uint64_t kMemoProbation = 4096;
  static constexpr std::uint64_t kMemoMinHitRatio = 16;

  /// Local-set growth rounds before giving up and recomputing the whole
  /// connected component from scratch.
  static constexpr int kMaxExpandRounds = 6;
  /// Relative tolerance for boundary-violation checks. Deliberately much
  /// tighter than the 1e-9 cross-check tolerance: any real rate change
  /// larger than this triggers a proper refill, so the error left behind by
  /// suppressed sub-tolerance changes stays far below what the cross-check
  /// (and the property tests) can see. FP noise sits near 1e-16, four
  /// orders below, so spurious expansions don't happen either.
  static constexpr double kExpandTol = 1e-12;

  double bytes_completed_ = 0.0;
  Counters counters_;
#ifdef NDEBUG
  bool cross_check_ = false;
#else
  bool cross_check_ = true;
#endif
};

}  // namespace rdmc::sim
