// Flow-level network model with max-min fair bandwidth sharing.
//
// Each in-flight unicast transfer is a fluid flow. Whenever the set of
// active flows changes, rates are re-allocated by progressive filling
// (water-filling): all flows grow at the same rate until a resource
// saturates, the flows crossing it freeze at their fair share, and the rest
// keep growing. This is the standard fluid approximation of the fair
// sharing that RDMA hardware (and DCQCN/TIMELY) provides — the property the
// paper leans on in §3 item 5 and exercises in Figs 9-10.
//
// Resources: per-node NIC tx and rx ports, per-rack uplink/downlink, and
// optional per-directed-pair caps (slow links, §4.5 item 2).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace rdmc::sim {

using FlowId = std::uint64_t;
inline constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  FlowNetwork(Simulator& sim, Topology& topology);

  /// Begin transferring `bytes` from src to dst. `on_complete` fires (in
  /// virtual time) when the last byte leaves the source; the caller adds
  /// propagation latency for receive-side events. Zero-byte flows are
  /// treated as one byte so every flow takes non-zero time.
  FlowId start_flow(NodeId src, NodeId dst, double bytes,
                    std::function<void(SimTime)> on_complete);

  /// Abort an in-flight flow (failure injection); its callback never fires.
  /// No-op for unknown/finished ids.
  void abort_flow(FlowId id);

  std::size_t active_flows() const { return flows_.size(); }

  /// Current fair-share rate of a flow in bytes/sec (0 if unknown).
  double flow_rate(FlowId id) const;

  /// Total payload bytes fully delivered since construction.
  double bytes_completed() const { return bytes_completed_; }

  /// Profiling counters: rate recomputations and progressive-filling
  /// rounds executed so far.
  std::uint64_t reallocations() const { return reallocations_; }
  std::uint64_t filling_rounds() const { return filling_rounds_; }

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }

 private:
  struct Flow {
    NodeId src;
    NodeId dst;
    double total;
    double remaining;
    double rate = 0.0;
    std::function<void(SimTime)> on_complete;
  };

  /// One capacity constraint (NIC port direction, rack uplink direction,
  /// or pair cap). Epoch-stamped so reallocation needs no clearing pass.
  /// `rem`/`last_lambda` implement lazy water-level accounting: the
  /// capacity remaining at global fill level lambda is
  /// rem - (lambda - last_lambda) * live.
  struct Resource {
    double cap = 0.0;        // configured capacity
    double rem = 0.0;        // remaining capacity at last_lambda
    double last_lambda = 0.0;
    std::uint32_t live = 0;  // unfrozen flows crossing this resource
    std::uint32_t id = 0;    // stable tie-break for the heap
    std::uint64_t epoch = 0;
    std::vector<std::uint32_t> flow_idx;  // active-flow indices crossing it
  };
  struct ActiveFlow {
    Flow* flow = nullptr;
    Resource* resources[5] = {};
    std::uint32_t count = 0;
    bool frozen = false;
  };

  /// Charge elapsed virtual time against every flow's remaining bytes.
  void advance_to_now();
  /// Flow-set changes within one virtual instant are coalesced into a
  /// single rate recomputation via a same-time event.
  void mark_dirty();
  void flush_dirty();
  /// Recompute all rates (progressive filling) and reschedule the next
  /// completion event.
  void reallocate();
  void schedule_next_completion();
  void on_next_completion();

  Simulator& sim_;
  Topology& topology_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  SimTime last_advance_ = 0.0;
  EventId pending_event_ = kInvalidEvent;
  double bytes_completed_ = 0.0;

  std::uint64_t reallocations_ = 0;
  std::uint64_t filling_rounds_ = 0;
  bool dirty_ = false;
  EventId dirty_event_ = kInvalidEvent;
  std::uint64_t epoch_ = 0;
  std::vector<Resource> tx_, rx_, rack_up_, rack_down_;
  std::unordered_map<std::uint64_t, Resource> pair_res_;
  std::vector<Resource*> touched_;
  std::vector<ActiveFlow> active_;
};

}  // namespace rdmc::sim
