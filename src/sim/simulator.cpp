#include "sim/simulator.hpp"

#include <cassert>

namespace rdmc::sim {

EventId Simulator::at(SimTime when, std::function<void()> fn) {
  assert(when >= now_);
  return queue_.schedule(when, std::move(fn));
}

EventId Simulator::after(SimTime delay, std::function<void()> fn) {
  assert(delay >= 0.0);
  return queue_.schedule(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  assert(fired.time >= now_);
  now_ = fired.time;
  ++processed_;
  fired.fn();
  return true;
}

SimTime Simulator::run() {
  while (step()) {
  }
  return now_;
}

bool Simulator::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
  return !queue_.empty();
}

}  // namespace rdmc::sim
