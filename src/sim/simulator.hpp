// Discrete-event simulator core: a virtual clock plus an event queue.
//
// Everything simulated (flows, NIC ops, software delays, completion
// delivery) is expressed as events on one Simulator, which guarantees a
// single deterministic global order and makes 512-node experiments (Fig 8)
// run in milliseconds of wall time.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"

namespace rdmc::sim {

class Simulator {
 public:
  SimTime now() const { return now_; }

  /// Schedule at an absolute virtual time (must be >= now()).
  EventId at(SimTime when, std::function<void()> fn);

  /// Schedule `delay` seconds from now (delay >= 0).
  EventId after(SimTime delay, std::function<void()> fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until no events remain. Returns the final virtual time.
  SimTime run();

  /// Run events with time <= deadline; clock ends at
  /// min(deadline, time of last processed event). Returns true if events
  /// remain beyond the deadline.
  bool run_until(SimTime deadline);

  /// Process exactly one event if any. Returns false when idle.
  bool step();

  std::uint64_t events_processed() const { return processed_; }
  bool idle() const { return queue_.empty(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t processed_ = 0;
};

}  // namespace rdmc::sim
