#include "sim/topology.hpp"

#include <cassert>

namespace rdmc::sim {

Topology::Topology(TopologyConfig config) : config_(config) {
  assert(config_.num_nodes > 0);
  if (config_.nodes_per_rack == 0) {
    num_racks_ = 1;
  } else {
    num_racks_ =
        (config_.num_nodes + config_.nodes_per_rack - 1) /
        config_.nodes_per_rack;
  }
  for (const auto& o : config_.rack_latency_overrides) {
    assert(o.rack_a < num_racks_ && o.rack_b < num_racks_);
    rack_extra_latency_s_[rack_pair_key(o.rack_a, o.rack_b)] =
        o.extra_latency_s;
  }
}

std::size_t Topology::rack_of(NodeId node) const {
  assert(node < config_.num_nodes);
  if (config_.nodes_per_rack == 0) return 0;
  return node / config_.nodes_per_rack;
}

double Topology::latency(NodeId src, NodeId dst) const {
  double lat = config_.base_latency_s;
  if (!same_rack(src, dst)) {
    auto it = rack_extra_latency_s_.find(
        rack_pair_key(rack_of(src), rack_of(dst)));
    lat += it != rack_extra_latency_s_.end()
               ? it->second
               : config_.inter_rack_extra_latency_s;
  }
  return lat;
}

void Topology::set_pair_cap(NodeId src, NodeId dst, double gbps) {
  pair_caps_Bps_[pair_key(src, dst)] = gbps * 1e9 / 8.0;
  ++version_;
}

void Topology::clear_pair_cap(NodeId src, NodeId dst) {
  if (pair_caps_Bps_.erase(pair_key(src, dst)) > 0) ++version_;
}

std::optional<double> Topology::pair_cap_Bps(NodeId src, NodeId dst) const {
  auto it = pair_caps_Bps_.find(pair_key(src, dst));
  if (it == pair_caps_Bps_.end()) return std::nullopt;
  return it->second;
}

void Topology::set_node_nic(NodeId node, double gbps) {
  node_nic_Bps_[node] = gbps * 1e9 / 8.0;
  ++version_;
}

double Topology::node_tx_Bps(NodeId node) const {
  auto it = node_nic_Bps_.find(node);
  return it == node_nic_Bps_.end() ? nic_Bps() : it->second;
}

double Topology::node_rx_Bps(NodeId node) const {
  return node_tx_Bps(node);
}

}  // namespace rdmc::sim
