// Cluster topology: NIC line rates, rack structure, link overrides.
//
// The simulator models a two-level datacenter network, which covers all four
// clusters the paper evaluates on:
//   * full-bisection fabrics (Fractus, Sierra, Stampede) — a single "rack"
//     whose uplink never constrains anything;
//   * an oversubscribed top-of-rack fabric (Apt) — per-rack uplink capacity
//     far below the sum of member NIC rates, so concurrent inter-rack flows
//     degrade exactly as Fig 10b shows (~16 Gb/s per link under load).
//
// A unicast flow from s to d is constrained by: s's NIC tx port, d's NIC rx
// port, an optional per-directed-pair cap (used to inject the slow links of
// §4.5(2)), and — when s and d sit in different racks — the source rack's
// uplink and the destination rack's downlink.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace rdmc::sim {

using NodeId = std::uint32_t;

struct TopologyConfig {
  std::size_t num_nodes = 0;
  /// Per-direction NIC port rate, decimal Gb/s (a 100 Gb/s NIC can send and
  /// receive 100 Gb/s concurrently — paper §4.3 "Sequential Send").
  double nic_gbps = 100.0;
  /// Nodes per rack; 0 means one flat rack (full bisection bandwidth).
  std::size_t nodes_per_rack = 0;
  /// Per-rack uplink/downlink rate for inter-rack traffic, decimal Gb/s.
  double rack_uplink_gbps = 0.0;
  /// One-way propagation latency within a rack, seconds.
  double base_latency_s = 1.5e-6;
  /// Extra one-way latency for inter-rack hops, seconds.
  double inter_rack_extra_latency_s = 1.0e-6;
  /// Per-rack-pair extra latency overrides (symmetric). When WAN topologies
  /// model geographic regions as "racks", each region pair can carry its
  /// own long-haul delay instead of the uniform inter-rack extra — this is
  /// how the planetary profile encodes realistic inter-region RTTs without
  /// changing any ClusterProfile plumbing.
  struct RackLatencyOverride {
    std::size_t rack_a = 0;
    std::size_t rack_b = 0;
    double extra_latency_s = 0.0;
  };
  std::vector<RackLatencyOverride> rack_latency_overrides;
};

class Topology {
 public:
  explicit Topology(TopologyConfig config);

  std::size_t num_nodes() const { return config_.num_nodes; }
  const TopologyConfig& config() const { return config_; }

  std::size_t rack_of(NodeId node) const;
  std::size_t num_racks() const { return num_racks_; }
  bool same_rack(NodeId a, NodeId b) const {
    return rack_of(a) == rack_of(b);
  }

  /// NIC port capacity in bytes/second.
  double nic_Bps() const { return config_.nic_gbps * 1e9 / 8.0; }
  double rack_uplink_Bps() const {
    return config_.rack_uplink_gbps * 1e9 / 8.0;
  }

  /// One-way propagation latency between two nodes, seconds.
  double latency(NodeId src, NodeId dst) const;

  /// Cap the directed (src, dst) path at `gbps` — injects the slow links of
  /// the robustness analysis (§4.5 item 2).
  void set_pair_cap(NodeId src, NodeId dst, double gbps);
  /// Remove a directed pair cap (transient degradations recover). No-op if
  /// the pair was never capped.
  void clear_pair_cap(NodeId src, NodeId dst);
  std::optional<double> pair_cap_Bps(NodeId src, NodeId dst) const;
  bool has_pair_caps() const { return !pair_caps_Bps_.empty(); }

  /// Scale one node's NIC ports (both directions) to `gbps` — a "slow node".
  void set_node_nic(NodeId node, double gbps);
  double node_tx_Bps(NodeId node) const;
  double node_rx_Bps(NodeId node) const;

  /// Bumped on every capacity mutation (set_pair_cap / set_node_nic).
  /// FlowNetwork keeps resource membership persistently across flow
  /// arrivals; a version change tells it the cached structure is stale and
  /// forces one full rebuild.
  std::uint64_t version() const { return version_; }

 private:
  static std::uint64_t pair_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }
  static std::uint64_t rack_pair_key(std::size_t a, std::size_t b) {
    return (static_cast<std::uint64_t>(std::min(a, b)) << 32) |
           static_cast<std::uint64_t>(std::max(a, b));
  }

  TopologyConfig config_;
  std::size_t num_racks_ = 1;
  std::uint64_t version_ = 0;
  std::unordered_map<std::uint64_t, double> pair_caps_Bps_;
  std::unordered_map<NodeId, double> node_nic_Bps_;
  std::unordered_map<std::uint64_t, double> rack_extra_latency_s_;
};

}  // namespace rdmc::sim
