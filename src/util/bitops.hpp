// Bit-manipulation helpers used throughout the schedule math (paper §4.4).
//
// The binomial pipeline's closed-form send rule is phrased in terms of
// l-bit node ids: right circular shifts (sigma), trailing-zero counts
// (tr_ze) and bitwise XOR neighbourhoods on a hypercube. These helpers
// implement that arithmetic for arbitrary word widths l <= 32.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace rdmc::util {

/// floor(log2(x)) for x >= 1.
constexpr std::uint32_t floor_log2(std::uint64_t x) {
  assert(x >= 1);
  return 63u - static_cast<std::uint32_t>(std::countl_zero(x));
}

/// ceil(log2(x)) for x >= 1. ceil_log2(1) == 0.
constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  assert(x >= 1);
  return x == 1 ? 0u : floor_log2(x - 1) + 1u;
}

/// True iff x is a power of two (x >= 1).
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Number of trailing zeros in the binary representation of m (m > 0).
/// This is `tr_ze(m)` from paper §4.4.
constexpr std::uint32_t trailing_zeros(std::uint64_t m) {
  assert(m != 0);
  return static_cast<std::uint32_t>(std::countr_zero(m));
}

/// Right circular shift of the l-bit value v by r positions.
/// This is `sigma(v, r)` from paper §4.4 (there written for node ids).
/// Both v and the result are interpreted as l-bit numbers; r may exceed l.
constexpr std::uint32_t rotr_bits(std::uint32_t v, std::uint32_t r,
                                  std::uint32_t l) {
  assert(l >= 1 && l <= 32);
  assert(v < (l == 32 ? 0xFFFFFFFFu : (1u << l)) || l == 32);
  r %= l;
  if (r == 0) return v;
  const std::uint32_t mask = (l == 32) ? 0xFFFFFFFFu : ((1u << l) - 1u);
  return ((v >> r) | (v << (l - r))) & mask;
}

/// Left circular shift of the l-bit value v by r positions (inverse of
/// rotr_bits for the same l).
constexpr std::uint32_t rotl_bits(std::uint32_t v, std::uint32_t r,
                                  std::uint32_t l) {
  assert(l >= 1 && l <= 32);
  r %= l;
  return rotr_bits(v, l - r == l ? 0 : l - r, l);
}

}  // namespace rdmc::util
