#include "util/bytes.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace rdmc::util {

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof buf, "%llu GB",
                  static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.1f GB",
                  static_cast<double>(bytes) / static_cast<double>(kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof buf, "%llu MB",
                  static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.1f MB",
                  static_cast<double>(bytes) / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%llu KB",
                  static_cast<unsigned long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

double to_gbps(double bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return bytes * 8.0 / seconds / 1e9;
}

std::string format_gbps(double bytes, double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f Gb/s", to_gbps(bytes, seconds));
  return buf;
}

std::string format_duration(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", seconds * 1e9);
  }
  return buf;
}

std::optional<std::uint64_t> parse_size(std::string_view text) {
  std::uint64_t value = 0;
  std::size_t i = 0;
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  if (i == text.size() ||
      !std::isdigit(static_cast<unsigned char>(text[i])))
    return std::nullopt;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<std::uint64_t>(text[i] - '0');
    ++i;
  }
  while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
    ++i;
  if (i == text.size()) return value;
  const char unit = static_cast<char>(
      std::tolower(static_cast<unsigned char>(text[i])));
  std::uint64_t mult = 1;
  switch (unit) {
    case 'k': mult = kKiB; break;
    case 'm': mult = kMiB; break;
    case 'g': mult = kGiB; break;
    case 'b': mult = 1; break;
    default: return std::nullopt;
  }
  ++i;
  // Allow a trailing "b"/"ib" after k/m/g, e.g. "16KB", "1MiB".
  while (i < text.size()) {
    const char c = static_cast<char>(
        std::tolower(static_cast<unsigned char>(text[i])));
    if (c != 'i' && c != 'b' && !std::isspace(static_cast<unsigned char>(c)))
      return std::nullopt;
    ++i;
  }
  return value * mult;
}

}  // namespace rdmc::util
