// Byte-size and rate formatting/parsing used by benches and examples.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rdmc::util {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// "256 MB" style human-readable size (binary units, 1 decimal place).
std::string format_bytes(std::uint64_t bytes);

/// "93.4 Gb/s" style rate from bytes and seconds (decimal bits/sec as the
/// paper reports).
std::string format_gbps(double bytes, double seconds);

/// Bandwidth in Gb/s (decimal, as the paper's figures are labelled).
double to_gbps(double bytes, double seconds);

/// "61.2 ms" / "402 us" style duration from seconds.
std::string format_duration(double seconds);

/// Parse "16KB", "1 MB", "256m", "3g", plain byte counts. Binary units.
std::optional<std::uint64_t> parse_size(std::string_view text);

}  // namespace rdmc::util
