#include "util/logging.hpp"

#include <atomic>
#include <cstdio>

#include "util/thread_annotations.hpp"

namespace rdmc::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
Mutex g_emit_mutex;
LogSink g_sink RDMC_GUARDED_BY(g_emit_mutex);  // empty = default stderr sink
}  // namespace

LogSink set_log_sink(LogSink sink) {
  MutexLock lock(g_emit_mutex);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

void log(LogLevel level, const char* tag, const char* fmt, ...) {
  if (level < log_level()) return;
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);
  MutexLock lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level, tag, body);
  } else {
    std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), tag, body);
  }
}

}  // namespace rdmc::util
