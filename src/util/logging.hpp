// Minimal leveled logger.
//
// The library is quiet by default (Warn); tests and examples can raise the
// level. Thread-safe: each log line is formatted into a local buffer and
// written with a single mutex-protected emit.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>

namespace rdmc::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Where formatted log lines go. `body` is the formatted message without
/// the "[LEVEL] tag: " prefix the default stderr sink adds.
using LogSink =
    std::function<void(LogLevel level, const char* tag, const char* body)>;

/// Replace the sink (nullptr restores the default stderr sink). Returns
/// the previous sink so tests can capture warnings and then restore it.
/// The sink is invoked under the emit lock: lines arrive serialized, and
/// the sink must not log re-entrantly.
LogSink set_log_sink(LogSink sink);

/// printf-style logging. `tag` names the subsystem (e.g. "core", "sim").
void log(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

const char* level_name(LogLevel level);

#define RDMC_LOG_TRACE(tag, ...) \
  ::rdmc::util::log(::rdmc::util::LogLevel::Trace, tag, __VA_ARGS__)
#define RDMC_LOG_DEBUG(tag, ...) \
  ::rdmc::util::log(::rdmc::util::LogLevel::Debug, tag, __VA_ARGS__)
#define RDMC_LOG_INFO(tag, ...) \
  ::rdmc::util::log(::rdmc::util::LogLevel::Info, tag, __VA_ARGS__)
#define RDMC_LOG_WARN(tag, ...) \
  ::rdmc::util::log(::rdmc::util::LogLevel::Warn, tag, __VA_ARGS__)
#define RDMC_LOG_ERROR(tag, ...) \
  ::rdmc::util::log(::rdmc::util::LogLevel::Error, tag, __VA_ARGS__)

}  // namespace rdmc::util
