#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace rdmc::util {

std::size_t default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs > count) jobs = count;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  Mutex error_mutex;
  // Guarded by error_mutex while workers run (GUARDED_BY does not apply to
  // locals); the final read happens after every worker has joined.
  std::exception_ptr first_error;
  const auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_workers(
    std::size_t count, std::size_t jobs,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs > count) jobs = count;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }

  std::atomic<std::size_t> next{0};
  Mutex error_mutex;
  // Guarded by error_mutex while workers run (GUARDED_BY does not apply to
  // locals); the final read happens after every worker has joined.
  std::exception_ptr first_error;
  const auto worker = [&](std::size_t w) {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(w, i);
      } catch (...) {
        MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace rdmc::util
