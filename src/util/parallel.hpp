// Deterministic work-sharing executor: invoke fn(i) for i in [0, count)
// on up to `jobs` threads, blocking until the range drains.
//
// This is the one thread pool in the tree. It started life as the harness
// sweep executor (chaos seeds, figure points — each item a whole
// simulation); the simulator core now also dispatches *intra-step* work on
// it: independent max-min components (and rack islands of the hierarchical
// solver) within a single reallocation. It therefore lives in util, below
// both sim and harness; harness/parallel.hpp re-exports it under the old
// name for the sweep callers.
//
// Scheduling is a single shared atomic cursor: workers claim the next
// unclaimed index until the range is drained, so a slow item never stalls
// the pool behind a static partition. Results must be written to
// per-index slots — the executor guarantees each index runs exactly once,
// not where or when. `jobs <= 1` runs inline on the calling thread, which
// keeps single-job runs bit-identical to a plain loop.
#pragma once

#include <cstddef>
#include <functional>

namespace rdmc::util {

/// Worker count for "one per hardware thread" requests: the hardware
/// concurrency, at least 1.
std::size_t default_jobs();

/// Invoke `fn(i)` for every i in [0, count), using up to `jobs` worker
/// threads (clamped to count). Blocks until all items finish. The first
/// exception thrown by any item is rethrown on the calling thread after
/// the pool drains.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

/// Like parallel_for, but the callback also receives the worker ordinal
/// (0 <= worker < jobs) that claimed the index. Callers hand each worker a
/// private scratch slot (heaps, arenas) that is reused across the items it
/// claims, instead of allocating per item. Which worker claims which index
/// is nondeterministic — only per-index results may depend on `index`, and
/// scratch must carry no state between items beyond capacity.
void parallel_for_workers(
    std::size_t count, std::size_t jobs,
    const std::function<void(std::size_t worker, std::size_t index)>& fn);

}  // namespace rdmc::util
