#include "util/random.hpp"

#include <bit>
#include <cmath>

namespace rdmc::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
  // Avoid the all-zero state (cannot occur with splitmix64, but keep the
  // invariant explicit for hand-constructed seeds).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t span = hi - lo + 1;
  if (span == 0) return (*this)();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + v % span;
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::lognormal(double mu, double sigma) {
  // Box-Muller on two uniforms.
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return std::exp(mu + sigma * z);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::split() { return Rng((*this)() ^ 0xD1B54A32D192ED03ull); }

}  // namespace rdmc::util
