// Deterministic pseudo-random generation for workloads and fault injection.
//
// Benchmarks and tests must be reproducible run-to-run, so everything random
// in this repository flows through Rng, a splitmix64-seeded xoshiro256**
// generator. Rng satisfies std::uniform_random_bit_generator and therefore
// composes with <random> distributions.
#pragma once

#include <cstdint>
#include <limits>

namespace rdmc::util {

/// xoshiro256** seeded via splitmix64. Deterministic across platforms.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Log-normally distributed double with the given underlying mu/sigma.
  double lognormal(double mu, double sigma);

  /// True with probability p.
  bool bernoulli(double p);

  /// Derive an independent child generator (for per-node streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace rdmc::util
