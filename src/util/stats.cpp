#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace rdmc::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Sample::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

void Sample::add_all(const std::vector<double>& xs) {
  values_.insert(values_.end(), xs.begin(), xs.end());
  sorted_valid_ = false;
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

void Sample::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Sample::min() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Sample::max() const {
  ensure_sorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Sample::percentile(double p) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  if (sorted_.size() == 1) return sorted_[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Sample::cdf(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(frac, percentile(frac * 100.0));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

double Histogram::bucket_low(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_high(std::size_t i) const {
  return bucket_low(i + 1);
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / peak;
    os << "[" << bucket_low(i) << ", " << bucket_high(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_) os << "underflow: " << underflow_ << "\n";
  if (overflow_) os << "overflow: " << overflow_ << "\n";
  return os.str();
}

}  // namespace rdmc::util
