// Streaming statistics and fixed-sample percentile summaries.
//
// Benchmarks accumulate per-transfer latencies into Sample objects and then
// report the same aggregates the paper reports (means, medians, CDF points
// for Fig 9, min/max skew for the scalability discussion).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rdmc::util {

/// Welford-style running mean/variance plus min/max.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A buffered sample supporting exact percentiles and CDF extraction.
class Sample {
 public:
  void add(double x);
  void add_all(const std::vector<double>& xs);
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// Exact percentile by linear interpolation, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// (fraction, value) pairs suitable for plotting a CDF with `points`
  /// equally spaced fractions in (0, 1].
  std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width bucket histogram over [lo, hi).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_at(std::size_t i) const { return counts_[i]; }
  std::size_t total() const { return total_; }
  double bucket_low(std::size_t i) const;
  double bucket_high(std::size_t i) const;
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0, overflow_ = 0;
};

}  // namespace rdmc::util
