#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rdmc::util {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::integer(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TextTable::print() const { std::fputs(render().c_str(), stdout); }

}  // namespace rdmc::util
