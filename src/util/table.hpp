// Aligned text tables for benchmark output.
//
// Every bench binary prints the same rows/series the paper's tables and
// figures report; TextTable handles column alignment so the output is
// directly readable (and greppable by EXPERIMENTS.md tooling).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace rdmc::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::uint64_t v);

  std::string render() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rdmc::util
