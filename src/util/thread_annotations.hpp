// Clang Thread Safety Analysis annotations + the annotated lock vocabulary.
//
// Every mutex-guarded field in the tree declares which lock protects it
// (RDMC_GUARDED_BY), every function that expects a lock held says so
// (RDMC_REQUIRES), and the compiler — clang with -Wthread-safety, which the
// static-analysis CI job runs with -Werror — proves the discipline at
// compile time. On GCC (the default local toolchain) every macro expands to
// nothing and util::Mutex degrades to a plain std::mutex wrapper, so the
// annotations cost nothing where they cannot be checked.
//
// The analysis does not understand std::lock_guard/std::unique_lock over a
// libstdc++ std::mutex (the declarations carry no attributes there), so the
// tree uses the wrapper types below instead of raw standard-library
// primitives. rdmc-lint rule `raw-mutex` enforces that: a `std::mutex`
// member outside this header is a lint failure unless suppressed with a
// reason.
//
// Vocabulary (mirrors the official attribute names, RDMC_-prefixed):
//   RDMC_CAPABILITY(x)      — type is a lockable capability named x
//   RDMC_SCOPED_CAPABILITY  — RAII type that acquires/releases a capability
//   RDMC_GUARDED_BY(mu)     — field may only be touched with mu held
//   RDMC_PT_GUARDED_BY(mu)  — pointee may only be touched with mu held
//   RDMC_REQUIRES(mu...)    — caller must hold mu (exclusive)
//   RDMC_ACQUIRE(mu...)     — function acquires mu and does not release it
//   RDMC_RELEASE(mu...)     — function releases mu
//   RDMC_TRY_ACQUIRE(b,mu.) — acquires mu iff the return value equals b
//   RDMC_EXCLUDES(mu...)    — caller must NOT hold mu (self-deadlock guard)
//   RDMC_ACQUIRED_BEFORE / _AFTER — document lock ordering between members
//   RDMC_RETURN_CAPABILITY(mu)    — function returns a reference to mu
//   RDMC_NO_THREAD_SAFETY_ANALYSIS — opt a function out; every use site in
//     this tree must carry a written justification (DESIGN.md §11).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define RDMC_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RDMC_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

#define RDMC_CAPABILITY(x) RDMC_THREAD_ANNOTATION_(capability(x))
#define RDMC_SCOPED_CAPABILITY RDMC_THREAD_ANNOTATION_(scoped_lockable)
#define RDMC_GUARDED_BY(x) RDMC_THREAD_ANNOTATION_(guarded_by(x))
#define RDMC_PT_GUARDED_BY(x) RDMC_THREAD_ANNOTATION_(pt_guarded_by(x))
#define RDMC_REQUIRES(...) \
  RDMC_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define RDMC_ACQUIRE(...) \
  RDMC_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RDMC_RELEASE(...) \
  RDMC_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RDMC_TRY_ACQUIRE(...) \
  RDMC_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define RDMC_EXCLUDES(...) RDMC_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define RDMC_ACQUIRED_BEFORE(...) \
  RDMC_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define RDMC_ACQUIRED_AFTER(...) \
  RDMC_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))
#define RDMC_RETURN_CAPABILITY(x) RDMC_THREAD_ANNOTATION_(lock_returned(x))
#define RDMC_NO_THREAD_SAFETY_ANALYSIS \
  RDMC_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rdmc::util {

/// std::mutex with the capability attribute the analysis needs. Use with
/// MutexLock (scoped) — never std::lock_guard, whose libstdc++ declaration
/// is invisible to the analysis.
class RDMC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RDMC_ACQUIRE() { mu_.lock(); }
  void unlock() RDMC_RELEASE() { mu_.unlock(); }
  bool try_lock() RDMC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped lock over Mutex, with the manual unlock()/lock() needed around a
/// blocking call (the telemetry wall ticker) and for CondVar waits. The
/// destructor releases only if still held.
class RDMC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) RDMC_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() RDMC_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() RDMC_RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void lock() RDMC_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// Condition variable paired with Mutex/MutexLock. Waits go through the
/// underlying std::mutex directly, so there is no condition_variable_any
/// overhead; from the analysis' point of view the capability is held across
/// a wait (released and reacquired inside, as usual).
///
/// Predicate waits are deliberately absent: a predicate lambda reading
/// guarded state cannot carry a REQUIRES annotation portably, so callers
/// desugar to the standard-defined loop
///     while (!pred) cv.wait(lock);
/// which the analysis checks exactly (pred is evaluated with the lock held).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexLock& lock) {
    std::unique_lock<std::mutex> inner(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  template <class Clock, class Duration>
  std::cv_status wait_until(
      MutexLock& lock, const std::chrono::time_point<Clock, Duration>& tp) {
    std::unique_lock<std::mutex> inner(lock.mu_.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(inner, tp);
    inner.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status wait_for(MutexLock& lock,
                          const std::chrono::duration<Rep, Period>& d) {
    return wait_until(lock, std::chrono::steady_clock::now() + d);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace rdmc::util
